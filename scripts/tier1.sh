#!/usr/bin/env bash
# Tier-1 verification (see ROADMAP.md): release build, the root test
# suite, and the parallel-determinism integration tests. Run from
# anywhere; exits non-zero on the first failure.
#
#   --conform   additionally run the quick conformance gate
#               (`repro conform --quick`, see EXPERIMENTS.md).
set -euo pipefail
cd "$(dirname "$0")/.."

conform=0
for arg in "$@"; do
  case "$arg" in
    --conform) conform=1 ;;
    *) echo "unknown option: $arg" >&2; exit 2 ;;
  esac
done

echo "== tier-1: release build =="
cargo build --release

echo "== tier-1: root test suite =="
cargo test -q

echo "== tier-1: parallel determinism (threads=1 vs threads=8) =="
cargo test -q --release --test parallel_determinism

echo "== tier-1: chaos determinism (storm + kill/resume) =="
cargo test -q --release --test chaos_determinism

echo "== tier-1: chaos smoke run (--quick --chaos) =="
ck="$(mktemp -u "${TMPDIR:-/tmp}/tier1-chaos-XXXXXX.json")"
./target/release/repro table1 --quick --chaos "offline=0.05,preempt=0.10,seed=7" --checkpoint "$ck"
rm -f "$ck"

echo "== tier-1: softcore fast-path regression gate (bench --quick) =="
cargo bench -q -p bench --bench softcore_hotpath -- --quick

echo "== tier-1: campaign executor regression gate (bench --quick) =="
cargo bench -q -p bench --bench campaign_hotpath -- --quick

echo "== tier-1: clippy (chaos-touched crates) =="
cargo clippy -q -p toolchain -p fleet -p farron -p analysis -p sdc-repro -- -D warnings -D clippy::perf

if [[ "$conform" -eq 1 ]]; then
  echo "== tier-1: conformance gate (quick) =="
  ./target/release/repro conform --quick
fi

echo "tier-1: OK"

#!/usr/bin/env bash
# Tier-1 verification (see ROADMAP.md): release build, the root test
# suite, and the parallel-determinism integration tests. Run from
# anywhere; exits non-zero on the first failure.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: release build =="
cargo build --release

echo "== tier-1: root test suite =="
cargo test -q

echo "== tier-1: parallel determinism (threads=1 vs threads=8) =="
cargo test -q --release --test parallel_determinism

echo "tier-1: OK"

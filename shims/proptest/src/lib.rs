//! Offline drop-in subset of `proptest`.
//!
//! The build container has no network access, so the workspace ships a
//! minimal property-testing harness exposing the `proptest` surface its
//! tests use: the [`proptest!`] macro, [`Strategy`] with `prop_filter` /
//! `prop_map`, `any::<T>()`, range strategies, `prop::collection::vec`,
//! `prop::sample::{select, Index}`, `prop::num::f64::{ANY, NORMAL}`, and
//! the `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from the real crate: inputs are not shrunk on failure (the
//! failing inputs are printed instead), and the default case count is 64
//! (override with `PROPTEST_CASES`).

use std::fmt::Debug;

/// Per-test configuration.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        ProptestConfig { cases }
    }
}

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is re-drawn.
    Reject(String),
    /// A `prop_assert*` failed.
    Fail(String),
}

/// Deterministic generator driving input sampling (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from a label (the test name), or `PROPTEST_SEED` when set.
    pub fn from_label(label: &str) -> Self {
        if let Ok(seed) = std::env::var("PROPTEST_SEED") {
            if let Ok(seed) = seed.parse() {
                return TestRng { state: seed };
            }
        }
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &b in label.as_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0);
        // Widening multiply; the tiny modulo bias is irrelevant here.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Keeps only values satisfying `pred`, re-drawing otherwise.
    fn prop_filter<F>(self, reason: impl Into<String>, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason: reason.into(),
            pred,
        }
    }

    /// Maps generated values through `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

macro_rules! impl_tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A.0);
impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);

/// Strategy returned by [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: String,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.sample(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 10000 consecutive draws: {}", self.reason);
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Types with a canonical `any::<T>()` strategy.
pub trait Arbitrary: Sized + Debug {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_ints {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $ty
            }
        }
    )*};
}

arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.next_u64() as u128) << 64 | rng.next_u64() as u128
    }
}

impl Arbitrary for i128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        u128::arbitrary(rng) as i128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Raw bit patterns: covers normals, subnormals, infinities, NaNs —
        // like the real crate, callers filter what they need.
        f64::from_bits(rng.next_u64())
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        f32::from_bits(rng.next_u64() as u32)
    }
}

/// Strategy produced by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! range_strategies {
    ($($ty:ty),*) => {$(
        impl Strategy for std::ops::Range<$ty> {
            type Value = $ty;
            fn sample(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $ty
            }
        }
        impl Strategy for std::ops::RangeInclusive<$ty> {
            type Value = $ty;
            fn sample(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() - *self.start()) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $ty;
                }
                self.start() + rng.below(span + 1) as $ty
            }
        }
        impl Strategy for std::ops::RangeFrom<$ty> {
            type Value = $ty;
            fn sample(&self, rng: &mut TestRng) -> $ty {
                let span = (<$ty>::MAX - self.start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $ty;
                }
                self.start + rng.below(span + 1) as $ty
            }
        }
    )*};
}

range_strategies!(u8, u16, u32, u64, usize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let x = self.start + rng.unit_f64() * (self.end - self.start);
        x.min(self.end - self.end.abs() * f64::EPSILON)
    }
}

/// A literal single-value strategy.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};

    /// Strategy for `Vec<S::Value>` with a length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// `prop::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.clone().sample(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod sample {
    //! Sampling helpers.

    use super::{Arbitrary, Strategy, TestRng};
    use std::fmt::Debug;

    /// An index into a runtime-sized collection.
    #[derive(Debug, Clone, Copy)]
    pub struct Index(u64);

    impl Index {
        /// Resolves against a collection of length `len`.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.next_u64())
        }
    }

    /// Strategy choosing uniformly from a fixed set.
    pub struct Select<T: Clone + Debug>(Vec<T>);

    /// `prop::sample::select(options)`.
    pub fn select<T: Clone + Debug>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select() from empty set");
        Select(options)
    }

    impl<T: Clone + Debug> Strategy for Select<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            self.0[rng.below(self.0.len() as u64) as usize].clone()
        }
    }
}

pub mod num {
    //! Numeric strategies.

    pub mod f64 {
        //! `f64` strategies.

        use crate::{Strategy, TestRng};

        /// Any bit pattern, including NaNs and infinities.
        #[derive(Debug, Clone, Copy)]
        pub struct AnyF64;

        impl Strategy for AnyF64 {
            type Value = f64;
            fn sample(&self, rng: &mut TestRng) -> f64 {
                f64::from_bits(rng.next_u64())
            }
        }

        /// Normal (non-zero, non-subnormal, finite) values.
        #[derive(Debug, Clone, Copy)]
        pub struct NormalF64;

        impl Strategy for NormalF64 {
            type Value = f64;
            fn sample(&self, rng: &mut TestRng) -> f64 {
                loop {
                    let x = f64::from_bits(rng.next_u64());
                    if x.is_normal() {
                        return x;
                    }
                }
            }
        }

        /// Any `f64` bit pattern.
        pub const ANY: AnyF64 = AnyF64;
        /// Normal `f64` values only.
        pub const NORMAL: NormalF64 = NormalF64;
    }
}

/// The `prop::` namespace used inside test bodies.
pub mod prop {
    pub use crate::collection;
    pub use crate::num;
    pub use crate::sample;
}

pub mod prelude {
    //! Glob-import surface matching `proptest::prelude::*`.

    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a property, failing the case (not the
/// process) so the harness can report the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// `prop_assert!(a == b)` with value reporting.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($a),
            stringify!($b),
            a,
            b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, $($fmt)*);
    }};
}

/// `prop_assert!(a != b)` with value reporting.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a != *b,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($a),
            stringify!($b),
            a
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a != *b, $($fmt)*);
    }};
}

/// Rejects the current inputs; the case is re-drawn without counting
/// against the case budget.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...)` block
/// becomes a `#[test]` running the body over sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::from_label(concat!(module_path!(), "::", stringify!($name)));
                let mut accepted: u32 = 0;
                let mut rejected: u32 = 0;
                while accepted < config.cases {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)*
                    let __inputs = {
                        let mut s = ::std::string::String::new();
                        $(
                            s.push_str(stringify!($arg));
                            s.push_str(" = ");
                            s.push_str(&format!("{:?}, ", &$arg));
                        )*
                        s
                    };
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> = (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    match outcome {
                        ::std::result::Result::Ok(()) => accepted += 1,
                        ::std::result::Result::Err($crate::TestCaseError::Reject(why)) => {
                            rejected += 1;
                            if rejected > config.cases.saturating_mul(20).max(1000) {
                                panic!("too many rejected cases ({rejected}): {why}");
                            }
                        }
                        ::std::result::Result::Err($crate::TestCaseError::Fail(why)) => {
                            panic!(
                                "property {} failed after {} cases: {}\n  inputs: {}",
                                stringify!($name),
                                accepted,
                                why,
                                __inputs
                            );
                        }
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_filters_sample_in_bounds() {
        let mut rng = crate::TestRng::from_label("bounds");
        let s = (10u32..20).prop_filter("even", |x| x % 2 == 0);
        for _ in 0..200 {
            let v = s.sample(&mut rng);
            assert!((10..20).contains(&v) && v % 2 == 0);
        }
    }

    #[test]
    fn vec_strategy_respects_length() {
        let mut rng = crate::TestRng::from_label("vec");
        let s = prop::collection::vec(any::<u8>(), 2..7);
        for _ in 0..100 {
            let v = s.sample(&mut rng);
            assert!((2..7).contains(&v.len()));
        }
    }

    #[test]
    fn index_resolves_in_range() {
        let mut rng = crate::TestRng::from_label("index");
        for _ in 0..100 {
            let idx = <prop::sample::Index as crate::Arbitrary>::arbitrary(&mut rng);
            assert!(idx.index(13) < 13);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn harness_runs_and_rejects(x in 0u64..100, y in any::<u64>()) {
            prop_assume!(x != 50);
            prop_assert!(x < 100);
            prop_assert_ne!(x, 50);
            let _ = y;
        }
    }
}

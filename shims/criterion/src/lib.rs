//! Offline drop-in subset of `criterion`.
//!
//! The build container has no network access, so the workspace ships a
//! small wall-clock benchmarking harness exposing the criterion surface
//! its benches use: `Criterion::{bench_function, benchmark_group,
//! sample_size}`, `Bencher::iter`, `Throughput`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Each benchmark runs one warm-up iteration, then up to `sample_size`
//! timed iterations bounded by a per-benchmark time budget, and prints
//! mean / min / max to stderr.

use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value laundering.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation (recorded, displayed per element when set).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Per-iteration timer handed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    target_samples: usize,
    budget: Duration,
}

impl Bencher {
    /// Times `f`, one sample per call, until the sample target or the
    /// time budget is reached.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm-up, untimed
        let started = Instant::now();
        while self.samples.len() < self.target_samples {
            let t0 = Instant::now();
            black_box(f());
            self.samples.push(t0.elapsed());
            if started.elapsed() > self.budget {
                break;
            }
        }
    }
}

fn run_one(name: &str, sample_size: usize, throughput: Option<Throughput>, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples: Vec::new(),
        target_samples: sample_size.max(1),
        budget: Duration::from_secs(5),
    };
    f(&mut b);
    if b.samples.is_empty() {
        eprintln!("bench {name:<40} (no samples)");
        return;
    }
    let total: Duration = b.samples.iter().sum();
    let mean = total / b.samples.len() as u32;
    let min = b.samples.iter().min().expect("non-empty");
    let max = b.samples.iter().max().expect("non-empty");
    let rate = match throughput {
        Some(Throughput::Elements(n)) if mean.as_secs_f64() > 0.0 => {
            format!("  {:>12.0} elem/s", n as f64 / mean.as_secs_f64())
        }
        Some(Throughput::Bytes(n)) if mean.as_secs_f64() > 0.0 => {
            format!("  {:>12.0} B/s", n as f64 / mean.as_secs_f64())
        }
        _ => String::new(),
    };
    eprintln!(
        "bench {name:<40} mean {mean:>12?}  min {min:>12?}  max {max:>12?}  ({} samples){rate}",
        b.samples.len()
    );
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the per-benchmark sample target.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<S: AsRef<str>, F: FnMut(&mut Bencher)>(
        &mut self,
        name: S,
        mut f: F,
    ) -> &mut Self {
        run_one(name.as_ref(), self.sample_size, None, &mut f);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group<S: AsRef<str>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            prefix: name.as_ref().to_string(),
            sample_size: self.sample_size,
            throughput: None,
            _parent: self,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    prefix: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the group's sample target.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one named benchmark within the group.
    pub fn bench_function<S: AsRef<str>, F: FnMut(&mut Bencher)>(
        &mut self,
        name: S,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.prefix, name.as_ref());
        run_one(&full, self.sample_size, self.throughput, &mut f);
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Declares a benchmark group entry point.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            $(
                let mut c: $crate::Criterion = $config;
                $target(&mut c);
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(name = $name; config = $crate::Criterion::default(); targets = $($target),+);
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_times_a_closure() {
        let mut c = Criterion::default().sample_size(3);
        let mut ran = 0u32;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                ran += 1;
                black_box(ran)
            })
        });
        assert!(ran >= 3, "warm-up + samples ran");
    }

    #[test]
    fn groups_prefix_names() {
        let mut c = Criterion::default().sample_size(2);
        let mut group = c.benchmark_group("g");
        group.sample_size(2).throughput(Throughput::Elements(10));
        group.bench_function("inner", |b| b.iter(|| black_box(1 + 1)));
        group.finish();
    }
}

//! Offline drop-in subset of `rand` 0.8.
//!
//! The build container has no network access and no vendored registry, so
//! the workspace ships the few pieces of `rand` it actually uses,
//! re-implemented to be **bit-compatible with rand 0.8.5**:
//!
//! * [`rngs::SmallRng`] is xoshiro256++ with the same `seed_from_u64`
//!   (SplitMix64 expansion) and the same output functions;
//! * `Rng::gen::<f64>()` uses the 53-bit multiply method;
//! * `Rng::gen_range` reproduces rand's Lemire widening-multiply
//!   rejection for integers and the `[1, 2)`-mantissa method for floats.
//!
//! Bit-compatibility matters: every calibrated statistical assertion in
//! the workspace (failure-rate tables, detection probabilities) was tuned
//! against streams produced by the real crate.

/// Core RNG interface, mirroring `rand_core`.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible fill; the shim never fails.
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// RNG error type (never produced by this shim).
#[derive(Debug)]
pub struct Error;

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "rng error")
    }
}

impl std::error::Error for Error {}

/// Seedable RNG interface, mirroring `rand_core::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Seed byte array type.
    type Seed: Default + AsMut<[u8]>;

    /// Constructs the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed with SplitMix64 (the rand_core
    /// default implementation, byte-for-byte).
    fn seed_from_u64(mut state: u64) -> Self {
        const PHI: u64 = 0x9e37_79b9_7f4a_7c15;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(PHI);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            for (dst, src) in chunk.iter_mut().zip(z.to_le_bytes()) {
                *dst = src;
            }
        }
        Self::from_seed(seed)
    }
}

/// Types that `Rng::gen` can produce (the `Standard` distribution).
pub trait SampleStandard {
    /// Samples one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl SampleStandard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl SampleStandard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl SampleStandard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // rand 0.8.5 `Standard` for f64: 53-bit multiply method.
        let value = rng.next_u64() >> 11;
        value as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleStandard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let value = rng.next_u32() >> 8;
        value as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl SampleStandard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // rand 0.8.5: the highest bit of a u32.
        (rng.next_u32() >> 31) == 1
    }
}

/// Ranges accepted by `Rng::gen_range`.
pub trait SampleRange<T> {
    /// Samples one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range_impls {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for std::ops::Range<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                sample_inclusive_u64(self.start as u64, self.end as u64 - 1, rng) as $ty
            }
        }
        impl SampleRange<$ty> for std::ops::RangeInclusive<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start() <= self.end(), "cannot sample empty range");
                sample_inclusive_u64(*self.start() as u64, *self.end() as u64, rng) as $ty
            }
        }
    )*};
}

int_range_impls!(u8, u16, u32, u64, usize);

/// rand 0.8.5 `UniformInt::sample_single_inclusive` for u64-wide types:
/// Lemire's widening multiply with a bitmask-derived rejection zone.
fn sample_inclusive_u64<R: RngCore + ?Sized>(low: u64, high: u64, rng: &mut R) -> u64 {
    let range = high.wrapping_sub(low).wrapping_add(1);
    if range == 0 {
        return rng.next_u64();
    }
    let zone = (range << range.leading_zeros()).wrapping_sub(1);
    loop {
        let v = rng.next_u64();
        let wide = (v as u128).wrapping_mul(range as u128);
        let hi = (wide >> 64) as u64;
        let lo = wide as u64;
        if lo <= zone {
            return low.wrapping_add(hi);
        }
    }
}

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let scale = self.end - self.start;
        loop {
            // A value in [1, 2): exponent 0, random 52-bit mantissa
            // (rand 0.8.5 `UniformFloat::sample_single`).
            let fraction = rng.next_u64() >> 12;
            let value1_2 = f64::from_bits((1023u64 << 52) | fraction);
            let res = (value1_2 - 1.0) * scale + self.start;
            if res < self.end {
                return res;
            }
        }
    }
}

impl SampleRange<f32> for std::ops::Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let scale = self.end - self.start;
        loop {
            let fraction = rng.next_u32() >> 9;
            let value1_2 = f32::from_bits((127u32 << 23) | fraction);
            let res = (value1_2 - 1.0) * scale + self.start;
            if res < self.end {
                return res;
            }
        }
    }
}

/// User-facing RNG extension trait, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the standard distribution.
    fn gen<T: SampleStandard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// xoshiro256++, the 64-bit `SmallRng` of rand 0.8.5.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        /// Seeds from system entropy; the shim derives it from the clock
        /// (only the seeded constructors are used in this workspace).
        pub fn from_entropy() -> Self {
            let nanos = std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_nanos() as u64)
                .unwrap_or(0x5eed);
            Self::seed_from_u64(nanos)
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            if seed.iter().all(|&b| b == 0) {
                return Self::seed_from_u64(0);
            }
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(bytes);
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            // Upper bits: the low bits of xoshiro have weak linear
            // dependencies (matches rand 0.8.5).
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn xoshiro_reference_vector() {
        // First outputs of xoshiro256++ from the all-ones state
        // (reference implementation by Blackman & Vigna).
        let mut rng = SmallRng::from_seed({
            let mut seed = [0u8; 32];
            for chunk in seed.chunks_mut(8) {
                chunk.copy_from_slice(&1u64.to_le_bytes());
            }
            seed
        });
        // s = [1, 1, 1, 1]: result = rotl(1 + 1, 23) + 1 = (2 << 23) + 1.
        assert_eq!(rng.next_u64(), (2u64 << 23) + 1);
    }

    #[test]
    fn seed_from_u64_matches_rand_0_8() {
        // Golden value captured from rand 0.8.5's
        // SmallRng::seed_from_u64(42).next_u64() on x86_64.
        let mut rng = SmallRng::seed_from_u64(42);
        let first = rng.next_u64();
        // SplitMix64(42 + PHI…) expansion is deterministic; lock the
        // stream so regressions in the expansion are caught.
        assert_eq!(first, 15021278609987233951);
    }

    #[test]
    fn gen_f64_is_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_int_bounds() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..1000 {
            let x = rng.gen_range(10u64..20);
            assert!((10..20).contains(&x));
        }
    }

    #[test]
    fn gen_range_f64_bounds() {
        let mut rng = SmallRng::seed_from_u64(11);
        for _ in 0..1000 {
            let x = rng.gen_range(-3.0f64..5.0);
            assert!((-3.0..5.0).contains(&x));
        }
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = SmallRng::seed_from_u64(13);
        let mut buf = [0u8; 11];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}

//! Offline drop-in subset of `serde`.
//!
//! The build container has no network access, so the workspace ships a
//! minimal stand-in: the `Serialize` / `Deserialize` traits here target
//! JSON directly (there is exactly one data format in this repo), and
//! the re-exported derive macros from the local `serde_derive` shim are
//! deliberate no-ops so every `#[derive(Serialize, Deserialize)]` site
//! keeps compiling. Types whose JSON round-trip is actually exercised
//! implement the traits explicitly via the `impl_json_*` macros below,
//! which mirror serde's encoding conventions:
//!
//! - structs            -> `{"field":value,...}`
//! - newtype structs    -> the inner value
//! - unit enum variants -> `"Variant"`
//! - struct variants    -> `{"Variant":{"field":value,...}}` (externally tagged)

pub use serde_derive::{Deserialize, Serialize};

/// JSON-serializable value. The shim collapses serde's format-generic
/// `Serializer` plumbing into direct string building.
pub trait Serialize {
    /// Appends the JSON encoding of `self` to `out`.
    fn serialize_json(&self, out: &mut String);
}

/// JSON-deserializable value.
pub trait Deserialize: Sized {
    /// Parses a value from the parser's current position.
    fn deserialize_json(p: &mut json::Parser<'_>) -> Result<Self, json::Error>;
}

pub mod json {
    //! Hand-rolled JSON scanner shared by the trait impls.

    use std::fmt;

    /// Parse failure with a byte offset into the input.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct Error {
        msg: String,
        at: usize,
    }

    impl Error {
        /// Creates an error without position information.
        pub fn new(msg: impl Into<String>) -> Self {
            Error { msg: msg.into(), at: 0 }
        }
    }

    impl fmt::Display for Error {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "{} at byte {}", self.msg, self.at)
        }
    }

    impl std::error::Error for Error {}

    /// Cursor over a JSON document.
    pub struct Parser<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl<'a> Parser<'a> {
        /// Starts parsing at the beginning of `input`.
        pub fn new(input: &'a str) -> Self {
            Parser { bytes: input.as_bytes(), pos: 0 }
        }

        /// Builds an error at the current position.
        pub fn err(&self, msg: impl Into<String>) -> Error {
            Error { msg: msg.into(), at: self.pos }
        }

        fn skip_ws(&mut self) {
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                    self.pos += 1;
                } else {
                    break;
                }
            }
        }

        fn peek_byte(&mut self) -> Option<u8> {
            self.skip_ws();
            self.bytes.get(self.pos).copied()
        }

        /// True when the next non-whitespace byte equals `c`.
        pub fn peek_is(&mut self, c: char) -> bool {
            self.peek_byte() == Some(c as u8)
        }

        /// Consumes the punctuation byte `c` or fails.
        pub fn expect(&mut self, c: char) -> Result<(), Error> {
            if self.peek_byte() == Some(c as u8) {
                self.pos += 1;
                Ok(())
            } else {
                Err(self.err(format!("expected '{c}'")))
            }
        }

        /// Consumes a `,` if present; returns whether one was consumed.
        pub fn consume_comma(&mut self) -> Result<bool, Error> {
            if self.peek_byte() == Some(b',') {
                self.pos += 1;
                Ok(true)
            } else {
                Ok(false)
            }
        }

        /// Fails unless only whitespace remains.
        pub fn expect_end(&mut self) -> Result<(), Error> {
            self.skip_ws();
            if self.pos == self.bytes.len() {
                Ok(())
            } else {
                Err(self.err("trailing characters"))
            }
        }

        /// Parses a JSON string literal (handling escapes).
        pub fn parse_string(&mut self) -> Result<String, Error> {
            self.expect('"')?;
            let mut s = String::new();
            loop {
                let b = *self
                    .bytes
                    .get(self.pos)
                    .ok_or_else(|| self.err("unterminated string"))?;
                self.pos += 1;
                match b {
                    b'"' => return Ok(s),
                    b'\\' => {
                        let e = *self
                            .bytes
                            .get(self.pos)
                            .ok_or_else(|| self.err("unterminated escape"))?;
                        self.pos += 1;
                        match e {
                            b'"' => s.push('"'),
                            b'\\' => s.push('\\'),
                            b'/' => s.push('/'),
                            b'n' => s.push('\n'),
                            b't' => s.push('\t'),
                            b'r' => s.push('\r'),
                            b'b' => s.push('\u{8}'),
                            b'f' => s.push('\u{c}'),
                            b'u' => {
                                let hex = self
                                    .bytes
                                    .get(self.pos..self.pos + 4)
                                    .ok_or_else(|| self.err("truncated \\u escape"))?;
                                let hex = std::str::from_utf8(hex)
                                    .map_err(|_| self.err("bad \\u escape"))?;
                                let code = u32::from_str_radix(hex, 16)
                                    .map_err(|_| self.err("bad \\u escape"))?;
                                self.pos += 4;
                                s.push(
                                    char::from_u32(code)
                                        .ok_or_else(|| self.err("bad \\u code point"))?,
                                );
                            }
                            _ => return Err(self.err("unknown escape")),
                        }
                    }
                    _ => {
                        // Multi-byte UTF-8 sequences pass through verbatim.
                        let start = self.pos - 1;
                        let len = utf8_len(b).ok_or_else(|| self.err("invalid utf-8"))?;
                        let chunk = self
                            .bytes
                            .get(start..start + len)
                            .ok_or_else(|| self.err("truncated utf-8"))?;
                        s.push_str(
                            std::str::from_utf8(chunk).map_err(|_| self.err("invalid utf-8"))?,
                        );
                        self.pos = start + len;
                    }
                }
            }
        }

        /// Scans the raw text of a JSON number token.
        fn number_token(&mut self) -> Result<&'a str, Error> {
            self.skip_ws();
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                    self.pos += 1;
                } else {
                    break;
                }
            }
            if start == self.pos {
                return Err(self.err("expected number"));
            }
            std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| self.err("bad number"))
        }

        /// Parses an unsigned integer.
        pub fn parse_u128(&mut self) -> Result<u128, Error> {
            let tok = self.number_token()?;
            tok.parse().map_err(|_| self.err(format!("bad integer '{tok}'")))
        }

        /// Parses a signed integer.
        pub fn parse_i128(&mut self) -> Result<i128, Error> {
            let tok = self.number_token()?;
            tok.parse().map_err(|_| self.err(format!("bad integer '{tok}'")))
        }

        /// Parses a floating point number.
        pub fn parse_f64(&mut self) -> Result<f64, Error> {
            let tok = self.number_token()?;
            tok.parse().map_err(|_| self.err(format!("bad float '{tok}'")))
        }

        /// Parses `true` / `false`.
        pub fn parse_bool(&mut self) -> Result<bool, Error> {
            self.skip_ws();
            if self.bytes[self.pos..].starts_with(b"true") {
                self.pos += 4;
                Ok(true)
            } else if self.bytes[self.pos..].starts_with(b"false") {
                self.pos += 5;
                Ok(false)
            } else {
                Err(self.err("expected bool"))
            }
        }

        /// Parses `null`; returns whether it was present.
        pub fn consume_null(&mut self) -> bool {
            self.skip_ws();
            if self.bytes[self.pos..].starts_with(b"null") {
                self.pos += 4;
                true
            } else {
                false
            }
        }
    }

    fn utf8_len(first: u8) -> Option<usize> {
        match first {
            0x00..=0x7f => Some(1),
            0xc0..=0xdf => Some(2),
            0xe0..=0xef => Some(3),
            0xf0..=0xf7 => Some(4),
            _ => None,
        }
    }

    /// Appends `s` as a JSON string literal to `out`.
    pub fn write_escaped(s: &str, out: &mut String) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\t' => out.push_str("\\t"),
                '\r' => out.push_str("\\r"),
                c if (c as u32) < 0x20 => {
                    out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => out.push(c),
            }
        }
        out.push('"');
    }
}

macro_rules! impl_json_int {
    ($($ty:ty),+) => {
        $(
            impl Serialize for $ty {
                fn serialize_json(&self, out: &mut String) {
                    out.push_str(&self.to_string());
                }
            }
            impl Deserialize for $ty {
                fn deserialize_json(p: &mut json::Parser<'_>) -> Result<Self, json::Error> {
                    let v = p.parse_i128()?;
                    <$ty>::try_from(v).map_err(|_| p.err("integer out of range"))
                }
            }
        )+
    };
}

impl_json_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, i128);

impl Serialize for u128 {
    fn serialize_json(&self, out: &mut String) {
        out.push_str(&self.to_string());
    }
}

impl Deserialize for u128 {
    fn deserialize_json(p: &mut json::Parser<'_>) -> Result<Self, json::Error> {
        p.parse_u128()
    }
}

impl Serialize for f64 {
    fn serialize_json(&self, out: &mut String) {
        // `{:?}` emits the shortest representation that round-trips.
        if self.is_finite() {
            out.push_str(&format!("{self:?}"));
        } else {
            out.push_str("null");
        }
    }
}

impl Deserialize for f64 {
    fn deserialize_json(p: &mut json::Parser<'_>) -> Result<Self, json::Error> {
        if p.consume_null() {
            return Ok(f64::NAN);
        }
        p.parse_f64()
    }
}

impl Serialize for f32 {
    fn serialize_json(&self, out: &mut String) {
        if self.is_finite() {
            out.push_str(&format!("{self:?}"));
        } else {
            out.push_str("null");
        }
    }
}

impl Deserialize for f32 {
    fn deserialize_json(p: &mut json::Parser<'_>) -> Result<Self, json::Error> {
        if p.consume_null() {
            return Ok(f32::NAN);
        }
        Ok(p.parse_f64()? as f32)
    }
}

impl Serialize for bool {
    fn serialize_json(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

impl Deserialize for bool {
    fn deserialize_json(p: &mut json::Parser<'_>) -> Result<Self, json::Error> {
        p.parse_bool()
    }
}

impl Serialize for String {
    fn serialize_json(&self, out: &mut String) {
        json::write_escaped(self, out);
    }
}

impl Deserialize for String {
    fn deserialize_json(p: &mut json::Parser<'_>) -> Result<Self, json::Error> {
        p.parse_string()
    }
}

impl Serialize for str {
    fn serialize_json(&self, out: &mut String) {
        json::write_escaped(self, out);
    }
}

impl<T: Serialize> Serialize for &T {
    fn serialize_json(&self, out: &mut String) {
        (**self).serialize_json(out);
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_json(&self, out: &mut String) {
        self.as_slice().serialize_json(out);
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_json(&self, out: &mut String) {
        out.push('[');
        for (i, item) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            item.serialize_json(out);
        }
        out.push(']');
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_json(p: &mut json::Parser<'_>) -> Result<Self, json::Error> {
        p.expect('[')?;
        let mut v = Vec::new();
        if !p.peek_is(']') {
            loop {
                v.push(T::deserialize_json(p)?);
                if !p.consume_comma()? {
                    break;
                }
            }
        }
        p.expect(']')?;
        Ok(v)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_json(&self, out: &mut String) {
        match self {
            Some(v) => v.serialize_json(out),
            None => out.push_str("null"),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_json(p: &mut json::Parser<'_>) -> Result<Self, json::Error> {
        if p.consume_null() {
            Ok(None)
        } else {
            Ok(Some(T::deserialize_json(p)?))
        }
    }
}

/// Implements `Serialize`/`Deserialize` for a plain struct as a JSON
/// object with one member per listed field. Invoke from a scope with
/// access to the fields (the defining module works for private ones).
#[macro_export]
macro_rules! impl_json_struct {
    ($ty:ident { $($field:ident),+ $(,)? }) => {
        impl $crate::Serialize for $ty {
            fn serialize_json(&self, out: &mut String) {
                out.push('{');
                let mut first = true;
                $(
                    if !first { out.push(','); }
                    first = false;
                    let _ = first;
                    out.push('"');
                    out.push_str(stringify!($field));
                    out.push_str("\":");
                    $crate::Serialize::serialize_json(&self.$field, out);
                )+
                out.push('}');
            }
        }
        impl $crate::Deserialize for $ty {
            fn deserialize_json(
                p: &mut $crate::json::Parser<'_>,
            ) -> Result<Self, $crate::json::Error> {
                $(let mut $field = None;)+
                p.expect('{')?;
                if !p.peek_is('}') {
                    loop {
                        let key = p.parse_string()?;
                        p.expect(':')?;
                        match key.as_str() {
                            $(stringify!($field) => {
                                $field = Some($crate::Deserialize::deserialize_json(p)?);
                            })+
                            other => return Err(p.err(format!("unknown field '{other}'"))),
                        }
                        if !p.consume_comma()? { break; }
                    }
                }
                p.expect('}')?;
                Ok($ty {
                    $($field: $field.ok_or_else(|| {
                        $crate::json::Error::new(concat!(
                            "missing field '", stringify!($field), "'"
                        ))
                    })?,)+
                })
            }
        }
    };
}

/// Implements the traits for a single-field tuple struct, encoded as
/// the inner value (serde's newtype convention).
#[macro_export]
macro_rules! impl_json_newtype {
    ($ty:ident($inner:ty)) => {
        impl $crate::Serialize for $ty {
            fn serialize_json(&self, out: &mut String) {
                $crate::Serialize::serialize_json(&self.0, out);
            }
        }
        impl $crate::Deserialize for $ty {
            fn deserialize_json(
                p: &mut $crate::json::Parser<'_>,
            ) -> Result<Self, $crate::json::Error> {
                Ok($ty(<$inner as $crate::Deserialize>::deserialize_json(p)?))
            }
        }
    };
}

/// Implements the traits for a field-less enum, encoded as the variant
/// name string.
#[macro_export]
macro_rules! impl_json_unit_enum {
    ($ty:ident { $($var:ident),+ $(,)? }) => {
        impl $crate::Serialize for $ty {
            fn serialize_json(&self, out: &mut String) {
                let name = match self {
                    $($ty::$var => stringify!($var),)+
                };
                $crate::json::write_escaped(name, out);
            }
        }
        impl $crate::Deserialize for $ty {
            fn deserialize_json(
                p: &mut $crate::json::Parser<'_>,
            ) -> Result<Self, $crate::json::Error> {
                let name = p.parse_string()?;
                match name.as_str() {
                    $(stringify!($var) => Ok($ty::$var),)+
                    other => Err(p.err(format!("unknown variant '{other}'"))),
                }
            }
        }
    };
}

/// Implements the traits for an enum whose variants all carry named
/// fields, using serde's externally tagged form:
/// `{"Variant":{"field":value,...}}`.
#[macro_export]
macro_rules! impl_json_enum_struct {
    ($ty:ident { $($var:ident { $($field:ident),* $(,)? }),+ $(,)? }) => {
        impl $crate::Serialize for $ty {
            fn serialize_json(&self, out: &mut String) {
                match self {
                    $($ty::$var { $($field),* } => {
                        out.push_str("{\"");
                        out.push_str(stringify!($var));
                        out.push_str("\":{");
                        let mut first = true;
                        $(
                            if !first { out.push(','); }
                            first = false;
                            let _ = first;
                            out.push('"');
                            out.push_str(stringify!($field));
                            out.push_str("\":");
                            $crate::Serialize::serialize_json($field, out);
                        )*
                        out.push_str("}}");
                    })+
                }
            }
        }
        impl $crate::Deserialize for $ty {
            fn deserialize_json(
                p: &mut $crate::json::Parser<'_>,
            ) -> Result<Self, $crate::json::Error> {
                p.expect('{')?;
                let tag = p.parse_string()?;
                p.expect(':')?;
                let value = match tag.as_str() {
                    $(stringify!($var) => {
                        $(let mut $field = None;)*
                        p.expect('{')?;
                        if !p.peek_is('}') {
                            loop {
                                let key = p.parse_string()?;
                                p.expect(':')?;
                                match key.as_str() {
                                    $(stringify!($field) => {
                                        $field = Some(
                                            $crate::Deserialize::deserialize_json(p)?,
                                        );
                                    })*
                                    other => {
                                        return Err(p.err(format!(
                                            "unknown field '{other}'"
                                        )));
                                    }
                                }
                                if !p.consume_comma()? { break; }
                            }
                        }
                        p.expect('}')?;
                        $ty::$var {
                            $($field: $field.ok_or_else(|| {
                                $crate::json::Error::new(concat!(
                                    "missing field '", stringify!($field), "'"
                                ))
                            })?,)*
                        }
                    })+
                    other => return Err(p.err(format!("unknown variant '{other}'"))),
                };
                p.expect('}')?;
                Ok(value)
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    struct Point {
        x: u32,
        y: f64,
    }

    impl_json_struct!(Point { x, y });

    #[derive(Debug, PartialEq)]
    struct Wrapper(u64);

    impl_json_newtype!(Wrapper(u64));

    #[derive(Debug, PartialEq)]
    enum Color {
        Red,
        Green,
    }

    impl_json_unit_enum!(Color { Red, Green });

    #[derive(Debug, PartialEq)]
    enum Shape {
        Circle { r: f64 },
        Rect { w: u32, h: u32 },
    }

    impl_json_enum_struct!(Shape {
        Circle { r },
        Rect { w, h },
    });

    fn to_string<T: Serialize>(v: &T) -> String {
        let mut s = String::new();
        v.serialize_json(&mut s);
        s
    }

    fn from_str<T: Deserialize>(s: &str) -> T {
        let mut p = json::Parser::new(s);
        let v = T::deserialize_json(&mut p).expect("parse");
        p.expect_end().expect("end");
        v
    }

    #[test]
    fn struct_round_trip() {
        let p = Point { x: 7, y: -0.125 };
        let s = to_string(&p);
        assert_eq!(s, r#"{"x":7,"y":-0.125}"#);
        assert_eq!(from_str::<Point>(&s), p);
    }

    #[test]
    fn newtype_is_transparent() {
        let w = Wrapper(99);
        assert_eq!(to_string(&w), "99");
        assert_eq!(from_str::<Wrapper>("99"), w);
    }

    #[test]
    fn unit_enum_is_a_string() {
        assert_eq!(to_string(&Color::Green), r#""Green""#);
        assert_eq!(from_str::<Color>(r#""Red""#), Color::Red);
    }

    #[test]
    fn struct_variant_is_externally_tagged() {
        let s = Shape::Rect { w: 2, h: 3 };
        let text = to_string(&s);
        assert_eq!(text, r#"{"Rect":{"w":2,"h":3}}"#);
        assert_eq!(from_str::<Shape>(&text), s);
        let c = Shape::Circle { r: 1.5 };
        assert_eq!(from_str::<Shape>(&to_string(&c)), c);
    }

    #[test]
    fn f64_round_trips_shortest_form() {
        for v in [0.0, 1.0, 3.799e9, f64::MIN_POSITIVE, 1.0 / 3.0] {
            let s = to_string(&v);
            assert_eq!(from_str::<f64>(&s), v, "via {s}");
        }
    }

    #[test]
    fn vec_and_option() {
        let v = vec![1u32, 2, 3];
        assert_eq!(to_string(&v), "[1,2,3]");
        assert_eq!(from_str::<Vec<u32>>("[1, 2, 3]"), v);
        assert_eq!(to_string(&Option::<u32>::None), "null");
        assert_eq!(from_str::<Option<u32>>("null"), None);
        assert_eq!(from_str::<Option<u32>>("5"), Some(5));
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "a\"b\\c\nd\u{1f600}".to_string();
        assert_eq!(from_str::<String>(&to_string(&s)), s);
    }

    #[test]
    fn u128_full_width() {
        let v = u128::MAX;
        assert_eq!(from_str::<u128>(&to_string(&v)), v);
    }
}

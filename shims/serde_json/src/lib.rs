//! Offline drop-in subset of `serde_json`: `to_string`, `to_string_pretty`
//! (alias of `to_string` — compact output is valid pretty output for the
//! consumers here), and `from_str`, delegating to the serde shim's
//! JSON-native traits.

pub use serde::json::Error;

/// Serializes `value` to a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.serialize_json(&mut out);
    Ok(out)
}

/// Serializes `value` to JSON. The shim emits the compact form.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    to_string(value)
}

/// Parses a `T` from a JSON document.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = serde::json::Parser::new(s);
    let value = T::deserialize_json(&mut p)?;
    p.expect_end()?;
    Ok(value)
}

#[cfg(test)]
mod tests {
    #[test]
    fn round_trip_via_public_api() {
        let v = vec![1u64, 2, 3];
        let s = super::to_string(&v).unwrap();
        assert_eq!(s, "[1,2,3]");
        let back: Vec<u64> = super::from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(super::from_str::<u64>("1 x").is_err());
    }
}

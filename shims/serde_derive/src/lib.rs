//! No-op `Serialize` / `Deserialize` derive macros.
//!
//! The offline `serde` shim keeps `#[derive(Serialize, Deserialize)]`
//! sites compiling without generating any code; types whose JSON
//! round-trip actually matters implement the shim traits explicitly via
//! the `serde::impl_json_*` macros.

use proc_macro::TokenStream;

/// Expands to nothing; see the crate docs.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; see the crate docs.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

//! Property-based tests for the thermal model.

use proptest::prelude::*;
use sdc_model::Duration;
use thermal::{ThermalConfig, ThermalModel};

fn model(cores: usize) -> ThermalModel {
    ThermalModel::new(cores, ThermalConfig::default())
}

proptest! {
    #[test]
    fn temperatures_stay_in_physical_range(
        cores in 1usize..32,
        powers in prop::collection::vec(0f64..2.0, 1..32),
        steps in 1usize..100,
    ) {
        let mut m = model(cores);
        for (c, &p) in powers.iter().take(cores).enumerate() {
            m.set_power(c, p);
        }
        for _ in 0..steps {
            m.advance(Duration::from_secs(1));
            for c in 0..cores {
                let t = m.temp(c);
                prop_assert!(t >= m.config().idle_temp_c - 1e-9, "below idle: {t}");
                prop_assert!(t <= m.config().max_temp_c + 1e-9, "above max: {t}");
            }
        }
    }

    #[test]
    fn hotter_power_means_hotter_steady_state(
        p1 in 0f64..1.0,
        extra in 0.01f64..1.0,
    ) {
        let mut a = model(2);
        let mut b = model(2);
        a.set_power(0, p1);
        b.set_power(0, p1 + extra);
        for _ in 0..300 {
            a.advance(Duration::from_secs(1));
            b.advance(Duration::from_secs(1));
        }
        prop_assert!(b.temp(0) > a.temp(0));
    }

    #[test]
    fn step_composition_is_exact(
        power in 0f64..1.5,
        total_secs in 2u64..120,
    ) {
        // advance(t) == advance(t/2); advance(t/2) for even t.
        let half = total_secs / 2;
        let total = half * 2;
        let mut a = model(1);
        let mut b = model(1);
        a.set_power(0, power);
        b.set_power(0, power);
        a.advance(Duration::from_secs(total));
        b.advance(Duration::from_secs(half));
        b.advance(Duration::from_secs(half));
        prop_assert!((a.temp(0) - b.temp(0)).abs() < 1e-9);
    }

    #[test]
    fn neighbours_never_cool_a_core(
        own in 0f64..1.0,
        neighbour in 0f64..1.5,
    ) {
        let mut alone = model(4);
        let mut crowded = model(4);
        alone.set_power(0, own);
        crowded.set_power(0, own);
        for c in 1..4 {
            crowded.set_power(c, neighbour);
        }
        for _ in 0..300 {
            alone.advance(Duration::from_secs(1));
            crowded.advance(Duration::from_secs(1));
        }
        prop_assert!(crowded.temp(0) >= alone.temp(0) - 1e-9);
    }

    #[test]
    fn preheat_then_cool_returns_to_idle(target in 46f64..99.0) {
        let mut m = model(2);
        m.preheat(target);
        prop_assert!((m.temp(0) - target).abs() < 1e-9);
        for _ in 0..1200 {
            m.advance(Duration::from_secs(1));
        }
        prop_assert!((m.temp(0) - m.config().idle_temp_c).abs() < 0.01);
    }

    #[test]
    fn cooling_factor_reduces_targets(power in 0.1f64..1.5, factor in 0.1f64..0.99) {
        let mut m = model(1);
        m.set_power(0, power);
        let nominal = m.target_temp(0);
        m.set_cooling_factor(factor);
        let boosted = m.target_temp(0);
        prop_assert!(boosted <= nominal);
        prop_assert!(boosted >= m.config().idle_temp_c - 1e-9);
    }
}

//! Lumped-RC thermal simulation of a multi-core package.
//!
//! Observation 10 of the paper hinges on temperature phenomenology:
//!
//! * SDC occurrence frequency grows **exponentially** with core
//!   temperature, and some SDCs have a **minimum triggering temperature**
//!   well above idle (e.g. testcase C on MIX1 only fails above 59 ℃
//!   against a ~45 ℃ idle);
//! * a defective core fails more when **other cores are busy**, because
//!   the cores "share cooling devices";
//! * **remaining heat** from a previous stressful testcase changes the
//!   outcome of the next one (test-order effects);
//! * stress tools can **preheat** a processor to a target temperature.
//!
//! This crate reproduces all four with a first-order (lumped RC) model:
//! each core's temperature relaxes toward a target set by its own power,
//! the power of the other cores through the shared heatsink, and the
//! ambient/idle baseline. The model is deliberately simple — the paper's
//! analyses need the *shape* of the thermal response, not board-level
//! fidelity.

use sdc_model::Duration;
use serde::{Deserialize, Serialize};

/// Static parameters of the package thermal model.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ThermalConfig {
    /// Core temperature at idle (the paper quotes ~45 ℃ idle for MIX1).
    pub idle_temp_c: f64,
    /// Temperature rise per unit of the core's own power (℃ / power unit).
    pub r_self: f64,
    /// Temperature rise per unit of *another* core's power, through the
    /// shared heatsink (℃ / power unit).
    pub r_share: f64,
    /// First-order time constant of the package (seconds).
    pub tau_secs: f64,
    /// Maximum junction temperature; targets clamp here (thermal limit).
    pub max_temp_c: f64,
}

impl Default for ThermalConfig {
    fn default() -> Self {
        // Power is measured in average energy-per-cycle units from the
        // softcore model (~0.2 idle … ~1.5 for heavy vector/microcode
        // loads), so r_self = 25 maps a fully stressed core to ≈ +30 ℃
        // over idle and r_share spreads a further ≈ +1 ℃ per busy
        // neighbour at full load.
        ThermalConfig {
            idle_temp_c: 45.0,
            r_self: 25.0,
            r_share: 0.8,
            tau_secs: 15.0,
            max_temp_c: 100.0,
        }
    }
}

/// Dynamic thermal state of a package.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ThermalModel {
    cfg: ThermalConfig,
    temps: Vec<f64>,
    powers: Vec<f64>,
    /// Multiplier on both R values; a value below 1.0 models boosted
    /// cooling devices (the ACPI-style control the paper mentions).
    cooling_factor: f64,
}

impl ThermalModel {
    /// A package of `cores` cores at idle temperature.
    ///
    /// # Panics
    ///
    /// Panics if `cores == 0`.
    pub fn new(cores: usize, cfg: ThermalConfig) -> Self {
        assert!(cores > 0, "need at least one core");
        // Heatsink capacity scales with package size: normalize the
        // shared-path resistance so a fully loaded package adds the same
        // total neighbour heating regardless of core count (calibrated at
        // a 16-core package).
        let mut cfg = cfg;
        cfg.r_share *= 16.0 / cores as f64;
        ThermalModel {
            cfg,
            temps: vec![cfg.idle_temp_c; cores],
            powers: vec![0.0; cores],
            cooling_factor: 1.0,
        }
    }

    /// Number of cores.
    pub fn cores(&self) -> usize {
        self.temps.len()
    }

    /// The configuration in use.
    pub fn config(&self) -> &ThermalConfig {
        &self.cfg
    }

    /// Current temperature of `core` in ℃.
    pub fn temp(&self, core: usize) -> f64 {
        self.temps[core]
    }

    /// Hottest core temperature in the package.
    pub fn max_temp(&self) -> f64 {
        self.temps.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// Sets the instantaneous power draw of `core` (average energy per
    /// cycle from the softcore run, scaled by utilization).
    pub fn set_power(&mut self, core: usize, power: f64) {
        assert!(power >= 0.0 && power.is_finite(), "invalid power {power}");
        self.powers[core] = power;
    }

    /// Sets every core's power at once.
    pub fn set_all_powers(&mut self, power: f64) {
        for c in 0..self.powers.len() {
            self.set_power(c, power);
        }
    }

    /// Current power draw of `core`.
    pub fn power(&self, core: usize) -> f64 {
        self.powers[core]
    }

    /// Adjusts the cooling devices: `factor < 1` cools harder (reduces
    /// both R values), `factor = 1` is nominal.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < factor ≤ 1`.
    pub fn set_cooling_factor(&mut self, factor: f64) {
        assert!(
            factor > 0.0 && factor <= 1.0,
            "cooling factor {factor} out of (0, 1]"
        );
        self.cooling_factor = factor;
    }

    /// The steady-state temperature `core` would reach if powers stayed
    /// fixed.
    pub fn target_temp(&self, core: usize) -> f64 {
        let own = self.cfg.r_self * self.powers[core];
        let others: f64 = self
            .powers
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != core)
            .map(|(_, &p)| p)
            .sum::<f64>()
            * self.cfg.r_share;
        (self.cfg.idle_temp_c + self.cooling_factor * (own + others)).min(self.cfg.max_temp_c)
    }

    /// The relaxation fraction for one step of `dt`: a temperature moves
    /// `alpha` of the way toward its target per [`Self::advance`] call.
    ///
    /// Exposed so callers integrating trajectories outside the model
    /// (the executor's thermal trajectory cache) use the *same* `alpha`
    /// arithmetic and stay bit-identical with `advance`.
    pub fn step_alpha(&self, dt: Duration) -> f64 {
        1.0 - (-dt.as_secs_f64() / self.cfg.tau_secs).exp()
    }

    /// All per-core temperatures, indexed by core.
    pub fn temps(&self) -> &[f64] {
        &self.temps
    }

    /// Overwrites every core temperature — the write-back half of an
    /// externally integrated trajectory (see [`Self::step_alpha`]).
    ///
    /// # Panics
    ///
    /// Panics if `temps.len()` differs from the core count or any value
    /// is non-finite.
    pub fn set_temps(&mut self, temps: &[f64]) {
        assert_eq!(temps.len(), self.temps.len(), "core count mismatch");
        assert!(temps.iter().all(|t| t.is_finite()), "non-finite temp");
        self.temps.copy_from_slice(temps);
    }

    /// Advances the model by `dt`: each core relaxes exponentially toward
    /// its target with time constant `tau_secs`.
    pub fn advance(&mut self, dt: Duration) {
        let alpha = self.step_alpha(dt);
        for core in 0..self.temps.len() {
            let target = self.target_temp(core);
            self.temps[core] += (target - self.temps[core]) * alpha;
        }
    }

    /// Forces every core to `temp_c` immediately — the "stress toolchain
    /// preheat" of §5 ("we use stress toolchains (e.g., Linux 'stress' cmd
    /// tool) to preheat the processor to the desired temperature").
    pub fn preheat(&mut self, temp_c: f64) {
        assert!(temp_c.is_finite(), "invalid preheat target");
        let t = temp_c.min(self.cfg.max_temp_c);
        for temp in &mut self.temps {
            *temp = t;
        }
    }

    /// Resets to idle: zero power, idle temperature, nominal cooling.
    pub fn reset(&mut self) {
        for p in &mut self.powers {
            *p = 0.0;
        }
        for t in &mut self.temps {
            *t = self.cfg.idle_temp_c;
        }
        self.cooling_factor = 1.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(cores: usize) -> ThermalModel {
        ThermalModel::new(cores, ThermalConfig::default())
    }

    /// Advance long enough to be effectively at steady state.
    fn settle(m: &mut ThermalModel) {
        for _ in 0..600 {
            m.advance(Duration::from_secs(1));
        }
    }

    #[test]
    fn starts_at_idle() {
        let m = model(4);
        for c in 0..4 {
            assert_eq!(m.temp(c), 45.0);
        }
    }

    #[test]
    fn converges_to_target_under_load() {
        let mut m = model(1);
        m.set_power(0, 1.0);
        settle(&mut m);
        assert!(
            (m.temp(0) - 70.0).abs() < 0.1,
            "45 + 25·1 = 70, got {}",
            m.temp(0)
        );
    }

    #[test]
    fn relaxation_is_monotone_and_bounded() {
        let mut m = model(1);
        m.set_power(0, 1.2);
        let mut prev = m.temp(0);
        for _ in 0..100 {
            m.advance(Duration::from_secs(1));
            let t = m.temp(0);
            assert!(t >= prev, "heating is monotone");
            assert!(t <= m.target_temp(0) + 1e-9);
            prev = t;
        }
    }

    #[test]
    fn busy_neighbours_heat_an_idle_core() {
        let mut m = model(16);
        // Core 0 idle, all others busy — the paper's surprising case where
        // a defective core only fails when other cores are busy.
        for c in 1..16 {
            m.set_power(c, 1.2);
        }
        settle(&mut m);
        let idle_with_neighbours = m.temp(0);
        assert!(
            idle_with_neighbours > 45.0 + 10.0,
            "15 busy neighbours × 1.2 × 0.8 ≈ +14.4 ℃, got {idle_with_neighbours}"
        );
        assert!(
            idle_with_neighbours < m.temp(1),
            "busy cores are hotter still"
        );
    }

    #[test]
    fn remaining_heat_decays_after_stress() {
        let mut m = model(2);
        m.set_all_powers(1.4);
        settle(&mut m);
        let hot = m.temp(0);
        m.set_all_powers(0.0);
        m.advance(Duration::from_secs(5));
        let warm = m.temp(0);
        assert!(warm < hot, "cooling after stress");
        assert!(
            warm > 45.0 + 5.0,
            "remaining heat persists for a while: {warm}"
        );
        settle(&mut m);
        assert!((m.temp(0) - 45.0).abs() < 0.1, "eventually back to idle");
    }

    #[test]
    fn preheat_jumps_to_target() {
        let mut m = model(4);
        m.preheat(62.0);
        for c in 0..4 {
            assert_eq!(m.temp(c), 62.0);
        }
    }

    #[test]
    fn preheat_clamps_to_max() {
        let mut m = model(1);
        m.preheat(150.0);
        assert_eq!(m.temp(0), 100.0);
    }

    #[test]
    fn target_clamps_to_max() {
        let mut m = model(1);
        m.set_power(0, 100.0);
        assert_eq!(m.target_temp(0), 100.0);
        settle(&mut m);
        assert!(m.temp(0) <= 100.0 + 1e-9);
    }

    #[test]
    fn cooling_boost_lowers_target() {
        let mut m = model(1);
        m.set_power(0, 1.0);
        let nominal = m.target_temp(0);
        m.set_cooling_factor(0.5);
        let boosted = m.target_temp(0);
        assert!(boosted < nominal);
        assert!((boosted - 57.5).abs() < 1e-9, "45 + 0.5·25 = 57.5");
    }

    #[test]
    fn reset_restores_idle() {
        let mut m = model(2);
        m.set_all_powers(1.0);
        settle(&mut m);
        m.reset();
        assert_eq!(m.temp(0), 45.0);
        assert_eq!(m.power(1), 0.0);
    }

    #[test]
    #[should_panic(expected = "invalid power")]
    fn rejects_negative_power() {
        let mut m = model(1);
        m.set_power(0, -1.0);
    }

    #[test]
    #[should_panic(expected = "cooling factor")]
    fn rejects_bad_cooling_factor() {
        let mut m = model(1);
        m.set_cooling_factor(0.0);
    }

    #[test]
    fn external_integration_matches_advance_bitwise() {
        // Integrating with step_alpha/target_temp outside the model and
        // writing back with set_temps must reproduce advance exactly —
        // the contract the executor's trajectory cache relies on.
        let mut a = model(3);
        let mut b = model(3);
        for m in [&mut a, &mut b] {
            m.set_power(0, 1.3);
            m.set_power(2, 0.4);
        }
        let dt = Duration::from_secs(1);
        let alpha = b.step_alpha(dt);
        let targets: Vec<f64> = (0..3).map(|c| b.target_temp(c)).collect();
        let mut temps = b.temps().to_vec();
        for _ in 0..50 {
            a.advance(dt);
            for (t, &target) in temps.iter_mut().zip(&targets) {
                *t += (target - *t) * alpha;
            }
        }
        b.set_temps(&temps);
        for c in 0..3 {
            assert_eq!(a.temp(c).to_bits(), b.temp(c).to_bits(), "core {c}");
        }
    }

    #[test]
    #[should_panic(expected = "core count mismatch")]
    fn set_temps_rejects_wrong_length() {
        let mut m = model(2);
        m.set_temps(&[50.0]);
    }

    #[test]
    fn advance_is_time_step_consistent() {
        // Two half-steps land where one full step lands (exponential decay
        // composes exactly).
        let mut a = model(1);
        let mut b = model(1);
        a.set_power(0, 1.0);
        b.set_power(0, 1.0);
        a.advance(Duration::from_secs(10));
        b.advance(Duration::from_secs(5));
        b.advance(Duration::from_secs(5));
        assert!((a.temp(0) - b.temp(0)).abs() < 1e-9);
    }
}

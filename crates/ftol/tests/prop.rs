//! Property-based tests for the fault-tolerance codes.

use ftol::{crc, ecc, gf256, hashing, rs};
use proptest::prelude::*;

proptest! {
    #[test]
    fn crc32_detects_any_single_flip(data in prop::collection::vec(any::<u8>(), 1..64),
                                     byte_idx in any::<prop::sample::Index>(),
                                     bit in 0u8..8) {
        let reference = crc::crc32(&data);
        let mut corrupted = data.clone();
        let i = byte_idx.index(corrupted.len());
        corrupted[i] ^= 1 << bit;
        prop_assert_ne!(crc::crc32(&corrupted), reference);
    }

    #[test]
    fn crc64_detects_any_single_flip(data in prop::collection::vec(any::<u8>(), 1..64),
                                     byte_idx in any::<prop::sample::Index>(),
                                     bit in 0u8..8) {
        let reference = crc::crc64(&data);
        let mut corrupted = data.clone();
        let i = byte_idx.index(corrupted.len());
        corrupted[i] ^= 1 << bit;
        prop_assert_ne!(crc::crc64(&corrupted), reference);
    }

    #[test]
    fn hashes_are_deterministic(data in prop::collection::vec(any::<u8>(), 0..64)) {
        prop_assert_eq!(hashing::fnv1a64(&data), hashing::fnv1a64(&data));
        prop_assert_eq!(hashing::xx_like64(&data), hashing::xx_like64(&data));
    }

    #[test]
    fn gf256_field_axioms(a in any::<u8>(), b in any::<u8>(), c in any::<u8>()) {
        // Commutativity and associativity of multiplication.
        prop_assert_eq!(gf256::mul(a, b), gf256::mul(b, a));
        prop_assert_eq!(gf256::mul(gf256::mul(a, b), c), gf256::mul(a, gf256::mul(b, c)));
        // Distributivity over XOR addition.
        prop_assert_eq!(
            gf256::mul(a, gf256::add(b, c)),
            gf256::add(gf256::mul(a, b), gf256::mul(a, c))
        );
        // Identities.
        prop_assert_eq!(gf256::mul(a, 1), a);
        prop_assert_eq!(gf256::mul(a, 0), 0);
        if b != 0 {
            prop_assert_eq!(gf256::div(gf256::mul(a, b), b), a);
        }
    }

    #[test]
    fn ecc_corrects_every_single_flip(data in any::<u64>(), bit in 0u32..72) {
        let cw = ecc::encode(data);
        let corrupted = if bit < 64 {
            ecc::Codeword { data: cw.data ^ (1u64 << bit), check: cw.check }
        } else {
            ecc::Codeword { data: cw.data, check: cw.check ^ (1u8 << (bit - 64)) }
        };
        prop_assert_eq!(ecc::decode(corrupted), ecc::Decoded::Corrected(data));
    }

    #[test]
    fn ecc_flags_every_double_data_flip(data in any::<u64>(), a in 0u32..64, b in 0u32..64) {
        prop_assume!(a != b);
        let cw = ecc::encode(data);
        let corrupted =
            ecc::Codeword { data: cw.data ^ (1 << a) ^ (1 << b), check: cw.check };
        prop_assert_eq!(ecc::decode(corrupted), ecc::Decoded::DoubleError);
    }

    #[test]
    fn rs_recovers_any_two_erasures(
        seed in any::<u64>(),
        len in 1usize..64,
        a in 0usize..6,
        b in 0usize..6,
    ) {
        prop_assume!(a != b);
        let codec = rs::ReedSolomon::new(4, 2);
        let data: Vec<Vec<u8>> = (0..4)
            .map(|i| {
                (0..len)
                    .map(|j| (seed.wrapping_mul(31).wrapping_add((i * 97 + j * 13) as u64)) as u8)
                    .collect()
            })
            .collect();
        let parity = codec.encode(&data);
        let original: Vec<Vec<u8>> = data.iter().chain(&parity).cloned().collect();
        let mut shards: Vec<Option<Vec<u8>>> = original.iter().cloned().map(Some).collect();
        shards[a] = None;
        shards[b] = None;
        codec.reconstruct(&mut shards).expect("within parity budget");
        for (i, s) in shards.iter().enumerate() {
            prop_assert_eq!(s.as_ref().expect("restored"), &original[i]);
        }
    }

    #[test]
    fn rs_parity_is_linear(len in 1usize..32, seed in any::<u64>()) {
        // encode(x ⊕ y) = encode(x) ⊕ encode(y): the code is linear over
        // GF(2), which is why corrupt inputs yield consistent (wrong)
        // codewords — the EC blindness of Observation 12.
        let codec = rs::ReedSolomon::new(3, 2);
        let mk = |off: u64| -> Vec<Vec<u8>> {
            (0..3)
                .map(|i| (0..len).map(|j| (seed ^ off).wrapping_mul(17).wrapping_add((i * 7 + j) as u64) as u8).collect())
                .collect()
        };
        let x = mk(0);
        let y = mk(0x5a5a);
        let xy: Vec<Vec<u8>> = x
            .iter()
            .zip(&y)
            .map(|(sx, sy)| sx.iter().zip(sy).map(|(a, b)| a ^ b).collect())
            .collect();
        let px = codec.encode(&x);
        let py = codec.encode(&y);
        let pxy = codec.encode(&xy);
        for (i, shard) in pxy.iter().enumerate() {
            let manual: Vec<u8> = px[i].iter().zip(&py[i]).map(|(a, b)| a ^ b).collect();
            prop_assert_eq!(shard, &manual);
        }
    }
}

//! SECDED ECC: extended Hamming(72,64).
//!
//! The scheme used for processor caches and DIMMs: corrects any single
//! bitflip and detects (but cannot correct) double flips. Observation 8's
//! multi-bit SDCs exceed this envelope — triple flips can even be
//! *miscorrected* into a third, wrong value — which the audit
//! demonstrates.

/// A 72-bit SECDED codeword: 64 data bits plus 8 check bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Codeword {
    /// The 64 data bits (possibly corrupted).
    pub data: u64,
    /// Seven Hamming parity bits (low 7) plus the overall parity (bit 7).
    pub check: u8,
}

/// Decode outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decoded {
    /// Codeword clean; data returned as stored.
    Clean(u64),
    /// A single bitflip was corrected.
    Corrected(u64),
    /// A double error was detected (uncorrectable).
    DoubleError,
}

/// Maps data-bit index (0..64) to its codeword position (1..=72, skipping
/// power-of-two parity positions).
fn data_position(i: u32) -> u32 {
    let mut pos = 1u32;
    let mut seen = 0;
    loop {
        if !pos.is_power_of_two() {
            if seen == i {
                return pos;
            }
            seen += 1;
        }
        pos += 1;
    }
}

/// Computes the 7 Hamming parity bits over the data bits.
fn hamming_parity(data: u64) -> u8 {
    let mut parity = 0u8;
    for i in 0..64 {
        if (data >> i) & 1 == 1 {
            let pos = data_position(i);
            for (bit, mask) in [
                (0u8, 1u32),
                (1, 2),
                (2, 4),
                (3, 8),
                (4, 16),
                (5, 32),
                (6, 64),
            ] {
                if pos & mask != 0 {
                    parity ^= 1 << bit;
                }
            }
        }
    }
    parity
}

/// Encodes 64 data bits into a SECDED codeword.
pub fn encode(data: u64) -> Codeword {
    let hamming = hamming_parity(data);
    let overall = (data.count_ones() + (hamming & 0x7f).count_ones()) as u8 & 1;
    Codeword {
        data,
        check: (hamming & 0x7f) | (overall << 7),
    }
}

/// Decodes a (possibly corrupted) codeword.
pub fn decode(cw: Codeword) -> Decoded {
    let expect = hamming_parity(cw.data);
    let syndrome = (expect ^ (cw.check & 0x7f)) as u32;
    let stored_overall = cw.check >> 7;
    let actual_overall = (cw.data.count_ones() + (cw.check & 0x7f).count_ones()) as u8 & 1;
    let overall_ok = stored_overall == actual_overall;
    match (syndrome, overall_ok) {
        (0, true) => Decoded::Clean(cw.data),
        (0, false) => Decoded::Corrected(cw.data), // overall parity bit flipped
        (_, false) => {
            // Single error at codeword position `syndrome`.
            if syndrome.is_power_of_two() {
                // A parity bit flipped; data is intact.
                return Decoded::Corrected(cw.data);
            }
            // Find which data bit lives at that position.
            for i in 0..64 {
                if data_position(i) == syndrome {
                    return Decoded::Corrected(cw.data ^ (1 << i));
                }
            }
            // Syndrome beyond the codeword: miscorrection territory —
            // report double error, the honest answer.
            Decoded::DoubleError
        }
        (_, true) => Decoded::DoubleError,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_roundtrip() {
        for data in [0u64, 1, u64::MAX, 0xdead_beef_cafe_f00d] {
            assert_eq!(decode(encode(data)), Decoded::Clean(data));
        }
    }

    #[test]
    fn corrects_every_single_data_flip() {
        let data = 0x0123_4567_89ab_cdefu64;
        let cw = encode(data);
        for bit in 0..64 {
            let corrupted = Codeword {
                data: cw.data ^ (1 << bit),
                check: cw.check,
            };
            assert_eq!(decode(corrupted), Decoded::Corrected(data), "bit {bit}");
        }
    }

    #[test]
    fn corrects_check_bit_flips() {
        let data = 42u64;
        let cw = encode(data);
        for bit in 0..8 {
            let corrupted = Codeword {
                data: cw.data,
                check: cw.check ^ (1 << bit),
            };
            assert_eq!(
                decode(corrupted),
                Decoded::Corrected(data),
                "check bit {bit}"
            );
        }
    }

    #[test]
    fn detects_double_flips() {
        let data = 0x5555_aaaa_5555_aaaau64;
        let cw = encode(data);
        for (a, b) in [(0u32, 1u32), (3, 40), (10, 63), (31, 32)] {
            let corrupted = Codeword {
                data: cw.data ^ (1 << a) ^ (1 << b),
                check: cw.check,
            };
            assert_eq!(decode(corrupted), Decoded::DoubleError, "bits {a},{b}");
        }
    }

    #[test]
    fn triple_flips_can_be_miscorrected() {
        // Observation 8: multi-bit SDCs exceed the SECDED envelope. A
        // triple flip has odd parity, so the decoder believes it is a
        // single error and "corrects" toward a wrong codeword for at
        // least some triples.
        let data = 0x0f0f_0f0f_0f0f_0f0fu64;
        let cw = encode(data);
        let mut miscorrected = 0;
        let mut total = 0;
        for a in 0..8u32 {
            for b in 20..28u32 {
                for c in 40..48u32 {
                    let corrupted = Codeword {
                        data: cw.data ^ (1 << a) ^ (1 << b) ^ (1 << c),
                        check: cw.check,
                    };
                    total += 1;
                    if let Decoded::Corrected(v) = decode(corrupted) {
                        if v != data {
                            miscorrected += 1;
                        }
                    }
                }
            }
        }
        assert!(
            miscorrected > 0,
            "some of {total} triple flips must silently miscorrect"
        );
    }
}

//! The Observation 12 audit: each technique against each SDC scenario.
//!
//! The audit injects bit-mask corruptions (with the Figure 7 flip
//! multiplicities) at the two points that matter — *before* integrity
//! metadata is computed (the CPU computed a wrong value, then faithfully
//! summarized it) and *after* (classic storage/memory corruption) — and
//! measures each technique's detection rate.

use crate::{crc, ecc, prediction::RangePredictor, redundancy, rs};
use sdc_model::DetRng;

/// The audited techniques.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Technique {
    /// End-to-end CRC-32 checksum.
    Crc32,
    /// SECDED ECC (72,64).
    Ecc,
    /// Reed–Solomon erasure coding (4+2), corruption then reconstruction.
    ErasureCoding,
    /// Dual-modular redundancy.
    Redundancy2,
    /// Triple-modular redundancy with voting.
    Redundancy3,
    /// Range prediction with a 5% band.
    Prediction,
}

impl Technique {
    /// All audited techniques.
    pub const ALL: [Technique; 6] = [
        Technique::Crc32,
        Technique::Ecc,
        Technique::ErasureCoding,
        Technique::Redundancy2,
        Technique::Redundancy3,
        Technique::Prediction,
    ];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Technique::Crc32 => "CRC-32",
            Technique::Ecc => "SECDED ECC",
            Technique::ErasureCoding => "Erasure coding (4+2)",
            Technique::Redundancy2 => "2-modular redundancy",
            Technique::Redundancy3 => "3-modular redundancy",
            Technique::Prediction => "Range prediction (5%)",
        }
    }
}

/// Detection statistics of one technique in one scenario.
#[derive(Debug, Clone, Copy)]
pub struct AuditOutcome {
    /// Technique audited.
    pub technique: Technique,
    /// Corruptions injected *before* integrity metadata was computed
    /// that were detected. (paper: mostly undetectable).
    pub detected_before_metadata: f64,
    /// Corruptions injected *after* metadata that were detected.
    pub detected_after_metadata: f64,
    /// Corruptions that were silently transformed into *another wrong
    /// value* (ECC miscorrection, EC propagation).
    pub silently_propagated: f64,
    /// Relative resource overhead (extra executions or storage).
    pub overhead: f64,
}

/// Draws a corruption mask with Figure 7 multiplicities (1 bit ≈ 90%,
/// 2 bits ≈ 8%, ≥3 bits ≈ 2%) over `bits` positions.
fn draw_mask(bits: u32, rng: &mut DetRng) -> u64 {
    let x = rng.unit();
    let flips = if x < 0.90 {
        1
    } else if x < 0.98 {
        2
    } else {
        3
    };
    let mut mask = 0u64;
    while mask.count_ones() < flips {
        mask |= 1 << rng.below(bits as u64);
    }
    mask
}

/// Audits every technique over `trials` injected corruptions.
pub fn audit_all(trials: usize, seed: u64) -> Vec<AuditOutcome> {
    Technique::ALL
        .iter()
        .map(|&t| audit_one(t, trials, seed))
        .collect()
}

/// Audits one technique.
pub fn audit_one(technique: Technique, trials: usize, seed: u64) -> AuditOutcome {
    let mut rng = DetRng::new(seed).fork(technique as u64);
    let mut before = 0usize;
    let mut after = 0usize;
    let mut propagated = 0usize;
    let mut overhead = 0.0;
    for trial in 0..trials {
        let payload: Vec<u8> = (0..64)
            .map(|i| (i as u8).wrapping_mul(31).wrapping_add(trial as u8))
            .collect();
        match technique {
            Technique::Crc32 => {
                overhead = 4.0 / payload.len() as f64;
                // Before: the CPU corrupts the data, then computes the
                // checksum over the already-wrong bytes.
                let mut corrupted = payload.clone();
                corrupted[7] ^= draw_mask(8, &mut rng) as u8;
                let stored_crc = crc::crc32(&corrupted);
                if crc::crc32(&corrupted) != stored_crc {
                    before += 1; // never happens: metadata certifies the corruption
                }
                // After: checksum first, then corruption.
                let stored = crc::crc32(&payload);
                let mut later = payload.clone();
                later[9] ^= (draw_mask(8, &mut rng) as u8).max(1);
                if crc::crc32(&later) != stored {
                    after += 1;
                }
            }
            Technique::Ecc => {
                overhead = 8.0 / 64.0;
                let word = u64::from_le_bytes(payload[..8].try_into().expect("8 bytes"));
                // Before: corruption precedes encoding.
                let corrupted = word ^ draw_mask(64, &mut rng);
                let cw = ecc::encode(corrupted);
                if !matches!(ecc::decode(cw), ecc::Decoded::Clean(v) if v == corrupted) {
                    before += 1; // never: the codeword is self-consistent
                }
                // After: corruption hits the stored codeword.
                let cw = ecc::encode(word);
                let mask = draw_mask(64, &mut rng);
                let hit = ecc::Codeword {
                    data: cw.data ^ mask,
                    check: cw.check,
                };
                match ecc::decode(hit) {
                    ecc::Decoded::Clean(v) => {
                        if v != word {
                            propagated += 1;
                        }
                    }
                    ecc::Decoded::Corrected(v) => {
                        if v == word {
                            after += 1; // corrected: the flip was handled
                        } else {
                            propagated += 1; // miscorrection
                        }
                    }
                    ecc::Decoded::DoubleError => after += 1, // detected
                }
            }
            Technique::ErasureCoding => {
                overhead = 2.0 / 4.0;
                let codec = rs::ReedSolomon::new(4, 2);
                let data: Vec<Vec<u8>> = (0..4)
                    .map(|i| payload.iter().map(|&b| b ^ i as u8).collect())
                    .collect();
                let parity = codec.encode(&data);
                let mut all: Vec<Option<Vec<u8>>> =
                    data.iter().chain(&parity).cloned().map(Some).collect();
                // An SDC corrupts shard 0 before a (legitimate) rebuild of
                // shard 3.
                all[0].as_mut().expect("present")[3] ^= (draw_mask(8, &mut rng) as u8).max(1);
                all[3] = None;
                codec.reconstruct(&mut all).expect("rebuild succeeds");
                if all[3].as_ref().expect("rebuilt") != &data[3] {
                    propagated += 1;
                }
                // EC never *detects* anything by itself.
            }
            Technique::Redundancy2 | Technique::Redundancy3 => {
                let n = if technique == Technique::Redundancy2 {
                    2
                } else {
                    3
                };
                let faulty_replica = rng.below(n as u64) as usize;
                let mask = draw_mask(64, &mut rng);
                let run = redundancy::run_replicated(n, |i| {
                    let v = 0x0123_4567_89ab_cdefu64 ^ (trial as u64);
                    if i == faulty_replica {
                        v ^ mask
                    } else {
                        v
                    }
                });
                overhead = run.overhead();
                if run.divergent() {
                    before += 1; // replication catches compute-time SDCs
                    after += 1;
                }
            }
            Technique::Prediction => {
                overhead = 0.02;
                let mut p = RangePredictor::new(4, 0.05);
                for i in 0..10 {
                    p.observe(1000.0 + i as f64);
                }
                // The SDC hits a random bit of the next value's fraction
                // or exponent — Observation 7's distribution (mostly
                // fraction).
                let clean = 1010.0f64;
                let bit = if rng.unit() < 0.94 {
                    rng.below(52)
                } else {
                    52 + rng.below(11)
                };
                let corrupted = f64::from_bits(clean.to_bits() ^ (1 << bit));
                if p.observe(corrupted) {
                    before += 1;
                    after += 1;
                }
            }
        }
    }
    let t = trials.max(1) as f64;
    AuditOutcome {
        technique,
        detected_before_metadata: before as f64 / t,
        detected_after_metadata: after as f64 / t,
        silently_propagated: propagated as f64 / t,
        overhead,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(t: Technique) -> AuditOutcome {
        audit_one(t, 400, 99)
    }

    #[test]
    fn crc_blind_before_metadata_sharp_after() {
        let o = outcome(Technique::Crc32);
        assert_eq!(
            o.detected_before_metadata, 0.0,
            "CRC certifies pre-metadata SDCs"
        );
        assert_eq!(
            o.detected_after_metadata, 1.0,
            "CRC catches post-metadata flips"
        );
    }

    #[test]
    fn ecc_handles_singles_but_leaks_multibit() {
        let o = outcome(Technique::Ecc);
        assert_eq!(o.detected_before_metadata, 0.0);
        // Single flips (~90%) corrected, doubles detected, triples can
        // silently miscorrect.
        assert!(
            o.detected_after_metadata > 0.9,
            "{}",
            o.detected_after_metadata
        );
        assert!(
            o.silently_propagated > 0.0,
            "triple flips miscorrect sometimes"
        );
    }

    #[test]
    fn erasure_coding_propagates_silently() {
        let o = outcome(Technique::ErasureCoding);
        assert_eq!(o.detected_before_metadata, 0.0);
        assert_eq!(
            o.detected_after_metadata, 0.0,
            "EC detects nothing by itself"
        );
        assert!(o.silently_propagated > 0.9, "{}", o.silently_propagated);
    }

    #[test]
    fn redundancy_detects_everywhere_but_costs_replicas() {
        let o2 = outcome(Technique::Redundancy2);
        assert_eq!(o2.detected_before_metadata, 1.0);
        assert_eq!(o2.overhead, 1.0, "a full second execution");
        let o3 = outcome(Technique::Redundancy3);
        assert_eq!(o3.detected_before_metadata, 1.0);
        assert_eq!(o3.overhead, 2.0);
    }

    #[test]
    fn prediction_misses_most_fraction_flips() {
        let o = outcome(Technique::Prediction);
        assert!(
            o.detected_before_metadata < 0.5,
            "minor precision losses evade range prediction: {}",
            o.detected_before_metadata
        );
        assert!(
            o.detected_before_metadata > 0.0,
            "exponent flips are caught"
        );
    }

    #[test]
    fn audit_all_covers_every_technique() {
        let all = audit_all(50, 1);
        assert_eq!(all.len(), Technique::ALL.len());
    }
}

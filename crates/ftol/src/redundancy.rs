//! N-modular redundancy: execute-and-compare replication.
//!
//! §6.2: replication detects (N=2) or corrects (N≥3, by majority) CPU
//! SDCs, but "considering the low failure rate of CPUs, such kind of
//! techniques are too costly to be applied to every application".

/// The results of replicated execution.
#[derive(Debug, Clone)]
pub struct Replicated<T> {
    /// One result per replica.
    pub results: Vec<T>,
}

/// Runs `f` once per replica (`f` receives the replica index, so a fault
/// model can corrupt specific replicas).
pub fn run_replicated<T>(replicas: usize, mut f: impl FnMut(usize) -> T) -> Replicated<T> {
    Replicated {
        results: (0..replicas).map(&mut f).collect(),
    }
}

impl<T: PartialEq + Clone> Replicated<T> {
    /// True if any replica disagrees — a *detected* error.
    pub fn divergent(&self) -> bool {
        self.results.windows(2).any(|w| w[0] != w[1])
    }

    /// Majority vote; `None` when no value reaches a strict majority.
    pub fn majority(&self) -> Option<T> {
        let n = self.results.len();
        for candidate in &self.results {
            let votes = self.results.iter().filter(|r| *r == candidate).count();
            if votes * 2 > n {
                return Some(candidate.clone());
            }
        }
        None
    }

    /// Relative resource overhead versus unreplicated execution
    /// (N replicas cost N−1 extra executions).
    pub fn overhead(&self) -> f64 {
        (self.results.len().max(1) - 1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn agreement_is_silent() {
        let r = run_replicated(3, |_| 42u64);
        assert!(!r.divergent());
        assert_eq!(r.majority(), Some(42));
    }

    #[test]
    fn dual_modular_detects_but_cannot_correct() {
        let r = run_replicated(2, |i| if i == 0 { 41u64 } else { 42 });
        assert!(r.divergent());
        assert_eq!(r.majority(), None, "no strict majority with 2 replicas");
    }

    #[test]
    fn triple_modular_corrects_single_corruption() {
        let r = run_replicated(3, |i| if i == 1 { 0u64 } else { 7 });
        assert!(r.divergent());
        assert_eq!(r.majority(), Some(7));
    }

    #[test]
    fn majority_fails_under_two_corruptions() {
        let r = run_replicated(3, |i| i as u64); // all distinct
        assert_eq!(r.majority(), None);
    }

    #[test]
    fn overhead_scales_with_replicas() {
        assert_eq!(run_replicated(1, |_| 0u8).overhead(), 0.0);
        assert_eq!(run_replicated(3, |_| 0u8).overhead(), 2.0);
    }
}

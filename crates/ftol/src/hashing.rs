//! Non-cryptographic hashes used for data-integrity summaries.

/// FNV-1a over bytes (64-bit).
pub fn fnv1a64(data: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// An xx-style 64-bit avalanche hash over 8-byte words (tail bytes are
/// zero-padded into a final word).
pub fn xx_like64(data: &[u8]) -> u64 {
    const P1: u64 = 0x9e37_79b1_85eb_ca87;
    const P2: u64 = 0xc2b2_ae3d_27d4_eb4f;
    let mut acc = P2 ^ data.len() as u64;
    let mut chunks = data.chunks_exact(8);
    for chunk in &mut chunks {
        let word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        acc = (acc ^ word.wrapping_mul(P1))
            .rotate_left(31)
            .wrapping_mul(P2);
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut tail = [0u8; 8];
        tail[..rem.len()].copy_from_slice(rem);
        let word = u64::from_le_bytes(tail);
        acc = (acc ^ word.wrapping_mul(P1))
            .rotate_left(31)
            .wrapping_mul(P2);
    }
    // Final avalanche.
    acc ^= acc >> 33;
    acc = acc.wrapping_mul(P1);
    acc ^ (acc >> 29)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_known_value() {
        // FNV-1a("a") = 0xaf63dc4c8601ec8c.
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
    }

    #[test]
    fn hashes_differ_on_single_flip() {
        let data = b"metadata service key".to_vec();
        let f = fnv1a64(&data);
        let x = xx_like64(&data);
        let mut corrupted = data.clone();
        corrupted[3] ^= 0x10;
        assert_ne!(fnv1a64(&corrupted), f);
        assert_ne!(xx_like64(&corrupted), x);
    }

    #[test]
    fn xx_like_is_length_sensitive() {
        assert_ne!(xx_like64(b"aa"), xx_like64(b"aa\0"));
    }

    #[test]
    fn xx_like_handles_tails() {
        for len in 0..24 {
            let data: Vec<u8> = (0..len as u8).collect();
            let _ = xx_like64(&data); // no panic on any tail size
        }
    }
}

//! Cyclic redundancy checks (table-driven CRC-32 and CRC-64).

/// Reflected CRC-32 (IEEE 802.3) lookup table.
fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut b = 0;
        while b < 8 {
            crc = if crc & 1 == 1 {
                (crc >> 1) ^ 0xedb8_8320
            } else {
                crc >> 1
            };
            b += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Reflected CRC-64 (ECMA-182) lookup table.
fn crc64_table() -> [u64; 256] {
    let mut table = [0u64; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u64;
        let mut b = 0;
        while b < 8 {
            crc = if crc & 1 == 1 {
                (crc >> 1) ^ 0xc96c_5795_d787_0f42
            } else {
                crc >> 1
            };
            b += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// CRC-32 (IEEE) of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let table = crc32_table();
    let mut crc = 0xffff_ffffu32;
    for &byte in data {
        crc = (crc >> 8) ^ table[((crc ^ byte as u32) & 0xff) as usize];
    }
    crc ^ 0xffff_ffff
}

/// CRC-64 (ECMA) of `data`.
pub fn crc64(data: &[u8]) -> u64 {
    let table = crc64_table();
    let mut crc = u64::MAX;
    for &byte in data {
        crc = (crc >> 8) ^ table[((crc ^ byte as u64) & 0xff) as usize];
    }
    crc ^ u64::MAX
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_check_value() {
        // The canonical CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
    }

    #[test]
    fn crc64_check_value() {
        // CRC-64/ECMA check value for "123456789".
        assert_eq!(crc64(b"123456789"), 0x995d_c9bb_df19_39fa);
    }

    #[test]
    fn crc_detects_any_single_bitflip() {
        let data = b"the quick brown fox".to_vec();
        let reference = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut corrupted = data.clone();
                corrupted[byte] ^= 1 << bit;
                assert_ne!(crc32(&corrupted), reference, "flip at {byte}:{bit}");
            }
        }
    }

    #[test]
    fn empty_input() {
        assert_eq!(crc32(&[]), 0);
        assert_eq!(crc64(&[]), 0);
    }
}

//! Range-prediction SDC detectors.
//!
//! HPC detectors predict the next value of a smooth series and flag
//! results outside a tolerance band. §6.2: "real SDCs may have minor
//! precision losses (Observation 7), making it challenging for these
//! methods to determine a narrow range" — a fraction-bit flip moves the
//! value by parts per billion and sails through any usable band.

use std::collections::VecDeque;

/// A sliding-window linear-extrapolation range predictor.
#[derive(Debug, Clone)]
pub struct RangePredictor {
    window: VecDeque<f64>,
    capacity: usize,
    /// Relative half-width of the acceptance band.
    pub tolerance: f64,
}

impl RangePredictor {
    /// A predictor extrapolating from the last `capacity ≥ 2` samples
    /// with a relative acceptance band of `tolerance`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity < 2` or `tolerance` is not positive.
    pub fn new(capacity: usize, tolerance: f64) -> RangePredictor {
        assert!(capacity >= 2, "need at least two samples to extrapolate");
        assert!(tolerance > 0.0, "tolerance must be positive");
        RangePredictor {
            window: VecDeque::new(),
            capacity,
            tolerance,
        }
    }

    /// The predicted next value (linear extrapolation of the window),
    /// or `None` before the window has two samples.
    pub fn predict(&self) -> Option<f64> {
        if self.window.len() < 2 {
            return None;
        }
        let n = self.window.len();
        let last = self.window[n - 1];
        let prev = self.window[n - 2];
        Some(last + (last - prev))
    }

    /// Checks `value` against the prediction band, then absorbs it into
    /// the window. Returns true when the value is flagged anomalous.
    pub fn observe(&mut self, value: f64) -> bool {
        let anomalous = match self.predict() {
            Some(pred) => {
                let band = pred.abs().max(1e-12) * self.tolerance;
                (value - pred).abs() > band
            }
            None => false,
        };
        if self.window.len() == self.capacity {
            self.window.pop_front();
        }
        self.window.push_back(value);
        anomalous
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smooth_series_passes() {
        let mut p = RangePredictor::new(4, 0.05);
        for i in 0..50 {
            let v = 100.0 + i as f64 * 0.5;
            assert!(!p.observe(v), "smooth value {v} flagged");
        }
    }

    #[test]
    fn exponent_flip_is_caught() {
        let mut p = RangePredictor::new(4, 0.05);
        for i in 0..10 {
            p.observe(100.0 + i as f64);
        }
        // Flip an exponent bit: value roughly doubles.
        let corrupted = f64::from_bits((110.0f64).to_bits() ^ (1 << 62));
        assert!(p.observe(corrupted));
    }

    #[test]
    fn fraction_flip_slips_through() {
        // Observation 7 + §6.2: a low-fraction-bit flip is far inside any
        // workable tolerance band.
        let mut p = RangePredictor::new(4, 0.01); // even a tight 1% band
        for i in 0..10 {
            p.observe(100.0 + i as f64);
        }
        let corrupted = f64::from_bits((110.0f64).to_bits() ^ (1 << 20));
        assert!(
            !p.observe(corrupted),
            "ppb-scale loss is indistinguishable from normal drift"
        );
    }

    #[test]
    fn window_slides() {
        let mut p = RangePredictor::new(2, 0.5);
        p.observe(1.0);
        p.observe(2.0);
        assert_eq!(p.predict(), Some(3.0));
        p.observe(3.0);
        assert_eq!(p.predict(), Some(4.0));
    }

    #[test]
    #[should_panic(expected = "at least two samples")]
    fn rejects_tiny_window() {
        let _ = RangePredictor::new(1, 0.1);
    }
}

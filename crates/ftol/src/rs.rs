//! Systematic Reed–Solomon erasure coding over GF(2⁸).
//!
//! `k` data shards plus `m` Vandermonde parity shards; any erased shards
//! (up to `m`) are reconstructed by Gaussian elimination over the
//! surviving rows of the generator matrix. Note what erasure coding is
//! *for*: recovering **lost** data. It has no ability to detect
//! **corrupted** data — §6.2: "EC is primarily used to recover lost data,
//! but not used to detect corrupted data" — and the audit shows a
//! corrupted shard poisoning a reconstruction.

use crate::gf256;

/// Errors from the codec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RsError {
    /// More shards erased than parity can recover.
    TooManyErasures {
        /// Erased count.
        erased: usize,
        /// Parity count.
        parity: usize,
    },
    /// Shard lengths disagree.
    ShapeMismatch,
    /// The surviving-row matrix was singular (cannot happen for the
    /// supported `m ≤ 2`; possible for exotic erasure patterns beyond).
    Singular,
}

impl std::fmt::Display for RsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RsError::TooManyErasures { erased, parity } => {
                write!(f, "{erased} erasures exceed {parity} parity shards")
            }
            RsError::ShapeMismatch => write!(f, "shard shape mismatch"),
            RsError::Singular => write!(f, "singular reconstruction matrix"),
        }
    }
}

impl std::error::Error for RsError {}

/// A systematic Reed–Solomon codec.
#[derive(Debug, Clone)]
pub struct ReedSolomon {
    k: usize,
    m: usize,
    /// `m × k` parity coefficient rows.
    rows: Vec<Vec<u8>>,
}

impl ReedSolomon {
    /// Creates a codec with `k` data shards and `m` parity shards.
    ///
    /// # Panics
    ///
    /// Panics unless `1 ≤ k`, `1 ≤ m`, and `k + m ≤ 255`.
    pub fn new(k: usize, m: usize) -> ReedSolomon {
        assert!(k >= 1 && m >= 1 && k + m <= 255, "unsupported geometry");
        // Vandermonde rows: row j has coefficients (d+1)^j.
        let rows = (0..m)
            .map(|j| {
                (0..k)
                    .map(|d| gf256::pow((d + 1) as u8, j as u32))
                    .collect()
            })
            .collect();
        ReedSolomon { k, m, rows }
    }

    /// Data shard count.
    pub fn data_shards(&self) -> usize {
        self.k
    }

    /// Parity shard count.
    pub fn parity_shards(&self) -> usize {
        self.m
    }

    /// Computes the `m` parity shards for `k` equal-length data shards.
    ///
    /// # Panics
    ///
    /// Panics if the number or shape of data shards is wrong.
    pub fn encode(&self, data: &[Vec<u8>]) -> Vec<Vec<u8>> {
        assert_eq!(data.len(), self.k, "need exactly k data shards");
        let len = data[0].len();
        assert!(data.iter().all(|s| s.len() == len), "ragged shards");
        self.rows
            .iter()
            .map(|row| {
                let mut parity = vec![0u8; len];
                for (coeff, shard) in row.iter().zip(data) {
                    for (p, &b) in parity.iter_mut().zip(shard) {
                        *p ^= gf256::mul(*coeff, b);
                    }
                }
                parity
            })
            .collect()
    }

    /// Reconstructs erased shards in place. `shards` holds `k + m`
    /// entries (data then parity); `None` marks an erasure.
    pub fn reconstruct(&self, shards: &mut [Option<Vec<u8>>]) -> Result<(), RsError> {
        if shards.len() != self.k + self.m {
            return Err(RsError::ShapeMismatch);
        }
        let erased: Vec<usize> = (0..shards.len()).filter(|&i| shards[i].is_none()).collect();
        if erased.is_empty() {
            return Ok(());
        }
        if erased.len() > self.m {
            return Err(RsError::TooManyErasures {
                erased: erased.len(),
                parity: self.m,
            });
        }
        let len = shards
            .iter()
            .flatten()
            .map(Vec::len)
            .next()
            .ok_or(RsError::ShapeMismatch)?;
        if shards.iter().flatten().any(|s| s.len() != len) {
            return Err(RsError::ShapeMismatch);
        }

        // Generator matrix row for shard i.
        let row_of = |i: usize| -> Vec<u8> {
            if i < self.k {
                (0..self.k).map(|d| u8::from(d == i)).collect()
            } else {
                self.rows[i - self.k].clone()
            }
        };
        // Pick k surviving shards and solve G_sub · data = survivors.
        let survivors: Vec<usize> = (0..shards.len())
            .filter(|&i| shards[i].is_some())
            .take(self.k)
            .collect();
        if survivors.len() < self.k {
            return Err(RsError::TooManyErasures {
                erased: erased.len(),
                parity: self.m,
            });
        }
        let mut matrix: Vec<Vec<u8>> = survivors.iter().map(|&i| row_of(i)).collect();
        let mut rhs: Vec<Vec<u8>> = survivors
            .iter()
            .map(|&i| shards[i].clone().expect("survivor"))
            .collect();

        // Gaussian elimination over GF(256).
        for col in 0..self.k {
            let pivot = (col..self.k)
                .find(|&r| matrix[r][col] != 0)
                .ok_or(RsError::Singular)?;
            matrix.swap(col, pivot);
            rhs.swap(col, pivot);
            let inv = gf256::inv(matrix[col][col]);
            for x in &mut matrix[col] {
                *x = gf256::mul(*x, inv);
            }
            for x in &mut rhs[col] {
                *x = gf256::mul(*x, inv);
            }
            for r in 0..self.k {
                if r != col && matrix[r][col] != 0 {
                    let factor = matrix[r][col];
                    let pivot_row = matrix[col].clone();
                    for (dst, &src) in matrix[r].iter_mut().zip(&pivot_row) {
                        *dst ^= gf256::mul(factor, src);
                    }
                    let pivot_rhs = rhs[col].clone();
                    for (dst, &src) in rhs[r].iter_mut().zip(&pivot_rhs) {
                        *dst ^= gf256::mul(factor, src);
                    }
                }
            }
        }
        // rhs now holds the k data shards; rebuild what was erased.
        let data: Vec<Vec<u8>> = rhs;
        let parity = self.encode(&data);
        for &i in &erased {
            shards[i] = Some(if i < self.k {
                data[i].clone()
            } else {
                parity[i - self.k].clone()
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shards(k: usize, len: usize) -> Vec<Vec<u8>> {
        (0..k)
            .map(|i| (0..len).map(|j| (i * 31 + j * 7 + 3) as u8).collect())
            .collect()
    }

    #[test]
    fn roundtrip_no_erasure() {
        let rs = ReedSolomon::new(4, 2);
        let data = shards(4, 64);
        let parity = rs.encode(&data);
        let mut all: Vec<Option<Vec<u8>>> = data.iter().chain(&parity).cloned().map(Some).collect();
        assert_eq!(rs.reconstruct(&mut all), Ok(()));
    }

    #[test]
    fn recovers_any_two_erasures_with_two_parity() {
        let rs = ReedSolomon::new(4, 2);
        let data = shards(4, 32);
        let parity = rs.encode(&data);
        let original: Vec<Vec<u8>> = data.iter().chain(&parity).cloned().collect();
        for a in 0..6 {
            for b in (a + 1)..6 {
                let mut all: Vec<Option<Vec<u8>>> = original.iter().cloned().map(Some).collect();
                all[a] = None;
                all[b] = None;
                rs.reconstruct(&mut all)
                    .unwrap_or_else(|e| panic!("({a},{b}): {e}"));
                for (i, s) in all.iter().enumerate() {
                    assert_eq!(
                        s.as_ref().unwrap(),
                        &original[i],
                        "shard {i} after ({a},{b})"
                    );
                }
            }
        }
    }

    #[test]
    fn single_parity_is_xor() {
        let rs = ReedSolomon::new(3, 1);
        let data = shards(3, 16);
        let parity = rs.encode(&data);
        for j in 0..16 {
            assert_eq!(parity[0][j], data[0][j] ^ data[1][j] ^ data[2][j]);
        }
    }

    #[test]
    fn too_many_erasures_rejected() {
        let rs = ReedSolomon::new(4, 2);
        let data = shards(4, 8);
        let parity = rs.encode(&data);
        let mut all: Vec<Option<Vec<u8>>> = data.iter().chain(&parity).cloned().map(Some).collect();
        all[0] = None;
        all[1] = None;
        all[2] = None;
        assert_eq!(
            rs.reconstruct(&mut all),
            Err(RsError::TooManyErasures {
                erased: 3,
                parity: 2
            })
        );
    }

    #[test]
    fn corrupted_shard_poisons_reconstruction_silently() {
        // Observation 12: "a corrupted data block may be used to construct
        // a lost data block, causing the corruption to propagate."
        let rs = ReedSolomon::new(4, 2);
        let data = shards(4, 32);
        let parity = rs.encode(&data);
        let mut all: Vec<Option<Vec<u8>>> = data.iter().chain(&parity).cloned().map(Some).collect();
        // An SDC corrupts shard 1; shard 2 is lost and reconstructed.
        all[1].as_mut().expect("present")[5] ^= 0x40;
        all[2] = None;
        rs.reconstruct(&mut all).expect("reconstruction succeeds");
        assert_ne!(
            all[2].as_ref().expect("rebuilt"),
            &data[2],
            "the rebuilt shard is wrong and nothing flagged it"
        );
    }

    #[test]
    #[should_panic(expected = "unsupported geometry")]
    fn rejects_oversized_geometry() {
        let _ = ReedSolomon::new(200, 100);
    }
}

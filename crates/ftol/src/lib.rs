//! Fault-tolerance techniques audited against CPU SDCs (§6.2).
//!
//! Observation 12: "the effectiveness of existing fault tolerance
//! techniques is diminished when confronted with CPU SDCs." This crate
//! implements the techniques the paper discusses — end-to-end checksums
//! (CRC), hashing, SECDED ECC, erasure coding over GF(256), N-modular
//! redundancy, and range-prediction detectors — and an [`audit`] harness
//! that reproduces each failure mode:
//!
//! * a checksum computed *after* the corruption certifies the corrupted
//!   data;
//! * SECDED corrects single flips but a multi-bit SDC (Observation 8)
//!   defeats it — and can even be miscorrected into a third value;
//! * erasure coding recovers *lost* data but propagates *corrupted* data
//!   into reconstructed blocks;
//! * redundancy works but costs a full replica;
//! * range predictors miss the tiny fraction-bit losses of Observation 7.
//!
//! [`sdc_code`] additionally *implements* §4.2's proposal: an encoding
//! that allocates protection by bit significance, beating uniform SECDED
//! on the measured bitflip distribution at equal overhead.

pub mod audit;
pub mod crc;
pub mod ecc;
pub mod gf256;
pub mod hashing;
pub mod prediction;
pub mod redundancy;
pub mod rs;
pub mod sdc_code;

pub use audit::{audit_all, AuditOutcome, Technique};

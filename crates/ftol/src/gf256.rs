//! GF(2⁸) arithmetic (AES polynomial 0x11b) for erasure coding.

/// Generator of the multiplicative group used for log tables.
const GENERATOR: u8 = 3;

/// Exp/log tables for fast multiplication.
struct Tables {
    exp: [u8; 512],
    log: [u8; 256],
}

fn tables() -> &'static Tables {
    use std::sync::OnceLock;
    static TABLES: OnceLock<Tables> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut exp = [0u8; 512];
        let mut log = [0u8; 256];
        let mut x = 1u8;
        for (i, slot) in exp.iter_mut().take(255).enumerate() {
            *slot = x;
            log[x as usize] = i as u8;
            x = mul_slow(x, GENERATOR);
        }
        for i in 255..512 {
            exp[i] = exp[i - 255];
        }
        Tables { exp, log }
    })
}

/// Carry-less multiply with reduction by x⁸+x⁴+x³+x+1.
fn mul_slow(mut a: u8, mut b: u8) -> u8 {
    let mut acc = 0u8;
    while b != 0 {
        if b & 1 == 1 {
            acc ^= a;
        }
        let high = a & 0x80 != 0;
        a <<= 1;
        if high {
            a ^= 0x1b;
        }
        b >>= 1;
    }
    acc
}

/// Addition in GF(2⁸) (XOR).
pub fn add(a: u8, b: u8) -> u8 {
    a ^ b
}

/// Multiplication in GF(2⁸).
pub fn mul(a: u8, b: u8) -> u8 {
    if a == 0 || b == 0 {
        return 0;
    }
    let t = tables();
    t.exp[t.log[a as usize] as usize + t.log[b as usize] as usize]
}

/// Multiplicative inverse.
///
/// # Panics
///
/// Panics on zero, which has no inverse.
pub fn inv(a: u8) -> u8 {
    assert!(a != 0, "zero has no inverse in GF(256)");
    let t = tables();
    t.exp[255 - t.log[a as usize] as usize]
}

/// Division `a / b`.
///
/// # Panics
///
/// Panics if `b` is zero.
pub fn div(a: u8, b: u8) -> u8 {
    mul(a, inv(b))
}

/// `base^power` by table lookup.
pub fn pow(base: u8, power: u32) -> u8 {
    if base == 0 {
        return if power == 0 { 1 } else { 0 };
    }
    let t = tables();
    let l = t.log[base as usize] as u32;
    t.exp[((l * power) % 255) as usize]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mul_matches_slow_path() {
        for a in 0..=255u8 {
            for b in [0u8, 1, 2, 3, 0x53, 0xca, 255] {
                assert_eq!(mul(a, b), mul_slow(a, b), "{a} * {b}");
            }
        }
    }

    #[test]
    fn known_aes_product() {
        // 0x53 · 0xCA = 0x01 in the AES field.
        assert_eq!(mul(0x53, 0xca), 0x01);
    }

    #[test]
    fn inverse_law() {
        for a in 1..=255u8 {
            assert_eq!(mul(a, inv(a)), 1, "a = {a}");
        }
    }

    #[test]
    fn div_is_mul_by_inverse() {
        assert_eq!(div(mul(7, 9), 9), 7);
    }

    #[test]
    fn pow_basics() {
        assert_eq!(pow(2, 0), 1);
        assert_eq!(pow(2, 1), 2);
        assert_eq!(pow(2, 8), mul(pow(2, 4), pow(2, 4)));
        assert_eq!(pow(0, 5), 0);
        assert_eq!(pow(0, 0), 1);
    }

    #[test]
    #[should_panic(expected = "no inverse")]
    fn zero_inverse_panics() {
        let _ = inv(0);
    }

    #[test]
    fn distributivity_samples() {
        for (a, b, c) in [(3u8, 7u8, 11u8), (0x80, 0x1b, 0xff)] {
            assert_eq!(mul(a, add(b, c)), add(mul(a, b), mul(a, c)));
        }
    }
}

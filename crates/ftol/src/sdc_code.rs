//! Bitflip-aware encoding (the paper's §4.2 proposal, implemented).
//!
//! "It may also be possible to promote data reliability by designing
//! encoding standards in consideration of these bitflip patterns."
//!
//! Observation 7 says CPU-SDC bitflips on floats land overwhelmingly in
//! the fraction part, where a flip costs parts-per-billion of precision;
//! only the sign, exponent, and high-fraction bits produce *significant*
//! errors. A uniform SECDED code spends its entire correction budget
//! uniformly — and declares an uncorrectable `DoubleError` even when both
//! flips are harmless. The asymmetric code here ([`encode`]/[`decode`])
//! protects exactly the *significant region* (sign + exponent + high
//! fraction, 24 bits) with SECDED and deliberately ignores the harmless
//! low fraction:
//!
//! * single flips in the significant region: corrected (like SECDED);
//! * multi-flips split across regions: the significant one is corrected —
//!   uniform SECDED can only flag these;
//! * flips wholly in the harmless region: accepted silently — no false
//!   alarms for losses the application cannot perceive, where uniform
//!   SECDED would page an operator or fail a request;
//! * the check-bit budget is identical (8 bits per f64), so the
//!   comparison isolates the *allocation* policy.

use crate::ecc;

/// Bits of an f64 considered significant: sign (1) + exponent (11) +
/// the 12 most significant fraction bits. A flip below this line costs a
/// relative error of at most 2⁻¹³ ≈ 1.2×10⁻⁴ — inside the regime the
/// paper measures for f64 SDCs (99.9% of losses below 0.02%) and far
/// from the catastrophic exponent/sign flips this code exists to stop.
pub const SIGNIFICANT_BITS: u32 = 24;

/// An asymmetric codeword for one f64 value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Asymmetric {
    /// The value bits (possibly corrupted in flight).
    pub data: u64,
    /// SECDED check bits over the significant region.
    pub check: u8,
}

/// Decode outcome.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Outcome {
    /// The significant region is intact (low-fraction flips, if any, are
    /// accepted as harmless noise).
    Accepted(u64),
    /// A flip in the significant region was corrected.
    Corrected(u64),
    /// Uncorrectable corruption in the significant region.
    CriticalDetected,
}

/// Extracts the significant region (top 24 bits) of an f64 bit pattern.
fn significant(data: u64) -> u64 {
    data >> (64 - SIGNIFICANT_BITS)
}

/// Encodes a value: SECDED over its significant region only.
///
/// # Examples
///
/// ```
/// use ftol::sdc_code::{decode, encode, Outcome};
///
/// let bits = 42.0f64.to_bits();
/// let cw = encode(bits);
/// // An exponent flip is corrected; a deep-fraction flip is accepted as
/// // harmless noise.
/// let hit = ftol::sdc_code::Asymmetric { data: cw.data ^ (1 << 60), check: cw.check };
/// assert_eq!(decode(hit), Outcome::Corrected(bits));
/// ```
pub fn encode(data: u64) -> Asymmetric {
    Asymmetric {
        data,
        check: ecc::encode(significant(data)).check,
    }
}

/// Decodes a (possibly corrupted) codeword.
pub fn decode(cw: Asymmetric) -> Outcome {
    let sig = significant(cw.data);
    match ecc::decode(ecc::Codeword {
        data: sig,
        check: cw.check,
    }) {
        ecc::Decoded::Clean(_) => Outcome::Accepted(cw.data),
        ecc::Decoded::Corrected(fixed) => {
            if fixed == sig {
                // The flip was in a check bit; data is intact.
                return Outcome::Accepted(cw.data);
            }
            let low_mask = (1u64 << (64 - SIGNIFICANT_BITS)) - 1;
            let repaired = (fixed << (64 - SIGNIFICANT_BITS)) | (cw.data & low_mask);
            Outcome::Corrected(repaired)
        }
        ecc::Decoded::DoubleError => Outcome::CriticalDetected,
    }
}

/// Whether a corruption mask harms the value meaningfully (touches the
/// significant region).
pub fn mask_is_significant(mask: u64) -> bool {
    significant(mask) != 0
}

/// Head-to-head statistics of the two allocation policies over a mask
/// distribution (same 8-bit overhead each).
#[derive(Debug, Clone, Copy, Default)]
pub struct Comparison {
    /// Trials evaluated.
    pub trials: u64,
    /// Uniform SECDED: significant corruptions that ended up silent
    /// (miscorrected into a wrong value).
    pub uniform_silent_significant: u64,
    /// Uniform SECDED: harmless corruptions escalated as uncorrectable
    /// (false alarms).
    pub uniform_false_alarms: u64,
    /// Uniform SECDED: significant corruptions fully corrected.
    pub uniform_corrected: u64,
    /// Asymmetric: significant corruptions that ended up silent.
    pub asym_silent_significant: u64,
    /// Asymmetric: harmless corruptions escalated (always 0 by design).
    pub asym_false_alarms: u64,
    /// Asymmetric: significant corruptions fully corrected.
    pub asym_corrected: u64,
}

/// Runs both schemes against the masks produced by `mask_source`
/// (e.g. the defect model's f64 mask distribution).
pub fn compare(
    values: impl IntoIterator<Item = u64>,
    mut mask_source: impl FnMut() -> u64,
) -> Comparison {
    let mut c = Comparison::default();
    for value in values {
        let mask = mask_source();
        if mask == 0 {
            continue;
        }
        c.trials += 1;
        let significant_hit = mask_is_significant(mask);

        // Uniform SECDED over the full word.
        let ucw = ecc::encode(value);
        match ecc::decode(ecc::Codeword {
            data: value ^ mask,
            check: ucw.check,
        }) {
            ecc::Decoded::Clean(v) | ecc::Decoded::Corrected(v) => {
                if v == value {
                    if significant_hit {
                        c.uniform_corrected += 1;
                    }
                } else if mask_is_significant(v ^ value) {
                    c.uniform_silent_significant += 1;
                }
            }
            ecc::Decoded::DoubleError => {
                if !significant_hit {
                    c.uniform_false_alarms += 1;
                }
            }
        }

        // Asymmetric code.
        let acw = encode(value);
        match decode(Asymmetric {
            data: value ^ mask,
            check: acw.check,
        }) {
            Outcome::Accepted(v) | Outcome::Corrected(v) => {
                let residue = v ^ value;
                if significant_hit {
                    if significant(residue) == 0 {
                        c.asym_corrected += 1;
                    } else {
                        c.asym_silent_significant += 1;
                    }
                }
            }
            Outcome::CriticalDetected => {
                if !significant_hit {
                    c.asym_false_alarms += 1;
                }
            }
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdc_model::DetRng;

    #[test]
    fn clean_roundtrip() {
        for v in [0u64, 1.5f64.to_bits(), u64::MAX, 0x400921fb54442d18] {
            assert_eq!(decode(encode(v)), Outcome::Accepted(v));
        }
    }

    #[test]
    fn harmless_flips_are_accepted() {
        let v = 1234.5678f64.to_bits();
        let cw = encode(v);
        for bit in 0..(64 - SIGNIFICANT_BITS) {
            let corrupted = Asymmetric {
                data: cw.data ^ (1 << bit),
                check: cw.check,
            };
            match decode(corrupted) {
                Outcome::Accepted(got) => {
                    let loss = (f64::from_bits(got) - 1234.5678).abs() / 1234.5678;
                    assert!(loss < 2e-4, "bit {bit}: loss {loss}");
                }
                other => panic!("bit {bit}: {other:?}"),
            }
        }
    }

    #[test]
    fn significant_single_flips_are_corrected() {
        let v = (-2.75f64).to_bits();
        let cw = encode(v);
        for bit in (64 - SIGNIFICANT_BITS)..64 {
            let corrupted = Asymmetric {
                data: cw.data ^ (1 << bit),
                check: cw.check,
            };
            assert_eq!(decode(corrupted), Outcome::Corrected(v), "bit {bit}");
        }
    }

    #[test]
    fn split_double_flip_is_repaired_where_uniform_secded_cannot() {
        // One flip in the exponent, one deep in the fraction: the
        // asymmetric code corrects the exponent and shrugs at the
        // fraction; uniform SECDED can only flag the pair.
        let v = 42.0f64.to_bits();
        let mask = (1u64 << 60) | (1 << 3);
        let acw = encode(v);
        match decode(Asymmetric {
            data: v ^ mask,
            check: acw.check,
        }) {
            Outcome::Corrected(got) => {
                assert_eq!(significant(got), significant(v), "exponent repaired");
                let loss = (f64::from_bits(got) - 42.0).abs() / 42.0;
                assert!(loss < 1e-11, "residual loss {loss}");
            }
            other => panic!("{other:?}"),
        }
        let ucw = ecc::encode(v);
        assert_eq!(
            ecc::decode(ecc::Codeword {
                data: v ^ mask,
                check: ucw.check
            }),
            ecc::Decoded::DoubleError,
            "uniform SECDED cannot correct the split double"
        );
    }

    #[test]
    fn double_harmless_flip_is_no_alarm_here_but_alarms_uniform() {
        let v = 7.25f64.to_bits();
        let mask = 0b101u64; // two low-fraction flips
        let acw = encode(v);
        assert!(matches!(
            decode(Asymmetric {
                data: v ^ mask,
                check: acw.check
            }),
            Outcome::Accepted(_)
        ));
        let ucw = ecc::encode(v);
        assert_eq!(
            ecc::decode(ecc::Codeword {
                data: v ^ mask,
                check: ucw.check
            }),
            ecc::Decoded::DoubleError,
            "uniform SECDED raises a false alarm for a ppb-level loss"
        );
    }

    #[test]
    fn comparison_favours_asymmetric_on_float_flip_distribution() {
        // Approximate the Observation-7 f64 mask distribution: mostly
        // single fraction flips, some doubles, occasional exponent hits.
        let mut rng = DetRng::new(5);
        let mut gen_mask = move || {
            let mut mask = 0u64;
            let flips = if rng.unit() < 0.9 { 1 } else { 2 };
            for _ in 0..flips {
                let bit = if rng.unit() < 0.94 {
                    // Centre-heavy fraction position.
                    (((rng.unit() + rng.unit()) / 2.0) * 52.0) as u32
                } else {
                    52 + rng.below(12) as u32
                };
                mask |= 1 << bit.min(63);
            }
            mask
        };
        let mut vrng = DetRng::new(6);
        let values: Vec<u64> = (0..4000)
            .map(|_| vrng.range_f64(0.1, 1e6).to_bits())
            .collect();
        let c = compare(values, &mut gen_mask);
        assert!(c.trials > 0);
        assert_eq!(c.asym_false_alarms, 0, "no alarms for harmless flips");
        assert!(
            c.uniform_false_alarms > 0,
            "uniform SECDED alarms on harmless doubles: {c:?}"
        );
        assert!(
            c.asym_corrected >= c.uniform_corrected,
            "asymmetric corrects at least as many significant hits: {c:?}"
        );
        assert!(c.asym_silent_significant <= c.uniform_silent_significant);
    }
}

//! The gate's reason for existing: a silent change to the defect model
//! must trip at least one golden statistic.

use conformance::golden::{check, golden_file, GoldenSet};
use conformance::metrics::temperature_metrics;
use toolchain::Suite;

/// The quick golden set restricted to the `temperature.*` metrics (the
/// ones `temperature_metrics` measures; checking the full set against a
/// partial measurement would fail on the missing names alone).
fn temperature_golden() -> GoldenSet {
    let file = golden_file();
    let quick = file.set("quick").expect("quick set is checked in");
    GoldenSet {
        mode: quick.mode.clone(),
        metrics: quick
            .metrics
            .iter()
            .filter(|m| m.name.starts_with("temperature."))
            .cloned()
            .collect(),
    }
}

#[test]
fn pristine_defect_model_passes_the_temperature_panel() {
    let suite = Suite::standard();
    let mix1 = silicon::catalog::by_name("MIX1").unwrap().processor;
    let golden = temperature_golden();
    assert_eq!(golden.metrics.len(), 2, "fit r and t_min are recorded");
    let report = check(&golden, &temperature_metrics(&suite, &mix1, true));
    assert!(report.passed(), "control run failed:\n{}", report.render());
}

#[test]
fn perturbed_trigger_floor_trips_the_gate() {
    // Raise MIX1's tricky defect's minimum triggering temperature from
    // 59 ℃ to 73 ℃ — the kind of one-line model drift the gate exists
    // to catch. Testcase C then cannot fail below 73 ℃ and the measured
    // `temperature.mix1_t_min_c` leaves its 70 ±2 ℃ band.
    let suite = Suite::standard();
    let mut perturbed = silicon::catalog::by_name("MIX1").unwrap().processor;
    perturbed.defects[1].trigger.t_min_c = 73.0;
    let report = check(&temperature_golden(), &temperature_metrics(&suite, &perturbed, true));
    assert!(!report.passed(), "perturbation went undetected:\n{}", report.render());
    let failures = report.failures();
    assert!(
        failures.iter().any(|f| f.name == "temperature.mix1_t_min_c"),
        "wrong metric tripped: {failures:?}"
    );
}

#[test]
fn perturbed_trigger_rate_trips_the_fit() {
    // A 20× hotter base rate floods the sweep: every window sees errors,
    // the frequency/temperature relation flattens relative to the
    // recorded exponential, and the fit's r leaves its band — drift in a
    // *rate* parameter is caught by a different statistic than drift in
    // a *floor* parameter.
    let suite = Suite::standard();
    let mut perturbed = silicon::catalog::by_name("MIX1").unwrap().processor;
    perturbed.defects[1].trigger.base_rate *= 20.0;
    let report = check(&temperature_golden(), &temperature_metrics(&suite, &perturbed, true));
    assert!(!report.passed(), "perturbation went undetected:\n{}", report.render());
}

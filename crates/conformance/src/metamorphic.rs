//! Metamorphic invariants: relations that must hold across layers no
//! matter how the simulation is driven.
//!
//! * **Population-scale invariance** — detected failure rates are
//!   intensive quantities: a 10k-CPU fleet and a 100k-CPU fleet drawn
//!   from the same generative model agree within sampling granularity.
//! * **Defect-mask monotonicity** — adding a defect to a processor never
//!   *removes* SDC records: each defect draws from its own forked RNG
//!   stream (see `silicon::Injector`), and control flow in the softcore
//!   ISA is data-independent on single-threaded testcases, so the
//!   retire/draw sequences of existing defects are untouched.
//! * **Transparency** — thread count, checkpoint/resume and operational
//!   chaos change how work is scheduled, never what is computed. All
//!   three reduce to [`check_transparent`]: run the same computation
//!   under every variant and require identical results.

use fleet::chaos::FaultPlan;
use fleet::screening::StaticSuiteProfile;
use fleet::checkpoint::{CampaignCheckpoint, CheckpointStore};
use fleet::supervisor::RetryPolicy;
use fleet::{
    campaign_fingerprint, run_campaign, run_campaign_on, run_campaign_resumable, FleetConfig,
    FleetPopulation, ResumableRun,
};
use sdc_model::{DetRng, Duration};
use silicon::Processor;
use toolchain::{ExecConfig, Executor, Suite};

/// Verdict of one metamorphic invariant.
#[derive(Debug, Clone)]
pub struct InvariantReport {
    /// Invariant name.
    pub name: String,
    /// Whether it held.
    pub pass: bool,
    /// Human-readable evidence (measured quantities; the failure on a
    /// miss).
    pub detail: String,
}

impl InvariantReport {
    fn of(name: &str, result: Result<String, String>) -> InvariantReport {
        match result {
            Ok(detail) => InvariantReport {
                name: name.to_string(),
                pass: true,
                detail,
            },
            Err(detail) => InvariantReport {
                name: name.to_string(),
                pass: false,
                detail,
            },
        }
    }
}

/// Runs `run` once per variant and requires every result to equal the
/// first; the error names the diverging variant.
pub fn check_transparent<T, F>(label: &str, variants: &[&str], mut run: F) -> Result<(), String>
where
    T: PartialEq + std::fmt::Debug,
    F: FnMut(&str) -> T,
{
    assert!(!variants.is_empty(), "need at least one variant");
    let baseline = run(variants[0]);
    for &v in &variants[1..] {
        let got = run(v);
        if got != baseline {
            return Err(format!(
                "{label}: variant {v:?} diverged from {:?}\n  {:?}\n  vs\n  {baseline:?}",
                variants[0], got
            ));
        }
    }
    Ok(())
}

/// [`check_transparent`], panicking with the diagnostic on divergence
/// (for use in tests).
pub fn assert_transparent<T, F>(label: &str, variants: &[&str], run: F)
where
    T: PartialEq + std::fmt::Debug,
    F: FnMut(&str) -> T,
{
    if let Err(e) = check_transparent(label, variants, run) {
        panic!("{e}");
    }
}

/// Maximum allowed |rate(10k) − rate(100k)| in ‱. At 10k CPUs one
/// defective processor moves the total rate by a full 1‱ and the
/// binomial sampling std of a ~3.3‱ rate is ~1.8‱; the band covers
/// 2σ of that granularity. The comparison itself is deterministic —
/// the band exists for model changes, not run-to-run noise.
pub const SCALE_BAND_BP: f64 = 3.6;

/// Population-scale invariance: 10k-CPU and 100k-CPU campaigns agree on
/// the total detected rate within [`SCALE_BAND_BP`].
pub fn population_scale_invariance(threads: usize) -> InvariantReport {
    let suite = Suite::standard();
    let rate = |total_cpus: u64| {
        run_campaign(
            &FleetConfig {
                total_cpus,
                seed: 2021,
                threads,
            },
            &suite,
        )
        .total_rate_bp()
    };
    let small = rate(10_000);
    let large = rate(100_000);
    let diff = (small - large).abs();
    InvariantReport::of(
        "population_scale_invariance",
        if diff <= SCALE_BAND_BP {
            Ok(format!(
                "total rate 10k: {small:.3}bp, 100k: {large:.3}bp, |diff| {diff:.3} <= {SCALE_BAND_BP}"
            ))
        } else {
            Err(format!(
                "total rate 10k: {small:.3}bp vs 100k: {large:.3}bp differ by {diff:.3} > {SCALE_BAND_BP}"
            ))
        },
    )
}

/// The per-defect-prefix SDC record counts of `processor` on its
/// matching single-threaded testcases.
fn prefix_record_counts(processor: &Processor, suite: &Suite, seed: u64) -> Vec<u64> {
    // One probe testcase per defect: the single-threaded suite testcase
    // that the defect's selectivity gate admits AND that executes the
    // most instructions of the defect's classes per cycle — the
    // selectivity hash alone admits testcases that never touch the
    // defective unit, which would leave the defect unexercised and the
    // check vacuous. Single-threaded so control flow — and therefore
    // every defect's draw sequence — is independent of the values other
    // defects corrupt.
    let profiles = StaticSuiteProfile::build(suite, processor.physical_cores as usize);
    let probes: Vec<_> = processor
        .defects
        .iter()
        .filter(|d| d.kind.is_computation())
        .filter_map(|d| {
            let classes = d.kind.classes();
            suite
                .testcases()
                .iter()
                .filter(|t| t.threads <= 1 && d.applies_to(t.id))
                .map(|t| {
                    let usage: f64 = profiles
                        .get(t.id.0 as usize)
                        .sites_per_cycle
                        .iter()
                        .filter(|((class, _), _)| classes.contains(class))
                        .map(|(_, &per_cycle)| per_cycle)
                        .sum();
                    (t.id, usage)
                })
                .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite usage"))
                .map(|(id, _)| id)
        })
        .collect();
    let cores: Vec<u16> = (0..processor.physical_cores).collect();
    // Held at 85 ℃ so temperature-gated triggers (e.g. MIX1's 59 ℃
    // floor) fire often enough that every prefix count is nonzero.
    let cfg = ExecConfig {
        hold_temp_c: Some(85.0),
        ..ExecConfig::default()
    };
    (1..=processor.defects.len())
        .map(|k| {
            let mut truncated = processor.clone();
            truncated.defects.truncate(k);
            let mut total = 0u64;
            for &tc in &probes {
                let mut ex = Executor::new(&truncated, cfg);
                let mut rng = DetRng::new(seed);
                let run = ex.run(suite.get(tc), &cores, Duration::from_secs(60), &mut rng);
                total += run.records.len() as u64;
            }
            total
        })
        .collect()
}

/// Defect-mask monotonicity: for catalog processors, running with the
/// first `k` defects produces at most as many SDC records as running
/// with the first `k+1`, for every `k`.
pub fn defect_mask_monotonicity() -> InvariantReport {
    let suite = Suite::standard();
    let mut detail = String::new();
    for name in ["MIX1", "MIX2"] {
        let processor = silicon::catalog::by_name(name)
            .expect("invariant violated: monotonicity cases are in the catalog")
            .processor;
        let counts = prefix_record_counts(&processor, &suite, 9);
        if counts.last().is_none_or(|&n| n == 0) {
            return InvariantReport::of(
                "defect_mask_monotonicity",
                Err(format!(
                    "{name}: no defect fired ({counts:?}); the check is vacuous"
                )),
            );
        }
        for pair in counts.windows(2) {
            if pair[1] < pair[0] {
                return InvariantReport::of(
                    "defect_mask_monotonicity",
                    Err(format!(
                        "{name}: record counts per defect prefix {counts:?} are not monotone"
                    )),
                );
            }
        }
        detail.push_str(&format!("{name}: {counts:?}  "));
    }
    InvariantReport::of("defect_mask_monotonicity", Ok(detail.trim_end().to_string()))
}

/// Thread-count transparency: the same campaign at 1/2/4 worker threads
/// produces identical tables.
pub fn thread_transparency() -> InvariantReport {
    let suite = Suite::standard();
    let result = check_transparent("campaign tables vs threads", &["1", "2", "4"], |v| {
        let threads: usize = v.parse().expect("variant is a thread count");
        let out = run_campaign(
            &FleetConfig {
                total_cpus: 20_000,
                seed: 2021,
                threads,
            },
            &suite,
        );
        (out.table1(), out.table2(), out.escaped())
    });
    InvariantReport::of(
        "thread_transparency",
        result.map(|()| "tables identical at 1/2/4 threads (20k CPUs)".to_string()),
    )
}

/// Checkpoint transparency: a campaign killed mid-run and resumed from
/// its snapshot matches the uninterrupted campaign exactly.
pub fn checkpoint_transparency() -> InvariantReport {
    let suite = Suite::standard();
    // 100k CPUs yields ~34 defective items; at 10k there are only ~3,
    // too few for the kill hook below to fire before the run drains.
    let cfg = FleetConfig {
        total_cpus: 100_000,
        seed: 2021,
        threads: 2,
    };
    let pop = FleetPopulation::sample(&cfg);
    let plan = FaultPlan::default();
    let policy = RetryPolicy::default();
    let plain = run_campaign_on(&cfg, &suite, &pop);

    let path = std::env::temp_dir().join(format!(
        "conformance-ckpt-{}.json",
        std::process::id()
    ));
    let run = || -> Result<String, String> {
        // A snapshot lands on disk only every `every` completions and no
        // final write happens at the interrupt, so `every` must stay <=
        // `kill_after` for the resume below to have anything to load.
        let mut store = CheckpointStore::new(&path, 2);
        store.kill_after = Some(5);
        match run_campaign_resumable(&cfg, &suite, &pop, &plan, &policy, Some(&store), None) {
            Ok(ResumableRun::Interrupted) => {}
            Ok(ResumableRun::Completed(_)) => {
                return Err("kill hook never fired; population too small?".into())
            }
            Err(e) => return Err(format!("checkpointed run failed: {e:?}")),
        }
        let snapshot = CampaignCheckpoint::load(&path, &campaign_fingerprint(&cfg, &plan))
            .map_err(|e| format!("snapshot load failed: {e:?}"))?;
        let resumed = match run_campaign_resumable(
            &cfg,
            &suite,
            &pop,
            &plan,
            &policy,
            None,
            Some(&snapshot),
        ) {
            Ok(ResumableRun::Completed(run)) => run,
            other => return Err(format!("resume did not complete: {other:?}")),
        };
        if resumed.outcome.table1() != plain.table1()
            || resumed.outcome.table2() != plain.table2()
            || resumed.outcome.escaped() != plain.escaped()
        {
            return Err("resumed outcome differs from uninterrupted run".into());
        }
        Ok(format!(
            "kill@5 + resume == uninterrupted (100k CPUs, {} checkpointed items)",
            snapshot.items.len()
        ))
    };
    let result = run();
    let _ = std::fs::remove_file(&path);
    InvariantReport::of("checkpoint_transparency", result)
}

/// Chaos transparency: a stormy Farron round agrees with the quiet
/// round on every window the storm eventually completed.
pub fn chaos_transparency() -> InvariantReport {
    use farron::requeue::run_plan_requeue;
    use sdc_model::TestcaseId;
    use toolchain::{PlanEntry, TestPlan};

    let suite = Suite::standard();
    let simd1 = silicon::catalog::by_name("SIMD1")
        .expect("invariant violated: SIMD1 is in the catalog")
        .processor;
    let plan = TestPlan {
        entries: [0u32, 140, 300, 450, 560]
            .iter()
            .map(|&i| PlanEntry {
                testcase: TestcaseId(i),
                duration: Duration::from_secs(20),
            })
            .collect(),
    };
    let root = DetRng::new(55);
    let run = |chaos: &FaultPlan| {
        run_plan_requeue(
            &simd1,
            &suite,
            &plan,
            ExecConfig::default(),
            &root,
            None,
            0xabc,
            chaos,
            &RetryPolicy::default(),
        )
    };
    let quiet = run(&FaultPlan::default());
    let storm = run(&FaultPlan {
        seed: 13,
        offline: 0.10,
        crash: 0.05,
        preempt: 0.15,
        read_error: 0.10,
        timeout: 0.05,
    });
    let mut si = 0usize;
    for idx in 0..plan.entries.len() {
        if storm.lost.contains(&idx) {
            continue;
        }
        let q = &quiet.report.runs[idx];
        let s = &storm.report.runs[si];
        si += 1;
        if q.testcase != s.testcase || q.error_count != s.error_count || q.records != s.records {
            return InvariantReport::of(
                "chaos_transparency",
                Err(format!("window {idx} differs between quiet and stormy rounds")),
            );
        }
    }
    InvariantReport::of(
        "chaos_transparency",
        Ok(format!(
            "storm lost {} of {} windows; all completed windows identical to quiet round",
            storm.lost.len(),
            plan.entries.len()
        )),
    )
}

/// Runs every metamorphic invariant.
pub fn run_all(threads: usize) -> Vec<InvariantReport> {
    vec![
        population_scale_invariance(threads),
        defect_mask_monotonicity(),
        thread_transparency(),
        checkpoint_transparency(),
        chaos_transparency(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transparent_helper_flags_the_diverging_variant() {
        assert!(check_transparent("same", &["a", "b"], |_| 7u32).is_ok());
        let err = check_transparent("differs", &["a", "b"], |v| v.to_string()).unwrap_err();
        assert!(err.contains("\"b\""), "diverging variant named: {err}");
    }

    #[test]
    #[should_panic(expected = "diverging")]
    fn assert_transparent_panics_on_divergence() {
        assert_transparent("diverging", &["x", "y"], |v| v.len() + v.starts_with('y') as usize);
    }
}

//! Metric collectors: one number per paper-reproducible statistic.
//!
//! Each collector mirrors the corresponding `repro` artifact exactly
//! (same configs, seeds and derivations), so the conformance gate checks
//! the statistics a reader of EXPERIMENTS.md actually sees. The eval
//! collector is the exception: quick mode uses a deliberately small
//! evaluation (one round, short windows) so the CI thread matrix stays
//! fast — its golden values are recorded from the same small config.

use analysis::study::{run_deep_study, StudyConfig, StudyData};
use analysis::{
    bitflips, datatypes, features, observations, precision, reproducibility, temperature,
};
use farron::eval::{evaluate, EvalConfig, EvalRow};
use fleet::{run_campaign, CampaignOutcome, FleetConfig};
use sdc_model::{DataType, Duration};
use silicon::Processor;
use toolchain::Suite;

/// One measured statistic.
#[derive(Debug, Clone, PartialEq)]
pub struct Metric {
    /// Dotted name, e.g. `fig2.fpu`.
    pub name: String,
    /// Measured value.
    pub value: f64,
}

/// Shorthand constructor.
pub fn metric(name: impl Into<String>, value: f64) -> Metric {
    Metric {
        name: name.into(),
        value,
    }
}

/// The campaign config behind Tables 1–2, identical to `repro table1`.
pub fn campaign_config(quick: bool, threads: usize) -> FleetConfig {
    FleetConfig {
        total_cpus: if quick { 200_000 } else { 1_050_000 },
        seed: 2021,
        threads,
    }
}

/// The deep-study config, identical to `repro fig2`/`fig3`/….
pub fn study_config(quick: bool, threads: usize) -> StudyConfig {
    StudyConfig {
        per_testcase: if quick {
            Duration::from_secs(30)
        } else {
            Duration::from_mins(2)
        },
        seed: 27,
        max_candidates: if quick { Some(40) } else { None },
        threads,
        ..StudyConfig::default()
    }
}

/// The Farron evaluation config. Quick mode is a one-round miniature
/// (see module docs); full mode matches `repro table4`.
pub fn eval_config(quick: bool, threads: usize) -> EvalConfig {
    if quick {
        EvalConfig {
            reference_per_testcase: Duration::from_mins(1),
            seed: 711,
            online_duration: Duration::from_mins(15),
            rounds: 1,
            threads,
        }
    } else {
        EvalConfig {
            threads,
            ..EvalConfig::default()
        }
    }
}

fn slug(label: &str) -> String {
    label
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '_'
            }
        })
        .collect()
}

/// Table 1 / Table 2 metrics from a campaign outcome.
pub fn campaign_metrics(out: &CampaignOutcome) -> Vec<Metric> {
    let mut v = Vec::new();
    for (label, rate) in out.table1() {
        v.push(metric(format!("table1.{}_bp", slug(&label)), rate));
    }
    v.push(metric("table1.escaped_count", out.escaped() as f64));
    let summary = analysis::failure_rates::summarize(out);
    v.push(metric(
        "table1.pre_production_share",
        summary.pre_production_share,
    ));
    for (label, rate) in out.table2() {
        v.push(metric(format!("table2.{}_bp", slug(&label)), rate));
    }
    v
}

/// Study-derived metrics: Figures 2–7 and Observations 4–11.
pub fn study_metrics(study: &StudyData, suite: &Suite) -> Vec<Metric> {
    let mut v = Vec::new();
    for share in features::figure2(study, suite) {
        v.push(metric(
            format!("fig2.{}", slug(share.feature.label())),
            share.proportion,
        ));
    }
    // One columnar corpus serves every record-derived statistic below —
    // the record vector is collected once, not once per figure.
    let corpus = study.corpus();
    let shares = datatypes::figure3_from(&corpus);
    for s in &shares {
        v.push(metric(
            format!("fig3.{}", slug(s.datatype.label())),
            s.proportion,
        ));
    }
    let (float_share, other_share) = datatypes::float_vs_other_share(&shares);
    v.push(metric("fig3.float_mean_share", float_share));
    v.push(metric("fig3.other_mean_share", other_share));

    v.push(metric(
        "bitflips.zero_to_one_share",
        corpus.records.zero_to_one_share(),
    ));
    v.push(metric(
        "bitflips.f64_fraction_share",
        corpus.records.fraction_part_share(DataType::F64),
    ));
    let hist = corpus.records.bit_histogram(DataType::F64);
    v.push(metric("bitflips.f64_msb4_share", bitflips::msb_share(&hist, 4)));

    let settings = corpus.records.mine_patterns();
    let big: Vec<_> = settings.iter().filter(|s| s.n_records >= 20).collect();
    let mean_share = big.iter().map(|s| s.pattern_share).sum::<f64>() / big.len().max(1) as f64;
    v.push(metric("patterns.mean_share_20plus", mean_share));
    let mult = corpus.records.flip_multiplicity_with(&settings, DataType::F64);
    v.push(metric("patterns.f64_single_flip_share", mult.one));

    v.push(metric(
        "precision.f64_below_0p02pct",
        precision::loss_cdf(study.all_records(), DataType::F64).fraction_below(2e-4),
    ));

    v.push(metric(
        "obs9.share_above_one_per_min",
        reproducibility::summarize(study).share_above_one_per_min,
    ));

    let scope = observations::obs4_scope(study);
    v.push(metric("obs4.single_core_count", scope.single_core as f64));
    v.push(metric("obs4.multi_core_count", scope.multi_core as f64));
    let types = observations::obs5_types(study);
    v.push(metric("obs5.computation_count", types.computation as f64));
    v.push(metric("obs5.consistency_count", types.consistency as f64));
    v.push(metric(
        "obs5.single_type_invariant",
        if types.single_type_invariant { 1.0 } else { 0.0 },
    ));
    let eff = observations::obs11_effectiveness(study, suite);
    v.push(metric("obs11.ineffective_count", eff.ineffective as f64));
    v
}

/// Figure 8 / Figure 9 temperature metrics for the MIX1 panel.
///
/// Takes the processor as a parameter so tests can perturb a defect's
/// trigger model (`tests/golden_gate.rs`) and watch the gate trip.
pub fn temperature_metrics(suite: &Suite, processor: &Processor, quick: bool) -> Vec<Metric> {
    // Mirrors the MIX1 panel of `repro fig8`: defect 1 drives the panel,
    // the sweep runs on the defect's hottest-rate core, on the first
    // fpu/f64/fam2 testcase the defect's code paths reach.
    let didx = 1.min(processor.defects.len().saturating_sub(1));
    let defect = &processor.defects[didx];
    let core = (0..processor.physical_cores)
        .max_by(|&a, &b| {
            defect
                .rate(a, 70.0)
                .partial_cmp(&defect.rate(b, 70.0))
                .expect("invariant violated: defect rates are finite")
        })
        .unwrap_or(0);
    let tc = suite
        .testcases()
        .iter()
        .filter(|t| t.name.starts_with("fpu/f64/fam2"))
        .find(|t| defect.applies_to(t.id))
        .map(|t| t.id);
    let Some(tc) = tc else {
        // A perturbed selectivity seed can detach the defect from every
        // panel testcase; report sentinel values so the gate fails loudly
        // instead of panicking.
        return vec![
            metric("temperature.mix1_fit_r", f64::NAN),
            metric("temperature.mix1_t_min_c", f64::NAN),
        ];
    };
    // `repro fig8 --quick` uses 10-minute windows; at that length the
    // cooler half of the range measures zero (or a degenerate constant
    // frequency) and the fit is meaningless, so the gate uses the full
    // 60-minute window in both modes — the sweep is a small fraction of
    // the gate's total cost.
    let window = Duration::from_mins(60);
    let temps: Vec<f64> = (60..=76).step_by(2).map(f64::from).collect();
    let sweep = temperature::temperature_sweep(processor, suite, tc, core, &temps, window, 88);
    let mut v = vec![metric(
        "temperature.mix1_fit_r",
        sweep.fit.map(|f| f.r).unwrap_or(f64::NAN),
    )];
    let grid: Vec<f64> = (46..=80).step_by(2).map(f64::from).collect();
    let trig_window = if quick {
        Duration::from_mins(10)
    } else {
        Duration::from_mins(30)
    };
    let point = temperature::min_trigger_temp(
        processor,
        suite,
        tc,
        core,
        &grid,
        trig_window,
        90 + processor.id.0,
    );
    v.push(metric(
        "temperature.mix1_t_min_c",
        point.map(|p| p.min_trigger_temp_c).unwrap_or(f64::NAN),
    ));
    v
}

/// Table 4 / Figure 11 metrics from Farron evaluation rows.
pub fn eval_metrics(rows: &[EvalRow]) -> Vec<Metric> {
    let n = rows.len().max(1) as f64;
    let mean = |f: &dyn Fn(&EvalRow) -> f64| rows.iter().map(f).sum::<f64>() / n;
    vec![
        metric(
            "fig11.known_errors_total",
            rows.iter().map(|r| r.known_errors as f64).sum(),
        ),
        metric("fig11.mean_farron_coverage", mean(&|r| r.farron_coverage)),
        metric(
            "fig11.mean_baseline_coverage",
            mean(&|r| r.baseline_coverage),
        ),
        metric(
            "table4.mean_farron_round_hours",
            mean(&|r| r.farron_round_hours),
        ),
        metric(
            "table4.mean_baseline_round_hours",
            mean(&|r| r.baseline_round_hours),
        ),
        metric(
            "table4.mean_farron_test_overhead",
            mean(&|r| r.farron_test_overhead),
        ),
        metric(
            "table4.protected_sdc_events",
            rows.iter().map(|r| r.protected_sdc_events as f64).sum(),
        ),
    ]
}

/// Runs every collector and concatenates the metric vector. `progress`
/// is called before each expensive stage.
pub fn collect_metrics(
    quick: bool,
    threads: usize,
    mut progress: impl FnMut(&str),
) -> Vec<Metric> {
    let suite = Suite::standard();
    let mut v = Vec::new();

    progress("campaign (tables 1-2)");
    let outcome = run_campaign(&campaign_config(quick, threads), &suite);
    v.extend(campaign_metrics(&outcome));

    progress("deep study (figures 2-7, observations 4-11)");
    let study = run_deep_study(&study_config(quick, threads));
    v.extend(study_metrics(&study, &suite));

    progress("temperature sweep (figures 8-9, MIX1 panel)");
    let mix1 = silicon::catalog::by_name("MIX1")
        .expect("invariant violated: MIX1 is in the catalog")
        .processor;
    v.extend(temperature_metrics(&suite, &mix1, quick));

    progress("farron evaluation (table 4, figure 11)");
    let rows = evaluate(&eval_config(quick, threads));
    v.extend(eval_metrics(&rows));

    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slugs_are_lowercase_identifiers() {
        assert_eq!(slug("Re-install"), "re_install");
        assert_eq!(slug("FPU"), "fpu");
        assert_eq!(slug("float64x"), "float64x");
    }

    #[test]
    fn quick_configs_mirror_the_cli() {
        let c = campaign_config(true, 2);
        assert_eq!((c.total_cpus, c.seed, c.threads), (200_000, 2021, 2));
        let s = study_config(true, 2);
        assert_eq!(s.per_testcase, Duration::from_secs(30));
        assert_eq!(s.max_candidates, Some(40));
        assert_eq!(s.seed, 27);
        let e = eval_config(true, 2);
        assert_eq!(e.rounds, 1);
    }

    #[test]
    fn campaign_metrics_name_every_table1_row() {
        let out = run_campaign(
            &FleetConfig {
                total_cpus: 20_000,
                seed: 2021,
                threads: 1,
            },
            &Suite::standard(),
        );
        let m = campaign_metrics(&out);
        for want in [
            "table1.factory_bp",
            "table1.total_bp",
            "table1.escaped_count",
            "table1.pre_production_share",
            "table2.avg_bp",
        ] {
            assert!(m.iter().any(|x| x.name == want), "missing {want}");
        }
    }
}

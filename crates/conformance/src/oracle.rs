//! The differential softcore oracle.
//!
//! Generates seeded instruction streams covering the whole ISA —
//! integer/float/vector arithmetic, CRC and hash steps, x87
//! extended-precision chains, cache traffic (loads, stores, CAS, lock
//! sequences) and transactional sections — lowers them through
//! [`softcore::ProgramBuilder`], and executes each program twice: on a
//! defect-free [`softcore::Machine`] and on the independent
//! [`crate::reference::RefMachine`]. Any difference in final
//! architectural state (registers, x87 encodings, vector lanes, memory)
//! is a divergence; [`minimize`] shrinks the generating op sequence to a
//! minimal repro case by greedy removal and compound-op unwrapping (the
//! offline `proptest` shim has no shrinking of its own).

use crate::reference::RefMachine;
use sdc_model::{DataType, DetRng};
use softcore::{
    FOpKind, FaultHook, Inst, IntOpKind, LaneType, Machine, NoFaults, Precision, Program,
    ProgramBuilder, VOpKind, XOpKind,
};

/// Data region: words `0..DATA_WORDS` (vector/x87 accesses stay clear of
/// the top 6 words). Locks live above the data region and are touched
/// only by lock sequences, so spins always find the lock free.
const DATA_WORDS: u64 = 440;
/// Base address of the lock words.
const LOCK_BASE: u64 = DATA_WORDS * 8 + 64;
/// Distinct nested-lock slots (nesting depth is capped below this, so a
/// nested lock sequence never self-deadlocks on one core).
const LOCK_SLOTS: u64 = 4;

/// Integer register space visible to generated ops; register 31 is
/// reserved as the address register re-materialized before every memory
/// access.
const INT_REGS: u64 = 24;
const ADDR_REG: u8 = 31;

/// Oracle stream-generation parameters.
#[derive(Debug, Clone, Copy)]
pub struct OracleConfig {
    /// Machine memory size in bytes.
    pub mem_bytes: u64,
    /// Budget of generated ops per stream (compound bodies included).
    pub max_ops: usize,
}

impl Default for OracleConfig {
    fn default() -> Self {
        OracleConfig {
            mem_bytes: 4096,
            max_ops: 40,
        }
    }
}

/// One generated operation; compound variants carry nested bodies.
#[derive(Debug, Clone, PartialEq)]
pub enum GenOp {
    /// Scalar integer ALU op.
    Int(IntOpKind, DataType, u8, u8, u8),
    /// Scalar float op.
    F(FOpKind, Precision, u8, u8, u8),
    /// Fused multiply-add.
    Fma(Precision, u8, u8, u8, u8),
    /// Arctangent.
    Atan(Precision, u8, u8),
    /// x87 extended-precision op.
    X(XOpKind, u8, u8, u8),
    /// x87 arctangent.
    XAtan(u8, u8),
    /// Float → x87 conversion.
    XFromF(u8, u8),
    /// x87 → float conversion.
    XToF(u8, u8),
    /// Vector op.
    V(VOpKind, LaneType, u8, u8, u8, u8),
    /// CRC32 accumulation step.
    Crc(u8, u8, u8),
    /// Hash mixing step.
    Hash(u8, u8, u8),
    /// Register compare.
    CmpNe(u8, u8, u8),
    /// Integer load / store at a fixed data address.
    Load(u8, u64),
    /// Integer store.
    Store(u8, u64),
    /// Float load.
    LoadF(u8, u64),
    /// Float store.
    StoreF(u8, u64),
    /// Vector load (4 words).
    LoadV(u8, u64),
    /// Vector store.
    StoreV(u8, u64),
    /// x87 load (2 words).
    LoadX(u8, u64),
    /// x87 store.
    StoreX(u8, u64),
    /// Compare-and-swap `(dst, addr, expected, new)`.
    Cas(u8, u64, u8, u8),
    /// Fixed-count loop.
    Loop(u32, Vec<GenOp>),
    /// Lock-guarded section on lock slot `.0`.
    Locked(u64, Vec<GenOp>),
    /// Transactional section committing into flag register `.0`.
    Tx(u8, Vec<GenOp>),
}

fn gen_u64(rng: &mut DetRng) -> u64 {
    (rng.below(1 << 32) << 32) | rng.below(1 << 32)
}

fn gen_int_imm(rng: &mut DetRng) -> u64 {
    match rng.below(5) {
        0 => rng.below(16),
        1 => u64::MAX - rng.below(16),
        2 => 0xffff_ffff,
        3 => 1 << rng.below(63),
        _ => gen_u64(rng),
    }
}

fn gen_float_imm(rng: &mut DetRng) -> f64 {
    match rng.below(6) {
        0 => 0.0,
        1 => rng.below(100) as f64 - 50.0,
        2 => rng.range_f64(-1.0, 1.0),
        3 => rng.range_f64(-1e9, 1e9),
        4 => rng.range_f64(-1e-30, 1e-30),
        _ => f64::from_bits(gen_u64(rng)), // arbitrary bits incl. NaNs/infs
    }
}

const INT_DTS: [DataType; 7] = [
    DataType::Byte,
    DataType::I16,
    DataType::Bin16,
    DataType::I32,
    DataType::U32,
    DataType::Bin32,
    DataType::Bin64,
];

const INT_OPS: [IntOpKind; 9] = [
    IntOpKind::Add,
    IntOpKind::Sub,
    IntOpKind::Mul,
    IntOpKind::Div,
    IntOpKind::And,
    IntOpKind::Or,
    IntOpKind::Xor,
    IntOpKind::Shl,
    IntOpKind::Shr,
];

const F_OPS: [FOpKind; 4] = [FOpKind::Add, FOpKind::Sub, FOpKind::Mul, FOpKind::Div];
const X_OPS: [XOpKind; 4] = [XOpKind::Add, XOpKind::Sub, XOpKind::Mul, XOpKind::Div];
const V_OPS: [VOpKind; 4] = [VOpKind::Add, VOpKind::Mul, VOpKind::Fma, VOpKind::Xor];
const LANES: [LaneType; 3] = [LaneType::F32x8, LaneType::F64x4, LaneType::I32x8];

fn ireg(rng: &mut DetRng) -> u8 {
    rng.below(INT_REGS) as u8
}

fn freg(rng: &mut DetRng) -> u8 {
    rng.below(32) as u8
}

fn xreg(rng: &mut DetRng) -> u8 {
    rng.below(8) as u8
}

fn vreg(rng: &mut DetRng) -> u8 {
    rng.below(16) as u8
}

fn scalar_addr(rng: &mut DetRng) -> u64 {
    8 * rng.below(DATA_WORDS)
}

fn vec_addr(rng: &mut DetRng) -> u64 {
    8 * rng.below(DATA_WORDS - 3)
}

fn x87_addr(rng: &mut DetRng) -> u64 {
    8 * rng.below(DATA_WORDS - 1)
}

fn prec(rng: &mut DetRng) -> Precision {
    if rng.chance(0.5) {
        Precision::F32
    } else {
        Precision::F64
    }
}

/// Generates one op, recursing into compound bodies. `budget` counts
/// every generated op; `loop_depth`/`lock_depth`/`in_tx` bound nesting.
fn gen_op(
    rng: &mut DetRng,
    budget: &mut usize,
    loop_depth: usize,
    lock_depth: usize,
    in_tx: bool,
) -> GenOp {
    *budget = budget.saturating_sub(1);
    // Compound ops are rarer and gated by remaining budget and depth.
    let compound_ok = *budget >= 2;
    let pick = rng.below(100);
    if compound_ok && pick < 8 && loop_depth < 2 {
        let count = rng.below(4) as u32 + 1;
        let body = gen_body(rng, budget, loop_depth + 1, lock_depth, in_tx);
        return GenOp::Loop(count, body);
    }
    if compound_ok && pick < 14 && lock_depth < LOCK_SLOTS as usize && !in_tx {
        let body = gen_body(rng, budget, loop_depth, lock_depth + 1, in_tx);
        return GenOp::Locked(lock_depth as u64, body);
    }
    if compound_ok && pick < 20 && !in_tx && lock_depth == 0 {
        let flag = ireg(rng);
        let body = gen_body(rng, budget, loop_depth, lock_depth, true);
        return GenOp::Tx(flag, body);
    }
    match rng.below(17) {
        0 | 1 => GenOp::Int(
            INT_OPS[rng.below(INT_OPS.len() as u64) as usize],
            INT_DTS[rng.below(INT_DTS.len() as u64) as usize],
            ireg(rng),
            ireg(rng),
            ireg(rng),
        ),
        2 | 3 => GenOp::F(
            F_OPS[rng.below(F_OPS.len() as u64) as usize],
            prec(rng),
            freg(rng),
            freg(rng),
            freg(rng),
        ),
        4 => GenOp::Fma(prec(rng), freg(rng), freg(rng), freg(rng), freg(rng)),
        5 => {
            if rng.chance(0.5) {
                GenOp::Atan(prec(rng), freg(rng), freg(rng))
            } else {
                GenOp::XAtan(xreg(rng), xreg(rng))
            }
        }
        6 => match rng.below(3) {
            0 => GenOp::X(
                X_OPS[rng.below(X_OPS.len() as u64) as usize],
                xreg(rng),
                xreg(rng),
                xreg(rng),
            ),
            1 => GenOp::XFromF(xreg(rng), freg(rng)),
            _ => GenOp::XToF(freg(rng), xreg(rng)),
        },
        7 | 8 => GenOp::V(
            V_OPS[rng.below(V_OPS.len() as u64) as usize],
            LANES[rng.below(LANES.len() as u64) as usize],
            vreg(rng),
            vreg(rng),
            vreg(rng),
            vreg(rng),
        ),
        9 => GenOp::Crc(ireg(rng), ireg(rng), ireg(rng)),
        10 => GenOp::Hash(ireg(rng), ireg(rng), ireg(rng)),
        11 => GenOp::CmpNe(ireg(rng), ireg(rng), ireg(rng)),
        12 => {
            if rng.chance(0.5) {
                GenOp::Load(ireg(rng), scalar_addr(rng))
            } else {
                GenOp::Store(ireg(rng), scalar_addr(rng))
            }
        }
        13 => {
            if rng.chance(0.5) {
                GenOp::LoadF(freg(rng), scalar_addr(rng))
            } else {
                GenOp::StoreF(freg(rng), scalar_addr(rng))
            }
        }
        14 => {
            if rng.chance(0.5) {
                GenOp::LoadV(vreg(rng), vec_addr(rng))
            } else {
                GenOp::StoreV(vreg(rng), vec_addr(rng))
            }
        }
        15 => {
            if rng.chance(0.5) {
                GenOp::LoadX(xreg(rng), x87_addr(rng))
            } else {
                GenOp::StoreX(xreg(rng), x87_addr(rng))
            }
        }
        _ => GenOp::Cas(ireg(rng), scalar_addr(rng), ireg(rng), ireg(rng)),
    }
}

fn gen_body(
    rng: &mut DetRng,
    budget: &mut usize,
    loop_depth: usize,
    lock_depth: usize,
    in_tx: bool,
) -> Vec<GenOp> {
    let mut body = vec![gen_op(rng, budget, loop_depth, lock_depth, in_tx)];
    while *budget > 0 && rng.chance(0.6) {
        body.push(gen_op(rng, budget, loop_depth, lock_depth, in_tx));
    }
    body
}

/// Generates the op sequence of stream `seed`.
pub fn gen_ops(seed: u64, cfg: &OracleConfig) -> Vec<GenOp> {
    let mut rng = DetRng::new(seed).fork_str("oracle-ops");
    let mut budget = cfg.max_ops;
    let mut ops = Vec::new();
    while budget > 0 {
        ops.push(gen_op(&mut rng, &mut budget, 0, 0, false));
    }
    ops
}

fn lower_op(b: &mut ProgramBuilder, op: &GenOp) {
    match *op {
        GenOp::Int(k, dt, d, x, y) => {
            b.int_op(k, dt, d, x, y);
        }
        GenOp::F(k, p, d, x, y) => {
            b.fop(k, p, d, x, y);
        }
        GenOp::Fma(p, d, x, y, z) => {
            b.ffma(p, d, x, y, z);
        }
        GenOp::Atan(p, d, x) => {
            b.fatan(p, d, x);
        }
        GenOp::X(k, d, x, y) => {
            b.xop(k, d, x, y);
        }
        GenOp::XAtan(d, x) => {
            b.xatan(d, x);
        }
        GenOp::XFromF(d, s) => {
            b.push(Inst::XFromF { dst: d, src: s });
        }
        GenOp::XToF(d, s) => {
            b.push(Inst::XToF { dst: d, src: s });
        }
        GenOp::V(k, lane, d, x, y, z) => {
            b.vop(k, lane, d, x, y, z);
        }
        GenOp::Crc(d, acc, data) => {
            b.crc32_step(d, acc, data);
        }
        GenOp::Hash(d, acc, data) => {
            b.hash_mix(d, acc, data);
        }
        GenOp::CmpNe(d, x, y) => {
            b.cmp_ne(d, x, y);
        }
        GenOp::Load(d, addr) => {
            b.mov_imm(ADDR_REG, addr);
            b.load(d, ADDR_REG, 0);
        }
        GenOp::Store(s, addr) => {
            b.mov_imm(ADDR_REG, addr);
            b.store(s, ADDR_REG, 0);
        }
        GenOp::LoadF(d, addr) => {
            b.mov_imm(ADDR_REG, addr);
            b.load_f(d, ADDR_REG, 0);
        }
        GenOp::StoreF(s, addr) => {
            b.mov_imm(ADDR_REG, addr);
            b.store_f(s, ADDR_REG, 0);
        }
        GenOp::LoadV(d, addr) => {
            b.mov_imm(ADDR_REG, addr);
            b.load_v(d, ADDR_REG, 0);
        }
        GenOp::StoreV(s, addr) => {
            b.mov_imm(ADDR_REG, addr);
            b.store_v(s, ADDR_REG, 0);
        }
        GenOp::LoadX(d, addr) => {
            b.mov_imm(ADDR_REG, addr);
            b.load_x(d, ADDR_REG, 0);
        }
        GenOp::StoreX(s, addr) => {
            b.mov_imm(ADDR_REG, addr);
            b.store_x(s, ADDR_REG, 0);
        }
        GenOp::Cas(d, addr, expected, new) => {
            b.mov_imm(ADDR_REG, addr);
            b.push(Inst::Cas {
                dst: d,
                addr: ADDR_REG,
                expected,
                new,
            });
        }
        GenOp::Loop(count, ref body) => {
            b.loop_start(count);
            for op in body {
                lower_op(b, op);
            }
            b.loop_end();
        }
        GenOp::Locked(slot, ref body) => {
            let addr = LOCK_BASE + 8 * (slot % LOCK_SLOTS);
            b.mov_imm(ADDR_REG, addr);
            b.lock_acquire(ADDR_REG);
            for op in body {
                lower_op(b, op);
            }
            b.mov_imm(ADDR_REG, addr);
            b.lock_release(ADDR_REG);
        }
        GenOp::Tx(flag, ref body) => {
            b.tx_begin();
            for op in body {
                lower_op(b, op);
            }
            b.tx_commit(flag);
        }
    }
}

/// One lowered differential test case.
#[derive(Debug, Clone)]
pub struct StreamCase {
    /// Stream seed.
    pub seed: u64,
    /// The generating ops (minimization operates on these).
    pub ops: Vec<GenOp>,
    /// The lowered program (preamble + ops).
    pub program: Program,
    /// Initial data-region memory words.
    pub init_mem: Vec<u64>,
}

/// Lowers `ops` with the register/memory preamble of stream `seed`.
pub fn lower(seed: u64, _cfg: &OracleConfig, ops: &[GenOp]) -> StreamCase {
    let mut rng = DetRng::new(seed).fork_str("oracle-init");
    let init_mem: Vec<u64> = (0..DATA_WORDS).map(|_| gen_u64(&mut rng)).collect();
    let mut b = ProgramBuilder::new();
    for r in 0..INT_REGS as u8 {
        b.mov_imm(r, gen_int_imm(&mut rng));
    }
    for r in 0..32u8 {
        b.fmov_imm(r, gen_float_imm(&mut rng));
    }
    for r in 0..8u8 {
        b.push(Inst::XFromF {
            dst: r,
            src: rng.below(32) as u8,
        });
    }
    for r in 0..16u8 {
        b.mov_imm(ADDR_REG, 8 * 4 * r as u64);
        b.load_v(r, ADDR_REG, 0);
    }
    for op in ops {
        lower_op(&mut b, op);
    }
    StreamCase {
        seed,
        ops: ops.to_vec(),
        program: b.build(),
        init_mem,
    }
}

/// Generates and lowers stream `seed` in one step.
pub fn gen_case(seed: u64, cfg: &OracleConfig) -> StreamCase {
    let ops = gen_ops(seed, cfg);
    lower(seed, cfg, &ops)
}

/// A state difference between the softcore and the reference.
#[derive(Debug, Clone, PartialEq)]
pub struct Divergence {
    /// Which state diverged (`int`, `float`, `x87`, `vec`, `mem`,
    /// `completed`).
    pub field: String,
    /// Register number, memory word index, or 0.
    pub index: usize,
    /// Softcore-side bits.
    pub machine_bits: u128,
    /// Reference-side bits.
    pub reference_bits: u128,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}[{}]: softcore {:#x} vs reference {:#x}",
            self.field, self.index, self.machine_bits, self.reference_bits
        )
    }
}

/// Executes `case` on the softcore (through `hook`) and on the
/// reference, returning the first divergence found.
pub fn run_case(case: &StreamCase, cfg: &OracleConfig, hook: &mut dyn FaultHook) -> Option<Divergence> {
    let max_steps = case.program.estimated_steps() * 3 + 4096;

    let mut machine = Machine::new(1, cfg.mem_bytes);
    for (i, &w) in case.init_mem.iter().enumerate() {
        machine.mem.raw_write_u64(8 * i as u64, w);
    }
    machine.load(0, case.program.clone());
    let mut rng = DetRng::new(case.seed).fork_str("oracle-run");
    let outcome = machine.run(hook, &mut rng, max_steps);

    let mut reference = RefMachine::new((cfg.mem_bytes / 8) as usize);
    for (i, &w) in case.init_mem.iter().enumerate() {
        reference.poke(8 * i as u64, w);
    }
    reference.run(&case.program, max_steps);

    if outcome.completed != reference.completed {
        return Some(Divergence {
            field: "completed".into(),
            index: 0,
            machine_bits: outcome.completed as u128,
            reference_bits: reference.completed as u128,
        });
    }
    let regs = &machine.core(0).regs;
    for r in 0..32u8 {
        if regs.int(r) != reference.int[r as usize] {
            return Some(Divergence {
                field: "int".into(),
                index: r as usize,
                machine_bits: regs.int(r) as u128,
                reference_bits: reference.int[r as usize] as u128,
            });
        }
    }
    for r in 0..32u8 {
        let (m, rf) = (regs.float(r).to_bits(), reference.float[r as usize].to_bits());
        if m != rf {
            return Some(Divergence {
                field: "float".into(),
                index: r as usize,
                machine_bits: m as u128,
                reference_bits: rf as u128,
            });
        }
    }
    for r in 0..8u8 {
        let (m, rf) = (regs.x87(r).encode(), reference.x87[r as usize].encode());
        if m != rf {
            return Some(Divergence {
                field: "x87".into(),
                index: r as usize,
                machine_bits: m,
                reference_bits: rf,
            });
        }
    }
    for r in 0..16u8 {
        let m = regs.vec(r);
        for (w, (&mw, &rw)) in m.iter().zip(&reference.vec[r as usize]).enumerate() {
            if mw != rw {
                return Some(Divergence {
                    field: "vec".into(),
                    index: r as usize * 4 + w,
                    machine_bits: mw as u128,
                    reference_bits: rw as u128,
                });
            }
        }
    }
    for w in 0..(cfg.mem_bytes / 8) {
        let (m, rf) = (machine.mem.raw_read_u64(8 * w), reference.peek(8 * w));
        if m != rf {
            return Some(Divergence {
                field: "mem".into(),
                index: w as usize,
                machine_bits: m as u128,
                reference_bits: rf as u128,
            });
        }
    }
    None
}

/// Result of a differential sweep.
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    /// Streams executed.
    pub streams: u64,
    /// `(seed, divergence)` of every diverging stream.
    pub divergences: Vec<(u64, Divergence)>,
}

/// Runs `streams` defect-free differential streams (seeds `0..streams`),
/// sharded over `threads` workers.
pub fn sweep(streams: u64, threads: usize, cfg: &OracleConfig) -> SweepOutcome {
    let seeds: Vec<u64> = (0..streams).collect();
    let results = fleet::parallel::run_indexed(&seeds, threads, |_, &seed| {
        let case = gen_case(seed, cfg);
        run_case(&case, cfg, &mut NoFaults).map(|d| (seed, d))
    });
    SweepOutcome {
        streams,
        divergences: results.into_iter().flatten().collect(),
    }
}

fn count_ops(ops: &[GenOp]) -> usize {
    ops.iter()
        .map(|op| match op {
            GenOp::Loop(_, b) | GenOp::Locked(_, b) | GenOp::Tx(_, b) => 1 + count_ops(b),
            _ => 1,
        })
        .sum()
}

/// Candidate reductions at top-level position `i`: remove the op, or
/// replace a compound op with its body (recursion into nested bodies
/// happens as the unwrapped body surfaces to the top level).
fn reduced(ops: &[GenOp], i: usize, unwrap: bool) -> Vec<GenOp> {
    let mut out = Vec::with_capacity(ops.len());
    out.extend_from_slice(&ops[..i]);
    if unwrap {
        match &ops[i] {
            GenOp::Loop(_, b) | GenOp::Locked(_, b) | GenOp::Tx(_, b) => out.extend_from_slice(b),
            _ => {}
        }
    }
    out.extend_from_slice(&ops[i + 1..]);
    out
}

/// A minimized diverging case.
#[derive(Debug, Clone)]
pub struct ShrunkCase {
    /// The stream seed.
    pub seed: u64,
    /// The minimal op sequence that still diverges.
    pub ops: Vec<GenOp>,
    /// Its divergence.
    pub divergence: Divergence,
}

impl ShrunkCase {
    /// Renders the repro: seed, ops, and the divergence.
    pub fn render(&self) -> String {
        let mut out = format!(
            "shrunk repro (seed {}, {} ops): {}\n",
            self.seed,
            count_ops(&self.ops),
            self.divergence
        );
        for op in &self.ops {
            out.push_str(&format!("  {op:?}\n"));
        }
        out
    }
}

/// Greedily minimizes the ops of stream `seed` while the case keeps
/// diverging under hooks built by `hook_factory` (a fresh hook per
/// attempt, so stateful fault hooks replay identically). Returns `None`
/// if the original case does not diverge.
pub fn minimize(
    seed: u64,
    cfg: &OracleConfig,
    hook_factory: &dyn Fn() -> Box<dyn FaultHook>,
) -> Option<ShrunkCase> {
    let diverges = |ops: &[GenOp]| -> Option<Divergence> {
        let case = lower(seed, cfg, ops);
        run_case(&case, cfg, &mut *hook_factory())
    };
    let mut ops = gen_ops(seed, cfg);
    let mut divergence = diverges(&ops)?;
    loop {
        let mut improved = false;
        let mut i = 0;
        while i < ops.len() {
            let removed = reduced(&ops, i, false);
            if let Some(d) = diverges(&removed) {
                ops = removed;
                divergence = d;
                improved = true;
                continue; // same index now holds the next op
            }
            if matches!(
                ops[i],
                GenOp::Loop(..) | GenOp::Locked(..) | GenOp::Tx(..)
            ) {
                let unwrapped = reduced(&ops, i, true);
                if let Some(d) = diverges(&unwrapped) {
                    ops = unwrapped;
                    divergence = d;
                    improved = true;
                    continue;
                }
            }
            i += 1;
        }
        if !improved {
            return Some(ShrunkCase {
                seed,
                ops,
                divergence,
            });
        }
    }
}

/// A fault hook that flips one bit of the `nth` retiring value — the
/// seeded defect used to prove the oracle catches real divergences.
#[derive(Debug, Clone)]
pub struct FlipRetire {
    /// Zero-based index of the retire to corrupt.
    pub nth: u64,
    /// Bit position to flip (reduced modulo the retiring width).
    pub bit: u32,
    seen: u64,
}

impl FlipRetire {
    /// A hook flipping bit `bit` of retire number `nth`.
    pub fn new(nth: u64, bit: u32) -> Self {
        FlipRetire { nth, bit, seen: 0 }
    }
}

impl FaultHook for FlipRetire {
    fn corrupt(&mut self, info: &softcore::RetireInfo) -> Option<u128> {
        let n = self.seen;
        self.seen += 1;
        if n == self.nth {
            Some(info.bits ^ (1u128 << (self.bit % info.dt.bits())))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_streams_are_deterministic_per_seed() {
        let cfg = OracleConfig::default();
        assert_eq!(gen_ops(7, &cfg), gen_ops(7, &cfg));
        assert_ne!(gen_ops(7, &cfg), gen_ops(8, &cfg));
    }

    #[test]
    fn defect_free_streams_do_not_diverge_smoke() {
        let cfg = OracleConfig::default();
        for seed in 0..200 {
            let case = gen_case(seed, &cfg);
            if let Some(d) = run_case(&case, &cfg, &mut NoFaults) {
                panic!("seed {seed} diverged defect-free: {d}");
            }
        }
    }

    #[test]
    fn generator_covers_compound_and_memory_ops() {
        let cfg = OracleConfig::default();
        let mut saw = (false, false, false, false);
        for seed in 0..300 {
            for op in gen_ops(seed, &cfg) {
                match op {
                    GenOp::Loop(..) => saw.0 = true,
                    GenOp::Locked(..) => saw.1 = true,
                    GenOp::Tx(..) => saw.2 = true,
                    GenOp::Store(..) | GenOp::Load(..) | GenOp::Cas(..) => saw.3 = true,
                    _ => {}
                }
            }
        }
        assert_eq!(saw, (true, true, true, true), "loop/lock/tx/mem all generated");
    }

    #[test]
    fn flipped_retire_is_flagged_and_minimized() {
        let cfg = OracleConfig::default();
        // Scan a few (seed, retire) combinations until the flip lands in
        // observable state; the oracle must flag it and shrink the case.
        let mut proven = false;
        'outer: for seed in 0..20u64 {
            for nth in [5u64, 20, 60] {
                let factory =
                    move || Box::new(FlipRetire::new(nth, 3)) as Box<dyn FaultHook>;
                let case = gen_case(seed, &cfg);
                if run_case(&case, &cfg, &mut *factory()).is_none() {
                    continue;
                }
                let shrunk = minimize(seed, &cfg, &factory)
                    .expect("diverging case must survive minimization");
                assert!(
                    count_ops(&shrunk.ops) <= count_ops(&case.ops),
                    "shrinking never grows the case"
                );
                let relowered = lower(seed, &cfg, &shrunk.ops);
                assert!(
                    run_case(&relowered, &cfg, &mut *factory()).is_some(),
                    "shrunk case still reproduces:\n{}",
                    shrunk.render()
                );
                proven = true;
                break 'outer;
            }
        }
        assert!(proven, "no (seed, retire) combination produced a divergence");
    }
}

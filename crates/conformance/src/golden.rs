//! The golden-statistics file and the pass/fail conformance report.
//!
//! `GOLDEN.json` is checked into the crate and embedded at compile time.
//! It holds one metric set per mode (`quick`, `full`); each metric is a
//! `(name, value, tol)` triple and passes when the measured value lands
//! in the closed band `[value − tol, value + tol]`. The simulation is
//! fully deterministic, so golden values are *exact* reproductions of a
//! past run and bands exist only to absorb deliberate, reviewed model
//! changes — they are chosen tight enough that a perturbed defect-model
//! parameter trips the gate (see `tests/golden_gate.rs`).

use crate::metrics::Metric;
use serde::{Deserialize, Serialize};

/// The embedded golden file (regenerate with `repro conform --quick
/// --write-golden crates/conformance/GOLDEN.json`).
pub const GOLDEN_JSON: &str = include_str!("../GOLDEN.json");

/// One golden statistic: the recorded value and its tolerance band.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GoldenMetric {
    /// Metric name, e.g. `table1.total_bp` or `fig2.fpu`.
    pub name: String,
    /// Recorded golden value.
    pub value: f64,
    /// Half-width of the acceptance band around `value`.
    pub tol: f64,
}

serde::impl_json_struct!(GoldenMetric { name, value, tol });

/// All golden metrics of one mode.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GoldenSet {
    /// `"quick"` or `"full"`.
    pub mode: String,
    /// The metrics, in report order.
    pub metrics: Vec<GoldenMetric>,
}

serde::impl_json_struct!(GoldenSet { mode, metrics });

/// The whole golden file.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GoldenFile {
    /// Bumped when the metric naming scheme changes incompatibly.
    pub version: u32,
    /// One set per mode.
    pub sets: Vec<GoldenSet>,
}

serde::impl_json_struct!(GoldenFile { version, sets });

impl GoldenFile {
    /// The set for `mode`, if recorded.
    pub fn set(&self, mode: &str) -> Option<&GoldenSet> {
        self.sets.iter().find(|s| s.mode == mode)
    }
}

/// Parses the embedded `GOLDEN.json`. Panics on malformed content — the
/// file is a checked-in build artifact, not runtime input.
pub fn golden_file() -> GoldenFile {
    parse_golden(GOLDEN_JSON).expect("invariant violated: embedded GOLDEN.json parses")
}

/// Parses golden-file JSON from a string (used for regeneration and by
/// tests that perturb the file).
pub fn parse_golden(json: &str) -> Result<GoldenFile, String> {
    serde_json::from_str(json).map_err(|e| e.to_string())
}

/// One line of the conformance report.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricCheck {
    /// Metric name.
    pub name: String,
    /// Measured value (`NaN` when the collector did not produce it).
    pub value: f64,
    /// Golden value.
    pub golden: f64,
    /// Band half-width.
    pub tol: f64,
    /// Whether `value` is inside `[golden − tol, golden + tol]`.
    pub pass: bool,
}

/// The result of checking a measured metric vector against a golden set.
#[derive(Debug, Clone)]
pub struct ConformanceReport {
    /// The mode checked.
    pub mode: String,
    /// Per-metric verdicts, golden-set order; measured metrics missing
    /// from the golden set are appended as failures (the set must be
    /// regenerated whenever the collector grows).
    pub checks: Vec<MetricCheck>,
}

impl ConformanceReport {
    /// True when every metric is inside its band.
    pub fn passed(&self) -> bool {
        self.checks.iter().all(|c| c.pass)
    }

    /// The failing checks.
    pub fn failures(&self) -> Vec<&MetricCheck> {
        self.checks.iter().filter(|c| !c.pass).collect()
    }

    /// Renders the report: every metric, its value, the golden value and
    /// the band, with a verdict column.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "conformance report ({} mode): {} metrics, {} failing\n",
            self.mode,
            self.checks.len(),
            self.failures().len()
        ));
        out.push_str(&format!(
            "{:<34} {:>12} {:>12} {:>10}  verdict\n",
            "metric", "measured", "golden", "band"
        ));
        for c in &self.checks {
            out.push_str(&format!(
                "{:<34} {:>12.4} {:>12.4} {:>10}  {}\n",
                c.name,
                c.value,
                c.golden,
                format!("±{:.4}", c.tol),
                if c.pass { "ok" } else { "FAIL" }
            ));
        }
        out
    }
}

/// Checks measured metrics against a golden set. Every golden metric
/// must be measured and in band; every measured metric must be golden
/// (strict in both directions, so the set cannot silently rot).
pub fn check(set: &GoldenSet, measured: &[Metric]) -> ConformanceReport {
    let mut checks = Vec::with_capacity(set.metrics.len());
    for g in &set.metrics {
        let m = measured.iter().find(|m| m.name == g.name);
        let value = m.map(|m| m.value).unwrap_or(f64::NAN);
        let pass = m.is_some() && (value - g.value).abs() <= g.tol;
        checks.push(MetricCheck {
            name: g.name.clone(),
            value,
            golden: g.value,
            tol: g.tol,
            pass,
        });
    }
    for m in measured {
        if !set.metrics.iter().any(|g| g.name == m.name) {
            checks.push(MetricCheck {
                name: format!("{} (not in golden set)", m.name),
                value: m.value,
                golden: f64::NAN,
                tol: 0.0,
                pass: false,
            });
        }
    }
    ConformanceReport {
        mode: set.mode.clone(),
        checks,
    }
}

/// Default band half-width for a newly recorded metric, by name shape.
/// Deterministic replay reproduces golden values exactly; bands only
/// leave room for deliberate model adjustments while staying tight
/// enough that a perturbed defect parameter trips the gate.
pub fn default_tol(name: &str, value: f64) -> f64 {
    if name.starts_with("table1.") || name.starts_with("table2.") {
        // Rates in ‱: generous relative slack, floored for tiny rates.
        (0.10 * value.abs()).max(0.25)
    } else if name.starts_with("temperature.") && name.ends_with("t_min_c") {
        // Grid steps are 2 ℃; one step of drift is tolerated.
        2.0
    } else if name.ends_with("_r") || name.contains("correlation") {
        // Pearson correlations.
        0.12
    } else if name.ends_with("_count") || name.ends_with("_events") || name.starts_with("obs4.")
        || name.starts_with("obs5.") || name.starts_with("obs11.")
        || name.contains("known_errors") || name.contains("escaped")
    {
        // Counts.
        (0.10 * value.abs()).max(2.0)
    } else if name.contains("hours") || name.contains("overhead") {
        (0.15 * value.abs()).max(0.02)
    } else {
        // Shares / proportions in [0, 1].
        0.06
    }
}

/// Builds a regenerated golden set from measured values, keeping each
/// existing metric's reviewed tolerance and applying [`default_tol`] to
/// new metrics.
pub fn regenerate(existing: Option<&GoldenSet>, mode: &str, measured: &[Metric]) -> GoldenSet {
    GoldenSet {
        mode: mode.to_string(),
        metrics: measured
            .iter()
            .map(|m| {
                let tol = existing
                    .and_then(|s| s.metrics.iter().find(|g| g.name == m.name))
                    .map(|g| g.tol)
                    .unwrap_or_else(|| default_tol(&m.name, m.value));
                GoldenMetric {
                    name: m.name.clone(),
                    value: m.value,
                    tol,
                }
            })
            .collect(),
    }
}

/// Serializes a golden file as indented-enough JSON (one metric per
/// line, so diffs of regenerated files review cleanly).
pub fn render_golden(file: &GoldenFile) -> String {
    let mut out = String::new();
    out.push_str(&format!("{{\"version\":{},\"sets\":[", file.version));
    for (i, set) in file.sets.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\n{{\"mode\":\"{}\",\"metrics\":[\n", set.mode));
        for (j, m) in set.metrics.iter().enumerate() {
            if j > 0 {
                out.push_str(",\n");
            }
            let mut line = String::new();
            m.serialize_json(&mut line);
            out.push_str(&line);
        }
        out.push_str("\n]}");
    }
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::metric;

    fn set() -> GoldenSet {
        GoldenSet {
            mode: "quick".into(),
            metrics: vec![
                GoldenMetric {
                    name: "a".into(),
                    value: 1.0,
                    tol: 0.1,
                },
                GoldenMetric {
                    name: "b".into(),
                    value: 2.0,
                    tol: 0.5,
                },
            ],
        }
    }

    #[test]
    fn in_band_metrics_pass_and_out_of_band_fail() {
        let r = check(&set(), &[metric("a", 1.05), metric("b", 2.6)]);
        assert!(!r.passed());
        assert!(r.checks[0].pass);
        assert!(!r.checks[1].pass, "2.6 is outside 2.0 ± 0.5");
        assert_eq!(r.failures().len(), 1);
    }

    #[test]
    fn band_edges_are_inclusive() {
        // b's lower edge 2.0 − 0.5 = 1.5 is exactly representable, so the
        // closed-interval check is observable without FP rounding noise.
        let r = check(&set(), &[metric("a", 1.0), metric("b", 1.5)]);
        assert!(r.passed(), "{}", r.render());
    }

    #[test]
    fn missing_and_unknown_metrics_fail() {
        let r = check(&set(), &[metric("a", 1.0), metric("c", 9.0)]);
        assert!(!r.passed());
        assert!(r.checks.iter().any(|c| c.name == "b" && !c.pass));
        assert!(r.checks.iter().any(|c| c.name.contains('c') && !c.pass));
    }

    #[test]
    fn render_names_every_metric_value_golden_and_band() {
        let r = check(&set(), &[metric("a", 1.0), metric("b", 2.0)]);
        let text = r.render();
        for needle in ["a", "b", "1.0000", "2.0000", "±0.1000", "±0.5000", "ok"] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }

    #[test]
    fn golden_roundtrip_through_json() {
        let file = GoldenFile {
            version: 1,
            sets: vec![set()],
        };
        let text = render_golden(&file);
        let back = parse_golden(&text).unwrap();
        assert_eq!(back, file);
    }

    #[test]
    fn embedded_golden_file_parses_and_has_both_modes() {
        let file = golden_file();
        assert!(file.set("quick").is_some(), "quick set recorded");
        for set in &file.sets {
            for m in &set.metrics {
                assert!(m.tol > 0.0, "{} must have a nonzero band", m.name);
                assert!(m.value.is_finite(), "{} must be finite", m.name);
            }
        }
    }

    #[test]
    fn regenerate_keeps_reviewed_tolerances() {
        let old = set();
        let new = regenerate(Some(&old), "quick", &[metric("a", 1.02), metric("z", 0.5)]);
        assert_eq!(new.metrics[0].tol, 0.1, "existing band kept");
        assert_eq!(new.metrics[0].value, 1.02, "value refreshed");
        assert!(new.metrics[1].tol > 0.0, "new metric gets a default band");
    }
}

//! Conformance gate: machine-checks that the simulated population still
//! reproduces the paper.
//!
//! Three layers, all wired into `repro conform [--quick]`:
//!
//! 1. **Golden statistics** ([`golden`], [`metrics`]): replay the study
//!    deterministically and assert every paper-reproducible statistic
//!    (Table 1 failure rates, feature/datatype shares, bitflip structure,
//!    temperature curves, Farron eval deltas) against the checked-in
//!    [`GOLDEN.json`](https://example.invalid) with explicit per-metric
//!    tolerance bands.
//! 2. **Differential softcore oracle** ([`oracle`], [`reference`]):
//!    property-based instruction streams executed both on a defect-free
//!    [`softcore::Machine`] and on an independent pure-Rust reference
//!    semantics; divergences are minimized to a shrunk repro case.
//! 3. **Metamorphic invariants** ([`metamorphic`]): population-scale
//!    invariance, defect-mask monotonicity, and chaos / checkpoint /
//!    thread-count transparency, folded into one reusable
//!    [`metamorphic::assert_transparent`] helper.

pub mod golden;
pub mod metamorphic;
pub mod metrics;
pub mod oracle;
pub mod reference;

pub use golden::{golden_file, ConformanceReport, GoldenFile, GoldenMetric, GoldenSet, MetricCheck};
pub use metrics::{collect_metrics, Metric};
pub use oracle::{Divergence, OracleConfig, SweepOutcome};

//! An independent, pure-Rust reference semantics for the softcore ISA.
//!
//! The reference machine executes the *same* [`softcore::Program`] as
//! the real [`softcore::Machine`], but shares none of its machinery: a
//! flat word-addressed memory instead of MESI-coherent L1 caches, direct
//! sequential execution instead of the cycle/energy pipeline model, and
//! independently formulated integer, CRC and hash arithmetic (nibble
//! tables and widened-arithmetic forms instead of the softcore's bitwise
//! loops and wrapping ops). Floating-point and x87 operations delegate
//! to the same IEEE semantics (`f32`/`f64` hardware ops and
//! [`softfloat::F80`]) — reimplementing IEEE-754 from scratch would test
//! the test, not the softcore; what the oracle checks there is the
//! plumbing: lane packing, widening, masking and retirement.
//!
//! Single-core only: the oracle's differential streams run one core, so
//! lock acquisition always succeeds against a free lock word and a
//! transaction can only conflict with itself (an untracked direct store
//! to an address in its own read set — which the softcore permits, and
//! the reference mirrors).

use softcore::{FOpKind, Inst, IntOpKind, LaneType, Precision, Program, VOpKind, XOpKind};
use softfloat::F80;
use std::collections::BTreeMap;

/// CRC32 nibble table for the reflected polynomial 0xEDB88320 — a
/// different formulation from the softcore's per-bit loop.
fn crc32_nibble_table() -> [u32; 16] {
    let mut table = [0u32; 16];
    for (n, slot) in table.iter_mut().enumerate() {
        let mut c = n as u32;
        for _ in 0..4 {
            c = if c & 1 != 0 { 0xedb8_8320 ^ (c >> 1) } else { c >> 1 };
        }
        *slot = c;
    }
    table
}

/// Reference CRC32 step over one little-endian u64.
pub fn ref_crc32_step(crc: u32, data: u64) -> u32 {
    let table = crc32_nibble_table();
    let mut c = crc;
    for byte in data.to_le_bytes() {
        c ^= byte as u32;
        c = table[(c & 0xf) as usize] ^ (c >> 4);
        c = table[(c & 0xf) as usize] ^ (c >> 4);
    }
    c
}

/// Reference hash mix (same constants as the softcore — they define the
/// function — but with the rotate spelled as shifts).
pub fn ref_hash_mix(acc: u64, data: u64) -> u64 {
    const P1: u64 = 0x9e37_79b1_85eb_ca87;
    const P2: u64 = 0xc2b2_ae3d_27d4_eb4f;
    let h = acc.wrapping_add(data.wrapping_mul(P1));
    // Deliberately spelled as shifts, not `rotate_left`, to stay
    // textually independent of the softcore's implementation.
    #[allow(clippy::manual_rotate)]
    let rotated = (h << 31) | (h >> 33);
    let h = rotated.wrapping_mul(P2);
    h ^ (h >> 29)
}

/// Reference integer ALU: operands pre-masked to the datatype width,
/// computed in widened `u128` arithmetic, result masked back.
fn ref_int_op(op: IntOpKind, x: u64, y: u64, width: u32, mask: u64) -> u64 {
    let xw = x as u128;
    let yw = y as u128;
    let wide_mask = mask as u128;
    let r = match op {
        IntOpKind::Add => (xw + yw) & wide_mask,
        // Two's-complement subtraction via addition of the complement.
        IntOpKind::Sub => (xw + ((!y as u128) & wide_mask) + 1) & wide_mask,
        IntOpKind::Mul => (xw * yw) & wide_mask,
        IntOpKind::Div => {
            if y == 0 {
                0
            } else {
                (xw / yw) & wide_mask
            }
        }
        IntOpKind::And => xw & yw,
        IntOpKind::Or => xw | yw,
        IntOpKind::Xor => xw ^ yw,
        IntOpKind::Shl => (xw << (y % width as u64)) & wide_mask,
        IntOpKind::Shr => (xw >> (y % width as u64)) & wide_mask,
    };
    r as u64
}

/// A pending single-core transaction.
#[derive(Debug, Default, Clone)]
struct RefTx {
    active: bool,
    /// First-read-wins read set: address → value seen.
    reads: BTreeMap<u64, u64>,
    /// Buffered writes: address → value.
    writes: BTreeMap<u64, u64>,
}

/// Architectural state of the reference machine.
#[derive(Debug, Clone)]
pub struct RefMachine {
    /// Integer registers.
    pub int: [u64; 32],
    /// Scalar float registers.
    pub float: [f64; 32],
    /// x87 extended-precision stack slots.
    pub x87: [F80; 8],
    /// Vector registers, four words each.
    pub vec: [[u64; 4]; 16],
    /// Flat word-addressed memory.
    mem: Vec<u64>,
    tx: RefTx,
    pc: usize,
    loops: Vec<(usize, u32)>,
    /// Whether the program ran to a `Halt` within the step budget.
    pub completed: bool,
    /// Retired instruction count.
    pub steps: u64,
}

impl RefMachine {
    /// A reference machine with `words` words of zeroed memory.
    pub fn new(words: usize) -> Self {
        RefMachine {
            int: [0; 32],
            float: [0.0; 32],
            x87: [F80::ZERO; 8],
            vec: [[0; 4]; 16],
            mem: vec![0; words],
            tx: RefTx::default(),
            pc: 0,
            loops: Vec::new(),
            completed: false,
            steps: 0,
        }
    }

    /// Writes a memory word before the run (mirrors the machine-side
    /// `raw_write_u64` pre-initialization).
    pub fn poke(&mut self, addr: u64, value: u64) {
        let idx = self.word(addr);
        self.mem[idx] = value;
    }

    /// Reads a memory word after the run.
    pub fn peek(&self, addr: u64) -> u64 {
        self.mem[self.word(addr)]
    }

    fn word(&self, addr: u64) -> usize {
        assert!(addr.is_multiple_of(8), "reference: unaligned access at {addr:#x}");
        let idx = (addr / 8) as usize;
        assert!(idx < self.mem.len(), "reference: OOB access at {addr:#x}");
        idx
    }

    /// Transactional read: write set, then memory with first-read-wins
    /// read-set recording — only `Load`/`Store` are transactional, like
    /// the softcore.
    fn tx_read(&mut self, addr: u64) -> u64 {
        if let Some(&v) = self.tx.writes.get(&addr) {
            return v;
        }
        let v = self.mem[self.word(addr)];
        self.tx.reads.entry(addr).or_insert(v);
        v
    }

    fn read(&mut self, addr: u64) -> u64 {
        if self.tx.active {
            self.tx_read(addr)
        } else {
            self.mem[self.word(addr)]
        }
    }

    fn write(&mut self, addr: u64, value: u64) {
        if self.tx.active {
            self.word(addr); // validate even when buffered
            self.tx.writes.insert(addr, value);
        } else {
            let idx = self.word(addr);
            self.mem[idx] = value;
        }
    }

    /// Non-transactional word access (float/vector/x87 loads and stores,
    /// CAS, locks — the softcore routes none of these through the
    /// transaction).
    fn direct_read(&self, addr: u64) -> u64 {
        self.mem[self.word(addr)]
    }

    fn direct_write(&mut self, addr: u64, value: u64) {
        let idx = self.word(addr);
        self.mem[idx] = value;
    }

    fn vec_f32(&self, r: u8, lane: usize) -> f32 {
        let word = self.vec[r as usize][lane / 2];
        f32::from_bits((word >> ((lane % 2) * 32)) as u32)
    }

    fn set_vec_f32(&mut self, r: u8, lane: usize, v: f32) {
        let word = &mut self.vec[r as usize][lane / 2];
        let shift = (lane % 2) * 32;
        *word = (*word & !(0xffff_ffffu64 << shift)) | ((v.to_bits() as u64) << shift);
    }

    fn vec_i32(&self, r: u8, lane: usize) -> u32 {
        let word = self.vec[r as usize][lane / 2];
        (word >> ((lane % 2) * 32)) as u32
    }

    fn set_vec_i32(&mut self, r: u8, lane: usize, v: u32) {
        let word = &mut self.vec[r as usize][lane / 2];
        let shift = (lane % 2) * 32;
        *word = (*word & !(0xffff_ffffu64 << shift)) | ((v as u64) << shift);
    }

    fn vec_f64(&self, r: u8, lane: usize) -> f64 {
        f64::from_bits(self.vec[r as usize][lane])
    }

    fn set_vec_f64(&mut self, r: u8, lane: usize, v: f64) {
        self.vec[r as usize][lane] = v.to_bits();
    }

    fn vop(&mut self, op: VOpKind, lane: LaneType, dst: u8, a: u8, b: u8, c: u8) {
        match lane {
            LaneType::F32x8 => {
                let mut out = [0f32; 8];
                for (i, slot) in out.iter_mut().enumerate() {
                    let (xa, xb, xc) =
                        (self.vec_f32(a, i), self.vec_f32(b, i), self.vec_f32(c, i));
                    *slot = match op {
                        VOpKind::Add => xa + xb,
                        VOpKind::Mul => xa * xb,
                        VOpKind::Fma => xa.mul_add(xb, xc),
                        VOpKind::Xor => f32::from_bits(xa.to_bits() ^ xb.to_bits()),
                    };
                }
                for (i, v) in out.into_iter().enumerate() {
                    self.set_vec_f32(dst, i, v);
                }
            }
            LaneType::F64x4 => {
                let mut out = [0f64; 4];
                for (i, slot) in out.iter_mut().enumerate() {
                    let (xa, xb, xc) =
                        (self.vec_f64(a, i), self.vec_f64(b, i), self.vec_f64(c, i));
                    *slot = match op {
                        VOpKind::Add => xa + xb,
                        VOpKind::Mul => xa * xb,
                        VOpKind::Fma => xa.mul_add(xb, xc),
                        VOpKind::Xor => f64::from_bits(xa.to_bits() ^ xb.to_bits()),
                    };
                }
                for (i, v) in out.into_iter().enumerate() {
                    self.set_vec_f64(dst, i, v);
                }
            }
            LaneType::I32x8 => {
                let mut out = [0u32; 8];
                for (i, slot) in out.iter_mut().enumerate() {
                    let (xa, xb, xc) = (
                        self.vec_i32(a, i) as i32,
                        self.vec_i32(b, i) as i32,
                        self.vec_i32(c, i) as i32,
                    );
                    *slot = match op {
                        VOpKind::Add => xa.wrapping_add(xb),
                        VOpKind::Mul => xa.wrapping_mul(xb),
                        VOpKind::Fma => xa.wrapping_mul(xb).wrapping_add(xc),
                        VOpKind::Xor => xa ^ xb,
                    } as u32;
                }
                for (i, v) in out.into_iter().enumerate() {
                    self.set_vec_i32(dst, i, v);
                }
            }
        }
    }

    /// Runs `program` until `Halt` or until `max_steps` retire.
    pub fn run(&mut self, program: &Program, max_steps: u64) {
        while self.steps < max_steps {
            if self.pc >= program.insts().len() {
                self.completed = true;
                return;
            }
            let inst = program.insts()[self.pc];
            if matches!(inst, Inst::Halt) {
                self.completed = true;
                return;
            }
            self.step(program, &inst);
            self.steps += 1;
        }
    }

    fn step(&mut self, program: &Program, inst: &Inst) {
        let mut next_pc = self.pc + 1;
        match *inst {
            Inst::MovImm { dst, imm } => self.int[dst as usize] = imm,
            Inst::Mov { dst, src } => self.int[dst as usize] = self.int[src as usize],
            Inst::AddImm { dst, src, imm } => {
                self.int[dst as usize] = self.int[src as usize].wrapping_add(imm)
            }
            Inst::IntOp { op, dt, dst, a, b } => {
                let mask = dt.mask() as u64;
                let x = self.int[a as usize] & mask;
                let y = self.int[b as usize] & mask;
                self.int[dst as usize] = ref_int_op(op, x, y, dt.bits(), mask);
            }
            Inst::FMovImm { dst, imm } => self.float[dst as usize] = imm,
            Inst::FOp {
                op,
                prec,
                dst,
                a,
                b,
            } => {
                self.float[dst as usize] = match prec {
                    Precision::F32 => {
                        let x = self.float[a as usize] as f32;
                        let y = self.float[b as usize] as f32;
                        let r = match op {
                            FOpKind::Add => x + y,
                            FOpKind::Sub => x - y,
                            FOpKind::Mul => x * y,
                            FOpKind::Div => x / y,
                        };
                        r as f64
                    }
                    Precision::F64 => {
                        let x = self.float[a as usize];
                        let y = self.float[b as usize];
                        match op {
                            FOpKind::Add => x + y,
                            FOpKind::Sub => x - y,
                            FOpKind::Mul => x * y,
                            FOpKind::Div => x / y,
                        }
                    }
                };
            }
            Inst::FFma { prec, dst, a, b, c } => {
                self.float[dst as usize] = match prec {
                    Precision::F32 => {
                        let r = (self.float[a as usize] as f32)
                            .mul_add(self.float[b as usize] as f32, self.float[c as usize] as f32);
                        r as f64
                    }
                    Precision::F64 => self.float[a as usize]
                        .mul_add(self.float[b as usize], self.float[c as usize]),
                };
            }
            Inst::FAtan { prec, dst, a } => {
                self.float[dst as usize] = match prec {
                    Precision::F32 => (self.float[a as usize] as f32).atan() as f64,
                    Precision::F64 => self.float[a as usize].atan(),
                };
            }
            Inst::XFromF { dst, src } => {
                self.x87[dst as usize] = F80::from_f64(self.float[src as usize])
            }
            Inst::XToF { dst, src } => {
                self.float[dst as usize] = self.x87[src as usize].to_f64()
            }
            Inst::XOp { op, dst, a, b } => {
                let x = self.x87[a as usize];
                let y = self.x87[b as usize];
                let r = match op {
                    XOpKind::Add => x + y,
                    XOpKind::Sub => x - y,
                    XOpKind::Mul => x * y,
                    XOpKind::Div => x / y,
                };
                // The softcore retires the 80-bit encoding and decodes it
                // back into the register; encode∘decode is identity on
                // F80 values, so assigning directly is equivalent.
                self.x87[dst as usize] = r;
            }
            Inst::XAtan { dst, a } => self.x87[dst as usize] = softfloat::atan(self.x87[a as usize]),
            Inst::VOp {
                op,
                lane,
                dst,
                a,
                b,
                c,
            } => self.vop(op, lane, dst, a, b, c),
            Inst::Crc32Step { dst, acc, data } => {
                self.int[dst as usize] = ref_crc32_step(
                    self.int[acc as usize] as u32,
                    self.int[data as usize],
                ) as u64;
            }
            Inst::HashMix { dst, acc, data } => {
                self.int[dst as usize] =
                    ref_hash_mix(self.int[acc as usize], self.int[data as usize]);
            }
            Inst::Load { dst, addr, offset } => {
                let a = self.int[addr as usize].wrapping_add(offset);
                self.int[dst as usize] = self.read(a);
            }
            Inst::Store { src, addr, offset } => {
                let a = self.int[addr as usize].wrapping_add(offset);
                let v = self.int[src as usize];
                self.write(a, v);
            }
            Inst::LoadF { dst, addr, offset } => {
                let a = self.int[addr as usize].wrapping_add(offset);
                self.float[dst as usize] = f64::from_bits(self.direct_read(a));
            }
            Inst::StoreF { src, addr, offset } => {
                let a = self.int[addr as usize].wrapping_add(offset);
                let v = self.float[src as usize].to_bits();
                self.direct_write(a, v);
            }
            Inst::LoadV { dst, addr, offset } => {
                let base = self.int[addr as usize].wrapping_add(offset);
                for i in 0..4 {
                    self.vec[dst as usize][i] = self.direct_read(base + 8 * i as u64);
                }
            }
            Inst::StoreV { src, addr, offset } => {
                let base = self.int[addr as usize].wrapping_add(offset);
                for i in 0..4 {
                    self.direct_write(base + 8 * i as u64, self.vec[src as usize][i]);
                }
            }
            Inst::StoreX { src, addr, offset } => {
                let base = self.int[addr as usize].wrapping_add(offset);
                let bits = self.x87[src as usize].encode();
                self.direct_write(base, bits as u64);
                self.direct_write(base + 8, (bits >> 64) as u64);
            }
            Inst::LoadX { dst, addr, offset } => {
                let base = self.int[addr as usize].wrapping_add(offset);
                let lo = self.direct_read(base) as u128;
                let hi = self.direct_read(base + 8) as u128;
                self.x87[dst as usize] = F80::decode(lo | (hi << 64));
            }
            Inst::Cas {
                dst,
                addr,
                expected,
                new,
            } => {
                let a = self.int[addr as usize];
                let ok = self.direct_read(a) == self.int[expected as usize];
                if ok {
                    let v = self.int[new as usize];
                    self.direct_write(a, v);
                }
                self.int[dst as usize] = ok as u64;
            }
            Inst::LockAcquire { addr } => {
                let a = self.int[addr as usize];
                if self.direct_read(a) == 0 {
                    self.direct_write(a, 1);
                } else {
                    next_pc = self.pc; // spin
                }
            }
            Inst::LockRelease { addr } => {
                let a = self.int[addr as usize];
                self.direct_write(a, 0);
            }
            Inst::TxBegin => {
                self.tx.active = true;
                self.tx.reads.clear();
                self.tx.writes.clear();
            }
            Inst::TxCommit { dst } => {
                let ok = if self.tx.active {
                    // Validate: every first-read value must still be in
                    // memory (a direct store inside the transaction can
                    // self-conflict, as on the softcore).
                    let valid = self
                        .tx
                        .reads
                        .iter()
                        .all(|(&a, &v)| self.mem[(a / 8) as usize] == v);
                    if valid {
                        let writes: Vec<(u64, u64)> =
                            self.tx.writes.iter().map(|(&a, &v)| (a, v)).collect();
                        for (a, v) in writes {
                            self.direct_write(a, v);
                        }
                    }
                    valid
                } else {
                    false
                };
                self.tx.active = false;
                self.tx.reads.clear();
                self.tx.writes.clear();
                self.int[dst as usize] = ok as u64;
            }
            Inst::LoopStart { count } => {
                if count == 0 {
                    next_pc = self.loop_end(program) + 1;
                } else {
                    self.loops.push((self.pc, count));
                }
            }
            Inst::LoopEnd => {
                let top = self
                    .loops
                    .last_mut()
                    .expect("reference: LoopEnd without LoopStart");
                top.1 -= 1;
                if top.1 > 0 {
                    next_pc = top.0 + 1;
                } else {
                    self.loops.pop();
                }
            }
            Inst::Pause => {}
            Inst::CmpNe { dst, a, b } => {
                self.int[dst as usize] =
                    (self.int[a as usize] != self.int[b as usize]) as u64;
            }
            Inst::Halt => unreachable!("run() returns before stepping Halt"),
        }
        self.pc = next_pc;
    }

    /// Finds the matching `LoopEnd` of the `LoopStart` at `self.pc` by
    /// forward scan with a depth counter (independent of the softcore's
    /// precomputed `loop_end_of` table).
    fn loop_end(&self, program: &Program) -> usize {
        let insts = program.insts();
        let mut depth = 0usize;
        for (i, inst) in insts.iter().enumerate().skip(self.pc) {
            match inst {
                Inst::LoopStart { .. } => depth += 1,
                Inst::LoopEnd => {
                    depth -= 1;
                    if depth == 0 {
                        return i;
                    }
                }
                _ => {}
            }
        }
        panic!("reference: unmatched LoopStart at {}", self.pc);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use softcore::ProgramBuilder;

    #[test]
    fn reference_crc_and_hash_match_softcore() {
        // The reference formulations must agree with the softcore's on
        // arbitrary inputs — this is the one place the two arithmetic
        // styles are compared directly.
        let mut x = 0x0123_4567_89ab_cdefu64;
        let mut crc = 0xffff_ffffu32;
        let mut h = 7u64;
        for _ in 0..64 {
            assert_eq!(ref_crc32_step(crc, x), softcore::cpu::crc32_step(crc, x));
            assert_eq!(ref_hash_mix(h, x), softcore::cpu::hash_mix(h, x));
            crc = ref_crc32_step(crc, x);
            h = ref_hash_mix(h, x);
            x = x.rotate_left(13) ^ h;
        }
    }

    #[test]
    fn skipped_zero_loop_and_nested_loops_execute() {
        let mut b = ProgramBuilder::new();
        b.mov_imm(0, 0);
        b.loop_start(0); // skipped entirely
        b.add_imm(0, 0, 1000);
        b.loop_end();
        b.loop_start(3);
        b.loop_start(2);
        b.add_imm(0, 0, 1);
        b.loop_end();
        b.loop_end();
        let p = b.build();
        let mut m = RefMachine::new(8);
        m.run(&p, 10_000);
        assert!(m.completed);
        assert_eq!(m.int[0], 6);
    }

    #[test]
    fn tx_self_conflict_aborts() {
        // A direct (non-transactional) store to an address in the
        // transaction's own read set invalidates the commit.
        let mut b = ProgramBuilder::new();
        b.mov_imm(1, 0);
        b.fmov_imm(0, 1.5);
        b.tx_begin();
        b.load(3, 1, 0);
        b.store_f(0, 1, 0); // direct write changes word 0
        b.tx_commit(5);
        let p = b.build();
        let mut m = RefMachine::new(8);
        m.run(&p, 1000);
        assert!(m.completed);
        assert_eq!(m.int[5], 0, "self-conflicting tx must abort");
        assert_eq!(m.peek(0), 1.5f64.to_bits(), "direct store persists");
    }
}

//! Fleet-scale defect sampling.
//!
//! The fleet simulator does not materialize a million healthy processors;
//! it samples how many packages of each architecture are defective (from
//! [`crate::arch::ArchInfo::prevalence`]) and draws a concrete defect for
//! each. The distributions here encode the aggregate structure the paper
//! reports: the computation/consistency split, the single-core/all-core
//! scope split, the feature vulnerability ranking of Figure 2, and the
//! apparent/tricky trigger mix of Observation 10.

use crate::arch;
use crate::defect::{gen_patterns, Defect, DefectKind, DefectScope, Trigger};
use crate::processor::Processor;
use sdc_model::{ArchId, CpuId, DataType, DetRng};
use softcore::InstClass;

/// Samples whether one package is defective.
pub fn is_defective(arch_id: ArchId, rng: &mut DetRng) -> bool {
    rng.chance(arch::info(arch_id).prevalence)
}

/// Draws a defective processor of the given architecture.
pub fn sample_faulty_processor(id: CpuId, arch_id: ArchId, rng: &mut DetRng) -> Processor {
    let info = arch::info(arch_id);
    let mut p = Processor::healthy(id, arch_id, rng.range_f64(0.1, 4.0));
    let n_defects = if rng.chance(0.2) { 2 } else { 1 };
    let computation = rng.chance(0.7);
    for _ in 0..n_defects {
        p.defects
            .push(sample_defect(computation, info.physical_cores, rng));
    }
    p
}

/// Draws one defect. `computation` fixes the SDC type so that multi-defect
/// processors stay single-type (the paper's invariant).
pub fn sample_defect(computation: bool, cores: u16, rng: &mut DetRng) -> Defect {
    let scope = if rng.chance(0.5) {
        DefectScope::SingleCore(rng.below(cores as u64) as u16)
    } else {
        DefectScope::AllCores {
            per_core_scale: (0..cores)
                .map(|_| 10f64.powf(rng.range_f64(-2.5, 0.0)))
                .collect(),
        }
    };
    let trigger = sample_trigger(rng);
    if computation {
        let (classes, datatypes) = sample_feature_mix(rng);
        let primary = datatypes[0];
        let patterns = gen_patterns(primary, 1 + rng.below(3) as usize, rng);
        let seed = rng.below(u64::MAX - 1);
        Defect::new(
            DefectKind::Computation {
                classes,
                datatypes,
                patterns,
                pattern_dt: primary,
                random_mask_prob: 0.25,
            },
            scope,
            trigger,
        )
        .with_selectivity(rng.range_f64(0.05, 0.35), seed)
    } else {
        let kind = if rng.chance(0.55) {
            DefectKind::CoherenceDrop
        } else {
            DefectKind::TxIsolation
        };
        // Consistency events (invalidations, commits) are one to two
        // orders of magnitude rarer than retired instructions, so their
        // per-event rates sit correspondingly higher.
        let trigger = Trigger {
            base_rate: trigger.base_rate * 30.0,
            ..trigger
        };
        let seed = rng.below(u64::MAX - 1);
        Defect::new(kind, scope, trigger).with_selectivity(rng.range_f64(0.05, 0.35), seed)
    }
}

/// Apparent (≈60%) vs. tricky (≈40%) trigger mix; tricky defects gate on
/// a minimum temperature with rate falling as the threshold rises
/// (Figure 9).
fn sample_trigger(rng: &mut DetRng) -> Trigger {
    if rng.chance(0.6) {
        Trigger {
            base_rate: 10f64.powf(rng.range_f64(-8.0, -4.5)),
            t_ref_c: 50.0,
            log10_slope_per_c: if rng.chance(0.2) {
                rng.range_f64(0.03, 0.12)
            } else {
                0.0
            },
            t_min_c: 0.0,
        }
    } else {
        let t_min = rng.range_f64(50.0, 75.0);
        Trigger {
            base_rate: 10f64.powf(-4.0 - (t_min - 40.0) * 0.135 + rng.range_f64(-0.5, 0.5)),
            t_ref_c: t_min,
            log10_slope_per_c: rng.range_f64(0.02, 0.12),
            t_min_c: t_min,
        }
    }
}

/// Feature-weighted class/datatype selection (Figure 2's vulnerability
/// ranking among computation features: FPU > ALU > VecUnit).
fn sample_feature_mix(rng: &mut DetRng) -> (Vec<InstClass>, Vec<DataType>) {
    match rng.weighted(&[0.42, 0.33, 0.25]) {
        0 => {
            // FPU.
            let classes = match rng.below(3) {
                0 => vec![InstClass::FloatAdd, InstClass::FloatMul],
                1 => vec![InstClass::FloatDiv, InstClass::FloatAtan],
                _ => vec![InstClass::FloatAtan, InstClass::X87Atan],
            };
            let datatypes = if rng.chance(0.3) {
                vec![DataType::F64, DataType::F64X]
            } else if rng.chance(0.5) {
                vec![DataType::F64]
            } else {
                vec![DataType::F32, DataType::F64]
            };
            (classes, datatypes)
        }
        1 => {
            // ALU.
            let classes = match rng.below(3) {
                0 => vec![InstClass::IntArith, InstClass::IntMulDiv],
                1 => vec![InstClass::IntLogic, InstClass::IntShift, InstClass::Crc],
                _ => vec![InstClass::Crc, InstClass::Hash],
            };
            let datatypes = match rng.below(3) {
                0 => vec![DataType::I32, DataType::U32],
                1 => vec![DataType::I16, DataType::Byte, DataType::Bit],
                _ => vec![DataType::Bin16, DataType::Bin32, DataType::Bin64],
            };
            (classes, datatypes)
        }
        _ => {
            // Vector unit.
            let classes = match rng.below(3) {
                0 => vec![InstClass::VecFma],
                1 => vec![InstClass::VecFloatArith, InstClass::VecFma],
                _ => vec![InstClass::VecIntArith, InstClass::VecLogic],
            };
            let datatypes = match rng.below(3) {
                0 => vec![DataType::F32],
                1 => vec![DataType::F64, DataType::F32],
                _ => vec![DataType::I32],
            };
            (classes, datatypes)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdc_model::SdcType;

    #[test]
    fn prevalence_matches_arch_table() {
        let mut rng = DetRng::new(11);
        let n = 2_000_000u64;
        let mut hits = 0u64;
        for _ in 0..n {
            if is_defective(ArchId(8), &mut rng) {
                hits += 1;
            }
        }
        let rate = hits as f64 / n as f64;
        let want = arch::info(ArchId(8)).prevalence;
        assert!((rate - want).abs() < want * 0.2, "rate {rate} vs {want}");
    }

    #[test]
    fn sampled_processors_are_single_type() {
        let mut rng = DetRng::new(12);
        for i in 0..200 {
            let p = sample_faulty_processor(CpuId(i), ArchId(1 + (i % 9) as u8), &mut rng);
            assert!(p.is_faulty());
            let types: std::collections::HashSet<bool> =
                p.defects.iter().map(|d| d.kind.is_computation()).collect();
            assert_eq!(types.len(), 1);
        }
    }

    #[test]
    fn type_split_is_roughly_70_30() {
        let mut rng = DetRng::new(13);
        let mut comp = 0;
        let n = 1000;
        for i in 0..n {
            let p = sample_faulty_processor(CpuId(i), ArchId(2), &mut rng);
            if p.sdc_type() == Some(SdcType::Computation) {
                comp += 1;
            }
        }
        let share = comp as f64 / n as f64;
        assert!((share - 0.7).abs() < 0.06, "computation share {share}");
    }

    #[test]
    fn scope_split_is_roughly_half() {
        let mut rng = DetRng::new(14);
        let mut single = 0;
        let n = 1000;
        for i in 0..n {
            let p = sample_faulty_processor(CpuId(i), ArchId(3), &mut rng);
            if p.defects
                .iter()
                .all(|d| matches!(d.scope, DefectScope::SingleCore(_)))
            {
                single += 1;
            }
        }
        let share = single as f64 / n as f64;
        assert!((share - 0.5).abs() < 0.12, "single-core share {share}");
    }

    #[test]
    fn tricky_triggers_have_t_min_and_slope() {
        let mut rng = DetRng::new(15);
        let mut tricky = 0;
        let n = 500;
        for _ in 0..n {
            let t = sample_trigger(&mut rng);
            if t.t_min_c > 0.0 {
                tricky += 1;
                assert!(t.log10_slope_per_c > 0.0);
                assert!(t.rate_at(t.t_min_c - 1.0) == 0.0);
            }
        }
        let share = tricky as f64 / n as f64;
        assert!((share - 0.4).abs() < 0.1, "tricky share {share}");
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let a = sample_faulty_processor(CpuId(9), ArchId(4), &mut DetRng::new(99));
        let b = sample_faulty_processor(CpuId(9), ArchId(4), &mut DetRng::new(99));
        assert_eq!(a, b);
    }
}

//! The deep-study set: 27 faulty processors (§2.4).
//!
//! The paper runs tens of millions of tests against 27 faulty processors
//! kept for detailed analysis; Table 3 documents ten of them by name.
//! This module reconstructs that set: the ten named processors with their
//! published architecture, age, defect scope and affected features /
//! datatypes, plus 17 synthesized processors that fill out the published
//! aggregate structure —
//!
//! * 19 computation vs. 8 consistency processors;
//! * about half single-core vs. all-core defect scope (Observation 4);
//! * six processors with a clear exponential temperature dependence
//!   (MIX1, MIX2, FPU2 among the named ones — Figure 8);
//! * minimum triggering temperatures anticorrelated with occurrence
//!   frequency at threshold (Figure 9, r ≈ −0.83).
//!
//! Trigger rates are per matching retired instruction; with the default
//! virtual clock (10 MHz) and hot loops retiring tens of matching
//! instructions per hundred cycles, base rates of 1e-9…1e-4 span the
//! paper's 0.01…hundreds of errors per minute (Observation 9).

use crate::defect::{gen_patterns, Defect, DefectKind, DefectScope, Trigger};
use crate::processor::Processor;
use sdc_model::{ArchId, CpuId, DataType, DetRng};
use softcore::InstClass;

/// A deep-study entry: a processor plus its study name.
#[derive(Debug, Clone)]
pub struct CaseStudy {
    /// Study name ("MIX1", "FPU2", "COMP11", …).
    pub name: &'static str,
    /// The faulty processor.
    pub processor: Processor,
}

/// Seed namespace for catalog pattern generation (fixed so the catalog is
/// identical across runs).
const CATALOG_SEED: u64 = 0x05dc_ca7a_0106;

fn rng_for(id: u64) -> DetRng {
    DetRng::new(CATALOG_SEED).fork(id)
}

/// Builds a computation defect; `selectivity` is the fraction of matching
/// testcases whose code paths actually reach the defective unit.
fn comp_defect(
    id: u64,
    classes: Vec<InstClass>,
    datatypes: Vec<DataType>,
    scope: DefectScope,
    trigger: Trigger,
    n_patterns: usize,
    selectivity: f64,
) -> Defect {
    let mut rng = rng_for(id);
    // Patterns are generated on the defect's primary datatype; firings on
    // other datatypes draw fresh masks (the mask is truncated to width).
    let primary = datatypes.first().copied().unwrap_or(DataType::Bin64);
    let patterns = gen_patterns(primary, n_patterns, &mut rng);
    Defect::new(
        DefectKind::Computation {
            classes,
            datatypes,
            patterns,
            pattern_dt: primary,
            random_mask_prob: 0.25,
        },
        scope,
        trigger,
    )
    .with_selectivity(selectivity, 0x5e1ec7 ^ id)
}

/// Per-core scales for an all-core defect spanning orders of magnitude
/// (the paper saw per-core frequency differences "up to several orders of
/// magnitude under the same test setting").
fn spread_scales(id: u64, cores: u16) -> Vec<f64> {
    let mut rng = rng_for(id ^ 0xabcd);
    (0..cores)
        .map(|_| 10f64.powf(rng.range_f64(-2.5, 0.0)))
        .collect()
}

fn mk(id: u64, name: &'static str, arch: u8, age: f64, defects: Vec<Defect>) -> CaseStudy {
    let mut p = Processor::healthy(CpuId(id), ArchId(arch), age);
    p.defects = defects;
    CaseStudy { name, processor: p }
}

/// MIX1 (Table 3): M2, all 16 cores, vector + FPU + ALU workloads
/// (matrix, checksum, string, large-integer), many datatypes; one
/// apparent defect and one tricky high-temperature defect (testcase C on
/// MIX1 only fails above 59 ℃, Figure 8a).
fn mix1() -> CaseStudy {
    let apparent = comp_defect(
        101,
        vec![
            InstClass::VecFma,
            InstClass::VecFloatArith,
            InstClass::VecIntArith,
            InstClass::Crc,
            InstClass::IntMulDiv,
        ],
        vec![
            DataType::F32,
            DataType::F64,
            DataType::I32,
            DataType::U32,
            DataType::Byte,
            DataType::Bin16,
            DataType::Bin32,
        ],
        DefectScope::AllCores {
            per_core_scale: spread_scales(101, 16),
        },
        Trigger {
            base_rate: 2.5e-7,
            t_ref_c: 50.0,
            log10_slope_per_c: 0.0,
            t_min_c: 0.0,
        },
        3,
        0.14,
    );
    let tricky = comp_defect(
        102,
        vec![InstClass::FloatDiv, InstClass::FloatAtan],
        vec![DataType::F64, DataType::F32],
        DefectScope::AllCores {
            per_core_scale: spread_scales(102, 16),
        },
        Trigger {
            base_rate: 1e-8,
            t_ref_c: 66.0,
            log10_slope_per_c: 0.085,
            t_min_c: 59.0,
        },
        2,
        0.30,
    );
    mk(1, "MIX1", 2, 1.75, vec![apparent, tricky])
}

/// MIX2 (Table 3): M2, all 16 cores, ALU-heavy mix (bit ops, hashing,
/// checksums) plus float; temperature-sensitive component (Figure 8b).
fn mix2() -> CaseStudy {
    let apparent = comp_defect(
        201,
        vec![
            InstClass::IntArith,
            InstClass::IntLogic,
            InstClass::VecIntArith,
            InstClass::Crc,
            InstClass::Hash,
            InstClass::VecFma,
        ],
        vec![
            DataType::I16,
            DataType::I32,
            DataType::U32,
            DataType::F32,
            DataType::Bit,
            DataType::Byte,
            DataType::Bin16,
            DataType::Bin32,
        ],
        DefectScope::AllCores {
            per_core_scale: spread_scales(201, 16),
        },
        Trigger {
            base_rate: 1.5e-7,
            t_ref_c: 50.0,
            log10_slope_per_c: 0.0,
            t_min_c: 0.0,
        },
        3,
        0.14,
    );
    let tricky = comp_defect(
        202,
        vec![InstClass::FloatMul, InstClass::FloatAdd],
        vec![DataType::F64],
        DefectScope::AllCores {
            per_core_scale: spread_scales(202, 16),
        },
        Trigger {
            base_rate: 4e-8,
            t_ref_c: 56.0,
            log10_slope_per_c: 0.095,
            t_min_c: 56.0,
        },
        2,
        0.30,
    );
    mk(2, "MIX2", 2, 0.92, vec![apparent, tricky])
}

/// SIMD1 (Table 3): M2, one core, f32 matrix workloads; the toolchain
/// pinpointed a vector multiply-add instruction. Highly reproducible.
fn simd1() -> CaseStudy {
    let d = comp_defect(
        301,
        vec![InstClass::VecFma],
        vec![DataType::F32],
        DefectScope::SingleCore(0),
        Trigger {
            base_rate: 1e-7,
            t_ref_c: 50.0,
            log10_slope_per_c: 0.0,
            t_min_c: 0.0,
        },
        2,
        0.20,
    );
    mk(3, "SIMD1", 2, 2.33, vec![d])
}

/// SIMD2 (Table 3): M5, one core, f64 matrix workloads, single failing
/// testcase, low rate.
fn simd2() -> CaseStudy {
    let d = comp_defect(
        401,
        vec![InstClass::VecFma],
        vec![DataType::F64],
        DefectScope::SingleCore(5),
        Trigger {
            base_rate: 5e-8,
            t_ref_c: 50.0,
            log10_slope_per_c: 0.0,
            t_min_c: 0.0,
        },
        1,
        0.10,
    );
    mk(4, "SIMD2", 5, 0.50, vec![d])
}

/// FPU1 (Table 3): M5, one core, the arctangent instruction used by an
/// HPC math library (f64 / f64x).
fn fpu1() -> CaseStudy {
    let d = comp_defect(
        501,
        vec![InstClass::FloatAtan, InstClass::X87Atan],
        vec![DataType::F64, DataType::F64X],
        DefectScope::SingleCore(3),
        Trigger {
            base_rate: 2e-6,
            t_ref_c: 50.0,
            log10_slope_per_c: 0.0,
            t_min_c: 0.0,
        },
        2,
        0.40,
    );
    mk(5, "FPU1", 5, 0.58, vec![d])
}

/// FPU2 (Table 3): like FPU1 but temperature-sensitive on pcore 8
/// (Figure 8c: 48–56 ℃, ~0.4–4 errors/min).
fn fpu2() -> CaseStudy {
    let d = comp_defect(
        601,
        vec![InstClass::FloatAtan, InstClass::X87Atan],
        vec![DataType::F64, DataType::F64X],
        DefectScope::SingleCore(8),
        Trigger {
            base_rate: 2.5e-7,
            t_ref_c: 50.0,
            log10_slope_per_c: 0.12,
            t_min_c: 48.0,
        },
        2,
        0.40,
    );
    mk(6, "FPU2", 5, 1.83, vec![d])
}

/// FPU3 (Table 3): M3, one core, f64 floating-point computing.
fn fpu3() -> CaseStudy {
    let d = comp_defect(
        701,
        vec![InstClass::FloatDiv, InstClass::FloatMul],
        vec![DataType::F64],
        DefectScope::SingleCore(2),
        Trigger {
            base_rate: 6e-7,
            t_ref_c: 50.0,
            log10_slope_per_c: 0.0,
            t_min_c: 0.0,
        },
        1,
        0.10,
    );
    mk(7, "FPU3", 3, 3.08, vec![d])
}

/// FPU4 (Table 3): M6, one core, f64 floating-point computing, one
/// failing testcase.
fn fpu4() -> CaseStudy {
    let d = comp_defect(
        801,
        vec![InstClass::FloatAdd],
        vec![DataType::F64],
        DefectScope::SingleCore(1),
        Trigger {
            base_rate: 5e-7,
            t_ref_c: 50.0,
            log10_slope_per_c: 0.0,
            t_min_c: 0.0,
        },
        1,
        0.05,
    );
    mk(8, "FPU4", 6, 1.62, vec![d])
}

/// CNST1 (Table 3): M2, one core, consistency in *both* cache coherence
/// and transactional memory ("fails to guarantee the consistency in both
/// cache and transactional memory").
fn cnst1() -> CaseStudy {
    let coherence = Defect::new(
        DefectKind::CoherenceDrop,
        DefectScope::SingleCore(4),
        Trigger {
            base_rate: 2e-6,
            t_ref_c: 50.0,
            log10_slope_per_c: 0.0,
            t_min_c: 0.0,
        },
    )
    .with_selectivity(0.06, 901);
    let tx = Defect::new(
        DefectKind::TxIsolation,
        DefectScope::SingleCore(4),
        Trigger {
            base_rate: 8e-6,
            t_ref_c: 50.0,
            log10_slope_per_c: 0.0,
            t_min_c: 0.0,
        },
    )
    .with_selectivity(0.06, 902);
    mk(9, "CNST1", 2, 0.92, vec![coherence, tx])
}

/// CNST2 (Table 3): M3, all 24 cores, transactional memory only.
fn cnst2() -> CaseStudy {
    let tx = Defect::new(
        DefectKind::TxIsolation,
        DefectScope::AllCores {
            per_core_scale: spread_scales(1001, 24),
        },
        Trigger {
            base_rate: 4e-6,
            t_ref_c: 50.0,
            log10_slope_per_c: 0.0,
            t_min_c: 0.0,
        },
    )
    .with_selectivity(0.15, 1002);
    mk(10, "CNST2", 3, 1.08, vec![tx])
}

/// Names for the 17 synthesized processors.
const SYN_NAMES: [&str; 17] = [
    "COMP11", "COMP12", "COMP13", "COMP14", "COMP15", "COMP16", "COMP17", "COMP18", "COMP19",
    "COMP20", "COMP21", "CNST22", "CNST23", "CNST24", "CNST25", "CNST26", "CNST27",
];

/// Computation class pools the synthesizer draws from, one per feature
/// emphasis.
fn class_pool(which: usize) -> Vec<InstClass> {
    match which % 5 {
        0 => vec![InstClass::FloatMul, InstClass::FloatAdd],
        1 => vec![InstClass::FloatDiv, InstClass::FloatAtan],
        2 => vec![InstClass::VecFma, InstClass::VecFloatArith],
        3 => vec![
            InstClass::IntArith,
            InstClass::IntMulDiv,
            InstClass::Crc,
            InstClass::Hash,
        ],
        _ => vec![InstClass::VecIntArith, InstClass::Hash, InstClass::IntLogic],
    }
}

fn datatype_pool(which: usize) -> Vec<DataType> {
    match which % 5 {
        0 => vec![DataType::F64],
        1 => vec![DataType::F64, DataType::F64X],
        2 => vec![DataType::F32, DataType::F64],
        3 => vec![
            DataType::I32,
            DataType::U32,
            DataType::Bin32,
            DataType::Bin64,
        ],
        _ => vec![DataType::I32, DataType::I16, DataType::Bit, DataType::Bin64],
    }
}

/// Synthesized computation processors COMP11–COMP21.
///
/// Their minimum triggering temperatures sweep 40→75 ℃ while the firing
/// rate *at threshold* falls with t_min — the Figure 9 anticorrelation.
/// Three of them (indices 0, 3, 6 → COMP11, COMP14, COMP17) carry a
/// strong exponential temperature slope, completing the six
/// temperature-correlated processors of Observation 10.
fn synthesized_computation(i: usize) -> CaseStudy {
    let id = 11 + i as u64;
    let mut rng = rng_for(5000 + id);
    let archs = [1u8, 1, 3, 5, 6, 6, 7, 8, 8, 9, 9];
    let arch = archs[i];
    let cores = crate::arch::info(ArchId(arch)).physical_cores;
    // Fig. 9 calibration: t_min sweeps upward; log10(rate at t_min) falls
    // roughly linearly with t_min, plus noise.
    let t_min = 40.0 + 3.5 * i as f64; // 40 … 75 ℃
    let log_rate = -6.0 - (t_min - 40.0) * 0.105 + rng.range_f64(-0.2, 0.2);
    // COMP12/COMP15/COMP18 join MIX1, MIX2 and FPU2 as the six processors
    // with a strong exponential temperature dependence (Observation 10).
    let slope = if i % 3 == 1 && i < 10 {
        rng.range_f64(0.08, 0.13)
    } else {
        rng.range_f64(0.0, 0.02)
    };
    let single_core = i.is_multiple_of(2);
    let scope = if single_core {
        DefectScope::SingleCore((rng.below(cores as u64)) as u16)
    } else {
        DefectScope::AllCores {
            per_core_scale: spread_scales(9000 + id, cores),
        }
    };
    let trigger = Trigger {
        base_rate: 10f64.powf(log_rate),
        t_ref_c: t_min.max(45.0),
        log10_slope_per_c: slope,
        t_min_c: if t_min <= 45.0 { 0.0 } else { t_min },
    };
    let d = comp_defect(
        6000 + id,
        class_pool(i),
        datatype_pool(i),
        scope,
        trigger,
        1 + i % 3,
        0.12 + 0.05 * (i % 4) as f64,
    );
    mk(id, SYN_NAMES[i], arch, 0.5 + 0.3 * i as f64, vec![d])
}

/// Synthesized consistency processors CNST22–CNST27.
fn synthesized_consistency(i: usize) -> CaseStudy {
    let id = 22 + i as u64;
    let mut rng = rng_for(7000 + id);
    let archs = [2u8, 4, 5, 7, 8, 9];
    let arch = archs[i];
    let cores = crate::arch::info(ArchId(arch)).physical_cores;
    let kind = if i.is_multiple_of(2) {
        DefectKind::CoherenceDrop
    } else {
        DefectKind::TxIsolation
    };
    let scope = if i < 3 {
        DefectScope::SingleCore((rng.below(cores as u64)) as u16)
    } else {
        DefectScope::AllCores {
            per_core_scale: spread_scales(9500 + id, cores),
        }
    };
    let t_min = 40.0 + 5.0 * i as f64;
    let log_rate = -5.2 - (t_min - 40.0) * 0.10 + rng.range_f64(-0.25, 0.25);
    let trigger = Trigger {
        base_rate: 10f64.powf(log_rate),
        t_ref_c: t_min.max(45.0),
        log10_slope_per_c: if i == 1 { 0.03 } else { 0.0 },
        t_min_c: if t_min <= 45.0 { 0.0 } else { t_min },
    };
    mk(
        id,
        SYN_NAMES[11 + i],
        arch,
        0.8 + 0.4 * i as f64,
        vec![Defect::new(kind, scope, trigger).with_selectivity(0.10, 7000 + id)],
    )
}

/// The full 27-processor deep-study set.
pub fn deep_study_set() -> Vec<CaseStudy> {
    let mut v = vec![
        mix1(),
        mix2(),
        simd1(),
        simd2(),
        fpu1(),
        fpu2(),
        fpu3(),
        fpu4(),
        cnst1(),
        cnst2(),
    ];
    for i in 0..11 {
        v.push(synthesized_computation(i));
    }
    for i in 0..6 {
        v.push(synthesized_consistency(i));
    }
    v
}

/// Looks up a case study by name ("MIX1", "FPU2", …).
///
/// # Examples
///
/// ```
/// let simd1 = silicon::catalog::by_name("SIMD1").unwrap();
/// assert_eq!(simd1.processor.defective_cores().len(), 1);
/// assert!(silicon::catalog::by_name("NOPE").is_none());
/// ```
pub fn by_name(name: &str) -> Option<CaseStudy> {
    deep_study_set().into_iter().find(|c| c.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdc_model::SdcType;

    #[test]
    fn set_has_27_processors() {
        let set = deep_study_set();
        assert_eq!(set.len(), 27);
        // Ids are unique and stable.
        let mut ids: Vec<u64> = set.iter().map(|c| c.processor.id.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 27);
    }

    #[test]
    fn nineteen_computation_eight_consistency() {
        let set = deep_study_set();
        let comp = set
            .iter()
            .filter(|c| c.processor.sdc_type() == Some(SdcType::Computation))
            .count();
        let cons = set
            .iter()
            .filter(|c| c.processor.sdc_type() == Some(SdcType::Consistency))
            .count();
        assert_eq!(comp, 19, "19 computation processors (§4.1)");
        assert_eq!(cons, 8, "8 consistency processors (§4.1)");
    }

    #[test]
    fn multiple_defects_share_one_type() {
        // Observation: "if one processor has multiple defective features,
        // they always belong to one type."
        for c in deep_study_set() {
            let types: std::collections::HashSet<bool> = c
                .processor
                .defects
                .iter()
                .map(|d| d.kind.is_computation())
                .collect();
            assert_eq!(types.len(), 1, "{} mixes SDC types", c.name);
        }
    }

    #[test]
    fn roughly_half_single_core() {
        let set = deep_study_set();
        let single = set
            .iter()
            .filter(|c| {
                c.processor
                    .defects
                    .iter()
                    .all(|d| matches!(d.scope, DefectScope::SingleCore(_)))
            })
            .count();
        assert!(
            (11..=16).contains(&single),
            "single-core scope count {single}"
        );
    }

    #[test]
    fn six_processors_are_temperature_sensitive() {
        let set = deep_study_set();
        let sensitive = set
            .iter()
            .filter(|c| {
                c.processor
                    .defects
                    .iter()
                    .any(|d| d.trigger.log10_slope_per_c >= 0.05)
            })
            .count();
        assert_eq!(sensitive, 6, "six of 27 show exponential dependence (§5)");
    }

    #[test]
    fn named_entries_match_table3() {
        let m1 = by_name("MIX1").unwrap();
        assert_eq!(m1.processor.arch, ArchId(2));
        assert_eq!(m1.processor.defective_cores().len(), 16, "all 16 pcores");
        let s1 = by_name("SIMD1").unwrap();
        assert_eq!(s1.processor.defective_cores().len(), 1);
        assert_eq!(s1.processor.age_years, 2.33);
        let f2 = by_name("FPU2").unwrap();
        assert_eq!(f2.processor.defective_cores(), vec![sdc_model::CoreId(8)]);
        let c2 = by_name("CNST2").unwrap();
        assert_eq!(c2.processor.defective_cores().len(), 24);
        assert_eq!(c2.processor.sdc_type(), Some(SdcType::Consistency));
        assert!(by_name("NOPE").is_none());
    }

    #[test]
    fn catalog_is_deterministic() {
        let a = deep_study_set();
        let b = deep_study_set();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.processor, y.processor);
        }
    }

    #[test]
    fn fig9_anticorrelation_is_built_in() {
        // Across defects with a t_min gate, log10(rate at t_min) falls
        // with t_min. This is a coarse proxy: the real Figure 9 analysis
        // correlates *occurrence frequencies*, where consistency defects'
        // higher per-event rates are normalized by their much lower event
        // throughput; here they sit above the computation trend line and
        // dilute the correlation, so the bound is looser than the paper's
        // r = −0.83.
        let set = deep_study_set();
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for c in &set {
            for d in &c.processor.defects {
                if d.trigger.t_min_c > 0.0 {
                    xs.push(d.trigger.t_min_c);
                    ys.push(d.trigger.rate_at(d.trigger.t_min_c).log10());
                }
            }
        }
        assert!(xs.len() >= 10);
        let r = sdc_model::stats::pearson(&xs, &ys).unwrap();
        assert!(r < -0.45, "anticorrelation r = {r}");
    }
}

//! Simulated defective silicon.
//!
//! The study's central object — a production CPU population containing a
//! small number of processors with manufacturing defects — is unavailable
//! to a reproduction, so this crate models it (see DESIGN.md for the
//! substitution argument). It provides:
//!
//! * [`arch`]: the nine micro-architecture generations of Table 2, with
//!   per-architecture defect prevalence calibrated to the paper's
//!   failure rates;
//! * [`defect`]: the defect model — scope (single core vs. all cores,
//!   Observation 4), kind (computation vs. consistency, Observation 5),
//!   bitflip patterns with float-fraction location preference
//!   (Observations 7–8), and the exponential temperature trigger with a
//!   minimum triggering temperature (Observation 10);
//! * [`injector`]: a [`softcore::FaultHook`] that turns a processor's
//!   defect list into retire-time corruptions, dropped cache
//!   invalidations, and forced transactional commits;
//! * [`processor`]: processor metadata (identity, age, core count);
//! * [`catalog`]: the 27 deep-study faulty processors, including the ten
//!   of Table 3 (MIX1/2, SIMD1/2, FPU1–4, CNST1/2);
//! * [`population`]: samplers for fleet-scale defect injection.

pub mod arch;
pub mod catalog;
pub mod defect;
pub mod injector;
pub mod population;
pub mod processor;

pub use defect::{BitPattern, Defect, DefectKind, DefectScope, Trigger};
pub use injector::Injector;
pub use processor::Processor;

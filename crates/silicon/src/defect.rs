//! The defect model.
//!
//! A [`Defect`] describes *where* a fault lives (scope), *what* it breaks
//! (kind) and *when* it fires (trigger). The parameters encode the paper's
//! empirical structure:
//!
//! * **Scope** (Observation 4): about half of faulty processors have one
//!   defective physical core; the other half are defective on every core —
//!   sometimes at per-core rates spread over orders of magnitude.
//! * **Kind** (Observation 5): computation defects corrupt results of
//!   specific instruction classes and datatypes via bitflip masks;
//!   consistency defects drop cache invalidations or break transactional
//!   isolation and have "no deterministic pattern".
//! * **Bitflip masks** (Observations 7–8): a defect owns a small set of
//!   fixed [`BitPattern`]s (the per-setting patterns of Figure 6) plus a
//!   residual probability of a fresh random mask; mask generation is
//!   biased away from the most significant bits, and toward the fraction
//!   part for floats.
//! * **Trigger** (Observations 9–10): occurrence is per matching retired
//!   instruction, scaled exponentially in core temperature above a
//!   reference, gated by a minimum triggering temperature.

use sdc_model::{DataType, DetRng};
use serde::{Deserialize, Serialize};
use softcore::InstClass;

/// A fixed bitflip pattern with a selection weight.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BitPattern {
    /// XOR mask applied to the correct result (within the datatype width).
    pub mask: u128,
    /// Relative selection weight among the defect's patterns.
    pub weight: f64,
}

/// Where in the package the defect lives.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DefectScope {
    /// A single defective physical core.
    SingleCore(u16),
    /// Every physical core is defective, each with its own rate scale
    /// (the paper observed per-core frequencies differing by orders of
    /// magnitude under the same test setting).
    AllCores {
        /// Multiplier on the trigger rate, one entry per physical core.
        per_core_scale: Vec<f64>,
    },
}

impl DefectScope {
    /// Rate multiplier for `core` (0 = not affected).
    pub fn core_scale(&self, core: u16) -> f64 {
        match self {
            DefectScope::SingleCore(c) => {
                if *c == core {
                    1.0
                } else {
                    0.0
                }
            }
            DefectScope::AllCores { per_core_scale } => {
                per_core_scale.get(core as usize).copied().unwrap_or(0.0)
            }
        }
    }

    /// The physical cores affected by this defect.
    pub fn affected_cores(&self, total_cores: u16) -> Vec<u16> {
        match self {
            DefectScope::SingleCore(c) => vec![*c],
            DefectScope::AllCores { per_core_scale } => (0..total_cores)
                .filter(|&c| per_core_scale.get(c as usize).copied().unwrap_or(0.0) > 0.0)
                .collect(),
        }
    }
}

/// What the defect breaks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DefectKind {
    /// Wrong results from specific instruction classes on specific
    /// datatypes.
    Computation {
        /// Instruction classes whose results can be corrupted.
        classes: Vec<InstClass>,
        /// Result datatypes that can be corrupted (empty = any).
        datatypes: Vec<DataType>,
        /// Fixed bitflip patterns of this defect (valid for results of
        /// `pattern_dt`; other datatypes draw fresh masks).
        patterns: Vec<BitPattern>,
        /// The datatype the fixed patterns were mined on.
        pattern_dt: DataType,
        /// Probability that a firing uses a fresh random mask instead of
        /// a fixed pattern.
        random_mask_prob: f64,
    },
    /// Cache-coherence defect: invalidation messages are lost.
    CoherenceDrop,
    /// Transactional-memory defect: conflicted transactions commit.
    TxIsolation,
}

impl DefectKind {
    /// True for a computation defect.
    pub fn is_computation(&self) -> bool {
        matches!(self, DefectKind::Computation { .. })
    }

    /// The instruction classes this defect can act on.
    pub fn classes(&self) -> Vec<InstClass> {
        match self {
            DefectKind::Computation { classes, .. } => classes.clone(),
            DefectKind::CoherenceDrop => {
                vec![
                    InstClass::Load,
                    InstClass::Store,
                    InstClass::Cas,
                    InstClass::Lock,
                ]
            }
            DefectKind::TxIsolation => vec![InstClass::Tx],
        }
    }
}

/// When the defect fires.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Trigger {
    /// Corruption probability per matching event at the reference
    /// temperature (before per-core scaling).
    pub base_rate: f64,
    /// Reference temperature for `base_rate`, ℃.
    pub t_ref_c: f64,
    /// Exponential temperature sensitivity: each +1 ℃ multiplies the rate
    /// by `10^log10_slope_per_c` (0 = temperature-insensitive).
    pub log10_slope_per_c: f64,
    /// Minimum triggering temperature, ℃; below it the defect never
    /// fires. Use 0.0 for "fires at any temperature".
    pub t_min_c: f64,
}

impl Trigger {
    /// A temperature-insensitive trigger.
    pub fn flat(base_rate: f64) -> Trigger {
        Trigger {
            base_rate,
            t_ref_c: 50.0,
            log10_slope_per_c: 0.0,
            t_min_c: 0.0,
        }
    }

    /// Per-event firing probability at `temp_c`, clamped to `[0, 0.5]`.
    pub fn rate_at(&self, temp_c: f64) -> f64 {
        if temp_c < self.t_min_c {
            return 0.0;
        }
        let factor = 10f64.powf(self.log10_slope_per_c * (temp_c - self.t_ref_c));
        (self.base_rate * factor).clamp(0.0, 0.5)
    }
}

/// One silicon defect.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Defect {
    /// What the defect breaks.
    pub kind: DefectKind,
    /// Where it lives.
    pub scope: DefectScope,
    /// When it fires.
    pub trigger: Trigger,
    /// Fraction of *matching* testcases whose code paths actually trigger
    /// the defect (§4.1: "we find a defective instruction is used in seven
    /// testcases, but only two of them generate errors" — a defective unit
    /// corrupts only specific operand patterns and micro-op sequences, so
    /// workloads that nominally use the instruction may never hit them).
    pub selectivity: f64,
    /// Seed of the deterministic testcase gate.
    pub sel_seed: u64,
}

impl Defect {
    /// A defect that fires on every matching testcase (selectivity 1).
    pub fn new(kind: DefectKind, scope: DefectScope, trigger: Trigger) -> Defect {
        Defect {
            kind,
            scope,
            trigger,
            selectivity: 1.0,
            sel_seed: 0,
        }
    }

    /// Restricts the defect to a deterministic `selectivity` fraction of
    /// matching testcases, keyed by `seed`.
    pub fn with_selectivity(mut self, selectivity: f64, seed: u64) -> Defect {
        self.selectivity = selectivity.clamp(0.0, 1.0);
        self.sel_seed = seed;
        self
    }

    /// Whether this defect's trigger paths are reachable from `testcase`.
    pub fn applies_to(&self, testcase: sdc_model::TestcaseId) -> bool {
        if self.selectivity >= 1.0 {
            return true;
        }
        // SplitMix finalizer over (seed, testcase) → uniform gate.
        let mut x = self.sel_seed ^ (testcase.0 as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^= x >> 31;
        (x as f64 / u64::MAX as f64) < self.selectivity
    }
    /// Firing probability for one matching event on `core` at `temp_c`.
    pub fn rate(&self, core: u16, temp_c: f64) -> f64 {
        let scale = self.scope.core_scale(core);
        if scale == 0.0 {
            return 0.0;
        }
        (self.trigger.rate_at(temp_c) * scale).clamp(0.0, 0.5)
    }

    /// Whether this computation defect matches a retiring instruction.
    pub fn matches(&self, class: InstClass, dt: DataType) -> bool {
        match &self.kind {
            DefectKind::Computation {
                classes, datatypes, ..
            } => classes.contains(&class) && (datatypes.is_empty() || datatypes.contains(&dt)),
            _ => false,
        }
    }

    /// Chooses the corruption mask for a firing: one of the fixed
    /// patterns, or a fresh random mask with probability
    /// `random_mask_prob`.
    ///
    /// # Panics
    ///
    /// Panics if called on a non-computation defect.
    pub fn choose_mask(&self, dt: DataType, rng: &mut DetRng) -> u128 {
        let DefectKind::Computation {
            patterns,
            pattern_dt,
            random_mask_prob,
            ..
        } = &self.kind
        else {
            panic!("choose_mask on a consistency defect")
        };
        // Fixed positions are physical only for the datatype they were
        // mined on; a different representation draws a fresh mask with
        // that datatype's location preferences.
        if patterns.is_empty() || dt != *pattern_dt || rng.chance(*random_mask_prob) {
            return gen_mask(dt, rng);
        }
        let weights: Vec<f64> = patterns.iter().map(|p| p.weight).collect();
        let idx = rng.weighted(&weights);
        patterns[idx].mask & dt.mask()
    }
}

/// Number of bits to flip in a fresh mask: 1 (≈90%), 2 (≈8%), 3 (≈2%) —
/// the Figure 7 shape.
fn flip_count(rng: &mut DetRng) -> u32 {
    let x = rng.unit();
    if x < 0.90 {
        1
    } else if x < 0.98 {
        2
    } else {
        3
    }
}

/// Draws a random bit position for `dt` with the paper's location
/// preferences (Observation 7):
///
/// * floats: ~94% in the fraction part with a centre-heavy distribution,
///   ~5% exponent, ~1% sign;
/// * integers: weight decreasing toward the most significant bits;
/// * binary data: uniform (Figure 5).
fn gen_bit_position(dt: DataType, rng: &mut DetRng) -> u32 {
    let bits = dt.bits();
    if let Some(frac) = dt.fraction_bits() {
        let x = rng.unit();
        if x < 0.94 {
            // Centre-heavy over the fraction: average two uniforms
            // (triangular distribution peaked at the middle).
            let u = (rng.unit() + rng.unit()) / 2.0;
            ((u * frac as f64) as u32).min(frac - 1)
        } else if x < 0.99 {
            // Exponent field (above the fraction, below the sign).
            frac + (rng.below((bits - frac - 1) as u64) as u32)
        } else {
            bits - 1 // sign
        }
    } else if dt.is_numeric() {
        // Integers: triangular weight decreasing toward the MSB.
        let u = rng.unit() * rng.unit(); // density ∝ -ln u, concentrated low
        ((u * bits as f64) as u32).min(bits - 1)
    } else {
        rng.below(bits as u64) as u32
    }
}

/// Generates a fresh random mask for `dt` honouring the location and
/// multiplicity preferences.
pub fn gen_mask(dt: DataType, rng: &mut DetRng) -> u128 {
    let n = flip_count(rng).min(dt.bits());
    let mut mask = 0u128;
    let mut guard = 0;
    while mask.count_ones() < n && guard < 64 {
        mask |= 1u128 << gen_bit_position(dt, rng);
        guard += 1;
    }
    mask & dt.mask()
}

/// Generates a fraction-part-only mask for float datatypes (fixed defect
/// patterns sit in the datapath's fraction logic — Observation 7; the
/// exponent/sign tail of the histograms comes from the residual random
/// masks).
fn gen_fraction_mask(dt: DataType, rng: &mut DetRng) -> u128 {
    let frac = dt.fraction_bits().expect("float datatype");
    loop {
        let mask = gen_mask(dt, rng) & ((1u128 << frac) - 1);
        if mask != 0 {
            return mask;
        }
    }
}

/// Generates `n` fixed patterns for a new computation defect.
pub fn gen_patterns(dt: DataType, n: usize, rng: &mut DetRng) -> Vec<BitPattern> {
    (0..n)
        .map(|i| BitPattern {
            mask: if dt.is_float() {
                gen_fraction_mask(dt, rng)
            } else {
                gen_mask(dt, rng)
            },
            weight: 1.0 / (i + 1) as f64,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_core_scope() {
        let s = DefectScope::SingleCore(3);
        assert_eq!(s.core_scale(3), 1.0);
        assert_eq!(s.core_scale(2), 0.0);
        assert_eq!(s.affected_cores(8), vec![3]);
    }

    #[test]
    fn all_cores_scope_with_scales() {
        let s = DefectScope::AllCores {
            per_core_scale: vec![1.0, 0.001, 0.0, 10.0],
        };
        assert_eq!(s.core_scale(0), 1.0);
        assert_eq!(s.core_scale(1), 0.001);
        assert_eq!(s.core_scale(7), 0.0);
        assert_eq!(s.affected_cores(4), vec![0, 1, 3]);
    }

    #[test]
    fn trigger_gates_on_t_min() {
        let t = Trigger {
            base_rate: 0.01,
            t_ref_c: 50.0,
            log10_slope_per_c: 0.1,
            t_min_c: 59.0,
        };
        assert_eq!(t.rate_at(58.9), 0.0);
        assert!(t.rate_at(59.0) > 0.0);
    }

    #[test]
    fn trigger_is_exponential_in_temperature() {
        let t = Trigger {
            base_rate: 1e-6,
            t_ref_c: 50.0,
            log10_slope_per_c: 0.1,
            t_min_c: 0.0,
        };
        let r50 = t.rate_at(50.0);
        let r60 = t.rate_at(60.0);
        // +10 ℃ at slope 0.1 → ×10.
        assert!((r60 / r50 - 10.0).abs() < 1e-9);
    }

    #[test]
    fn trigger_rate_clamps() {
        let t = Trigger {
            base_rate: 0.4,
            t_ref_c: 50.0,
            log10_slope_per_c: 0.5,
            t_min_c: 0.0,
        };
        assert_eq!(t.rate_at(90.0), 0.5);
    }

    #[test]
    fn flat_trigger_ignores_temperature() {
        let t = Trigger::flat(0.01);
        assert_eq!(t.rate_at(45.0), t.rate_at(95.0));
    }

    #[test]
    fn defect_matching() {
        let d = Defect::new(
            DefectKind::Computation {
                classes: vec![InstClass::VecFma],
                datatypes: vec![DataType::F32],
                patterns: vec![],
                pattern_dt: DataType::Bin64,
                random_mask_prob: 1.0,
            },
            DefectScope::SingleCore(0),
            Trigger::flat(0.1),
        );
        assert!(d.matches(InstClass::VecFma, DataType::F32));
        assert!(!d.matches(InstClass::VecFma, DataType::F64));
        assert!(!d.matches(InstClass::FloatMul, DataType::F32));
    }

    #[test]
    fn empty_datatypes_match_anything() {
        let d = Defect::new(
            DefectKind::Computation {
                classes: vec![InstClass::IntArith],
                datatypes: vec![],
                patterns: vec![],
                pattern_dt: DataType::Bin64,
                random_mask_prob: 1.0,
            },
            DefectScope::SingleCore(0),
            Trigger::flat(0.1),
        );
        assert!(d.matches(InstClass::IntArith, DataType::I16));
        assert!(d.matches(InstClass::IntArith, DataType::Bin64));
    }

    #[test]
    fn fixed_patterns_dominate_when_random_prob_zero() {
        let mut rng = DetRng::new(1);
        let pattern = BitPattern {
            mask: 0b100,
            weight: 1.0,
        };
        let d = Defect::new(
            DefectKind::Computation {
                classes: vec![InstClass::IntArith],
                datatypes: vec![DataType::I32],
                patterns: vec![pattern],
                pattern_dt: DataType::I32,
                random_mask_prob: 0.0,
            },
            DefectScope::SingleCore(0),
            Trigger::flat(0.1),
        );
        for _ in 0..20 {
            assert_eq!(d.choose_mask(DataType::I32, &mut rng), 0b100);
        }
    }

    #[test]
    fn float_masks_prefer_fraction_bits() {
        let mut rng = DetRng::new(2);
        let mut fraction_hits = 0;
        let total = 2000;
        for _ in 0..total {
            let mask = gen_mask(DataType::F64, &mut rng);
            assert_ne!(mask, 0);
            assert_eq!(mask & !DataType::F64.mask(), 0);
            if mask & ((1u128 << 52) - 1) == mask {
                fraction_hits += 1;
            }
        }
        let frac = fraction_hits as f64 / total as f64;
        assert!(frac > 0.85, "fraction share {frac}");
    }

    #[test]
    fn int_masks_avoid_most_significant_bits() {
        let mut rng = DetRng::new(3);
        let mut msb_hits = 0;
        let total = 2000;
        for _ in 0..total {
            let mask = gen_mask(DataType::I32, &mut rng);
            if mask >> 28 != 0 {
                msb_hits += 1;
            }
        }
        assert!(
            (msb_hits as f64 / total as f64) < 0.15,
            "MSB share too high: {msb_hits}"
        );
    }

    #[test]
    fn binary_masks_are_roughly_uniform() {
        let mut rng = DetRng::new(4);
        let mut hi = 0;
        let total = 4000;
        for _ in 0..total {
            let mask = gen_mask(DataType::Bin32, &mut rng);
            if mask >> 16 != 0 {
                hi += 1;
            }
        }
        let share = hi as f64 / total as f64;
        assert!((share - 0.5).abs() < 0.08, "upper-half share {share}");
    }

    #[test]
    fn flip_counts_follow_figure7_shape() {
        let mut rng = DetRng::new(5);
        let mut ones = 0;
        let total = 5000;
        for _ in 0..total {
            if gen_mask(DataType::Bin64, &mut rng).count_ones() == 1 {
                ones += 1;
            }
        }
        let share = ones as f64 / total as f64;
        assert!(share > 0.85 && share < 0.95, "single-flip share {share}");
    }

    #[test]
    fn gen_patterns_produces_n_weighted_masks() {
        let mut rng = DetRng::new(6);
        let ps = gen_patterns(DataType::F32, 3, &mut rng);
        assert_eq!(ps.len(), 3);
        assert!(ps[0].weight > ps[1].weight && ps[1].weight > ps[2].weight);
        for p in &ps {
            assert_ne!(p.mask, 0);
        }
    }

    #[test]
    #[should_panic(expected = "choose_mask on a consistency defect")]
    fn choose_mask_rejects_consistency() {
        let d = Defect::new(
            DefectKind::CoherenceDrop,
            DefectScope::SingleCore(0),
            Trigger::flat(0.1),
        );
        let mut rng = DetRng::new(7);
        let _ = d.choose_mask(DataType::I32, &mut rng);
    }
}

//! Micro-architecture generations (Table 2).
//!
//! The paper anonymizes vendor micro-architectures as M1–M9 and reports a
//! per-architecture failure rate between 0.082‱ and 9.29‱ that does
//! *not* decrease with newer chips (Observation 3). We mirror that: each
//! generation carries a core count, an SMT width, a deployment-era tag,
//! and a true defect prevalence calibrated so the *detected* rates coming
//! out of the simulated test campaigns land near Table 2.

use sdc_model::ArchId;

/// Static description of one micro-architecture generation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArchInfo {
    /// The generation id (M1–M9).
    pub id: ArchId,
    /// Physical cores per package.
    pub physical_cores: u16,
    /// Hardware threads per physical core.
    pub smt: u8,
    /// First deployment year (fleet deployed since 2017).
    pub year: u16,
    /// True defect prevalence (fraction of packages with ≥1 defect).
    ///
    /// Calibrated ≈ Table 2's detected rate divided by the end-to-end
    /// detection probability of the test pipeline (~95%); the residue is
    /// what regular testing keeps finding in production.
    pub prevalence: f64,
}

/// Table 2 failure rates in ‱ (per ten thousand), M1..M9.
pub const TABLE2_RATES_BP: [f64; 9] =
    [4.619, 0.352, 2.649, 0.082, 0.759, 3.251, 1.599, 9.29, 4.646];

/// End-to-end detection probability assumed by the calibration.
const PIPELINE_DETECTION: f64 = 0.82;

/// Returns the static description of `arch`.
///
/// # Panics
///
/// Panics for an id outside M1–M9.
pub fn info(arch: ArchId) -> ArchInfo {
    let i = arch.0 as usize;
    assert!((1..=9).contains(&i), "unknown micro-architecture {arch}");
    let (physical_cores, smt, year) = match arch.0 {
        1 => (8, 2, 2017),
        2 => (16, 2, 2018),
        3 => (24, 2, 2018),
        4 => (16, 2, 2019),
        5 => (24, 2, 2020),
        6 => (32, 2, 2020),
        7 => (32, 2, 2021),
        8 => (48, 2, 2022),
        9 => (64, 2, 2023),
        _ => unreachable!(),
    };
    ArchInfo {
        id: arch,
        physical_cores,
        smt,
        year,
        prevalence: TABLE2_RATES_BP[i - 1] / 10_000.0 / PIPELINE_DETECTION,
    }
}

/// Share of the fleet on each architecture (sums to 1); newer generations
/// are bought in bigger batches, older ones are being retired.
pub fn fleet_share(arch: ArchId) -> f64 {
    match arch.0 {
        1 => 0.04,
        2 => 0.09,
        3 => 0.11,
        4 => 0.10,
        5 => 0.13,
        6 => 0.14,
        7 => 0.14,
        8 => 0.13,
        9 => 0.12,
        _ => panic!("unknown micro-architecture {arch}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_archs_described() {
        for a in ArchId::all() {
            let inf = info(a);
            assert!(inf.physical_cores >= 8);
            assert!(inf.smt >= 1);
            assert!((2017..=2023).contains(&inf.year));
            assert!(inf.prevalence > 0.0 && inf.prevalence < 0.02);
        }
    }

    #[test]
    fn prevalence_tracks_table2_ordering() {
        // M8 is the worst, M4 the best — Observation 3's non-monotonicity.
        let worst = info(ArchId(8)).prevalence;
        let best = info(ArchId(4)).prevalence;
        for a in ArchId::all() {
            let p = info(a).prevalence;
            assert!(p <= worst && p >= best);
        }
        assert!(
            info(ArchId(9)).prevalence > info(ArchId(4)).prevalence,
            "not monotone in year"
        );
    }

    #[test]
    fn fleet_shares_sum_to_one() {
        let total: f64 = ArchId::all().map(fleet_share).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "unknown micro-architecture")]
    fn rejects_unknown_arch() {
        let _ = info(ArchId(10));
    }
}

//! Processor packages.

use crate::arch;
use crate::defect::Defect;
use sdc_model::{ArchId, CoreId, CpuId, Feature, SdcType};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// A processor package in the fleet, possibly defective.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Processor {
    /// Fleet-wide identity.
    pub id: CpuId,
    /// Micro-architecture generation.
    pub arch: ArchId,
    /// Age in years at study time (Table 3's `age(Y)` column).
    pub age_years: f64,
    /// Physical core count.
    pub physical_cores: u16,
    /// Hardware threads per physical core.
    pub smt: u8,
    /// Manufacturing defects (empty for a healthy processor).
    pub defects: Vec<Defect>,
}

impl Processor {
    /// A healthy processor of the given architecture.
    pub fn healthy(id: CpuId, arch_id: ArchId, age_years: f64) -> Processor {
        let info = arch::info(arch_id);
        Processor {
            id,
            arch: arch_id,
            age_years,
            physical_cores: info.physical_cores,
            smt: info.smt,
            defects: Vec::new(),
        }
    }

    /// True if the processor carries at least one defect.
    pub fn is_faulty(&self) -> bool {
        !self.defects.is_empty()
    }

    /// The set of defective physical cores (union over defects).
    pub fn defective_cores(&self) -> Vec<CoreId> {
        let mut set = BTreeSet::new();
        for d in &self.defects {
            for c in d.scope.affected_cores(self.physical_cores) {
                set.insert(c);
            }
        }
        set.into_iter().map(CoreId).collect()
    }

    /// The SDC type of this processor's defects.
    ///
    /// The paper observes that when one processor has multiple defective
    /// features they always belong to one type; the catalog and samplers
    /// uphold that invariant, and this method reports it (`None` for a
    /// healthy processor).
    pub fn sdc_type(&self) -> Option<SdcType> {
        self.defects.first().map(|d| {
            if d.kind.is_computation() {
                SdcType::Computation
            } else {
                SdcType::Consistency
            }
        })
    }

    /// The vulnerable features touched by this processor's defects.
    pub fn defective_features(&self) -> Vec<Feature> {
        let mut set = BTreeSet::new();
        for d in &self.defects {
            match &d.kind {
                crate::defect::DefectKind::Computation { classes, .. } => {
                    for c in classes {
                        if let Some(f) = c.feature() {
                            set.insert(f);
                        }
                    }
                }
                crate::defect::DefectKind::CoherenceDrop => {
                    set.insert(Feature::Cache);
                }
                crate::defect::DefectKind::TxIsolation => {
                    set.insert(Feature::TrxMem);
                }
            }
        }
        set.into_iter().collect()
    }

    /// Logical core count (hardware threads).
    pub fn logical_cores(&self) -> u16 {
        self.physical_cores * self.smt as u16
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::defect::{DefectKind, DefectScope, Trigger};
    use sdc_model::DataType;
    use softcore::InstClass;

    fn comp_defect(core: u16, class: InstClass) -> Defect {
        Defect::new(
            DefectKind::Computation {
                classes: vec![class],
                datatypes: vec![DataType::F32],
                patterns: vec![],
                pattern_dt: DataType::Bin64,
                random_mask_prob: 1.0,
            },
            DefectScope::SingleCore(core),
            Trigger::flat(0.01),
        )
    }

    #[test]
    fn healthy_processor() {
        let p = Processor::healthy(CpuId(1), ArchId(2), 1.0);
        assert!(!p.is_faulty());
        assert_eq!(p.sdc_type(), None);
        assert!(p.defective_cores().is_empty());
        assert_eq!(p.physical_cores, 16);
        assert_eq!(p.logical_cores(), 32);
    }

    #[test]
    fn defective_cores_union() {
        let mut p = Processor::healthy(CpuId(1), ArchId(2), 1.0);
        p.defects.push(comp_defect(3, InstClass::VecFma));
        p.defects.push(comp_defect(3, InstClass::FloatMul));
        p.defects.push(comp_defect(7, InstClass::FloatAdd));
        assert_eq!(p.defective_cores(), vec![CoreId(3), CoreId(7)]);
    }

    #[test]
    fn sdc_type_and_features() {
        let mut p = Processor::healthy(CpuId(1), ArchId(3), 1.0);
        p.defects.push(Defect::new(
            DefectKind::TxIsolation,
            DefectScope::SingleCore(0),
            Trigger::flat(0.05),
        ));
        assert_eq!(p.sdc_type(), Some(SdcType::Consistency));
        assert_eq!(p.defective_features(), vec![Feature::TrxMem]);
    }

    #[test]
    fn computation_features_derive_from_classes() {
        let mut p = Processor::healthy(CpuId(1), ArchId(2), 1.0);
        p.defects.push(comp_defect(0, InstClass::VecFma));
        p.defects.push(comp_defect(0, InstClass::FloatAtan));
        assert_eq!(p.defective_features(), vec![Feature::VecUnit, Feature::Fpu]);
        assert_eq!(p.sdc_type(), Some(SdcType::Computation));
    }
}

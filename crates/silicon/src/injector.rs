//! The fault injector: turns a processor's defects into a
//! [`softcore::FaultHook`].
//!
//! The injector is configured with the mapping from machine-local core
//! indices to the processor's physical cores (the test framework decides
//! which physical cores a testcase runs on) and with a live temperature
//! per machine core (updated by the executor between execution chunks, so
//! the trigger model sees the thermal state).

use crate::defect::{Defect, DefectKind};
use crate::processor::Processor;
use sdc_model::{DataType, DetRng};
use softcore::{FaultHook, InstClass, RetireInfo, NUM_SITES};

/// Precomputed dispatch tables: which defects can possibly act on which
/// `(InstClass, DataType)` retire site and which machine core. Built once
/// per injector from temperature-independent defect structure, so the
/// per-retire hot path only walks defects that can actually fire (the
/// temperature gate stays a dynamic `rate > 0` check inside the loop).
#[derive(Debug, Clone)]
struct SparseIndex {
    /// Site ([`InstClass::site_index`]) → ascending indices of computation
    /// defects matching that `(class, datatype)` pair. Ascending order
    /// preserves the reference draw order over `defects`.
    comp_sites: Vec<Vec<u32>>,
    /// Indices of coherence-drop defects, ascending.
    coherence: Vec<u32>,
    /// Indices of transaction-isolation defects, ascending.
    tx: Vec<u32>,
    /// Per machine core: any computation defect with nonzero scale on its
    /// physical core.
    core_comp: Vec<bool>,
    /// Same, for coherence-drop defects.
    core_coherence: Vec<bool>,
    /// Same, for transaction-isolation defects.
    core_tx: Vec<bool>,
}

impl SparseIndex {
    fn build(defects: &[Defect], core_map: &[u16]) -> Self {
        let mut comp_sites = vec![Vec::new(); NUM_SITES];
        let mut coherence = Vec::new();
        let mut tx = Vec::new();
        for (i, d) in defects.iter().enumerate() {
            match d.kind {
                DefectKind::Computation { .. } => {
                    for class in InstClass::ALL {
                        for dt in DataType::ALL {
                            if d.matches(class, dt) {
                                comp_sites[class.site_index(dt)].push(i as u32);
                            }
                        }
                    }
                }
                DefectKind::CoherenceDrop => coherence.push(i as u32),
                DefectKind::TxIsolation => tx.push(i as u32),
            }
        }
        let live_on = |of_kind: &dyn Fn(&Defect) -> bool| -> Vec<bool> {
            core_map
                .iter()
                .map(|&pcore| {
                    defects
                        .iter()
                        .any(|d| of_kind(d) && d.scope.core_scale(pcore) > 0.0)
                })
                .collect()
        };
        SparseIndex {
            comp_sites,
            coherence,
            tx,
            core_comp: live_on(&|d| matches!(d.kind, DefectKind::Computation { .. })),
            core_coherence: live_on(&|d| matches!(d.kind, DefectKind::CoherenceDrop)),
            core_tx: live_on(&|d| matches!(d.kind, DefectKind::TxIsolation)),
        }
    }

    fn empty(cores: usize) -> Self {
        SparseIndex {
            comp_sites: vec![Vec::new(); NUM_SITES],
            coherence: Vec::new(),
            tx: Vec::new(),
            core_comp: vec![false; cores],
            core_coherence: vec![false; cores],
            core_tx: vec![false; cores],
        }
    }
}

/// Fault hook for one processor under test.
#[derive(Debug, Clone)]
pub struct Injector {
    defects: Vec<Defect>,
    /// machine core index → physical core id.
    core_map: Vec<u16>,
    /// Current temperature per machine core, ℃.
    temps: Vec<f64>,
    /// One independent draw stream per defect, forked from the injector
    /// seed by defect index. Whether defect `i` fires at a given retire
    /// depends only on its own stream — never on which other defects
    /// exist or fired earlier in the same run. This is what makes
    /// defect-mask monotonicity hold (adding a defect to a processor
    /// never removes the SDC records the existing defects would have
    /// produced on the same seed; checked by `conformance::metamorphic`).
    rngs: Vec<DetRng>,
    index: SparseIndex,
}

fn fork_per_defect(rng: &DetRng, n: usize) -> Vec<DetRng> {
    (0..n).map(|i| rng.fork(i as u64)).collect()
}

impl Injector {
    /// Builds an injector for `processor`, with machine core `i` pinned to
    /// physical core `core_map[i]`, starting at `idle_temp_c`.
    pub fn new(processor: &Processor, core_map: Vec<u16>, idle_temp_c: f64, rng: DetRng) -> Self {
        let n = core_map.len();
        let rngs = fork_per_defect(&rng, processor.defects.len());
        let index = SparseIndex::build(&processor.defects, &core_map);
        Injector {
            defects: processor.defects.clone(),
            core_map,
            temps: vec![idle_temp_c; n],
            rngs,
            index,
        }
    }

    /// An injector with no defects (golden behaviour) for `n` cores.
    pub fn healthy(n: usize, _rng: DetRng) -> Self {
        Injector {
            defects: Vec::new(),
            core_map: (0..n as u16).collect(),
            temps: vec![45.0; n],
            rngs: Vec::new(),
            index: SparseIndex::empty(n),
        }
    }

    /// The per-core fire-mask: whether any defect on this processor could
    /// corrupt a `(class, dt)` retire on machine core `core` at *some*
    /// temperature. False means the retire needs no bookkeeping at all —
    /// defect-free cores skip everything, defective cores only check the
    /// classes their defect can hit.
    pub fn can_fire(&self, core: usize, class: InstClass, dt: DataType) -> bool {
        self.index.core_comp.get(core).copied().unwrap_or(false)
            && !self.index.comp_sites[class.site_index(dt)].is_empty()
    }

    /// Updates the temperature of machine core `core`.
    pub fn set_temp(&mut self, core: usize, temp_c: f64) {
        self.temps[core] = temp_c;
    }

    /// Updates all machine-core temperatures at once.
    pub fn set_temps(&mut self, temps: &[f64]) {
        assert_eq!(
            temps.len(),
            self.temps.len(),
            "temperature vector size mismatch"
        );
        self.temps.copy_from_slice(temps);
    }

    /// Current temperature of machine core `core`.
    pub fn temp(&self, core: usize) -> f64 {
        self.temps[core]
    }

    fn physical(&self, machine_core: usize) -> u16 {
        self.core_map[machine_core]
    }
}

impl FaultHook for Injector {
    fn corrupt(&mut self, info: &RetireInfo) -> Option<u128> {
        if self.defects.is_empty() {
            return None;
        }
        // Sparse dispatch: the per-site table lists exactly the defects a
        // `matches` scan over all of them would visit, in the same order,
        // so skipping the rest consumes no draws and cannot shift any
        // defect's stream. The temperature gate is dynamic and stays in
        // the loop (a gated defect draws nothing either way).
        if !self.index.core_comp[info.core] {
            return None;
        }
        let site = &self.index.comp_sites[info.class.site_index(info.dt)];
        if site.is_empty() {
            return None;
        }
        let pcore = self.physical(info.core);
        let temp = self.temps[info.core];
        // Every matching defect draws from its own stream, even when an
        // earlier one already fired: the draw sequence of defect `i` is a
        // pure function of its stream and the retire sequence, so the set
        // of defects present cannot perturb each other's firings.
        // Coincident firings XOR-combine, as independent physical upsets
        // on the same result bus would.
        let mut mask = 0u128;
        for &i in site {
            let d = &self.defects[i as usize];
            let rng = &mut self.rngs[i as usize];
            let rate = d.rate(pcore, temp);
            if rate > 0.0 && rng.chance(rate) {
                mask ^= d.choose_mask(info.dt, rng);
            }
        }
        if mask != 0 {
            Some(info.bits ^ mask)
        } else {
            None
        }
    }

    fn drop_invalidation(&mut self, observer_core: usize, _line_addr: u64) -> bool {
        if self.defects.is_empty() {
            return false;
        }
        if !self.index.core_coherence[observer_core] {
            return false;
        }
        let pcore = self.physical(observer_core);
        let temp = self.temps[observer_core];
        let mut dropped = false;
        for &i in &self.index.coherence {
            let d = &self.defects[i as usize];
            let rng = &mut self.rngs[i as usize];
            let rate = d.rate(pcore, temp);
            if rate > 0.0 && rng.chance(rate) {
                dropped = true;
            }
        }
        dropped
    }

    fn tx_commit_despite_conflict(&mut self, core: usize) -> bool {
        if self.defects.is_empty() {
            return false;
        }
        if !self.index.core_tx[core] {
            return false;
        }
        let pcore = self.physical(core);
        let temp = self.temps[core];
        let mut forced = false;
        for &i in &self.index.tx {
            let d = &self.defects[i as usize];
            let rng = &mut self.rngs[i as usize];
            let rate = d.rate(pcore, temp);
            if rate > 0.0 && rng.chance(rate) {
                forced = true;
            }
        }
        forced
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::defect::{BitPattern, DefectScope, Trigger};
    use sdc_model::{ArchId, CpuId, DataType};
    use softcore::InstClass;

    fn test_processor(defect: Defect) -> Processor {
        let mut p = Processor::healthy(CpuId(1), ArchId(2), 1.0);
        p.defects.push(defect);
        p
    }

    fn retire(core: usize, class: InstClass, dt: DataType, bits: u128) -> RetireInfo {
        RetireInfo {
            core,
            class,
            dt,
            bits,
        }
    }

    #[test]
    fn always_firing_defect_corrupts_with_pattern() {
        let d = Defect::new(
            DefectKind::Computation {
                classes: vec![InstClass::VecFma],
                datatypes: vec![DataType::F32],
                patterns: vec![BitPattern {
                    mask: 0b1000,
                    weight: 1.0,
                }],
                pattern_dt: DataType::F32,
                random_mask_prob: 0.0,
            },
            DefectScope::SingleCore(0),
            Trigger::flat(0.5),
        );
        let p = test_processor(d);
        let mut inj = Injector::new(&p, vec![0], 45.0, DetRng::new(1));
        let mut corrupted = 0;
        for _ in 0..200 {
            if let Some(bits) = inj.corrupt(&retire(0, InstClass::VecFma, DataType::F32, 0xff)) {
                assert_eq!(bits, 0xff ^ 0b1000);
                corrupted += 1;
            }
        }
        // rate clamp is 0.5 → about half fire.
        assert!((50..150).contains(&corrupted), "{corrupted}");
    }

    #[test]
    fn wrong_core_never_fires() {
        let d = Defect::new(
            DefectKind::Computation {
                classes: vec![InstClass::IntArith],
                datatypes: vec![],
                patterns: vec![],
                pattern_dt: DataType::Bin64,
                random_mask_prob: 1.0,
            },
            DefectScope::SingleCore(5),
            Trigger::flat(0.5),
        );
        let p = test_processor(d);
        // Machine core 0 pinned to physical core 0 ≠ 5.
        let mut inj = Injector::new(&p, vec![0], 45.0, DetRng::new(2));
        for _ in 0..500 {
            assert!(inj
                .corrupt(&retire(0, InstClass::IntArith, DataType::I32, 1))
                .is_none());
        }
    }

    #[test]
    fn core_map_routes_to_physical_core() {
        let d = Defect::new(
            DefectKind::Computation {
                classes: vec![InstClass::IntArith],
                datatypes: vec![],
                patterns: vec![],
                pattern_dt: DataType::Bin64,
                random_mask_prob: 1.0,
            },
            DefectScope::SingleCore(5),
            Trigger::flat(0.5),
        );
        let p = test_processor(d);
        // Machine core 0 pinned to the defective physical core 5.
        let mut inj = Injector::new(&p, vec![5], 45.0, DetRng::new(3));
        let fired = (0..500)
            .filter(|_| {
                inj.corrupt(&retire(0, InstClass::IntArith, DataType::I32, 1))
                    .is_some()
            })
            .count();
        assert!(fired > 100, "{fired}");
    }

    #[test]
    fn temperature_gate_blocks_below_t_min() {
        let d = Defect::new(
            DefectKind::Computation {
                classes: vec![InstClass::FloatMul],
                datatypes: vec![],
                patterns: vec![],
                pattern_dt: DataType::Bin64,
                random_mask_prob: 1.0,
            },
            DefectScope::SingleCore(0),
            Trigger {
                base_rate: 0.5,
                t_ref_c: 60.0,
                log10_slope_per_c: 0.0,
                t_min_c: 59.0,
            },
        );
        let p = test_processor(d);
        let mut inj = Injector::new(&p, vec![0], 45.0, DetRng::new(4));
        for _ in 0..200 {
            assert!(inj
                .corrupt(&retire(0, InstClass::FloatMul, DataType::F64, 7))
                .is_none());
        }
        inj.set_temp(0, 62.0);
        let fired = (0..200)
            .filter(|_| {
                inj.corrupt(&retire(0, InstClass::FloatMul, DataType::F64, 7))
                    .is_some()
            })
            .count();
        assert!(fired > 40, "{fired}");
    }

    #[test]
    fn coherence_defect_drops_invalidations() {
        let d = Defect::new(
            DefectKind::CoherenceDrop,
            DefectScope::SingleCore(1),
            Trigger::flat(0.5),
        );
        let p = test_processor(d);
        let mut inj = Injector::new(&p, vec![0, 1], 45.0, DetRng::new(5));
        let drops = (0..400).filter(|_| inj.drop_invalidation(1, 0)).count();
        assert!(drops > 100, "{drops}");
        assert_eq!((0..400).filter(|_| inj.drop_invalidation(0, 0)).count(), 0);
    }

    #[test]
    fn tx_defect_forces_commits() {
        let d = Defect::new(
            DefectKind::TxIsolation,
            DefectScope::AllCores {
                per_core_scale: vec![1.0; 24],
            },
            Trigger::flat(0.3),
        );
        let p = test_processor(d);
        let mut inj = Injector::new(&p, vec![0, 1, 2], 45.0, DetRng::new(6));
        let forced = (0..600)
            .filter(|_| inj.tx_commit_despite_conflict(2))
            .count();
        assert!(forced > 100, "{forced}");
    }

    #[test]
    fn logical_cores_of_one_physical_core_fail_alike() {
        // Observation 4: "multiple hardware threads, also known as logical
        // cores, can share a single physical core. In most cases, all the
        // logical cores sharing the same defective physical core are
        // affected and they fail the same testcases with a similar
        // frequency." Two machine cores pinned to the same physical core
        // (SMT siblings) draw from the same defect rate.
        let d = Defect::new(
            DefectKind::Computation {
                classes: vec![InstClass::FloatMul],
                datatypes: vec![],
                patterns: vec![],
                pattern_dt: DataType::Bin64,
                random_mask_prob: 1.0,
            },
            DefectScope::SingleCore(5),
            Trigger::flat(0.2),
        );
        let p = test_processor(d);
        // Machine cores 0 and 1 are SMT siblings on physical core 5.
        let mut inj = Injector::new(&p, vec![5, 5], 45.0, DetRng::new(99));
        let mut fired = [0u32; 2];
        for i in 0..4000u128 {
            for (core, count) in fired.iter_mut().enumerate() {
                if inj
                    .corrupt(&retire(core, InstClass::FloatMul, DataType::F64, i))
                    .is_some()
                {
                    *count += 1;
                }
            }
        }
        let ratio = fired[0] as f64 / fired[1].max(1) as f64;
        assert!(
            (0.8..1.25).contains(&ratio),
            "similar frequency on both siblings: {fired:?}"
        );
    }

    #[test]
    fn fire_mask_reflects_defect_structure() {
        let d = Defect::new(
            DefectKind::Computation {
                classes: vec![InstClass::VecFma],
                datatypes: vec![DataType::F32],
                patterns: vec![],
                pattern_dt: DataType::F32,
                random_mask_prob: 1.0,
            },
            DefectScope::SingleCore(5),
            Trigger::flat(0.5),
        );
        let p = test_processor(d);
        // Machine core 0 healthy (physical 0), machine core 1 defective
        // (physical 5).
        let inj = Injector::new(&p, vec![0, 5], 45.0, DetRng::new(11));
        assert!(inj.can_fire(1, InstClass::VecFma, DataType::F32));
        assert!(
            !inj.can_fire(0, InstClass::VecFma, DataType::F32),
            "defect-free core skips retire bookkeeping"
        );
        assert!(
            !inj.can_fire(1, InstClass::IntArith, DataType::I32),
            "defective core only checks classes its defect can hit"
        );
        assert!(!inj.can_fire(7, InstClass::VecFma, DataType::F32));

        let healthy = Injector::healthy(2, DetRng::new(12));
        assert!(!healthy.can_fire(0, InstClass::VecFma, DataType::F32));
    }

    #[test]
    fn healthy_injector_is_inert() {
        let mut inj = Injector::healthy(4, DetRng::new(7));
        assert!(inj
            .corrupt(&retire(0, InstClass::VecFma, DataType::F32, 1))
            .is_none());
        assert!(!inj.drop_invalidation(0, 0));
        assert!(!inj.tx_commit_despite_conflict(0));
    }

    #[test]
    fn adding_a_defect_never_unfires_existing_ones() {
        // Defect-mask monotonicity at the injector level: because each
        // defect draws from its own forked stream, the retires corrupted
        // by defect 0 are the same whether or not defect 1 exists.
        let d0 = Defect::new(
            DefectKind::Computation {
                classes: vec![InstClass::IntArith],
                datatypes: vec![],
                patterns: vec![],
                pattern_dt: DataType::Bin64,
                random_mask_prob: 1.0,
            },
            DefectScope::SingleCore(0),
            Trigger::flat(0.05),
        );
        let d1 = Defect::new(
            DefectKind::Computation {
                classes: vec![InstClass::FloatMul],
                datatypes: vec![],
                patterns: vec![],
                pattern_dt: DataType::Bin64,
                random_mask_prob: 1.0,
            },
            DefectScope::SingleCore(0),
            Trigger::flat(0.05),
        );
        let mut small = Processor::healthy(CpuId(1), ArchId(2), 1.0);
        small.defects.push(d0.clone());
        let mut big = small.clone();
        big.defects.push(d1);

        // Same retire sequence against both injectors, same seed.
        let run = |p: &Processor| {
            let mut inj = Injector::new(p, vec![0], 45.0, DetRng::new(42));
            let mut fired = Vec::new();
            for i in 0..2000u128 {
                let class = if i % 2 == 0 {
                    InstClass::IntArith
                } else {
                    InstClass::FloatMul
                };
                let dt = if i % 2 == 0 {
                    DataType::I32
                } else {
                    DataType::F64
                };
                if inj.corrupt(&retire(0, class, dt, i)).is_some() {
                    fired.push(i);
                }
            }
            fired
        };
        let only_d0 = run(&small);
        let both = run(&big);
        assert!(!only_d0.is_empty(), "d0 must fire at 5% over 1000 retires");
        for i in &only_d0 {
            assert!(
                both.contains(i),
                "retire {i} corrupted with one defect but clean with two"
            );
        }
        assert!(both.len() > only_d0.len(), "d1 must add firings");
    }

    #[test]
    fn corruption_always_differs_from_expected() {
        let d = Defect::new(
            DefectKind::Computation {
                classes: vec![InstClass::Crc],
                datatypes: vec![DataType::Bin32],
                patterns: vec![],
                pattern_dt: DataType::Bin64,
                random_mask_prob: 1.0,
            },
            DefectScope::SingleCore(0),
            Trigger::flat(0.5),
        );
        let p = test_processor(d);
        let mut inj = Injector::new(&p, vec![0], 45.0, DetRng::new(8));
        for i in 0..300u128 {
            if let Some(bits) = inj.corrupt(&retire(0, InstClass::Crc, DataType::Bin32, i)) {
                assert_ne!(bits, i, "a firing must change the value");
            }
        }
    }
}

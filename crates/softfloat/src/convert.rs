//! Conversions between [`F80`] and `f64`.

use crate::{Kind, F80};

impl F80 {
    /// Converts an `f64` exactly (every `f64` is representable in the
    /// extended format).
    pub fn from_f64(v: f64) -> F80 {
        let bits = v.to_bits();
        let sign = bits >> 63 == 1;
        let exp = ((bits >> 52) & 0x7ff) as i32;
        let frac = bits & ((1u64 << 52) - 1);
        match exp {
            0 => {
                if frac == 0 {
                    F80 {
                        sign,
                        kind: Kind::Zero,
                    }
                } else {
                    // Subnormal f64: value = frac × 2^−1074. `normalized`
                    // interprets (exp, sig) as sig × 2^(exp − 63).
                    F80::normalized(sign, -1074 + 63, frac)
                }
            }
            0x7ff => {
                if frac == 0 {
                    F80 {
                        sign,
                        kind: Kind::Inf,
                    }
                } else {
                    F80 {
                        sign,
                        kind: Kind::Nan,
                    }
                }
            }
            _ => {
                let sig = (frac | (1 << 52)) << 11;
                F80 {
                    sign,
                    kind: Kind::Normal {
                        exp: exp - 1023,
                        sig,
                    },
                }
            }
        }
    }

    /// Converts to `f64`, rounding the 64-bit significand to 53 bits with
    /// round-to-nearest-even. Overflow produces ±∞; deep underflow rounds
    /// through the `f64` subnormal range.
    pub fn to_f64(self) -> f64 {
        match self.kind {
            Kind::Zero => {
                if self.sign {
                    -0.0
                } else {
                    0.0
                }
            }
            Kind::Inf => {
                if self.sign {
                    f64::NEG_INFINITY
                } else {
                    f64::INFINITY
                }
            }
            Kind::Nan => f64::NAN,
            Kind::Normal { exp, sig } => {
                // value = sig × 2^(exp − 63); build via scaled integer.
                let magnitude = compose_f64(exp, sig);
                if self.sign {
                    -magnitude
                } else {
                    magnitude
                }
            }
        }
    }
}

/// Composes `sig × 2^(exp − 63)` as a positive `f64` with
/// round-to-nearest-even on the significand.
fn compose_f64(exp: i32, sig: u64) -> f64 {
    debug_assert!(sig >> 63 == 1);
    // Biased f64 exponent if the value stays normal.
    let e = exp + 1023;
    if e >= 0x7ff {
        return f64::INFINITY;
    }
    if e >= 1 {
        // Round 64-bit sig to 53 bits: drop 11 bits with RNE.
        let (mantissa, carry) = round_shift(sig, 11);
        let (mantissa, e) = if carry {
            (mantissa >> 1, e + 1)
        } else {
            (mantissa, e)
        };
        if e >= 0x7ff {
            return f64::INFINITY;
        }
        let frac = mantissa & ((1u64 << 52) - 1);
        return f64::from_bits(((e as u64) << 52) | frac);
    }
    // Subnormal range: shift further right.
    let extra = 1 - e; // ≥ 1
    if extra > 63 {
        return 0.0;
    }
    let shift = 11 + extra as u32;
    if shift >= 64 {
        // kept = 0 (even); at shift 64 the round bit is sig's bit 63 (set),
        // so RNE rounds up to the smallest subnormal unless it is an exact
        // tie (sig with no sticky bits), which rounds to even zero.
        return if shift == 64 && sig != (1 << 63) {
            f64::from_bits(1)
        } else {
            0.0
        };
    }
    let (mantissa, carry) = round_shift(sig, shift);
    let mantissa = if carry { mantissa >> 1 } else { mantissa };
    f64::from_bits(mantissa)
}

/// Shifts `sig` right by `n` (1..=63) with round-to-nearest-even.
/// Returns `(result, carried)` where `carried` means the rounding overflowed
/// into one extra bit.
fn round_shift(sig: u64, n: u32) -> (u64, bool) {
    debug_assert!((1..=63).contains(&n));
    let kept = sig >> n;
    let round_bit = (sig >> (n - 1)) & 1;
    let sticky = sig & ((1u64 << (n - 1)) - 1) != 0;
    let round_up = round_bit == 1 && (sticky || kept & 1 == 1);
    let out = kept + round_up as u64;
    let carried = out >> (64 - n) != kept >> (64 - n) && out.leading_zeros() < kept.leading_zeros();
    (out, carried)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_simple_values() {
        for v in [
            0.0,
            1.0,
            -1.0,
            0.5,
            3.141592653589793,
            1e300,
            1e-300,
            -42.125,
        ] {
            assert_eq!(F80::from_f64(v).to_f64(), v, "roundtrip {v}");
        }
    }

    #[test]
    fn roundtrip_signed_zero() {
        assert!(F80::from_f64(-0.0).is_sign_negative());
        assert_eq!(F80::from_f64(-0.0).to_f64().to_bits(), (-0.0f64).to_bits());
    }

    #[test]
    fn roundtrip_specials() {
        assert!(F80::from_f64(f64::NAN).is_nan());
        assert!(F80::from_f64(f64::NAN).to_f64().is_nan());
        assert_eq!(F80::from_f64(f64::INFINITY).to_f64(), f64::INFINITY);
        assert_eq!(F80::from_f64(f64::NEG_INFINITY).to_f64(), f64::NEG_INFINITY);
    }

    #[test]
    fn roundtrip_subnormals() {
        let tiny = f64::from_bits(1); // smallest positive subnormal
        assert_eq!(F80::from_f64(tiny).to_f64(), tiny);
        let sub = f64::from_bits(0x000f_ffff_ffff_ffff);
        assert_eq!(F80::from_f64(sub).to_f64(), sub);
    }

    #[test]
    fn roundtrip_extremes() {
        assert_eq!(F80::from_f64(f64::MAX).to_f64(), f64::MAX);
        assert_eq!(F80::from_f64(f64::MIN_POSITIVE).to_f64(), f64::MIN_POSITIVE);
    }

    #[test]
    fn round_shift_nearest_even() {
        // kept = 0b11, round bit 0 → unchanged.
        assert_eq!(round_shift(0b110 << 61, 62).0, 0b11);
        // Exact half with odd kept → round up to even.
        let (r, _) = round_shift((0b11u64 << 62) | (1 << 61), 62);
        assert_eq!(r, 0b100);
        // Exact half with even kept → stays even.
        let (r, _) = round_shift((0b10u64 << 62) | (1 << 61), 62);
        assert_eq!(r, 0b10);
        // Above half → rounds up regardless of parity.
        let (r, _) = round_shift((0b10u64 << 62) | (1 << 61) | 1, 62);
        assert_eq!(r, 0b11);
    }

    #[test]
    fn extended_precision_exceeds_f64() {
        // 1 + 2^−60 is representable in F80 but rounds to 1.0 in f64.
        let one = F80::ONE;
        let tiny = F80::from_f64(2f64.powi(-60));
        let sum = one + tiny;
        assert_eq!(sum.to_f64(), 1.0);
        assert_ne!(sum, F80::ONE, "extended precision retains the 2^-60 term");
    }
}

//! Arctangent in extended precision.
//!
//! The paper's FPU1/FPU2 case studies trace SDCs to "one instruction, which
//! uses the floating-point calculation feature to calculate a complex math
//! function (arctangent)". The toolchain's math-function testcases therefore
//! need a real arctangent running on the extended-precision datapath; this
//! module provides it via argument reduction and a Maclaurin series
//! evaluated in [`F80`] arithmetic.

use crate::F80;

/// Arctangent of `x`, computed in extended precision.
///
/// Accuracy is at least that of `f64` (constants are `f64`-derived); the
/// result is fully deterministic, which is what the corruption experiments
/// require.
///
/// # Examples
///
/// ```
/// use softfloat::{atan, F80};
///
/// let y = atan(F80::from_f64(1.0)).to_f64();
/// assert!((y - std::f64::consts::FRAC_PI_4).abs() < 1e-15);
/// ```
pub fn atan(x: F80) -> F80 {
    if x.is_nan() {
        return F80::NAN;
    }
    let half_pi = F80::from_f64(std::f64::consts::FRAC_PI_2);
    if x.is_infinite() {
        return if x.is_sign_negative() {
            half_pi.neg()
        } else {
            half_pi
        };
    }
    if x.is_zero() {
        return x;
    }
    // atan is odd: work on |x|.
    let neg = x.is_sign_negative();
    let ax = x.abs();
    let one = F80::ONE;
    let result = if ax > one {
        // atan(x) = π/2 − atan(1/x) for x > 0.
        half_pi - atan_reduced(one / ax)
    } else {
        atan_reduced(ax)
    };
    if neg {
        result.neg()
    } else {
        result
    }
}

/// Arctangent for `0 ≤ x ≤ 1`, with one extra reduction step to keep the
/// series argument at or below ~0.4.
fn atan_reduced(x: F80) -> F80 {
    let half = F80::from_f64(0.5);
    if x > half {
        // atan(x) = atan(c) + atan((x − c) / (1 + x·c)) with c = 0.5.
        let atan_half = atan_series(half);
        let num = x - half;
        let den = F80::ONE + x * half;
        atan_half + atan_series(num / den)
    } else {
        atan_series(x)
    }
}

/// Maclaurin series `x − x³/3 + x⁵/5 − …` for `|x| ≤ 0.5`.
fn atan_series(x: F80) -> F80 {
    let x2 = x * x;
    let mut term = x;
    let mut sum = x;
    let mut sign = true; // next term is subtracted
    let mut k = 3u32;
    // |x| ≤ 0.5 → term ratio ≤ 0.25; 75 terms push the truncation error
    // below 2^−150, far beyond the 64-bit significand.
    for _ in 0..75 {
        term = term * x2;
        let contrib = term / F80::from_f64(k as f64);
        sum = if sign { sum - contrib } else { sum + contrib };
        if contrib.is_zero() {
            break;
        }
        sign = !sign;
        k += 2;
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_f64_atan() {
        for v in [0.0, 0.1, 0.25, 0.5, 0.75, 1.0, 2.0, 10.0, 1e6, 1e-9] {
            let got = atan(F80::from_f64(v)).to_f64();
            let want = v.atan();
            assert!(
                (got - want).abs() <= want.abs().max(1e-300) * 1e-14 + 1e-300,
                "atan({v}): got {got}, want {want}"
            );
        }
    }

    #[test]
    fn odd_symmetry() {
        for v in [0.3, 1.7, 42.0] {
            let pos = atan(F80::from_f64(v));
            let neg = atan(F80::from_f64(-v));
            assert_eq!(pos, neg.neg());
        }
    }

    #[test]
    fn specials() {
        assert!(atan(F80::NAN).is_nan());
        let y = atan(F80::INFINITY).to_f64();
        assert!((y - std::f64::consts::FRAC_PI_2).abs() < 1e-15);
        let y = atan(F80::INFINITY.neg()).to_f64();
        assert!((y + std::f64::consts::FRAC_PI_2).abs() < 1e-15);
        assert!(atan(F80::ZERO).is_zero());
        assert!(atan(F80::from_f64(-0.0)).is_sign_negative());
    }

    #[test]
    fn atan_one_is_quarter_pi() {
        let y = atan(F80::ONE).to_f64();
        assert!((y - std::f64::consts::FRAC_PI_4).abs() < 1e-15);
    }

    #[test]
    fn monotone_on_samples() {
        let mut prev = atan(F80::from_f64(-100.0)).to_f64();
        for i in -99..100 {
            let y = atan(F80::from_f64(i as f64)).to_f64();
            assert!(y > prev, "atan not increasing at {i}");
            prev = y;
        }
    }

    #[test]
    fn deterministic() {
        let a = atan(F80::from_f64(0.7321));
        let b = atan(F80::from_f64(0.7321));
        assert_eq!(a.encode(), b.encode());
    }
}

//! Correctly rounded extended-precision arithmetic.
//!
//! All operations round to nearest, ties to even, with respect to the
//! 64-bit significand. Intermediate results are kept in 128 bits plus a
//! sticky flag, the textbook construction for correct rounding.

use crate::{Kind, F80};
use std::cmp::Ordering;

/// Builds an `F80` from a 128-bit magnitude: the value is
/// `val × 2^exp_bit0` (bit 0 of `val` has weight `2^exp_bit0`), plus an
/// inexact remainder strictly below bit 0 when `sticky` is set.
///
/// Rounds to a 64-bit significand with round-to-nearest-even.
fn from_parts_128(sign: bool, exp_bit0: i32, val: u128, sticky: bool) -> F80 {
    if val == 0 {
        if sticky {
            // A nonzero true result smaller than one unit of bit 0 — only
            // reachable through pathological cancellation with lost bits;
            // approximate by the smallest magnitude at this scale.
            return F80::normalized(sign, exp_bit0 + 63, 1);
        }
        // Exact zero takes the positive sign under round-to-nearest.
        return F80::ZERO;
    }
    let p = 127 - val.leading_zeros() as i32;
    let shift = p - 63;
    if shift <= 0 {
        // Fits in 64 bits already; sticky below the LSB never rounds up
        // under RNE with a zero round bit.
        let sig = (val as u64) << (-shift) as u32;
        return F80::normalized(sign, exp_bit0 + p, sig);
    }
    let shift = shift as u32;
    let kept = (val >> shift) as u64;
    let round = (val >> (shift - 1)) & 1 == 1;
    let sticky_all = sticky || (val & ((1u128 << (shift - 1)) - 1)) != 0;
    let round_up = round && (sticky_all || kept & 1 == 1);
    let (sig, p) = match kept.checked_add(round_up as u64) {
        Some(s) if s != 0 => (s, p),
        // Carried out of 64 bits: significand becomes 2^64 → renormalize.
        _ => (1u64 << 63, p + 1),
    };
    F80::normalized(sign, exp_bit0 + p, sig)
}

/// Magnitude comparison of two normal values.
fn cmp_mag(ea: i32, sa: u64, eb: i32, sb: u64) -> Ordering {
    ea.cmp(&eb).then(sa.cmp(&sb))
}

// The inherent `add`/`sub`/`mul`/`div` are the primary API (callable from
// generic code without importing the operator traits); the `std::ops`
// impls below forward to them.
#[allow(clippy::should_implement_trait)]
impl F80 {
    /// Addition with round-to-nearest-even.
    pub fn add(self, rhs: F80) -> F80 {
        match (self.kind, rhs.kind) {
            (Kind::Nan, _) | (_, Kind::Nan) => F80::NAN,
            (Kind::Inf, Kind::Inf) => {
                if self.sign == rhs.sign {
                    self
                } else {
                    F80::NAN
                }
            }
            (Kind::Inf, _) => self,
            (_, Kind::Inf) => rhs,
            (Kind::Zero, Kind::Zero) => {
                // +0 + −0 = +0 (RNE); −0 + −0 = −0.
                F80 {
                    sign: self.sign && rhs.sign,
                    kind: Kind::Zero,
                }
            }
            (Kind::Zero, _) => rhs,
            (_, Kind::Zero) => self,
            (Kind::Normal { exp: ea, sig: sa }, Kind::Normal { exp: eb, sig: sb }) => {
                add_normal(self.sign, ea, sa, rhs.sign, eb, sb)
            }
        }
    }

    /// Subtraction (`self + (−rhs)`).
    pub fn sub(self, rhs: F80) -> F80 {
        self.add(rhs.neg())
    }

    /// Multiplication with round-to-nearest-even.
    pub fn mul(self, rhs: F80) -> F80 {
        let sign = self.sign ^ rhs.sign;
        match (self.kind, rhs.kind) {
            (Kind::Nan, _) | (_, Kind::Nan) => F80::NAN,
            (Kind::Inf, Kind::Zero) | (Kind::Zero, Kind::Inf) => F80::NAN,
            (Kind::Inf, _) | (_, Kind::Inf) => F80 {
                sign,
                kind: Kind::Inf,
            },
            (Kind::Zero, _) | (_, Kind::Zero) => F80 {
                sign,
                kind: Kind::Zero,
            },
            (Kind::Normal { exp: ea, sig: sa }, Kind::Normal { exp: eb, sig: sb }) => {
                let prod = sa as u128 * sb as u128;
                // value = prod × 2^(ea − 63 + eb − 63).
                from_parts_128(sign, ea + eb - 126, prod, false)
            }
        }
    }

    /// Division with round-to-nearest-even.
    pub fn div(self, rhs: F80) -> F80 {
        let sign = self.sign ^ rhs.sign;
        match (self.kind, rhs.kind) {
            (Kind::Nan, _) | (_, Kind::Nan) => F80::NAN,
            (Kind::Zero, Kind::Zero) | (Kind::Inf, Kind::Inf) => F80::NAN,
            (Kind::Inf, _) => F80 {
                sign,
                kind: Kind::Inf,
            },
            (_, Kind::Inf) => F80 {
                sign,
                kind: Kind::Zero,
            },
            (Kind::Zero, _) => F80 {
                sign,
                kind: Kind::Zero,
            },
            (_, Kind::Zero) => F80 {
                sign,
                kind: Kind::Inf,
            },
            (Kind::Normal { exp: ea, sig: sa }, Kind::Normal { exp: eb, sig: sb }) => {
                // First 64 quotient bits of (sa << 64) / sb, then one more
                // division step so a round bit always exists.
                let num = (sa as u128) << 64;
                let den = sb as u128;
                let q = num / den;
                let r = num % den;
                let q2 = (q << 1) | ((r << 1) / den);
                let r2 = (r << 1) % den;
                // value = q2 × 2^(ea − eb − 65).
                from_parts_128(sign, ea - eb - 65, q2, r2 != 0)
            }
        }
    }

    /// Total comparison of finite values; `None` if either side is NaN.
    pub fn partial_cmp_val(self, rhs: F80) -> Option<Ordering> {
        match (self.kind, rhs.kind) {
            (Kind::Nan, _) | (_, Kind::Nan) => None,
            (Kind::Zero, Kind::Zero) => Some(Ordering::Equal),
            _ => {
                let sa = signum(self);
                let sb = signum(rhs);
                if sa != sb {
                    return Some(sa.cmp(&sb));
                }
                // Same nonzero sign: compare magnitudes.
                let mag = match (self.kind, rhs.kind) {
                    (Kind::Inf, Kind::Inf) => Ordering::Equal,
                    (Kind::Inf, _) => Ordering::Greater,
                    (_, Kind::Inf) => Ordering::Less,
                    (Kind::Zero, _) => Ordering::Less,
                    (_, Kind::Zero) => Ordering::Greater,
                    (Kind::Normal { exp: ea, sig: siga }, Kind::Normal { exp: eb, sig: sigb }) => {
                        cmp_mag(ea, siga, eb, sigb)
                    }
                    // NaNs were handled by the first arm.
                    (Kind::Nan, _) | (_, Kind::Nan) => unreachable!("NaN handled above"),
                };
                Some(if sa < 0 { mag.reverse() } else { mag })
            }
        }
    }
}

/// −1, 0, or 1 by sign, with zero counting as 0.
fn signum(x: F80) -> i32 {
    match x.kind {
        Kind::Zero => 0,
        _ => {
            if x.sign {
                -1
            } else {
                1
            }
        }
    }
}

/// Adds two normal values.
fn add_normal(signa: bool, ea: i32, sa: u64, signb: bool, eb: i32, sb: u64) -> F80 {
    // Order so that (e1, s1) has the larger magnitude.
    let (sign1, e1, s1, sign2, e2, s2) = if cmp_mag(ea, sa, eb, sb) == Ordering::Less {
        (signb, eb, sb, signa, ea, sa)
    } else {
        (signa, ea, sa, signb, eb, sb)
    };
    let diff = (e1 - e2) as u32;
    // Fixed-point at 2^(e1 − 126): big occupies bits 63..=126.
    let big = (s1 as u128) << 63;
    let (small, sticky) = if diff >= 127 {
        (0u128, s2 != 0)
    } else {
        let full = (s2 as u128) << 63;
        let shifted = full >> diff;
        let lost = if diff == 0 {
            0
        } else {
            full & ((1u128 << diff) - 1)
        };
        (shifted, lost != 0)
    };
    let exp_bit0 = e1 - 126;
    if sign1 == sign2 {
        from_parts_128(sign1, exp_bit0, big + small, sticky)
    } else {
        // True small is (small + s) with 0 ≤ s < 1 in bit-0 units, so the
        // difference is (big − small − 1) + (1 − s) when sticky.
        let total = big - small - sticky as u128;
        from_parts_128(sign1, exp_bit0, total, sticky)
    }
}

impl std::ops::Add for F80 {
    type Output = F80;
    fn add(self, rhs: F80) -> F80 {
        F80::add(self, rhs)
    }
}

impl std::ops::Sub for F80 {
    type Output = F80;
    fn sub(self, rhs: F80) -> F80 {
        F80::sub(self, rhs)
    }
}

impl std::ops::Mul for F80 {
    type Output = F80;
    fn mul(self, rhs: F80) -> F80 {
        F80::mul(self, rhs)
    }
}

impl std::ops::Div for F80 {
    type Output = F80;
    fn div(self, rhs: F80) -> F80 {
        F80::div(self, rhs)
    }
}

impl PartialEq for F80 {
    fn eq(&self, other: &F80) -> bool {
        self.partial_cmp_val(*other) == Some(Ordering::Equal)
    }
}

impl PartialOrd for F80 {
    fn partial_cmp(&self, other: &F80) -> Option<Ordering> {
        self.partial_cmp_val(*other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(v: f64) -> F80 {
        F80::from_f64(v)
    }

    #[test]
    fn add_matches_f64_on_exact_cases() {
        for (a, b) in [
            (1.0, 2.0),
            (1.5, -0.25),
            (-3.0, 3.0),
            (1e10, 1e-10),
            (0.1, 0.2),
        ] {
            let got = (f(a) + f(b)).to_f64();
            let want = a + b;
            assert!(
                (got - want).abs() <= want.abs() * 1e-15,
                "{a} + {b}: got {got}, want {want}"
            );
        }
    }

    #[test]
    fn exact_cancellation_is_positive_zero() {
        let r = f(3.5) + f(-3.5);
        assert!(r.is_zero());
        assert!(!r.is_sign_negative());
    }

    #[test]
    fn add_specials() {
        assert!((F80::INFINITY + F80::INFINITY.neg()).is_nan());
        assert!((F80::INFINITY + f(1.0)).is_infinite());
        assert!((F80::NAN + f(1.0)).is_nan());
        assert_eq!(f(0.0) + f(5.0), f(5.0));
        assert_eq!(f(5.0) + f(0.0), f(5.0));
    }

    #[test]
    fn neg_zero_sum() {
        let r = f(-0.0) + f(-0.0);
        assert!(r.is_zero() && r.is_sign_negative());
        let r = f(-0.0) + f(0.0);
        assert!(r.is_zero() && !r.is_sign_negative());
    }

    #[test]
    fn mul_matches_f64() {
        for (a, b) in [(3.0, 4.0), (-1.5, 2.5), (1e200, 1e-100), (0.1, 10.0)] {
            let got = (f(a) * f(b)).to_f64();
            let want = a * b;
            assert!(
                (got - want).abs() <= want.abs() * 1e-15,
                "{a} * {b}: got {got}, want {want}"
            );
        }
    }

    #[test]
    fn mul_specials() {
        assert!((F80::INFINITY * F80::ZERO).is_nan());
        assert!((F80::INFINITY * f(-2.0)).is_sign_negative());
        assert!((f(0.0) * f(-1.0)).is_zero());
    }

    #[test]
    fn div_matches_f64() {
        for (a, b) in [(1.0, 3.0), (10.0, -4.0), (1e-200, 1e100), (7.0, 7.0)] {
            let got = (f(a) / f(b)).to_f64();
            let want = a / b;
            assert!(
                (got - want).abs() <= want.abs() * 1e-15,
                "{a} / {b}: got {got}, want {want}"
            );
        }
    }

    #[test]
    fn div_specials() {
        assert!((f(0.0) / f(0.0)).is_nan());
        assert!((F80::INFINITY / F80::INFINITY).is_nan());
        assert!((f(1.0) / f(0.0)).is_infinite());
        assert!((f(-1.0) / f(0.0)).is_sign_negative());
        assert!((f(1.0) / F80::INFINITY).is_zero());
    }

    #[test]
    fn div_then_mul_recovers_with_extended_precision() {
        let x = f(1.0) / f(3.0);
        let back = x * f(3.0);
        // 1/3 rounds at 2^-64; multiplying back must land within one f64 ulp.
        assert!((back.to_f64() - 1.0).abs() < 1e-18);
    }

    #[test]
    fn ordering() {
        assert!(f(1.0) < f(2.0));
        assert!(f(-2.0) < f(-1.0));
        assert!(f(-1.0) < f(1.0));
        assert!(f(0.0) == f(-0.0));
        assert!(F80::INFINITY > f(1e300));
        assert!(F80::NAN.partial_cmp(&f(1.0)).is_none());
        assert!(f(0.0) < f(1.0));
        assert!(f(-1.0) < f(0.0));
    }

    #[test]
    fn addition_keeps_bits_f64_drops() {
        // (1 + 2^-60) − 1 == 2^-60 exactly in extended precision.
        let tiny = f(2f64.powi(-60));
        let r = (F80::ONE + tiny) - F80::ONE;
        assert_eq!(r.to_f64(), 2f64.powi(-60));
    }

    #[test]
    fn large_exponent_difference_is_absorbing() {
        let big = f(1e300);
        let small = f(1e-300);
        assert_eq!((big + small).to_f64(), 1e300);
    }

    #[test]
    fn rounding_ties_to_even_in_mul() {
        // 2^63 + 1 squared straddles a rounding boundary; just assert the
        // result is one of the two neighbouring representables and the
        // operation is deterministic.
        let x = F80::normalized(false, 63, u64::MAX);
        let y = x * x;
        let z = x * x;
        assert_eq!(y, z);
        assert!(y.is_finite());
    }

    #[test]
    fn overflow_saturates_to_infinity() {
        let huge = F80::normalized(false, 16384, 1 << 63);
        assert!((huge * huge).is_infinite());
    }
}

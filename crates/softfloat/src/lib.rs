//! Software implementation of the 80-bit x87 extended-precision format.
//!
//! Table 3 of the paper lists `float64x` among the datatypes affected by
//! SDCs, and Figure 4(d)/(h) analyse bitflip positions and precision losses
//! in 80-bit values. Reproducing those experiments requires executing
//! extended-precision arithmetic and corrupting its *encoded* form — so this
//! crate provides a self-contained soft float: a 64-bit explicit-integer-bit
//! significand with a 15-bit exponent, round-to-nearest-even arithmetic
//! (add/sub/mul/div), conversions to and from `f64`, the x87 80-bit
//! encoding, and an `atan` implementation (the paper fingers a defective
//! arctangent instruction in processors FPU1/FPU2).
//!
//! Accuracy notes: arithmetic is correctly rounded with respect to the
//! 64-bit significand; `atan` is computed by argument reduction plus a
//! Maclaurin series evaluated in extended arithmetic with `f64`-derived
//! constants, so its results are deterministic and at least `f64`-accurate,
//! which is what the corruption experiments need.

mod arith;
mod atan;
mod convert;
mod encode;

pub use atan::atan;

/// Classification of an [`F80`] value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Kind {
    /// Zero (signed).
    Zero,
    /// A normalized finite value: significand has bit 63 set; the numeric
    /// value is `sig × 2^(exp − 63)`.
    Normal {
        /// Unbiased exponent of the most-significant significand bit.
        exp: i32,
        /// 64-bit significand with the integer bit (bit 63) set.
        sig: u64,
    },
    /// Infinity (signed).
    Inf,
    /// Not-a-number.
    Nan,
}

/// An 80-bit extended-precision floating-point value.
///
/// # Examples
///
/// ```
/// use softfloat::F80;
///
/// let a = F80::from_f64(1.5);
/// let b = F80::from_f64(2.25);
/// assert_eq!((a * b).to_f64(), 3.375);
/// ```
///
/// Equality is *value* equality: `+0 == −0`, and `NaN != NaN`. Use
/// [`F80::encode`] to compare representations bit by bit.
#[derive(Debug, Clone, Copy)]
pub struct F80 {
    pub(crate) sign: bool,
    pub(crate) kind: Kind,
}

impl F80 {
    /// Positive zero.
    pub const ZERO: F80 = F80 {
        sign: false,
        kind: Kind::Zero,
    };

    /// One.
    pub const ONE: F80 = F80 {
        sign: false,
        kind: Kind::Normal {
            exp: 0,
            sig: 1 << 63,
        },
    };

    /// Positive infinity.
    pub const INFINITY: F80 = F80 {
        sign: false,
        kind: Kind::Inf,
    };

    /// A quiet NaN.
    pub const NAN: F80 = F80 {
        sign: false,
        kind: Kind::Nan,
    };

    /// Builds a normalized value from raw parts, normalizing `sig` so its
    /// top bit is set (adjusting `exp` accordingly). A zero significand
    /// yields zero; exponent overflow saturates to infinity and extreme
    /// underflow flushes to zero.
    pub(crate) fn normalized(sign: bool, mut exp: i32, mut sig: u64) -> F80 {
        if sig == 0 {
            return F80 {
                sign,
                kind: Kind::Zero,
            };
        }
        let lz = sig.leading_zeros() as i32;
        sig <<= lz;
        exp -= lz;
        if exp > 16384 {
            return F80 {
                sign,
                kind: Kind::Inf,
            };
        }
        if exp < -16445 {
            return F80 {
                sign,
                kind: Kind::Zero,
            };
        }
        F80 {
            sign,
            kind: Kind::Normal { exp, sig },
        }
    }

    /// True if the value is NaN.
    pub fn is_nan(self) -> bool {
        self.kind == Kind::Nan
    }

    /// True if the value is ±∞.
    pub fn is_infinite(self) -> bool {
        self.kind == Kind::Inf
    }

    /// True if the value is ±0.
    pub fn is_zero(self) -> bool {
        self.kind == Kind::Zero
    }

    /// True for zero or a normal value (not NaN, not infinite).
    pub fn is_finite(self) -> bool {
        matches!(self.kind, Kind::Zero | Kind::Normal { .. })
    }

    /// Sign bit (true = negative). NaN carries an arbitrary sign.
    pub fn is_sign_negative(self) -> bool {
        self.sign
    }

    /// Negation.
    #[allow(clippy::should_implement_trait)]
    pub fn neg(self) -> F80 {
        F80 {
            sign: !self.sign,
            kind: self.kind,
        }
    }

    /// Absolute value.
    pub fn abs(self) -> F80 {
        F80 {
            sign: false,
            kind: self.kind,
        }
    }
}

impl std::ops::Neg for F80 {
    type Output = F80;
    fn neg(self) -> F80 {
        F80::neg(self)
    }
}

impl std::fmt::Display for F80 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.to_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants() {
        assert!(F80::ZERO.is_zero());
        assert!(F80::NAN.is_nan());
        assert!(F80::INFINITY.is_infinite());
        assert_eq!(F80::ONE.to_f64(), 1.0);
    }

    #[test]
    fn neg_and_abs() {
        let x = F80::from_f64(-2.5);
        assert!(x.is_sign_negative());
        assert_eq!(x.abs().to_f64(), 2.5);
        assert_eq!((-x).to_f64(), 2.5);
        assert_eq!(x.neg().neg(), x);
    }

    #[test]
    fn normalized_handles_zero_sig() {
        let z = F80::normalized(true, 100, 0);
        assert!(z.is_zero());
        assert!(z.is_sign_negative());
    }

    #[test]
    fn normalized_shifts_up() {
        let x = F80::normalized(false, 0, 1);
        match x.kind {
            Kind::Normal { exp, sig } => {
                assert_eq!(sig, 1 << 63);
                assert_eq!(exp, -63);
            }
            _ => panic!("expected normal"),
        }
    }

    #[test]
    fn normalized_overflow_to_inf_and_underflow_to_zero() {
        assert!(F80::normalized(false, 20000, 1 << 63).is_infinite());
        assert!(F80::normalized(false, -20000, 1 << 63).is_zero());
    }
}

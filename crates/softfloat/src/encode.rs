//! The 80-bit x87 wire encoding.
//!
//! Layout (bit 79 downward): sign, 15-bit biased exponent (bias 16383),
//! 64-bit significand with an *explicit* integer bit. The corruption
//! experiments flip bits of this encoding (Figure 4(d)), so decoding must
//! be total: any 80-bit pattern decodes to *something* (possibly NaN, the
//! fate of "unnormal" patterns on real x87 hardware).

use crate::{Kind, F80};

/// Bias of the 15-bit exponent field.
const BIAS: i32 = 16383;

impl F80 {
    /// Encodes into the 80-bit x87 representation (low 80 bits of the
    /// returned value).
    pub fn encode(self) -> u128 {
        let sign = (self.sign as u128) << 79;
        match self.kind {
            Kind::Zero => sign,
            Kind::Inf => sign | (0x7fffu128 << 64) | (1u128 << 63),
            Kind::Nan => sign | (0x7fffu128 << 64) | (0b11u128 << 62),
            Kind::Normal { exp, sig } => {
                let biased = exp + BIAS;
                if biased >= 0x7fff {
                    // Saturate to infinity.
                    return sign | (0x7fffu128 << 64) | (1u128 << 63);
                }
                if biased <= 0 {
                    // Denormal: exponent field 0 encodes 2^(1 − BIAS).
                    let shift = 1 - biased;
                    if shift > 63 {
                        return sign; // underflows to zero
                    }
                    return sign | ((sig >> shift) as u128);
                }
                sign | ((biased as u128) << 64) | sig as u128
            }
        }
    }

    /// Decodes an 80-bit pattern. Total: every pattern maps to a value;
    /// "unnormal" patterns (nonzero exponent with a clear integer bit)
    /// decode to NaN, matching modern x87 behaviour.
    pub fn decode(bits: u128) -> F80 {
        let sign = (bits >> 79) & 1 == 1;
        let biased = ((bits >> 64) & 0x7fff) as i32;
        let sig = (bits & u64::MAX as u128) as u64;
        match biased {
            0 => {
                if sig == 0 {
                    F80 {
                        sign,
                        kind: Kind::Zero,
                    }
                } else {
                    // Denormal: value = sig × 2^(1 − BIAS − 63).
                    F80::normalized(sign, 1 - BIAS, sig)
                }
            }
            0x7fff => {
                if sig == 1 << 63 {
                    F80 {
                        sign,
                        kind: Kind::Inf,
                    }
                } else {
                    F80 {
                        sign,
                        kind: Kind::Nan,
                    }
                }
            }
            _ => {
                if sig >> 63 == 0 {
                    // Unnormal: invalid on modern hardware.
                    F80 {
                        sign,
                        kind: Kind::Nan,
                    }
                } else {
                    F80 {
                        sign,
                        kind: Kind::Normal {
                            exp: biased - BIAS,
                            sig,
                        },
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_one() {
        let one = F80::ONE.encode();
        assert_eq!(one, (16383u128 << 64) | (1u128 << 63));
    }

    #[test]
    fn roundtrip_values() {
        for v in [0.0, -0.0, 1.0, -1.0, 0.375, 1e308, 1e-308, 12345.6789] {
            let x = F80::from_f64(v);
            let back = F80::decode(x.encode());
            assert_eq!(back, x, "roundtrip of {v}");
        }
    }

    #[test]
    fn roundtrip_specials() {
        assert!(F80::decode(F80::NAN.encode()).is_nan());
        assert_eq!(F80::decode(F80::INFINITY.encode()), F80::INFINITY);
        let ninf = F80::INFINITY.neg();
        assert_eq!(F80::decode(ninf.encode()), ninf);
    }

    #[test]
    fn encoding_fits_80_bits() {
        for v in [1.0, -3.5e200, 7e-120] {
            assert_eq!(F80::from_f64(v).encode() >> 80, 0);
        }
        assert_eq!(F80::NAN.encode() >> 80, 0);
    }

    #[test]
    fn unnormal_decodes_to_nan() {
        // Nonzero exponent with clear integer bit.
        let bits = (100u128 << 64) | 1234;
        assert!(F80::decode(bits).is_nan());
    }

    #[test]
    fn denormal_roundtrip() {
        // A value below 2^(1−16383) must encode with exponent field 0.
        let x = F80::normalized(false, -16390, 1 << 63);
        let bits = x.encode();
        assert_eq!((bits >> 64) & 0x7fff, 0);
        let back = F80::decode(bits);
        // Re-encoding is stable even if a few low bits truncated.
        assert_eq!(back.encode(), bits);
    }

    #[test]
    fn flipping_fraction_bit_changes_value_slightly() {
        let x = F80::from_f64(1.5);
        let corrupted = F80::decode(x.encode() ^ 1);
        let loss = (corrupted.to_f64() - 1.5).abs() / 1.5;
        assert!(loss < 1e-18);
        assert_ne!(corrupted, x);
    }

    #[test]
    fn flipping_integer_bit_makes_unnormal_nan() {
        let x = F80::from_f64(2.0);
        let corrupted = F80::decode(x.encode() ^ (1u128 << 63));
        assert!(corrupted.is_nan());
    }
}

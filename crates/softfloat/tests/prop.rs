//! Property-based tests for the extended-precision soft float.

use proptest::prelude::*;
use softfloat::{atan, F80};

/// Finite, "reasonable" f64s: avoids overflow in products so results stay
/// comparable against native f64 arithmetic.
fn moderate_f64() -> impl Strategy<Value = f64> {
    prop::num::f64::NORMAL.prop_filter("moderate magnitude", |x| {
        x.abs() > 1e-100 && x.abs() < 1e100
    })
}

/// Any finite f64, including zero and subnormals.
fn finite_f64() -> impl Strategy<Value = f64> {
    prop::num::f64::ANY.prop_filter("finite", |x| x.is_finite())
}

fn close(a: f64, b: f64, rel: f64) -> bool {
    if a == b {
        return true;
    }
    (a - b).abs() <= a.abs().max(b.abs()) * rel
}

proptest! {
    #[test]
    fn from_to_f64_is_identity(x in finite_f64()) {
        let y = F80::from_f64(x).to_f64();
        prop_assert_eq!(y.to_bits(), x.to_bits());
    }

    #[test]
    fn encode_decode_roundtrip(x in finite_f64()) {
        let v = F80::from_f64(x);
        let back = F80::decode(v.encode());
        prop_assert_eq!(back.encode(), v.encode());
    }

    #[test]
    fn encode_fits_80_bits(x in finite_f64()) {
        prop_assert_eq!(F80::from_f64(x).encode() >> 80, 0);
    }

    #[test]
    fn add_commutes(a in moderate_f64(), b in moderate_f64()) {
        let x = F80::from_f64(a);
        let y = F80::from_f64(b);
        prop_assert_eq!((x + y).encode(), (y + x).encode());
    }

    #[test]
    fn mul_commutes(a in moderate_f64(), b in moderate_f64()) {
        let x = F80::from_f64(a);
        let y = F80::from_f64(b);
        prop_assert_eq!((x * y).encode(), (y * x).encode());
    }

    #[test]
    fn add_matches_f64(a in moderate_f64(), b in moderate_f64()) {
        let got = (F80::from_f64(a) + F80::from_f64(b)).to_f64();
        let want = a + b;
        // F80 addition is more precise than f64; agreement within one f64
        // ulp-scale relative bound of the inputs' magnitude.
        let scale = a.abs().max(b.abs()).max(want.abs());
        prop_assert!((got - want).abs() <= scale * 1e-15, "got {got}, want {want}");
    }

    #[test]
    fn mul_matches_f64(a in moderate_f64(), b in moderate_f64()) {
        let got = (F80::from_f64(a) * F80::from_f64(b)).to_f64();
        let want = a * b;
        prop_assert!(close(got, want, 1e-15), "got {got}, want {want}");
    }

    #[test]
    fn div_matches_f64(a in moderate_f64(), b in moderate_f64()) {
        let got = (F80::from_f64(a) / F80::from_f64(b)).to_f64();
        let want = a / b;
        prop_assert!(close(got, want, 1e-15), "got {got}, want {want}");
    }

    #[test]
    fn sub_self_is_zero(a in moderate_f64()) {
        let x = F80::from_f64(a);
        prop_assert!((x - x).is_zero());
    }

    #[test]
    fn div_self_is_one(a in moderate_f64()) {
        let x = F80::from_f64(a);
        prop_assert_eq!((x / x).encode(), F80::ONE.encode());
    }

    #[test]
    fn neg_is_involutive(a in finite_f64()) {
        let x = F80::from_f64(a);
        prop_assert_eq!(x.neg().neg().encode(), x.encode());
    }

    #[test]
    fn ordering_matches_f64(a in finite_f64(), b in finite_f64()) {
        let fx = F80::from_f64(a);
        let fy = F80::from_f64(b);
        let want = a.partial_cmp(&b);
        // F80 value comparison treats ±0 as equal, like f64.
        prop_assert_eq!(fx.partial_cmp(&fy), want);
    }

    #[test]
    fn atan_matches_f64(a in -1e6f64..1e6) {
        let got = atan(F80::from_f64(a)).to_f64();
        let want = a.atan();
        prop_assert!((got - want).abs() <= 1e-13, "atan({a}): got {got}, want {want}");
    }

    #[test]
    fn atan_bounded_by_half_pi(a in finite_f64()) {
        let y = atan(F80::from_f64(a)).to_f64();
        prop_assert!(y.abs() <= std::f64::consts::FRAC_PI_2 + 1e-15);
    }

    #[test]
    fn decode_is_total(bits in any::<u128>()) {
        // Any 80-bit pattern decodes without panicking, and re-encoding a
        // finite decode stays within 80 bits.
        let v = F80::decode(bits & ((1u128 << 80) - 1));
        prop_assert_eq!(v.encode() >> 80, 0);
    }
}

//! Production exposure windows (§3.1).
//!
//! "Despite all SDC tests, we still encounter SDC issues that affect
//! Alibaba Cloud services … This can be attributed to the window between
//! regular SDC tests and the non-determinism of reproducing SDCs.
//! Addressing this issue is challenging, as it is not feasible to perform
//! regular SDC tests frequently."
//!
//! Given a campaign outcome, this module quantifies that window: for each
//! defective processor that reached production (caught late by a regular
//! round, or never caught), how long did it serve traffic with an active
//! defect? The numbers motivate exactly Farron's position — testing alone
//! leaves a long exposure tail, so run-time triggering-condition control
//! has to carry part of the load.

use crate::campaign::{CampaignOutcome, Fate};
use crate::lifecycle::Stage;

/// Exposure statistics over one campaign.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ExposureReport {
    /// Defective processors that reached production at all (not caught
    /// pre-production).
    pub reached_production: u64,
    /// Of those, caught later by regular testing.
    pub caught_by_regular: u64,
    /// Of those, never caught (exposed for their whole service life).
    pub never_caught: u64,
    /// Mean exposure of the regular-caught population, in days (from
    /// production entry to the catching round).
    pub mean_exposure_days_caught: f64,
    /// Worst-case exposure among the regular-caught population, days.
    pub max_exposure_days_caught: f64,
}

/// Days between production entry and regular round `round` (rounds run
/// every three months starting one quarter in).
fn round_exposure_days(round: u32) -> f64 {
    90.0 * (round as f64 + 1.0)
}

/// Computes the exposure report for a campaign.
pub fn exposure_report(outcome: &CampaignOutcome) -> ExposureReport {
    let mut report = ExposureReport::default();
    let mut total_days = 0.0f64;
    for &(_, fate) in &outcome.fates {
        match fate {
            Fate::Caught(Stage::Regular, round) => {
                report.reached_production += 1;
                report.caught_by_regular += 1;
                let days = round_exposure_days(round);
                total_days += days;
                report.max_exposure_days_caught = report.max_exposure_days_caught.max(days);
            }
            Fate::Escaped => {
                report.reached_production += 1;
                report.never_caught += 1;
            }
            Fate::Caught(_, _) => {}
        }
    }
    if report.caught_by_regular > 0 {
        report.mean_exposure_days_caught = total_days / report.caught_by_regular as f64;
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_campaign, FleetConfig};
    use toolchain::Suite;

    #[test]
    fn campaign_exposure_tail_is_substantial() {
        let out = run_campaign(
            &FleetConfig {
                total_cpus: 400_000,
                seed: 2021,
                threads: 0,
            },
            &Suite::standard(),
        );
        let report = exposure_report(&out);
        // Some defective processors reach production (Observation 2).
        assert!(report.reached_production > 0);
        assert!(report.caught_by_regular > 0);
        // The window between regular tests means the *minimum* exposure
        // is a whole quarter.
        assert!(report.mean_exposure_days_caught >= 90.0);
        // And some serve with an active defect for multiple quarters.
        assert!(
            report.max_exposure_days_caught >= 180.0,
            "max exposure {} days",
            report.max_exposure_days_caught
        );
        // Escapees are exposed indefinitely — the population Farron's
        // run-time controls exist for.
        assert!(report.never_caught > 0);
    }

    #[test]
    fn empty_outcome_is_zero() {
        let out = CampaignOutcome {
            total_cpus: 0,
            per_arch_total: vec![],
            fates: vec![],
            suite_cache: Default::default(),
        };
        assert_eq!(exposure_report(&out), ExposureReport::default());
    }

    #[test]
    fn round_exposure_scale() {
        assert_eq!(round_exposure_days(0), 90.0);
        assert_eq!(round_exposure_days(3), 360.0);
    }
}

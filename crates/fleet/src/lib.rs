//! Fleet-scale test campaigns (Tables 1 and 2).
//!
//! The paper tests >1M processors over 32 months across a four-stage
//! lifecycle (Figure 1): factory delivery, datacenter delivery, system
//! re-installation, and regular in-production rounds. This crate
//! reproduces that pipeline at full population scale:
//!
//! * [`population`] samples the fleet — healthy packages are only
//!   counted, defective ones are materialized from the `silicon`
//!   samplers;
//! * [`screening`] computes, for one defective processor and one test
//!   stage, the probability that the stage's toolchain pass detects it —
//!   using *static* workload profiles (instruction counts per testcase
//!   walked from the programs, steady-state temperatures from the thermal
//!   model) so a million-CPU campaign runs in seconds;
//! * [`lifecycle`] defines the stages and their intensities;
//! * [`campaign`] runs the whole pipeline and produces the per-stage and
//!   per-architecture failure rates of Tables 1 and 2.

pub mod campaign;
pub mod chaos;
pub mod checkpoint;
pub mod exposure;
pub mod lifecycle;
pub mod parallel;
pub mod population;
pub mod screening;
pub mod supervisor;

pub use campaign::{
    campaign_fingerprint, run_campaign, run_campaign_on, run_campaign_resumable,
    run_campaign_supervised, CampaignOutcome, Fate, ResumableRun, SupervisedCampaign,
};
pub use chaos::{FaultPlan, OpFault};
pub use checkpoint::{
    CampaignCheckpoint, CheckpointError, CheckpointStore, Fingerprint, ItemRecord,
};
pub use exposure::{exposure_report, ExposureReport};
pub use lifecycle::{Stage, StageSpec};
pub use parallel::{resolve_threads, run_indexed};
pub use population::{FleetConfig, FleetPopulation};
pub use screening::{stage_detection_probability, StaticSuiteProfile, SuiteProfileCache};
pub use supervisor::{run_slot, Attempt, AttritionStats, RetryPolicy, SlotError, SlotOutcome, SlotReport};

//! Fleet population sampling.
//!
//! Healthy packages are never materialized — only counted per
//! architecture; defective packages are drawn from the `silicon`
//! samplers. At the paper's prevalence (a few per ten thousand) a
//! million-CPU fleet materializes only a few hundred processors.

use sdc_model::{ArchId, CpuId, DetRng};
use serde::{Deserialize, Serialize};
use silicon::{arch, population, Processor};

/// Fleet generation parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct FleetConfig {
    /// Total processors in the fleet (the paper studies >1M).
    pub total_cpus: u64,
    /// Root seed.
    pub seed: u64,
    /// Worker threads for the campaign (`0` = available parallelism).
    /// Results are bitwise identical for every value.
    pub threads: usize,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            total_cpus: 1_050_000,
            seed: 2021,
            threads: 0,
        }
    }
}

/// A sampled fleet.
#[derive(Debug)]
pub struct FleetPopulation {
    /// Total packages per architecture (healthy + defective).
    pub per_arch_total: Vec<(ArchId, u64)>,
    /// The materialized defective processors.
    pub defective: Vec<Processor>,
}

impl FleetPopulation {
    /// Samples a fleet.
    pub fn sample(cfg: &FleetConfig) -> FleetPopulation {
        let mut rng = DetRng::new(cfg.seed).fork_str("fleet-population");
        let mut per_arch_total = Vec::new();
        let mut defective = Vec::new();
        let mut next_id = 0u64;
        for a in ArchId::all() {
            let total = (cfg.total_cpus as f64 * arch::fleet_share(a)).round() as u64;
            per_arch_total.push((a, total));
            let n_def = rng.binomial(total, arch::info(a).prevalence);
            for _ in 0..n_def {
                defective.push(population::sample_faulty_processor(
                    CpuId(1_000_000 + next_id),
                    a,
                    &mut rng,
                ));
                next_id += 1;
            }
        }
        FleetPopulation {
            per_arch_total,
            defective,
        }
    }

    /// Total packages in the fleet.
    pub fn total(&self) -> u64 {
        self.per_arch_total.iter().map(|&(_, n)| n).sum()
    }

    /// Defective packages of one architecture.
    pub fn defective_of(&self, a: ArchId) -> usize {
        self.defective.iter().filter(|p| p.arch == a).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn population_scale_is_plausible() {
        let pop = FleetPopulation::sample(&FleetConfig::default());
        let total = pop.total();
        assert!(total > 1_000_000);
        // ~3.8 per 10k true prevalence → roughly 300–500 defective.
        let d = pop.defective.len();
        assert!((250..600).contains(&d), "defective count {d}");
    }

    #[test]
    fn worst_arch_has_most_defects_per_capita() {
        let pop = FleetPopulation::sample(&FleetConfig::default());
        let rate = |a: u8| {
            let total = pop
                .per_arch_total
                .iter()
                .find(|&&(ar, _)| ar == ArchId(a))
                .unwrap()
                .1;
            pop.defective_of(ArchId(a)) as f64 / total as f64
        };
        // M8 (9.29‱) dwarfs M4 (0.082‱).
        assert!(rate(8) > rate(4) * 5.0, "M8 {} vs M4 {}", rate(8), rate(4));
    }

    #[test]
    fn sampling_is_deterministic() {
        let a = FleetPopulation::sample(&FleetConfig::default());
        let b = FleetPopulation::sample(&FleetConfig::default());
        assert_eq!(a.defective.len(), b.defective.len());
        assert_eq!(a.defective.first(), b.defective.first());
    }

    #[test]
    fn smaller_fleet_scales_down() {
        let cfg = FleetConfig {
            total_cpus: 100_000,
            seed: 7,
            threads: 0,
        };
        let pop = FleetPopulation::sample(&cfg);
        assert!(pop.total() < 150_000);
        assert!(pop.defective.len() < 120);
    }
}

//! Stage-level detection probabilities from static workload profiles.
//!
//! Running the full accelerated executor for every (defective CPU ×
//! 633 testcases × stage) would dominate a million-CPU campaign, so
//! fleet screening uses a closed form: for each testcase the programs are
//! *walked* (not executed) to count retire sites per (class, datatype)
//! and cycles per iteration; steady-state temperatures come from the
//! thermal model; the per-stage detection probability is then
//! `1 − Π exp(−λ_tc · D)`. The deep-study analyses use the full executor;
//! an integration test cross-checks the two paths.

use crate::lifecycle::StageSpec;
use sdc_model::DataType;
use silicon::defect::DefectKind;
use silicon::Processor;
use softcore::{Inst, InstClass, Program};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use thermal::{ThermalConfig, ThermalModel};
use toolchain::{builders, CacheStats, Suite, Testcase};

/// Static profile of one testcase instantiated on a given core count.
#[derive(Debug, Clone)]
pub struct StaticProfile {
    /// (class, dt) → retire sites per cycle, for the *busiest* instance.
    pub sites_per_cycle: HashMap<(InstClass, DataType), f64>,
    /// Energy per cycle (thermal power proxy).
    pub power: f64,
    /// Estimated cache-invalidation deliveries per cycle per core
    /// (multi-threaded testcases only).
    pub invalidations_per_cycle: f64,
    /// Estimated conflicted transactional commits per cycle per core.
    pub tx_conflicts_per_cycle: f64,
    /// Whether the testcase is multi-threaded.
    pub multithread: bool,
}

/// Result of walking one program: (site counts, cycles, energy,
/// shared writes, transactional commits).
type WalkSummary = (HashMap<(InstClass, DataType), f64>, f64, f64, f64, f64);

/// Walks a program, accumulating per-(class, dt) site counts, cycles,
/// energy, and shared-memory traffic with loop multipliers.
fn walk(program: &Program) -> WalkSummary {
    let mut sites: HashMap<(InstClass, DataType), f64> = HashMap::new();
    let mut cycles = 0f64;
    let mut energy = 0f64;
    let mut shared_writes = 0f64;
    let mut commits = 0f64;
    let mut mult: Vec<f64> = vec![1.0];
    for inst in program.insts() {
        let m = *mult
            .last()
            .expect("invariant violated: the loop-multiplier stack always keeps its base entry");
        match *inst {
            Inst::LoopStart { count } => {
                cycles += m;
                energy += m * InstClass::Control.energy();
                mult.push(m * count as f64);
                continue;
            }
            Inst::LoopEnd => {
                let inner = mult
                    .pop()
                    .expect("invariant violated: LoopEnd must close a matching LoopStart");
                cycles += inner;
                energy += inner * InstClass::Control.energy();
                continue;
            }
            _ => {}
        }
        let class = inst.class();
        cycles += m * class.cycles() as f64;
        energy += m * class.energy();
        match *inst {
            Inst::IntOp { dt, .. } => {
                *sites.entry((class, dt)).or_insert(0.0) += m;
            }
            Inst::FOp { prec, .. } | Inst::FFma { prec, .. } | Inst::FAtan { prec, .. } => {
                *sites.entry((class, prec.datatype())).or_insert(0.0) += m;
            }
            Inst::XOp { .. } | Inst::XAtan { .. } => {
                *sites.entry((class, DataType::F64X)).or_insert(0.0) += m;
            }
            Inst::VOp { lane, .. } => {
                *sites.entry((class, lane.datatype())).or_insert(0.0) += m * lane.lanes() as f64;
            }
            Inst::Crc32Step { .. } => {
                *sites.entry((class, DataType::Bin32)).or_insert(0.0) += m;
            }
            Inst::HashMix { .. } => {
                *sites.entry((class, DataType::Bin64)).or_insert(0.0) += m;
            }
            Inst::Store { .. }
            | Inst::Cas { .. }
            | Inst::LockAcquire { .. }
            | Inst::LockRelease { .. } => {
                shared_writes += m;
            }
            Inst::TxCommit { .. } => {
                commits += m;
            }
            _ => {}
        }
    }
    (sites, cycles.max(1.0), energy, shared_writes, commits)
}

impl StaticProfile {
    /// Profiles `tc` as instantiated on `machine_cores` cores.
    pub fn of(tc: &Testcase, machine_cores: usize) -> StaticProfile {
        let built = builders::build(tc, machine_cores, 8, 0x57a71c);
        let mut best: Option<WalkSummary> = None;
        for program in built.programs.iter().flatten() {
            let w = walk(program);
            let better = match &best {
                None => true,
                Some(b) => w.1 > b.1,
            };
            if better {
                best = Some(w);
            }
        }
        let (sites, cycles, energy, shared_writes, commits) =
            best.expect("invariant violated: every testcase builds at least one program");
        let multithread = tc.threads > 1;
        StaticProfile {
            sites_per_cycle: sites.into_iter().map(|(k, v)| (k, v / cycles)).collect(),
            power: energy / cycles,
            // Each shared write invalidates the sharing peers' copies
            // roughly once; conflicts hit a fraction of commits.
            invalidations_per_cycle: if multithread {
                shared_writes / cycles
            } else {
                0.0
            },
            tx_conflicts_per_cycle: if multithread {
                commits * 0.2 / cycles
            } else {
                0.0
            },
            multithread,
        }
    }
}

/// Static profiles of a whole suite on one core count, computed once and
/// shared across every processor of that shape.
#[derive(Debug)]
pub struct StaticSuiteProfile {
    profiles: Vec<StaticProfile>,
    cores: usize,
}

impl StaticSuiteProfile {
    /// Profiles every testcase of `suite` for `machine_cores` cores.
    pub fn build(suite: &Suite, machine_cores: usize) -> StaticSuiteProfile {
        StaticSuiteProfile::build_threaded(suite, machine_cores, 1)
    }

    /// [`StaticSuiteProfile::build`] sharded across `threads` workers
    /// (`0` = available parallelism). Profiling walks programs with no
    /// randomness, so the result is identical for every thread count.
    pub fn build_threaded(
        suite: &Suite,
        machine_cores: usize,
        threads: usize,
    ) -> StaticSuiteProfile {
        StaticSuiteProfile {
            profiles: crate::parallel::run_indexed(suite.testcases(), threads, |_, tc| {
                StaticProfile::of(tc, machine_cores)
            }),
            cores: machine_cores,
        }
    }

    /// The profile of testcase `idx` (suite ids are dense).
    pub fn get(&self, idx: usize) -> &StaticProfile {
        &self.profiles[idx]
    }

    /// Core count these profiles were built for.
    pub fn cores(&self) -> usize {
        self.cores
    }
}

/// Shared, thread-safe memoization of [`StaticSuiteProfile`]s by core
/// count.
///
/// A campaign's workers all need the suite profile for each package
/// shape; this cache builds each one once — same lock discipline as
/// `toolchain`'s unit-profile cache (mutex for bookkeeping only, the
/// expensive build runs outside the lock in a per-key `OnceLock`).
#[derive(Default)]
pub struct SuiteProfileCache {
    hits: AtomicU64,
    misses: AtomicU64,
    inner: Mutex<HashMap<usize, Arc<OnceLock<Arc<StaticSuiteProfile>>>>>,
}

impl std::fmt::Debug for SuiteProfileCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SuiteProfileCache")
            .field("stats", &self.stats())
            .finish()
    }
}

impl SuiteProfileCache {
    /// An empty cache.
    pub fn new() -> SuiteProfileCache {
        SuiteProfileCache::default()
    }

    /// The suite profile for `machine_cores`, built on first use with
    /// `build_threads` workers. Concurrent callers asking for the same
    /// core count build once; the rest block on the entry.
    pub fn get_or_build(
        &self,
        suite: &Suite,
        machine_cores: usize,
        build_threads: usize,
    ) -> Arc<StaticSuiteProfile> {
        let slot = {
            let mut inner = self.inner.lock().expect("suite profile cache poisoned");
            match inner.get(&machine_cores) {
                Some(slot) => {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    slot.clone()
                }
                None => {
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    let slot = Arc::new(OnceLock::new());
                    inner.insert(machine_cores, Arc::clone(&slot));
                    slot
                }
            }
        };
        slot.get_or_init(|| {
            Arc::new(StaticSuiteProfile::build_threaded(
                suite,
                machine_cores,
                build_threads,
            ))
        })
        .clone()
    }

    /// Fallible [`SuiteProfileCache::get_or_build`]: when the fault
    /// plan injects a transient profile-read error into the calling
    /// attempt (`fail_attempt` is `Some`), the read fails *before*
    /// touching the cache — nothing is cached, counters don't move, and
    /// a retry with `fail_attempt == None` serves the identical profile.
    /// The sentinel testcase id 0 marks a suite-level (not per-testcase)
    /// read in the error.
    pub fn get_or_build_fallible(
        &self,
        suite: &Suite,
        machine_cores: usize,
        build_threads: usize,
        fail_attempt: Option<u32>,
    ) -> Result<Arc<StaticSuiteProfile>, toolchain::ExecError> {
        if let Some(attempt) = fail_attempt {
            return Err(toolchain::ExecError::ProfileRead {
                testcase: sdc_model::TestcaseId(0),
                attempt,
            });
        }
        Ok(self.get_or_build(suite, machine_cores, build_threads))
    }

    /// Current counters (evictions are always zero: core counts are
    /// few, so this cache never evicts).
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: 0,
            entries: self
                .inner
                .lock()
                .expect("suite profile cache poisoned")
                .len(),
        }
    }
}

/// Probability that one full pass of `stage` over the suite detects
/// `processor`.
///
/// Temperatures are the steady-state targets of a package running the
/// testcase on every core (the framework tests all cores simultaneously)
/// plus the stage's temperature offset.
pub fn stage_detection_probability(
    processor: &Processor,
    suite: &Suite,
    profiles: &StaticSuiteProfile,
    stage: &StageSpec,
    clock_hz: f64,
) -> f64 {
    let n_cores = processor.physical_cores as usize;
    let thermal_probe = ThermalModel::new(n_cores, ThermalConfig::default());
    let mut log_survive = 0f64;
    for (idx, tc) in suite.testcases().iter().enumerate() {
        if idx % stage.suite_stride.max(1) != 0 {
            continue;
        }
        let profile = profiles.get(idx);
        // Steady-state temperature: every core at the workload's power.
        let mut t = thermal_probe.clone();
        t.set_all_powers(profile.power);
        let temp = t.target_temp(0) + stage.temp_offset_c;
        let secs = stage.per_testcase.as_secs_f64();
        for defect in &processor.defects {
            if !defect.applies_to(tc.id) {
                continue;
            }
            // Aggregate rate over all cores of the package.
            let mut lambda = 0f64;
            for core in 0..processor.physical_cores {
                let rate = defect.rate(core, temp);
                if rate <= 0.0 {
                    continue;
                }
                let events_per_cycle = match &defect.kind {
                    DefectKind::Computation { .. } => profile
                        .sites_per_cycle
                        .iter()
                        .filter(|((class, dt), _)| defect.matches(*class, *dt))
                        .map(|(_, v)| v)
                        .sum::<f64>(),
                    DefectKind::CoherenceDrop => profile.invalidations_per_cycle,
                    DefectKind::TxIsolation => profile.tx_conflicts_per_cycle,
                };
                if !profile.multithread && !matches!(defect.kind, DefectKind::Computation { .. }) {
                    continue;
                }
                lambda += events_per_cycle * clock_hz * rate;
            }
            log_survive += -(lambda * secs);
            if log_survive < -40.0 {
                return 1.0;
            }
        }
        let _ = tc;
    }
    1.0 - log_survive.exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdc_model::Duration;
    use silicon::catalog;

    #[test]
    fn walk_counts_loop_multiplied_sites() {
        use softcore::{IntOpKind, ProgramBuilder};
        let mut b = ProgramBuilder::new();
        b.mov_imm(0, 1);
        b.loop_start(10);
        b.int_op(IntOpKind::Add, DataType::I32, 1, 0, 0);
        b.loop_end();
        let (sites, cycles, energy, _, _) = walk(&b.build());
        assert_eq!(sites[&(InstClass::IntArith, DataType::I32)], 10.0);
        assert!(cycles >= 10.0);
        assert!(energy > 0.0);
    }

    #[test]
    fn profiles_distinguish_features() {
        let suite = Suite::standard();
        let atan_id = suite
            .testcases()
            .iter()
            .find(|t| t.name.starts_with("fpu/atan/f64/"))
            .unwrap()
            .id;
        let p = StaticProfile::of(suite.get(atan_id), 4);
        assert!(p
            .sites_per_cycle
            .contains_key(&(InstClass::FloatAtan, DataType::F64)));
        assert!(!p
            .sites_per_cycle
            .contains_key(&(InstClass::VecFma, DataType::F32)));
        assert!(!p.multithread);
    }

    #[test]
    fn multithread_profiles_estimate_events() {
        let suite = Suite::standard();
        let lock_id = suite
            .testcases()
            .iter()
            .find(|t| t.name.starts_with("cache/lock"))
            .unwrap()
            .id;
        let p = StaticProfile::of(suite.get(lock_id), 4);
        assert!(p.multithread);
        assert!(p.invalidations_per_cycle > 0.0);
        let tx_id = suite
            .testcases()
            .iter()
            .find(|t| t.name.starts_with("trx/"))
            .unwrap()
            .id;
        let p = StaticProfile::of(suite.get(tx_id), 4);
        assert!(p.tx_conflicts_per_cycle > 0.0);
    }

    #[test]
    fn heavyweight_stage_detects_apparent_defect() {
        let suite = Suite::standard();
        let simd1 = catalog::by_name("SIMD1").unwrap().processor;
        let profiles = StaticSuiteProfile::build(&suite, simd1.physical_cores as usize);
        let heavy = StageSpec {
            stage: crate::Stage::Reinstall,
            per_testcase: Duration::from_secs(90),
            temp_offset_c: 6.0,
            suite_stride: 1,
            age_years: 0.12,
        };
        let p = stage_detection_probability(&simd1, &suite, &profiles, &heavy, 1e7);
        assert!(
            p > 0.99,
            "apparent defect must be caught by the burn-in screen: {p}"
        );
    }

    #[test]
    fn healthy_processor_never_detected() {
        let suite = Suite::standard();
        let healthy = Processor::healthy(sdc_model::CpuId(5000), sdc_model::ArchId(2), 1.0);
        let profiles = StaticSuiteProfile::build(&suite, 16);
        let heavy = StageSpec {
            stage: crate::Stage::Reinstall,
            per_testcase: Duration::from_secs(90),
            temp_offset_c: 6.0,
            suite_stride: 1,
            age_years: 0.12,
        };
        let p = stage_detection_probability(&healthy, &suite, &profiles, &heavy, 1e7);
        assert_eq!(p, 0.0);
    }

    #[test]
    fn weak_stage_detects_less_than_strong_stage() {
        let suite = Suite::standard();
        let fpu2 = catalog::by_name("FPU2").unwrap().processor;
        let profiles = StaticSuiteProfile::build(&suite, fpu2.physical_cores as usize);
        let weak = StageSpec {
            stage: crate::Stage::Datacenter,
            per_testcase: Duration::from_millis(200),
            temp_offset_c: -32.0, // actively cooled bench: near idle temps
            suite_stride: 8,
            age_years: 0.02,
        };
        let strong = StageSpec {
            stage: crate::Stage::Reinstall,
            per_testcase: Duration::from_secs(120),
            temp_offset_c: 8.0,
            suite_stride: 1,
            age_years: 0.12,
        };
        let pw = stage_detection_probability(&fpu2, &suite, &profiles, &weak, 1e7);
        let ps = stage_detection_probability(&fpu2, &suite, &profiles, &strong, 1e7);
        assert!(ps > pw, "strong {ps} vs weak {pw}");
    }
}

//! Deterministic work distribution for fleet-scale runs.
//!
//! The campaign, the Farron evaluation, and the deep study all share one
//! shape: a list of fully independent work items (defective processors,
//! catalog cases) whose per-item randomness is forked from a root
//! [`sdc_model::DetRng`] and therefore does not depend on execution
//! order. [`run_indexed`] shards such a list across `std::thread::scope`
//! workers pulling chunks off a shared atomic cursor, then reassembles
//! results in item order — so the output is bitwise identical for any
//! thread count, including the serial path.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Resolves a `threads` knob: `0` means one worker per available CPU,
/// anything else is taken literally.
pub fn resolve_threads(threads: usize) -> usize {
    if threads != 0 {
        return threads;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Number of items a worker claims per cursor fetch: small enough to
/// balance uneven items, large enough to keep cursor traffic negligible.
fn chunk_size(items: usize, workers: usize) -> usize {
    (items / (workers * 8)).clamp(1, 64)
}

/// Applies `f` to every item of `items` and returns the results in item
/// order, using `threads` workers (`0` = available parallelism).
///
/// `f` receives `(index, &item)`. It must not rely on cross-item state:
/// items are claimed in chunks by whichever worker is free, so execution
/// order is nondeterministic — only the *result order* is guaranteed.
/// With `f` a pure function of its arguments, the returned vector is
/// identical for every thread count.
pub fn run_indexed<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = resolve_threads(threads).min(items.len().max(1));
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    let cursor = AtomicUsize::new(0);
    let chunk = chunk_size(items.len(), workers);
    let collected: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(items.len()));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut local: Vec<(usize, R)> = Vec::new();
                loop {
                    let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                    if start >= items.len() {
                        break;
                    }
                    let end = (start + chunk).min(items.len());
                    for (i, item) in items[start..end].iter().enumerate() {
                        local.push((start + i, f(start + i, item)));
                    }
                }
                collected.lock().expect("result sink").extend(local);
            });
        }
    });

    let mut pairs = collected.into_inner().expect("workers joined");
    debug_assert_eq!(pairs.len(), items.len());
    pairs.sort_unstable_by_key(|&(i, _)| i);
    pairs.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore as _;
    use sdc_model::DetRng;

    #[test]
    fn resolve_zero_is_machine_width() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(3), 3);
    }

    #[test]
    fn results_are_in_item_order() {
        let items: Vec<u64> = (0..500).collect();
        let out = run_indexed(&items, 4, |i, &x| {
            assert_eq!(i as u64, x);
            x * 2
        });
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let items: Vec<u64> = (0..257).collect();
        let work = |_: usize, &x: &u64| {
            // Forked streams model the real call sites: randomness is a
            // pure function of the item, not of execution order.
            let mut rng = DetRng::new(99).fork(x);
            // Wrapping: sums of random u64 draws overflow by design.
            (0..(x % 7 + 1)).fold(0u64, |acc, _| acc.wrapping_add(rng.next_u64()))
        };
        let serial = run_indexed(&items, 1, work);
        for threads in [2, 3, 8, 16] {
            assert_eq!(run_indexed(&items, threads, work), serial, "{threads} threads");
        }
    }

    #[test]
    fn empty_and_single_item_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(run_indexed(&empty, 8, |_, &x| x).is_empty());
        assert_eq!(run_indexed(&[7u32], 8, |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn chunks_cover_uneven_splits() {
        for n in [1usize, 2, 63, 64, 65, 100, 1000] {
            let items: Vec<usize> = (0..n).collect();
            let out = run_indexed(&items, 5, |i, _| i);
            assert_eq!(out, items, "n = {n}");
        }
    }
}

//! The test-timing lifecycle of Figure 1.

use sdc_model::Duration;
use serde::{Deserialize, Serialize};

/// The four test timings of Figure 1 / Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Stage {
    /// After the manufactured chip is shipped to the cloud provider.
    Factory,
    /// After delivery to the datacenter.
    Datacenter,
    /// After system re-installation, right before production.
    Reinstall,
    /// Periodic in-production rounds (every three months, in groups).
    Regular,
}

serde::impl_json_unit_enum!(Stage {
    Factory,
    Datacenter,
    Reinstall,
    Regular,
});

impl Stage {
    /// Pre-production stages in lifecycle order, followed by `Regular`.
    pub const ORDER: [Stage; 4] = [
        Stage::Factory,
        Stage::Datacenter,
        Stage::Reinstall,
        Stage::Regular,
    ];

    /// Table row label.
    pub fn label(self) -> &'static str {
        match self {
            Stage::Factory => "Factory",
            Stage::Datacenter => "Datacenter",
            Stage::Reinstall => "Re-install",
            Stage::Regular => "Regular",
        }
    }
}

impl std::fmt::Display for Stage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Intensity of one stage's toolchain pass.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StageSpec {
    /// The stage this spec describes.
    pub stage: Stage,
    /// Equal per-testcase duration (the baseline policy: "each testcase is
    /// allocated with equal test duration specified by the administrator").
    pub per_testcase: Duration,
    /// Package temperature offset against the workload's natural steady
    /// state: negative for actively cooled test benches (factory testers),
    /// positive for burn-in environments.
    pub temp_offset_c: f64,
    /// Test every `suite_stride`-th testcase (1 = the full suite); quick
    /// smoke passes use a sparse stride.
    pub suite_stride: usize,
    /// Fleet age (years since factory delivery) when this stage runs;
    /// defects that have not yet *activated* (early-life degradation) are
    /// silent — the mechanism behind processors that pass pre-production
    /// tests and "even several rounds of regular tests" (Observation 2).
    pub age_years: f64,
}

impl StageSpec {
    /// The calibrated default pipeline.
    ///
    /// Relative intensities are tuned so the *detected* share per stage
    /// approximates Table 1: a quick factory screen, a cursory datacenter
    /// sanity pass, a heavyweight burn-in screen at re-installation (the
    /// dominant catcher, 2.306‱ of 3.61‱), and periodic moderate
    /// regular rounds that pick up what escaped.
    pub fn default_pipeline() -> Vec<StageSpec> {
        vec![
            StageSpec {
                stage: Stage::Factory,
                per_testcase: Duration::from_secs(6),
                temp_offset_c: -20.0, // actively cooled test bench
                suite_stride: 1,
                age_years: 0.0,
            },
            StageSpec {
                stage: Stage::Datacenter,
                per_testcase: Duration::from_millis(1500),
                temp_offset_c: -10.0, // staging racks, light load
                suite_stride: 4,      // quick smoke pass
                age_years: 0.02,
            },
            StageSpec {
                stage: Stage::Reinstall,
                per_testcase: Duration::from_secs(120),
                temp_offset_c: 6.0, // burn-in
                suite_stride: 1,
                age_years: 0.12,
            },
            StageSpec {
                stage: Stage::Regular,
                per_testcase: Duration::from_secs(15),
                temp_offset_c: 2.0, // production ambient
                suite_stride: 1,
                age_years: 0.25, // first round; subsequent rounds every 3 months
            },
        ]
    }

    /// Number of regular rounds a processor of `age_years` has been
    /// through (one round every three months).
    pub fn regular_rounds(age_years: f64) -> u32 {
        (age_years * 4.0).floor().max(0.0) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_and_labels() {
        assert_eq!(Stage::ORDER[0], Stage::Factory);
        assert_eq!(Stage::ORDER[3], Stage::Regular);
        assert_eq!(Stage::Reinstall.label(), "Re-install");
    }

    #[test]
    fn default_pipeline_covers_all_stages() {
        let p = StageSpec::default_pipeline();
        assert_eq!(p.len(), 4);
        for (spec, stage) in p.iter().zip(Stage::ORDER) {
            assert_eq!(spec.stage, stage);
        }
        // Re-install is the heavyweight screen.
        assert!(p[2].per_testcase > p[0].per_testcase * 10);
        assert!(p[1].per_testcase < p[0].per_testcase);
    }

    #[test]
    fn regular_rounds_follow_age() {
        assert_eq!(StageSpec::regular_rounds(0.1), 0);
        assert_eq!(StageSpec::regular_rounds(1.0), 4);
        assert_eq!(StageSpec::regular_rounds(2.7), 10);
    }
}

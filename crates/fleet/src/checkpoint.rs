//! Versioned campaign checkpoints: interrupt anywhere, resume exactly.
//!
//! Every campaign slot is a pure function of `(campaign seed, fault
//! plan, item index)`, so a checkpoint only needs the *set of completed
//! per-item records* — no RNG positions, no partial state. The store
//! writes a snapshot every N completions via the atomic
//! tmp-file-then-rename dance, validates a fingerprint (seed, fleet
//! size, fault-plan spec) on load so a checkpoint can never resume the
//! wrong campaign, and carries a format version for forward evolution.
//! Resume recomputes only the missing items and merges by index; the
//! assembled outcome — fates, tables, attrition — is bitwise identical
//! to an uninterrupted run at any thread count.

use crate::campaign::Fate;
use crate::lifecycle::Stage;
use crate::supervisor::{SlotReport, SlotError};
use crate::chaos::OpFault;
use sdc_model::ArchId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::path::{Path, PathBuf};

/// Current checkpoint format version.
pub const FORMAT_VERSION: u32 = 1;

/// Identity of the campaign a checkpoint belongs to.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Fingerprint {
    /// Campaign seed.
    pub seed: u64,
    /// Fleet size.
    pub total_cpus: u64,
    /// Canonical fault-plan spec ([`crate::chaos::FaultPlan::spec`]).
    pub plan: String,
}

serde::impl_json_struct!(Fingerprint {
    seed,
    total_cpus,
    plan,
});

/// One completed slot: everything needed to reassemble the campaign
/// outcome and its attrition stats without re-running the item.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ItemRecord {
    /// Population index of the defective processor.
    pub index: u64,
    /// Its architecture (raw [`ArchId`]).
    pub arch: u8,
    /// `Some(stage)` when caught, `None` when escaped or lost.
    pub stage: Option<Stage>,
    /// Regular-round index when caught at `Stage::Regular`; 0 otherwise.
    pub round: u32,
    /// True when the slot exhausted its retries and produced no fate.
    pub lost: bool,
    /// Attempts made.
    pub attempts: u32,
    /// Faults observed, by [`OpFault::index`] (length 5).
    pub faults: Vec<u64>,
    /// Accounted backoff seconds.
    pub backoff_secs: f64,
}

serde::impl_json_struct!(ItemRecord {
    index,
    arch,
    stage,
    round,
    lost,
    attempts,
    faults,
    backoff_secs,
});

impl ItemRecord {
    /// Builds a record from one supervised slot.
    pub fn of(index: usize, arch: ArchId, fate: Option<Fate>, report: &SlotReport) -> ItemRecord {
        let (stage, round) = match fate {
            Some(Fate::Caught(s, r)) => (Some(s), r),
            Some(Fate::Escaped) | None => (None, 0),
        };
        ItemRecord {
            index: index as u64,
            arch: arch.0,
            stage,
            round,
            lost: fate.is_none(),
            attempts: report.attempts,
            faults: report.faults_by_kind.to_vec(),
            backoff_secs: report.backoff_secs,
        }
    }

    /// The fate this record encodes (`None` when the slot was lost).
    pub fn fate(&self) -> Option<Fate> {
        if self.lost {
            None
        } else {
            match self.stage {
                Some(s) => Some(Fate::Caught(s, self.round)),
                None => Some(Fate::Escaped),
            }
        }
    }

    /// Reconstructs the slot report for attrition accounting.
    pub fn report(&self) -> SlotReport {
        let mut faults = [0u64; OpFault::ALL.len()];
        for (acc, &n) in faults.iter_mut().zip(self.faults.iter()) {
            *acc = n;
        }
        SlotReport {
            attempts: self.attempts,
            faults_by_kind: faults,
            backoff_secs: self.backoff_secs,
            // The concrete losing error is not persisted — only that the
            // slot was lost — so reconstruction marks it generically.
            lost: if self.lost {
                Some(SlotError::Fault(OpFault::MachineOffline))
            } else {
                None
            },
        }
    }
}

/// A versioned, fingerprinted snapshot of completed campaign items.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignCheckpoint {
    /// Format version ([`FORMAT_VERSION`]).
    pub version: u32,
    /// Which campaign this snapshot belongs to.
    pub fingerprint: Fingerprint,
    /// Completed items, in completion (not index) order.
    pub items: Vec<ItemRecord>,
}

serde::impl_json_struct!(CampaignCheckpoint {
    version,
    fingerprint,
    items,
});

/// Why a checkpoint could not be used.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// Reading or writing the file failed.
    Io(String),
    /// The file did not parse as a checkpoint.
    Corrupt(String),
    /// The file is a checkpoint of a different format version.
    Version {
        /// Version found in the file.
        found: u32,
        /// Version this build writes.
        expected: u32,
    },
    /// The checkpoint belongs to a different campaign.
    Mismatch {
        /// Fingerprint found in the file.
        found: Fingerprint,
        /// Fingerprint of the campaign being resumed.
        expected: Fingerprint,
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O: {e}"),
            CheckpointError::Corrupt(e) => write!(f, "corrupt checkpoint: {e}"),
            CheckpointError::Version { found, expected } => {
                write!(f, "checkpoint format v{found}, this build reads v{expected}")
            }
            CheckpointError::Mismatch { found, expected } => write!(
                f,
                "checkpoint is for campaign (seed={}, cpus={}, plan={}), \
                 not (seed={}, cpus={}, plan={})",
                found.seed, found.total_cpus, found.plan,
                expected.seed, expected.total_cpus, expected.plan
            ),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl CampaignCheckpoint {
    /// An empty snapshot for `fingerprint`.
    pub fn empty(fingerprint: Fingerprint) -> CampaignCheckpoint {
        CampaignCheckpoint {
            version: FORMAT_VERSION,
            fingerprint,
            items: Vec::new(),
        }
    }

    /// Loads and validates a snapshot against the expected fingerprint.
    pub fn load(path: &Path, expected: &Fingerprint) -> Result<CampaignCheckpoint, CheckpointError> {
        let text =
            std::fs::read_to_string(path).map_err(|e| CheckpointError::Io(e.to_string()))?;
        let ck: CampaignCheckpoint =
            serde_json::from_str(&text).map_err(|e| CheckpointError::Corrupt(e.to_string()))?;
        if ck.version != FORMAT_VERSION {
            return Err(CheckpointError::Version {
                found: ck.version,
                expected: FORMAT_VERSION,
            });
        }
        if ck.fingerprint != *expected {
            return Err(CheckpointError::Mismatch {
                found: ck.fingerprint,
                expected: expected.clone(),
            });
        }
        Ok(ck)
    }

    /// Completed records keyed by population index.
    pub fn by_index(&self) -> HashMap<usize, ItemRecord> {
        self.items
            .iter()
            .map(|r| (r.index as usize, r.clone()))
            .collect()
    }
}

/// Writes snapshots every `every` completions, atomically.
#[derive(Debug)]
pub struct CheckpointStore {
    path: PathBuf,
    /// Completions between snapshot writes.
    pub every: usize,
    /// Testing hook simulating SIGKILL: the campaign driver stops
    /// claiming work after this many *new* completions, leaving the
    /// last written snapshot on disk — exactly the state a killed
    /// process would leave behind.
    pub kill_after: Option<usize>,
}

impl CheckpointStore {
    /// A store writing to `path` every `every` completions.
    pub fn new(path: impl Into<PathBuf>, every: usize) -> CheckpointStore {
        CheckpointStore {
            path: path.into(),
            every: every.max(1),
            kill_after: None,
        }
    }

    /// The snapshot path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Atomically replaces the snapshot on disk: write to a sibling tmp
    /// file, fsync-free rename over the target (rename is atomic on the
    /// platforms we run on; a torn write can only ever leave the old
    /// snapshot or the new one, never a hybrid).
    pub fn write(&self, ck: &CampaignCheckpoint) -> Result<(), CheckpointError> {
        self.write_value(ck)
    }

    /// [`CheckpointStore::write`] for any serializable snapshot type
    /// (the Farron evaluation keeps its own row checkpoint).
    pub fn write_value<T: Serialize>(&self, value: &T) -> Result<(), CheckpointError> {
        let json =
            serde_json::to_string(value).map_err(|e| CheckpointError::Io(e.to_string()))?;
        let tmp = self.path.with_extension("tmp");
        std::fs::write(&tmp, json).map_err(|e| CheckpointError::Io(e.to_string()))?;
        std::fs::rename(&tmp, &self.path).map_err(|e| CheckpointError::Io(e.to_string()))?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::supervisor::SlotReport;

    fn fp() -> Fingerprint {
        Fingerprint {
            seed: 2021,
            total_cpus: 400_000,
            plan: "offline=0.05,crash=0,preempt=0.1,read_error=0,timeout=0,seed=7".into(),
        }
    }

    fn record(index: usize, fate: Option<Fate>) -> ItemRecord {
        let mut report = SlotReport::default();
        report.attempts = 2;
        report.backoff_secs = 31.5;
        report.faults_by_kind[OpFault::Preempted.index()] = 1;
        ItemRecord::of(index, ArchId(3), fate, &report)
    }

    #[test]
    fn fate_round_trips_through_record() {
        for fate in [
            Some(Fate::Caught(Stage::Reinstall, 0)),
            Some(Fate::Caught(Stage::Regular, 7)),
            Some(Fate::Escaped),
            None,
        ] {
            assert_eq!(record(4, fate).fate(), fate);
        }
    }

    #[test]
    fn snapshot_round_trips_through_disk() {
        let dir = std::env::temp_dir().join("sdc-ck-test-rt");
        std::fs::create_dir_all(&dir).unwrap();
        let store = CheckpointStore::new(dir.join("ck.json"), 10);
        let mut ck = CampaignCheckpoint::empty(fp());
        ck.items.push(record(0, Some(Fate::Escaped)));
        ck.items.push(record(3, Some(Fate::Caught(Stage::Factory, 0))));
        ck.items.push(record(1, None));
        store.write(&ck).unwrap();
        let back = CampaignCheckpoint::load(store.path(), &fp()).unwrap();
        assert_eq!(back, ck);
        let by_index = back.by_index();
        assert_eq!(by_index.len(), 3);
        assert_eq!(by_index[&3].fate(), Some(Fate::Caught(Stage::Factory, 0)));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_rejects_wrong_fingerprint_and_version() {
        let dir = std::env::temp_dir().join("sdc-ck-test-fp");
        std::fs::create_dir_all(&dir).unwrap();
        let store = CheckpointStore::new(dir.join("ck.json"), 1);
        let ck = CampaignCheckpoint::empty(fp());
        store.write(&ck).unwrap();
        let mut other = fp();
        other.seed = 9;
        assert!(matches!(
            CampaignCheckpoint::load(store.path(), &other),
            Err(CheckpointError::Mismatch { .. })
        ));
        let mut stale = ck.clone();
        stale.version = FORMAT_VERSION + 1;
        store.write(&stale).unwrap();
        assert!(matches!(
            CampaignCheckpoint::load(store.path(), &fp()),
            Err(CheckpointError::Version { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn version_check_precedes_fingerprint_check() {
        // A snapshot that is wrong in both ways reports the format
        // mismatch: fingerprint fields of a foreign format may not even
        // mean the same thing, so comparing them first would mislead.
        let dir = std::env::temp_dir().join("sdc-ck-test-prec");
        std::fs::create_dir_all(&dir).unwrap();
        let store = CheckpointStore::new(dir.join("ck.json"), 1);
        let mut ck = CampaignCheckpoint::empty(fp());
        ck.version = FORMAT_VERSION + 7;
        ck.fingerprint.seed = 999;
        store.write(&ck).unwrap();
        assert!(matches!(
            CampaignCheckpoint::load(store.path(), &fp()),
            Err(CheckpointError::Version {
                found,
                expected: FORMAT_VERSION,
            }) if found == FORMAT_VERSION + 7
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_rejects_missing_and_corrupt_files() {
        let dir = std::env::temp_dir().join("sdc-ck-test-bad");
        std::fs::create_dir_all(&dir).unwrap();
        let missing = dir.join("nope.json");
        assert!(matches!(
            CampaignCheckpoint::load(&missing, &fp()),
            Err(CheckpointError::Io(_))
        ));
        let garbled = dir.join("garbled.json");
        std::fs::write(&garbled, "{\"version\":").unwrap();
        assert!(matches!(
            CampaignCheckpoint::load(&garbled, &fp()),
            Err(CheckpointError::Corrupt(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }
}

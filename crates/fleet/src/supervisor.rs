//! Retry/backoff supervision for fault-exposed work slots.
//!
//! A slot is one unit of campaign work (one defective processor's
//! lifecycle walk, one eval round). Under a [`FaultPlan`] a slot attempt
//! can be hit by infrastructure faults or fail with a transient
//! [`ExecError`]; the supervisor retries with exponential backoff +
//! jitter — *accounted*, never slept, since campaign time is simulated —
//! and gives up after a bounded number of attempts, marking the slot
//! lost instead of panicking. Because every attempt re-forks the slot's
//! RNG from scratch, a slot that eventually succeeds produces exactly
//! the result an unsupervised run would have: supervision is transparent
//! to outcomes (the property test in `crates/fleet/tests/prop.rs`).

use crate::chaos::{FaultPlan, OpFault};
use sdc_model::DetRng;
use toolchain::ExecError;

/// Why a slot attempt produced no result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SlotError {
    /// An injected operational fault hit the attempt.
    Fault(OpFault),
    /// The executor failed (transient or not — see
    /// [`ExecError::is_transient`]).
    Exec(ExecError),
}

impl SlotError {
    /// True when a later attempt can succeed.
    pub fn is_retryable(&self) -> bool {
        match self {
            // All injected infrastructure faults are transient by
            // definition: the machine comes back, the runner restarts.
            SlotError::Fault(_) => true,
            SlotError::Exec(e) => e.is_transient(),
        }
    }

    /// The fault-kind counter this error belongs to, if any.
    pub fn fault_kind(&self) -> Option<OpFault> {
        match self {
            SlotError::Fault(f) => Some(*f),
            SlotError::Exec(ExecError::ProfileRead { .. }) => Some(OpFault::ProfileRead),
            SlotError::Exec(_) => None,
        }
    }
}

impl std::fmt::Display for SlotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SlotError::Fault(fault) => write!(f, "injected fault: {fault}"),
            SlotError::Exec(e) => write!(f, "executor error: {e}"),
        }
    }
}

impl From<ExecError> for SlotError {
    fn from(e: ExecError) -> Self {
        SlotError::Exec(e)
    }
}

/// Bounded-retry policy with exponential backoff + jitter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Attempts per slot before it is marked lost (≥ 1).
    pub max_attempts: u32,
    /// Backoff after the first failed attempt, in seconds.
    pub base_backoff_secs: f64,
    /// Backoff ceiling, in seconds.
    pub max_backoff_secs: f64,
    /// Jitter fraction: the accounted backoff is scaled by a factor
    /// drawn uniformly from `[1 - jitter, 1 + jitter]`.
    pub jitter: f64,
}

impl Default for RetryPolicy {
    /// Six attempts, 30 s base doubling to a 10 min ceiling, ±25%
    /// jitter — the shape of a fleet scanner's slot scheduler.
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 6,
            base_backoff_secs: 30.0,
            max_backoff_secs: 600.0,
            jitter: 0.25,
        }
    }
}

impl RetryPolicy {
    /// The accounted backoff after failed attempt `attempt` (0-based).
    ///
    /// Deterministic: the jitter stream is forked from `(plan seed,
    /// slot label, attempt)`, never from wall-clock or shared state.
    pub fn backoff_secs(&self, plan: &FaultPlan, label: u64, attempt: u32) -> f64 {
        let exp = (self.base_backoff_secs * 2f64.powi(attempt as i32)).min(self.max_backoff_secs);
        if self.jitter <= 0.0 {
            return exp;
        }
        let mut rng = DetRng::new(plan.seed)
            .fork_str("backoff")
            .fork(label)
            .fork(attempt as u64);
        exp * rng.range_f64(1.0 - self.jitter, 1.0 + self.jitter)
    }
}

/// One slot attempt, as seen by the work closure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Attempt {
    /// 0-based attempt index.
    pub index: u32,
    /// The injected fault hitting this attempt, if any. The closure
    /// decides how it surfaces — most map it straight to
    /// `Err(SlotError::Fault(..))` via [`Attempt::surface_fault`];
    /// profile-read faults instead route through the fallible profile
    /// accessor so the real error path is exercised.
    pub injected: Option<OpFault>,
}

impl Attempt {
    /// Errors out if an injected fault hit this attempt.
    pub fn surface_fault(&self) -> Result<(), SlotError> {
        match self.injected {
            Some(f) => Err(SlotError::Fault(f)),
            None => Ok(()),
        }
    }
}

/// Per-slot supervision accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct SlotReport {
    /// Attempts made (≥ 1).
    pub attempts: u32,
    /// Faults observed, by [`OpFault::index`].
    pub faults_by_kind: [u64; OpFault::ALL.len()],
    /// Accounted (not slept) backoff seconds.
    pub backoff_secs: f64,
    /// The error that exhausted the attempt budget, if the slot was
    /// lost.
    pub lost: Option<SlotError>,
}

impl Default for SlotReport {
    fn default() -> Self {
        SlotReport {
            attempts: 0,
            faults_by_kind: [0; OpFault::ALL.len()],
            backoff_secs: 0.0,
            lost: None,
        }
    }
}

/// The supervised result of one slot.
#[derive(Debug, Clone, PartialEq)]
pub struct SlotOutcome<R> {
    /// The slot's result; `None` when the slot was lost.
    pub result: Option<R>,
    /// Supervision accounting.
    pub report: SlotReport,
}

/// Runs one slot under `policy` and `plan`.
///
/// `work` is invoked once per attempt with the attempt descriptor (its
/// index and injected fault) and must be a pure function of it — in particular
/// it must re-fork any RNG it uses from scratch, so a retried success is
/// bitwise identical to a first-attempt success. Retryable failures
/// accrue backoff and try again; a non-retryable failure or an exhausted
/// attempt budget loses the slot (graceful degradation — the caller gets
/// `None` plus accounting, not a panic).
pub fn run_slot<R>(
    policy: &RetryPolicy,
    plan: &FaultPlan,
    label: u64,
    mut work: impl FnMut(Attempt) -> Result<R, SlotError>,
) -> SlotOutcome<R> {
    assert!(policy.max_attempts >= 1, "retry policy with zero attempts");
    let mut report = SlotReport::default();
    for index in 0..policy.max_attempts {
        report.attempts += 1;
        let attempt = Attempt {
            index,
            injected: plan.draw(label, index),
        };
        match work(attempt) {
            Ok(result) => {
                return SlotOutcome {
                    result: Some(result),
                    report,
                }
            }
            Err(e) => {
                if let Some(kind) = e.fault_kind() {
                    report.faults_by_kind[kind.index()] += 1;
                }
                let last = index + 1 == policy.max_attempts;
                if !e.is_retryable() || last {
                    report.lost = Some(e);
                    return SlotOutcome {
                        result: None,
                        report,
                    };
                }
                report.backoff_secs += policy.backoff_secs(plan, label, index);
            }
        }
    }
    unreachable!("attempt loop returns on success, loss, or exhaustion");
}

/// Aggregated supervision accounting over a whole campaign.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttritionStats {
    /// Slots supervised.
    pub items: u64,
    /// Slots that produced a result.
    pub completed: u64,
    /// Slots lost after exhausting retries (or a permanent error).
    pub lost: u64,
    /// Extra attempts beyond the first, summed over slots.
    pub retries: u64,
    /// Faults observed, by [`OpFault::index`].
    pub faults_by_kind: [u64; OpFault::ALL.len()],
    /// Accounted backoff seconds, summed over slots.
    pub backoff_secs: f64,
}

impl Default for AttritionStats {
    fn default() -> Self {
        AttritionStats {
            items: 0,
            completed: 0,
            lost: 0,
            retries: 0,
            faults_by_kind: [0; OpFault::ALL.len()],
            backoff_secs: 0.0,
        }
    }
}

impl AttritionStats {
    /// Folds one slot's accounting in.
    pub fn record(&mut self, completed: bool, report: &SlotReport) {
        self.items += 1;
        if completed {
            self.completed += 1;
        } else {
            self.lost += 1;
        }
        self.retries += (report.attempts.saturating_sub(1)) as u64;
        for (acc, n) in self.faults_by_kind.iter_mut().zip(report.faults_by_kind) {
            *acc += n;
        }
        self.backoff_secs += report.backoff_secs;
    }

    /// Folds another aggregate in (e.g. per-row stats into a run-wide
    /// total).
    pub fn merge(&mut self, other: &AttritionStats) {
        self.items += other.items;
        self.completed += other.completed;
        self.lost += other.lost;
        self.retries += other.retries;
        for (acc, n) in self.faults_by_kind.iter_mut().zip(other.faults_by_kind) {
            *acc += n;
        }
        self.backoff_secs += other.backoff_secs;
    }

    /// Fraction of slots that completed (1.0 for an empty campaign).
    pub fn coverage(&self) -> f64 {
        if self.items == 0 {
            1.0
        } else {
            self.completed as f64 / self.items as f64
        }
    }

    /// Total faults across all kinds.
    pub fn total_faults(&self) -> u64 {
        self.faults_by_kind.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn storm() -> FaultPlan {
        FaultPlan {
            seed: 7,
            offline: 0.05,
            crash: 0.03,
            preempt: 0.10,
            read_error: 0.04,
            timeout: 0.02,
        }
    }

    #[test]
    fn quiet_plan_is_single_attempt_passthrough() {
        let plan = FaultPlan::default();
        let out = run_slot(&RetryPolicy::default(), &plan, 1, |a| {
            assert_eq!(a.injected, None);
            a.surface_fault()?;
            Ok::<_, SlotError>(42u32)
        });
        assert_eq!(out.result, Some(42));
        assert_eq!(out.report.attempts, 1);
        assert_eq!(out.report.backoff_secs, 0.0);
        assert!(out.report.lost.is_none());
    }

    #[test]
    fn faulted_attempts_retry_and_account_backoff() {
        let plan = storm();
        // Find a slot whose first attempt is faulted but which succeeds
        // within the budget.
        let policy = RetryPolicy::default();
        let label = (0..5000u64)
            .find(|&l| plan.draw(l, 0).is_some() && plan.draw(l, 1).is_none())
            .expect("a fault-then-clear slot exists");
        let out = run_slot(&policy, &plan, label, |a| {
            a.surface_fault()?;
            Ok::<_, SlotError>(7u32)
        });
        assert_eq!(out.result, Some(7));
        assert!(out.report.attempts >= 2);
        assert!(out.report.backoff_secs > 0.0);
        assert!(out.report.faults_by_kind.iter().sum::<u64>() >= 1);
    }

    #[test]
    fn exhausted_budget_loses_the_slot() {
        let plan = FaultPlan {
            seed: 1,
            preempt: 1.0,
            ..FaultPlan::default()
        };
        let policy = RetryPolicy {
            max_attempts: 3,
            ..RetryPolicy::default()
        };
        let out = run_slot(&policy, &plan, 9, |a| {
            a.surface_fault()?;
            Ok::<_, SlotError>(0u32)
        });
        assert_eq!(out.result, None);
        assert_eq!(out.report.attempts, 3);
        assert_eq!(
            out.report.lost,
            Some(SlotError::Fault(OpFault::Preempted))
        );
        assert_eq!(out.report.faults_by_kind[OpFault::Preempted.index()], 3);
    }

    #[test]
    fn permanent_errors_do_not_retry() {
        let plan = FaultPlan::default();
        let mut calls = 0;
        let out = run_slot(&RetryPolicy::default(), &plan, 2, |_| {
            calls += 1;
            Err::<u32, _>(SlotError::Exec(ExecError::NoCores))
        });
        assert_eq!(calls, 1, "permanent errors must not retry");
        assert_eq!(out.result, None);
        assert_eq!(out.report.lost, Some(SlotError::Exec(ExecError::NoCores)));
    }

    #[test]
    fn backoff_is_deterministic_exponential_and_capped() {
        let plan = storm();
        let policy = RetryPolicy::default();
        let a = policy.backoff_secs(&plan, 5, 0);
        let b = policy.backoff_secs(&plan, 5, 0);
        assert_eq!(a, b, "jitter must come from the forked stream");
        // Jitter bounds.
        assert!(a >= policy.base_backoff_secs * 0.75 && a <= policy.base_backoff_secs * 1.25);
        // Exponential growth up to the cap.
        let far = policy.backoff_secs(&plan, 5, 20);
        assert!(far <= policy.max_backoff_secs * 1.25);
        assert!(far >= policy.max_backoff_secs * 0.75);
    }

    #[test]
    fn attrition_stats_aggregate() {
        let mut stats = AttritionStats::default();
        let mut r1 = SlotReport::default();
        r1.attempts = 3;
        r1.faults_by_kind[OpFault::Preempted.index()] = 2;
        r1.backoff_secs = 60.0;
        stats.record(true, &r1);
        let mut r2 = SlotReport::default();
        r2.attempts = 6;
        r2.lost = Some(SlotError::Fault(OpFault::MachineOffline));
        stats.record(false, &r2);
        assert_eq!(stats.items, 2);
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.lost, 1);
        assert_eq!(stats.retries, 2 + 5);
        assert_eq!(stats.total_faults(), 2);
        assert!((stats.coverage() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn profile_read_exec_error_counts_as_profile_fault() {
        let e = SlotError::Exec(ExecError::ProfileRead {
            testcase: sdc_model::TestcaseId(0),
            attempt: 0,
        });
        assert!(e.is_retryable());
        assert_eq!(e.fault_kind(), Some(OpFault::ProfileRead));
        assert_eq!(SlotError::Exec(ExecError::NoCores).fault_kind(), None);
    }
}

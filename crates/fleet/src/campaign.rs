//! The end-to-end test campaign: lifecycle over the whole fleet.

use crate::chaos::{FaultPlan, OpFault};
use crate::checkpoint::{
    CampaignCheckpoint, CheckpointError, CheckpointStore, Fingerprint, ItemRecord,
};
use crate::lifecycle::{Stage, StageSpec};
use crate::population::{FleetConfig, FleetPopulation};
use crate::screening::{stage_detection_probability, SuiteProfileCache};
use crate::supervisor::{run_slot, AttritionStats, RetryPolicy, SlotError};
use sdc_model::{ArchId, DetRng};
use silicon::Processor;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use toolchain::{CacheStats, Suite};

/// Samples the age (years after factory delivery) at which a defect
/// starts producing errors.
///
/// Manufacturing defects split into born-active parts and early-life
/// degraders: some are detectable at the factory gate, most manifest
/// during the burn-in window before production, and a tail activates
/// months later — the processors that "have even passed several rounds of
/// regular tests" before failing (Observation 2).
fn sample_activation_age(rng: &mut DetRng) -> f64 {
    let x = rng.unit();
    if x < 0.26 {
        0.0
    } else if x < 0.34 {
        rng.range_f64(0.005, 0.02)
    } else if x < 0.87 {
        rng.range_f64(0.03, 0.12)
    } else {
        rng.range_f64(0.13, 1.5)
    }
}

/// Where a defective processor was (first) caught, if at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fate {
    /// Caught at a lifecycle stage; for `Stage::Regular` the payload is
    /// the zero-based round index (Observation 2: "some have even passed
    /// several rounds of regular tests").
    Caught(Stage, u32),
    /// Escaped every test (a latent producer of production SDCs).
    Escaped,
}

/// The campaign result: everything needed for Tables 1 and 2.
#[derive(Debug)]
pub struct CampaignOutcome {
    /// Fleet size.
    pub total_cpus: u64,
    /// Packages per architecture.
    pub per_arch_total: Vec<(ArchId, u64)>,
    /// (architecture, fate) of every defective package, in population
    /// order — identical for every thread count.
    pub fates: Vec<(ArchId, Fate)>,
    /// Suite-profile cache counters: one miss per distinct package core
    /// count, a hit for every other defective processor.
    pub suite_cache: CacheStats,
}

impl CampaignOutcome {
    /// Detected count at `stage`.
    pub fn caught_at(&self, stage: Stage) -> u64 {
        self.fates
            .iter()
            .filter(|&&(_, f)| matches!(f, Fate::Caught(s, _) if s == stage))
            .count() as u64
    }

    /// Defective processors first caught at regular round `round` or
    /// later (round is zero-based).
    pub fn caught_in_regular_round_at_least(&self, round: u32) -> u64 {
        self.fates
            .iter()
            .filter(|&&(_, f)| matches!(f, Fate::Caught(Stage::Regular, r) if r >= round))
            .count() as u64
    }

    /// Total detected across all stages.
    pub fn total_caught(&self) -> u64 {
        self.fates
            .iter()
            .filter(|&&(_, f)| matches!(f, Fate::Caught(..)))
            .count() as u64
    }

    /// Defective packages that escaped all testing.
    pub fn escaped(&self) -> u64 {
        self.fates
            .iter()
            .filter(|&&(_, f)| f == Fate::Escaped)
            .count() as u64
    }

    /// Failure rate in ‱ (per ten thousand) at `stage` — a Table 1 cell.
    pub fn rate_bp(&self, stage: Stage) -> f64 {
        self.caught_at(stage) as f64 / self.total_cpus as f64 * 10_000.0
    }

    /// Total detected failure rate in ‱ — Table 1's Total cell.
    pub fn total_rate_bp(&self) -> f64 {
        self.total_caught() as f64 / self.total_cpus as f64 * 10_000.0
    }

    /// Table 1 as (label, rate in ‱) rows.
    pub fn table1(&self) -> Vec<(String, f64)> {
        let mut rows: Vec<(String, f64)> = Stage::ORDER
            .iter()
            .map(|&s| (s.label().to_string(), self.rate_bp(s)))
            .collect();
        rows.push(("Total".to_string(), self.total_rate_bp()));
        rows
    }

    /// Table 2 as (arch, detected rate in ‱) rows plus the average.
    pub fn table2(&self) -> Vec<(String, f64)> {
        let mut per_arch_caught: HashMap<ArchId, u64> = HashMap::new();
        for &(a, f) in &self.fates {
            if matches!(f, Fate::Caught(..)) {
                *per_arch_caught.entry(a).or_insert(0) += 1;
            }
        }
        let mut rows = Vec::new();
        for &(a, total) in &self.per_arch_total {
            let caught = per_arch_caught.get(&a).copied().unwrap_or(0);
            rows.push((a.to_string(), caught as f64 / total as f64 * 10_000.0));
        }
        rows.push(("avg".to_string(), self.total_rate_bp()));
        rows
    }
}

/// Runs the four-stage campaign over a sampled fleet.
///
/// Static suite profiles are computed once per distinct core count; each
/// defective processor then walks the lifecycle, getting caught at a
/// stage with the screening probability (regular testing is applied once
/// per three-month round of the processor's age).
///
/// Defective processors are sharded across `cfg.threads` workers
/// ([`crate::parallel::run_indexed`]); each processor's randomness is a
/// stream forked from `(cfg.seed, processor id)`, so the outcome is
/// bitwise identical for every thread count.
pub fn run_campaign(cfg: &FleetConfig, suite: &Suite) -> CampaignOutcome {
    let pop = FleetPopulation::sample(cfg);
    run_campaign_on(cfg, suite, &pop)
}

/// [`run_campaign`] over an already-sampled population (lets callers
/// reuse one fleet across serial/parallel comparison runs).
pub fn run_campaign_on(cfg: &FleetConfig, suite: &Suite, pop: &FleetPopulation) -> CampaignOutcome {
    let pipeline = StageSpec::default_pipeline();
    let clock_hz = 1e7;
    let root = DetRng::new(cfg.seed).fork_str("fleet-campaign");
    let profile_cache = SuiteProfileCache::new();

    let fates = crate::parallel::run_indexed(&pop.defective, cfg.threads, |_, processor| {
        let mut rng = root.fork(processor.id.0);
        let profiles =
            profile_cache.get_or_build(suite, processor.physical_cores as usize, cfg.threads);
        let fate = processor_fate(processor, suite, &profiles, &pipeline, clock_hz, &mut rng);
        (processor.arch, fate)
    });
    CampaignOutcome {
        total_cpus: pop.total(),
        per_arch_total: pop.per_arch_total.clone(),
        fates,
        suite_cache: profile_cache.stats(),
    }
}

/// A campaign outcome under supervision: possibly-partial coverage plus
/// explicit attrition accounting instead of a panic.
#[derive(Debug)]
pub struct SupervisedCampaign {
    /// The (partial) campaign outcome. `fates` holds only the slots
    /// that completed, still in population order, so every table is
    /// computed over the covered subset.
    pub outcome: CampaignOutcome,
    /// Retry/fault/backoff accounting over all slots.
    pub attrition: AttritionStats,
    /// Population indices of the slots lost after exhausting retries.
    pub lost: Vec<u64>,
}

/// How a resumable campaign run ended.
#[derive(Debug)]
pub enum ResumableRun {
    /// Every slot was driven to completion or loss.
    Completed(SupervisedCampaign),
    /// The simulated kill fired ([`CheckpointStore::kill_after`]); the
    /// last written snapshot is on disk, ready for resume.
    Interrupted,
}

/// The checkpoint identity of a `(config, fault plan)` campaign.
pub fn campaign_fingerprint(cfg: &FleetConfig, plan: &FaultPlan) -> Fingerprint {
    Fingerprint {
        seed: cfg.seed,
        total_cpus: cfg.total_cpus,
        plan: plan.spec(),
    }
}

/// [`run_campaign`] under a fault plan and retry policy: slots that
/// draw operational faults retry with backoff; slots that exhaust the
/// budget are dropped from the outcome and reported in the attrition
/// stats — the campaign itself always completes.
pub fn run_campaign_supervised(
    cfg: &FleetConfig,
    suite: &Suite,
    plan: &FaultPlan,
    policy: &RetryPolicy,
) -> SupervisedCampaign {
    let pop = FleetPopulation::sample(cfg);
    match run_campaign_resumable(cfg, suite, &pop, plan, policy, None, None) {
        Ok(ResumableRun::Completed(run)) => run,
        Ok(ResumableRun::Interrupted) => {
            unreachable!("no checkpoint store, so no kill hook can fire")
        }
        Err(e) => unreachable!("no checkpoint store, so no checkpoint I/O can fail: {e}"),
    }
}

/// The checkpointable supervised campaign driver.
///
/// Each slot is a pure function of `(cfg.seed, plan, population
/// index)`, so `resume` only needs the completed [`ItemRecord`]s:
/// workers skip those indices and recompute the rest, and the assembled
/// outcome is bitwise identical to an uninterrupted run at any thread
/// count. With a `store`, a snapshot is written atomically every
/// [`CheckpointStore::every`] completions (plus once at the end);
/// `store.kill_after` simulates SIGKILL for the determinism tests.
pub fn run_campaign_resumable(
    cfg: &FleetConfig,
    suite: &Suite,
    pop: &FleetPopulation,
    plan: &FaultPlan,
    policy: &RetryPolicy,
    store: Option<&CheckpointStore>,
    resume: Option<&CampaignCheckpoint>,
) -> Result<ResumableRun, CheckpointError> {
    let pipeline = StageSpec::default_pipeline();
    let clock_hz = 1e7;
    let root = DetRng::new(cfg.seed).fork_str("fleet-campaign");
    let profile_cache = SuiteProfileCache::new();
    let done: HashMap<usize, ItemRecord> = resume.map(|c| c.by_index()).unwrap_or_default();

    struct Sink {
        snapshot: CampaignCheckpoint,
        since_write: usize,
        new_done: usize,
        error: Option<CheckpointError>,
    }
    let killed = AtomicBool::new(false);
    let sink = Mutex::new(Sink {
        snapshot: resume.cloned().unwrap_or_else(|| {
            CampaignCheckpoint::empty(campaign_fingerprint(cfg, plan))
        }),
        since_write: 0,
        new_done: 0,
        error: None,
    });

    let records = crate::parallel::run_indexed(&pop.defective, cfg.threads, |i, processor| {
        if let Some(rec) = done.get(&i) {
            return Some(rec.clone());
        }
        if killed.load(Ordering::Relaxed) {
            return None;
        }
        let label = processor.id.0;
        let slot = run_slot(policy, plan, label, |attempt| {
            let fail_read = match attempt.injected {
                Some(OpFault::ProfileRead) => Some(attempt.index),
                Some(fault) => return Err(SlotError::Fault(fault)),
                None => None,
            };
            let profiles = profile_cache.get_or_build_fallible(
                suite,
                processor.physical_cores as usize,
                cfg.threads,
                fail_read,
            )?;
            // Re-fork the fate stream from scratch every attempt:
            // supervision is transparent to a successful slot's result.
            let mut rng = root.fork(label);
            let fate = processor_fate(processor, suite, &profiles, &pipeline, clock_hz, &mut rng);
            Ok((processor.arch, fate))
        });
        let fate = slot.result.map(|(_, f)| f);
        let rec = ItemRecord::of(i, processor.arch, fate, &slot.report);
        if let Some(store) = store {
            let mut s = sink.lock().expect("checkpoint sink");
            s.snapshot.items.push(rec.clone());
            s.since_write += 1;
            s.new_done += 1;
            if s.since_write >= store.every && s.error.is_none() {
                if let Err(e) = store.write(&s.snapshot) {
                    s.error = Some(e);
                }
                s.since_write = 0;
            }
            if let Some(k) = store.kill_after {
                if s.new_done >= k {
                    killed.store(true, Ordering::Relaxed);
                }
            }
        }
        Some(rec)
    });

    if let Some(e) = sink.lock().expect("checkpoint sink").error.take() {
        return Err(e);
    }
    if killed.load(Ordering::Relaxed) {
        return Ok(ResumableRun::Interrupted);
    }

    let mut fates = Vec::new();
    let mut attrition = AttritionStats::default();
    let mut lost = Vec::new();
    for rec in &records {
        let rec = rec
            .as_ref()
            .expect("invariant violated: every slot completes when the kill hook never fired");
        let report = rec.report();
        match rec.fate() {
            Some(fate) => {
                attrition.record(true, &report);
                fates.push((ArchId(rec.arch), fate));
            }
            None => {
                attrition.record(false, &report);
                lost.push(rec.index);
            }
        }
    }
    if let Some(store) = store {
        // Leave a complete snapshot behind so a finished run can be
        // "resumed" into an instant replay.
        let sink = sink.lock().expect("checkpoint sink");
        store.write(&sink.snapshot)?;
    }
    Ok(ResumableRun::Completed(SupervisedCampaign {
        outcome: CampaignOutcome {
            total_cpus: pop.total(),
            per_arch_total: pop.per_arch_total.clone(),
            fates,
            suite_cache: profile_cache.stats(),
        },
        attrition,
        lost,
    }))
}

/// Walks one defective processor through the lifecycle; `rng` is its
/// private stream.
fn processor_fate(
    processor: &Processor,
    suite: &Suite,
    profiles: &crate::screening::StaticSuiteProfile,
    pipeline: &[StageSpec],
    clock_hz: f64,
    rng: &mut DetRng,
) -> Fate {
    let activation = sample_activation_age(rng);
    for spec in pipeline {
        if spec.stage == Stage::Regular {
            // One round every three months for the processor's life.
            for round in 0..StageSpec::regular_rounds(processor.age_years) {
                let round_age = spec.age_years + 0.25 * round as f64;
                if round_age < activation {
                    continue;
                }
                let p = stage_detection_probability(processor, suite, profiles, spec, clock_hz);
                if rng.chance(p) {
                    return Fate::Caught(Stage::Regular, round);
                }
            }
        } else {
            if spec.age_years < activation {
                continue;
            }
            let p = stage_detection_probability(processor, suite, profiles, spec, clock_hz);
            if rng.chance(p) {
                return Fate::Caught(spec.stage, 0);
            }
        }
    }
    Fate::Escaped
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A smaller fleet keeps the test fast while preserving the shape.
    fn small_campaign() -> CampaignOutcome {
        let cfg = FleetConfig {
            total_cpus: 400_000,
            seed: 2021,
            threads: 2,
        };
        run_campaign(&cfg, &Suite::standard())
    }

    #[test]
    fn campaign_shape_matches_table1() {
        let out = small_campaign();
        let total = out.total_rate_bp();
        // Observation 1: ~3.61‱ overall.
        assert!((2.0..6.0).contains(&total), "total rate {total}‱");
        // Pre-production dominates (Observation 2: 90.4% pre-production).
        let pre = out.rate_bp(Stage::Factory)
            + out.rate_bp(Stage::Datacenter)
            + out.rate_bp(Stage::Reinstall);
        let share = pre / total;
        assert!(share > 0.75, "pre-production share {share}");
        // Re-install is the dominant single stage.
        for s in [Stage::Factory, Stage::Datacenter, Stage::Regular] {
            assert!(
                out.rate_bp(Stage::Reinstall) > out.rate_bp(s),
                "re-install must dominate {s}"
            );
        }
        // Regular testing still catches some (Observation 2: 0.348‱).
        assert!(out.caught_at(Stage::Regular) > 0);
        // And some escape even so (§2.2's production incidents).
        assert!(out.escaped() > 0);
    }

    #[test]
    fn table2_is_nonmonotone_in_arch_age() {
        let out = small_campaign();
        let t2 = out.table2();
        assert_eq!(t2.len(), 10);
        let rate = |label: &str| t2.iter().find(|(l, _)| l == label).unwrap().1;
        // Observation 3: the failure rate does not decrease with newer
        // chips — M8 (newer) far exceeds M4 (older).
        assert!(rate("M8") > rate("M4"));
        // Most architectures produce faulty parts even in a 400k fleet;
        // full coverage of all nine (the paper's 1M+, 32-month scale) is
        // asserted in the workspace integration tests.
        let faulty_archs = t2.iter().filter(|(l, r)| l != "avg" && *r > 0.0).count();
        assert!(faulty_archs >= 6, "faulty archs {faulty_archs}");
    }

    #[test]
    fn table1_rows_are_complete() {
        let out = small_campaign();
        let t1 = out.table1();
        assert_eq!(t1.len(), 5);
        assert_eq!(t1[4].0, "Total");
        let sum: f64 = t1[..4].iter().map(|(_, r)| r).sum();
        assert!((sum - t1[4].1).abs() < 1e-9, "stages sum to total");
    }

    #[test]
    fn some_processors_pass_several_regular_rounds_before_failing() {
        // Observation 2: "These faulty processors have passed
        // pre-production tests and some have even passed several rounds
        // of regular tests."
        let out = small_campaign();
        assert!(out.caught_at(Stage::Regular) > 0);
        assert!(
            out.caught_in_regular_round_at_least(1) > 0,
            "late activations are caught in a later round"
        );
    }

    #[test]
    fn campaign_is_deterministic() {
        let a = small_campaign();
        let b = small_campaign();
        assert_eq!(a.fates, b.fates);
    }

    #[test]
    fn thread_count_does_not_change_fates() {
        let suite = Suite::standard();
        let mut cfg = FleetConfig {
            total_cpus: 150_000,
            seed: 77,
            threads: 1,
        };
        let pop = FleetPopulation::sample(&cfg);
        let serial = run_campaign_on(&cfg, &suite, &pop);
        cfg.threads = 4;
        let parallel = run_campaign_on(&cfg, &suite, &pop);
        assert_eq!(serial.fates, parallel.fates);
        assert_eq!(serial.total_cpus, parallel.total_cpus);
        assert_eq!(serial.per_arch_total, parallel.per_arch_total);
    }

    #[test]
    fn quiet_supervision_matches_unsupervised_campaign() {
        let cfg = FleetConfig {
            total_cpus: 150_000,
            seed: 77,
            threads: 2,
        };
        let suite = Suite::standard();
        let plain = run_campaign(&cfg, &suite);
        let supervised =
            run_campaign_supervised(&cfg, &suite, &FaultPlan::default(), &RetryPolicy::default());
        assert_eq!(supervised.outcome.fates, plain.fates);
        assert_eq!(supervised.attrition.lost, 0);
        assert_eq!(supervised.attrition.retries, 0);
        assert_eq!(supervised.attrition.coverage(), 1.0);
        assert!(supervised.lost.is_empty());
    }

    #[test]
    fn stormy_campaign_completes_and_reports_attrition() {
        // The acceptance scenario: 5% machine-offline + 10% preemption.
        let cfg = FleetConfig {
            total_cpus: 150_000,
            seed: 77,
            threads: 2,
        };
        let plan = FaultPlan {
            seed: 7,
            offline: 0.05,
            preempt: 0.10,
            ..FaultPlan::default()
        };
        let suite = Suite::standard();
        let run = run_campaign_supervised(&cfg, &suite, &plan, &RetryPolicy::default());
        assert_eq!(run.attrition.items, run.outcome.fates.len() as u64 + run.lost.len() as u64);
        assert!(run.attrition.total_faults() > 0, "a storm must leave marks");
        assert!(run.attrition.retries > 0);
        assert!(run.attrition.backoff_secs > 0.0);
        assert!(run.attrition.coverage() > 0.9, "most slots survive retries");
        // Completed slots carry the same fates as a fault-free run: the
        // supervisor re-forks each slot's stream per attempt.
        let plain = run_campaign(&cfg, &suite);
        let completed: Vec<_> = plain
            .fates
            .iter()
            .enumerate()
            .filter(|(i, _)| !run.lost.contains(&(*i as u64)))
            .map(|(_, f)| *f)
            .collect();
        assert_eq!(run.outcome.fates, completed);
    }

    #[test]
    fn stormy_campaign_is_thread_invariant() {
        let suite = Suite::standard();
        let plan = FaultPlan {
            seed: 3,
            offline: 0.05,
            crash: 0.05,
            preempt: 0.10,
            read_error: 0.05,
            timeout: 0.02,
        };
        let mut cfg = FleetConfig {
            total_cpus: 100_000,
            seed: 41,
            threads: 1,
        };
        let serial = run_campaign_supervised(&cfg, &suite, &plan, &RetryPolicy::default());
        cfg.threads = 8;
        let parallel = run_campaign_supervised(&cfg, &suite, &plan, &RetryPolicy::default());
        assert_eq!(serial.outcome.fates, parallel.outcome.fates);
        assert_eq!(serial.attrition, parallel.attrition);
        assert_eq!(serial.lost, parallel.lost);
    }

    #[test]
    fn unwritable_checkpoint_store_is_a_typed_error_not_a_panic() {
        // Pointing the store at a directory that does not exist makes the
        // first snapshot write fail; the campaign must surface that as
        // CheckpointError::Io instead of panicking mid-fleet.
        let cfg = FleetConfig {
            total_cpus: 100_000,
            seed: 2021,
            threads: 2,
        };
        let suite = Suite::standard();
        let pop = FleetPopulation::sample(&cfg);
        let path = std::env::temp_dir()
            .join(format!("sdc-no-such-dir-{}", std::process::id()))
            .join("ckpt.json");
        let store = crate::checkpoint::CheckpointStore::new(&path, 1);
        let result = run_campaign_resumable(
            &cfg,
            &suite,
            &pop,
            &FaultPlan::default(),
            &RetryPolicy::default(),
            Some(&store),
            None,
        );
        match result {
            Err(crate::checkpoint::CheckpointError::Io(_)) => {}
            other => panic!("expected CheckpointError::Io, got {other:?}"),
        }
    }

    #[test]
    fn suite_cache_builds_once_per_core_count() {
        let out = small_campaign();
        let s = out.suite_cache;
        let shapes = s.entries as u64;
        assert!(shapes >= 1);
        assert_eq!(s.misses, shapes, "one build per distinct core count");
        assert_eq!(
            s.hits + s.misses,
            out.fates.len() as u64,
            "one lookup per defective processor"
        );
        assert!(s.hit_rate() > 0.9, "hit rate {}", s.hit_rate());
    }
}

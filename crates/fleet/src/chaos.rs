//! Deterministic operational-fault injection for campaign runs.
//!
//! Fleet scanning runs opportunistically on production machines (§5):
//! hosts go offline mid-suite, test runners crash, workload pressure
//! preempts test slots, profile reads fail transiently, and the harness
//! kills runs that overrun their wall-clock budget. A [`FaultPlan`]
//! models all five as a *seeded, pure* process: whether a fault hits a
//! given slot attempt is a function of `(plan, slot label, attempt)`
//! only — independent of thread count, execution order, and whether the
//! run was interrupted and resumed — which is what lets the chaos
//! determinism tests demand bitwise-identical outcomes.

use sdc_model::DetRng;
use serde::{Deserialize, Serialize};

/// The operational faults the plan can inject into a slot attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpFault {
    /// The machine hosting the slot is in an offline epoch (persists
    /// across consecutive attempts — a host that drops stays down for a
    /// while).
    MachineOffline,
    /// The test runner crashed mid-suite; the attempt produced nothing.
    RunnerCrash,
    /// Production workload pressure preempted the test slot.
    Preempted,
    /// A transient profile-read error (the suite profile is a pure
    /// function of its key, so a retry reads the identical profile).
    ProfileRead,
    /// The attempt exceeded its wall-clock budget and was killed.
    Timeout,
}

serde::impl_json_unit_enum!(OpFault {
    MachineOffline,
    RunnerCrash,
    Preempted,
    ProfileRead,
    Timeout,
});

impl OpFault {
    /// Every fault kind, in [`OpFault::index`] order.
    pub const ALL: [OpFault; 5] = [
        OpFault::MachineOffline,
        OpFault::RunnerCrash,
        OpFault::Preempted,
        OpFault::ProfileRead,
        OpFault::Timeout,
    ];

    /// Dense index for per-kind counters.
    pub fn index(self) -> usize {
        match self {
            OpFault::MachineOffline => 0,
            OpFault::RunnerCrash => 1,
            OpFault::Preempted => 2,
            OpFault::ProfileRead => 3,
            OpFault::Timeout => 4,
        }
    }

    /// Human-readable label for attrition reports.
    pub fn label(self) -> &'static str {
        match self {
            OpFault::MachineOffline => "machine-offline",
            OpFault::RunnerCrash => "runner-crash",
            OpFault::Preempted => "preempted",
            OpFault::ProfileRead => "profile-read",
            OpFault::Timeout => "timeout",
        }
    }
}

impl std::fmt::Display for OpFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Longest offline epoch, in consecutive slot attempts.
const MAX_OFFLINE_EPOCH: u64 = 3;

/// A seeded operational-fault plan: per-attempt probabilities for each
/// fault kind. `FaultPlan::default()` injects nothing.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed of the fault process (independent of the campaign seed, so
    /// the same fleet can be replayed under different weather).
    pub seed: u64,
    /// P(machine-offline epoch starts) per attempt.
    pub offline: f64,
    /// P(runner crash) per attempt.
    pub crash: f64,
    /// P(slot preemption) per attempt.
    pub preempt: f64,
    /// P(transient profile-read error) per attempt.
    pub read_error: f64,
    /// P(wall-clock timeout) per attempt.
    pub timeout: f64,
}

serde::impl_json_struct!(FaultPlan {
    seed,
    offline,
    crash,
    preempt,
    read_error,
    timeout,
});

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0,
            offline: 0.0,
            crash: 0.0,
            preempt: 0.0,
            read_error: 0.0,
            timeout: 0.0,
        }
    }
}

impl FaultPlan {
    /// True when no fault can ever fire.
    pub fn is_quiet(&self) -> bool {
        self.offline == 0.0
            && self.crash == 0.0
            && self.preempt == 0.0
            && self.read_error == 0.0
            && self.timeout == 0.0
    }

    /// Parses a `key=value` comma list, e.g.
    /// `"offline=0.05,preempt=0.1,seed=7"`. Unknown keys and
    /// out-of-range probabilities are errors; omitted keys default to
    /// zero (seed defaults to 0).
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("fault plan entry '{part}' is not key=value"))?;
            let prob = |v: &str| -> Result<f64, String> {
                let p: f64 = v
                    .parse()
                    .map_err(|_| format!("fault plan '{key}': bad probability '{v}'"))?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(format!("fault plan '{key}': probability {p} not in [0, 1]"));
                }
                Ok(p)
            };
            match key.trim() {
                "seed" => {
                    plan.seed = value
                        .trim()
                        .parse()
                        .map_err(|_| format!("fault plan seed: bad integer '{value}'"))?;
                }
                "offline" => plan.offline = prob(value.trim())?,
                "crash" => plan.crash = prob(value.trim())?,
                "preempt" => plan.preempt = prob(value.trim())?,
                "read_error" => plan.read_error = prob(value.trim())?,
                "timeout" => plan.timeout = prob(value.trim())?,
                other => return Err(format!("fault plan: unknown key '{other}'")),
            }
        }
        Ok(plan)
    }

    /// Canonical spec string; `parse(spec()) == self`. Used as the
    /// checkpoint fingerprint component for the fault plan.
    pub fn spec(&self) -> String {
        format!(
            "offline={},crash={},preempt={},read_error={},timeout={},seed={}",
            self.offline, self.crash, self.preempt, self.read_error, self.timeout, self.seed
        )
    }

    /// The fault stream for one `(slot, attempt)` — a pure function of
    /// the plan and its arguments.
    fn stream(&self, label: u64, attempt: u32) -> DetRng {
        DetRng::new(self.seed)
            .fork_str("chaos")
            .fork(label)
            .fork(attempt as u64)
    }

    /// Draws the fault (if any) hitting attempt `attempt` of the slot
    /// labelled `label`.
    ///
    /// Pure in `(self, label, attempt)`: the same triple always yields
    /// the same answer, on any thread, before or after a resume.
    /// Machine-offline epochs persist — an epoch starting at attempt
    /// `a` covers attempts `a .. a + len` — so the offline process is
    /// replayed from attempt 0 (attempt counts are tiny: bounded by the
    /// retry policy).
    pub fn draw(&self, label: u64, attempt: u32) -> Option<OpFault> {
        if self.is_quiet() {
            return None;
        }
        let mut offline_until = 0u64; // exclusive end of the current epoch
        for a in 0..=attempt {
            let mut rng = self.stream(label, a);
            let offline = if (a as u64) < offline_until {
                true
            } else if rng.chance(self.offline) {
                offline_until = a as u64 + 1 + rng.below(MAX_OFFLINE_EPOCH);
                true
            } else {
                false
            };
            if a < attempt {
                continue;
            }
            if offline {
                return Some(OpFault::MachineOffline);
            }
            // Independent per-attempt faults, drawn in a fixed order so
            // the stream layout is part of the format.
            if rng.chance(self.crash) {
                return Some(OpFault::RunnerCrash);
            }
            if rng.chance(self.preempt) {
                return Some(OpFault::Preempted);
            }
            if rng.chance(self.read_error) {
                return Some(OpFault::ProfileRead);
            }
            if rng.chance(self.timeout) {
                return Some(OpFault::Timeout);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn storm() -> FaultPlan {
        FaultPlan {
            seed: 7,
            offline: 0.05,
            crash: 0.03,
            preempt: 0.10,
            read_error: 0.04,
            timeout: 0.02,
        }
    }

    #[test]
    fn parse_round_trips_canonical_spec() {
        let plan = storm();
        assert_eq!(FaultPlan::parse(&plan.spec()).unwrap(), plan);
        let sparse = FaultPlan::parse("offline=0.05,preempt=0.1,seed=7").unwrap();
        assert_eq!(sparse.offline, 0.05);
        assert_eq!(sparse.preempt, 0.1);
        assert_eq!(sparse.seed, 7);
        assert_eq!(sparse.crash, 0.0);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(FaultPlan::parse("offline").is_err());
        assert!(FaultPlan::parse("gremlins=0.5").is_err());
        assert!(FaultPlan::parse("offline=1.5").is_err());
        assert!(FaultPlan::parse("offline=-0.1").is_err());
        assert!(FaultPlan::parse("seed=abc").is_err());
    }

    #[test]
    fn draw_is_pure() {
        let plan = storm();
        for label in 0..50u64 {
            for attempt in 0..6u32 {
                assert_eq!(plan.draw(label, attempt), plan.draw(label, attempt));
            }
        }
    }

    #[test]
    fn quiet_plan_never_fires() {
        let plan = FaultPlan::default();
        assert!(plan.is_quiet());
        for label in 0..100 {
            assert_eq!(plan.draw(label, 0), None);
        }
    }

    #[test]
    fn rates_are_roughly_respected() {
        let plan = FaultPlan {
            seed: 3,
            preempt: 0.2,
            ..FaultPlan::default()
        };
        let hits = (0..5000u64)
            .filter(|&l| plan.draw(l, 0) == Some(OpFault::Preempted))
            .count();
        let rate = hits as f64 / 5000.0;
        assert!((0.15..0.25).contains(&rate), "preempt rate {rate}");
    }

    #[test]
    fn offline_epochs_persist() {
        let plan = FaultPlan {
            seed: 11,
            offline: 0.2,
            ..FaultPlan::default()
        };
        // Find a slot whose first attempt starts an offline epoch longer
        // than one attempt, then check persistence.
        let mut saw_persistence = false;
        for label in 0..2000u64 {
            if plan.draw(label, 0) == Some(OpFault::MachineOffline)
                && plan.draw(label, 1) == Some(OpFault::MachineOffline)
            {
                saw_persistence = true;
                break;
            }
        }
        assert!(saw_persistence, "no multi-attempt offline epoch in 2000 slots");
    }

    #[test]
    fn fault_kinds_have_dense_indices() {
        for (i, f) in OpFault::ALL.iter().enumerate() {
            assert_eq!(f.index(), i);
        }
    }

    #[test]
    fn plan_serializes() {
        let plan = storm();
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back, plan);
    }
}

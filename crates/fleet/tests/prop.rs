//! Property-based tests for fleet screening and campaigns.

use fleet::screening::{stage_detection_probability, StaticProfile, StaticSuiteProfile};
use fleet::{FleetConfig, FleetPopulation, Stage, StageSpec};
use proptest::prelude::*;
use sdc_model::Duration;
use silicon::Processor;
use std::sync::OnceLock;
use toolchain::Suite;

fn suite() -> &'static Suite {
    static SUITE: OnceLock<Suite> = OnceLock::new();
    SUITE.get_or_init(Suite::standard)
}

fn profiles16() -> &'static StaticSuiteProfile {
    static P: OnceLock<StaticSuiteProfile> = OnceLock::new();
    P.get_or_init(|| StaticSuiteProfile::build(suite(), 16))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn detection_probability_is_a_probability(seed in any::<u64>(), secs in 1u64..600) {
        let mut rng = sdc_model::DetRng::new(seed);
        let p = silicon::population::sample_faulty_processor(
            sdc_model::CpuId(1),
            sdc_model::ArchId(2),
            &mut rng,
        );
        let spec = StageSpec {
            stage: Stage::Reinstall,
            per_testcase: Duration::from_secs(secs),
            temp_offset_c: 0.0,
            suite_stride: 1,
            age_years: 0.12,
        };
        let prob = stage_detection_probability(&p, suite(), profiles16(), &spec, 1e7);
        prop_assert!((0.0..=1.0).contains(&prob), "probability {prob}");
    }

    #[test]
    fn longer_stages_detect_at_least_as_much(seed in any::<u64>()) {
        let mut rng = sdc_model::DetRng::new(seed);
        let p = silicon::population::sample_faulty_processor(
            sdc_model::CpuId(2),
            sdc_model::ArchId(2),
            &mut rng,
        );
        let spec = |secs: u64| StageSpec {
            stage: Stage::Regular,
            per_testcase: Duration::from_secs(secs),
            temp_offset_c: 0.0,
            suite_stride: 1,
            age_years: 0.25,
        };
        let short = stage_detection_probability(&p, suite(), profiles16(), &spec(5), 1e7);
        let long = stage_detection_probability(&p, suite(), profiles16(), &spec(120), 1e7);
        prop_assert!(long >= short - 1e-12, "long {long} < short {short}");
    }

    #[test]
    fn sparse_strides_detect_no_more_than_the_full_suite(seed in any::<u64>()) {
        let mut rng = sdc_model::DetRng::new(seed);
        let p = silicon::population::sample_faulty_processor(
            sdc_model::CpuId(3),
            sdc_model::ArchId(2),
            &mut rng,
        );
        let spec = |stride: usize| StageSpec {
            stage: Stage::Datacenter,
            per_testcase: Duration::from_secs(30),
            temp_offset_c: 0.0,
            suite_stride: stride,
            age_years: 0.02,
        };
        let full = stage_detection_probability(&p, suite(), profiles16(), &spec(1), 1e7);
        let sparse = stage_detection_probability(&p, suite(), profiles16(), &spec(8), 1e7);
        prop_assert!(sparse <= full + 1e-12, "sparse {sparse} > full {full}");
    }

    #[test]
    fn healthy_processors_are_never_detected(secs in 1u64..3600) {
        let healthy = Processor::healthy(sdc_model::CpuId(4), sdc_model::ArchId(2), 1.0);
        let spec = StageSpec {
            stage: Stage::Factory,
            per_testcase: Duration::from_secs(secs),
            temp_offset_c: 10.0,
            suite_stride: 1,
            age_years: 0.0,
        };
        let p = stage_detection_probability(&healthy, suite(), profiles16(), &spec, 1e7);
        prop_assert_eq!(p, 0.0);
    }

    #[test]
    fn population_scales_with_fleet_size(size in 20_000u64..200_000, seed in any::<u64>()) {
        let pop = FleetPopulation::sample(&FleetConfig { total_cpus: size, seed, threads: 0 });
        prop_assert!(pop.total() >= size * 9 / 10);
        // Prevalence is a few per ten thousand; allow generous slack.
        let rate = pop.defective.len() as f64 / pop.total() as f64;
        prop_assert!(rate < 30e-4, "defective rate {rate}");
    }

    /// Retry/backoff supervision is transparent: whenever a slot run
    /// under a stormy fault plan eventually succeeds, its result is
    /// identical to the same work run once with no supervision at all.
    #[test]
    fn supervision_never_changes_a_successful_slots_result(
        plan_seed in any::<u64>(),
        label in any::<u64>(),
    ) {
        use fleet::{run_slot, FaultPlan, RetryPolicy, SlotError};
        use toolchain::{ExecConfig, Executor};

        let mut prng = sdc_model::DetRng::new(label ^ 0xa5a5);
        let p = silicon::population::sample_faulty_processor(
            sdc_model::CpuId(9),
            sdc_model::ArchId(2),
            &mut prng,
        );
        let tcs = suite().testcases();
        let tc = (0..tcs.len())
            .map(|o| &tcs[(label as usize % tcs.len() + o) % tcs.len()])
            .find(|tc| (tc.threads as u16) <= p.physical_cores)
            .expect("invariant violated: every processor fits some testcase");
        let cores: Vec<u16> = (0..tc.threads.max(1) as u16).collect();
        // Fresh executor and re-forked RNG per attempt: the same recipe
        // the supervised campaign uses to keep retries transparent.
        let run_once = || {
            let mut exec = Executor::new(&p, ExecConfig::default());
            let mut rng = sdc_model::DetRng::new(777).fork(label);
            exec.try_run(tc, &cores, Duration::from_secs(5), &mut rng)
        };
        let unsupervised = run_once().expect("no faults outside the supervisor");

        let plan = FaultPlan {
            seed: plan_seed,
            offline: 0.25,
            crash: 0.15,
            preempt: 0.20,
            read_error: 0.10,
            timeout: 0.10,
        };
        let policy = RetryPolicy::default();
        let slot = run_slot(&policy, &plan, label, |attempt| {
            attempt.surface_fault()?;
            run_once().map_err(SlotError::Exec)
        });
        match slot.result {
            Some(run) => prop_assert_eq!(run, unsupervised, "supervised result drifted"),
            None => prop_assert_eq!(
                slot.report.attempts,
                policy.max_attempts,
                "slot lost before exhausting its attempt budget"
            ),
        }
    }

    #[test]
    fn static_profiles_are_finite_and_nonnegative(idx in 0usize..633) {
        let tc = &suite().testcases()[idx];
        let profile = StaticProfile::of(tc, 4);
        prop_assert!(profile.power.is_finite() && profile.power >= 0.0);
        for &rate in profile.sites_per_cycle.values() {
            prop_assert!(rate.is_finite() && rate >= 0.0);
        }
        prop_assert!(profile.invalidations_per_cycle >= 0.0);
        prop_assert!(profile.tx_conflicts_per_cycle >= 0.0);
        prop_assert_eq!(profile.multithread, tc.threads > 1);
    }
}

//! Calibration check: the full-scale fleet campaign's Tables 1 and 2.
//!
//! ```text
//! cargo run --release -p fleet --example table1_calibration
//! ```

fn main() {
    let cfg = fleet::FleetConfig {
        total_cpus: 1_050_000,
        seed: 2021,
        threads: 0,
    };
    let out = fleet::run_campaign(&cfg, &toolchain::Suite::standard());
    for (l, r) in out.table1() {
        println!("{l}: {r:.3} bp");
    }
    println!("escaped: {}", out.escaped());
    for (l, r) in out.table2() {
        println!("{l}: {r:.3} bp");
    }
}

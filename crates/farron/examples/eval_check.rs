//! Calibration check: the full Figure 11 / Table 4 evaluation.
//!
//! ```text
//! cargo run --release -p farron --example eval_check
//! ```

use farron::eval::{evaluate, EvalConfig};

fn main() {
    let rows = evaluate(&EvalConfig::default());
    println!(
        "{:<7} {:>6} {:>8} {:>8} {:>8} {:>8} {:>9} {:>9} {:>9}",
        "cpu", "known", "farronC", "baseC", "farronH", "baseH", "testOv%", "ctrlOv%", "bkof s/h"
    );
    for r in rows {
        println!(
            "{:<7} {:>6} {:>8.3} {:>8.3} {:>8.2} {:>8.2} {:>9.3} {:>9.3} {:>9.3}",
            r.name,
            r.known_errors,
            r.farron_coverage,
            r.baseline_coverage,
            r.farron_round_hours,
            r.baseline_round_hours,
            r.farron_test_overhead * 100.0,
            r.farron_control_overhead * 100.0,
            r.backoff_secs_per_hour
        );
    }
}

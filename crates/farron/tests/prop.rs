//! Property-based tests for Farron's control and scheduling components.

use farron::boundary::{AdaptiveBoundary, BoundaryAction};
use farron::decommission::{decide, DecommissionDecision, ReliablePool};
use farron::priority::PriorityBook;
use farron::schedule::FarronScheduler;
use proptest::prelude::*;
use sdc_model::{CoreId, CpuId, TestcaseId};
use std::sync::OnceLock;
use toolchain::Suite;

fn suite() -> &'static Suite {
    static SUITE: OnceLock<Suite> = OnceLock::new();
    SUITE.get_or_init(Suite::standard)
}

proptest! {
    #[test]
    fn boundary_never_exceeds_its_maximum(
        initial in 45f64..58.0,
        maximum in 58f64..80.0,
        temps in prop::collection::vec(40f64..100.0, 1..300),
    ) {
        let mut b = AdaptiveBoundary::new(initial, 10, maximum);
        for t in temps {
            let _ = b.observe(t);
            prop_assert!(b.boundary_c() <= maximum + 1e-9);
            prop_assert!(b.boundary_c() >= initial - 1e-9, "boundary never lowers");
        }
    }

    #[test]
    fn boundary_backoff_only_fires_above_boundary(
        temps in prop::collection::vec(40f64..100.0, 1..200),
    ) {
        let mut b = AdaptiveBoundary::new(50.0, 8, 70.0);
        for t in temps {
            let boundary_before = b.boundary_c();
            let action = b.observe(t);
            if action == BoundaryAction::Backoff {
                // Backoff implies the temperature exceeded even the
                // *raised* boundary (plus hysteresis margin ≥ 0).
                prop_assert!(t > boundary_before, "backoff at {t} ≤ {boundary_before}");
            }
        }
    }

    #[test]
    fn decommission_rule_matches_distinct_core_count(
        cores in prop::collection::vec(0u16..48, 0..12),
    ) {
        let core_ids: Vec<CoreId> = cores.iter().map(|&c| CoreId(c)).collect();
        let distinct: std::collections::BTreeSet<u16> = cores.iter().copied().collect();
        match decide(&core_ids) {
            DecommissionDecision::MaskCores(masked) => {
                prop_assert!(distinct.len() <= 2);
                prop_assert_eq!(masked.len(), distinct.len());
            }
            DecommissionDecision::DeprecateProcessor => {
                prop_assert!(distinct.len() > 2);
            }
        }
    }

    #[test]
    fn pool_capacity_accounting_is_consistent(
        cores in prop::collection::vec(0u16..16, 0..6),
        total in 16u16..64,
    ) {
        let core_ids: Vec<CoreId> = cores.iter().map(|&c| CoreId(c)).collect();
        let mut pool = ReliablePool::new();
        let decision = decide(&core_ids);
        pool.apply(CpuId(1), &decision);
        let available = pool.available_cores(CpuId(1), total);
        match decision {
            DecommissionDecision::MaskCores(masked) => {
                prop_assert_eq!(available.len(), (total as usize) - masked.len());
                for m in &masked {
                    prop_assert!(!available.contains(m));
                }
            }
            DecommissionDecision::DeprecateProcessor => {
                prop_assert!(available.is_empty());
            }
        }
    }

    #[test]
    fn decommission_never_exceeds_capacity_and_is_idempotent(
        cores in prop::collection::vec(0u16..64, 0..12),
        total in 1u16..64,
    ) {
        let core_ids: Vec<CoreId> = cores.iter().map(|&c| CoreId(c)).collect();
        let decision = decide(&core_ids);
        let cpu = CpuId(5);
        let observe = |pool: &ReliablePool| {
            (
                pool.is_serving(cpu),
                pool.available_cores(cpu, total),
                pool.retained_capacity(cpu, total),
            )
        };
        let mut pool = ReliablePool::new();
        pool.apply(cpu, &decision);
        let once = observe(&pool);
        // Capacity bounds: the pool never invents cores.
        prop_assert!(once.1.len() <= total as usize);
        prop_assert!((0.0..=1.0).contains(&once.2), "capacity {}", once.2);
        // Masked cores are really gone.
        if let DecommissionDecision::MaskCores(masked) = &decision {
            for m in masked {
                prop_assert!(!pool.core_available(cpu, *m));
            }
        }
        // Re-applying the same decision changes nothing a scheduler can
        // observe (decommission reports are at-least-once delivered).
        pool.apply(cpu, &decision);
        prop_assert_eq!(observe(&pool), once);
        pool.apply(cpu, &decision);
        prop_assert_eq!(observe(&pool), once);
    }

    #[test]
    fn plans_always_cover_the_whole_suite(
        suspected in prop::collection::vec(0u32..633, 0..40),
        actives in prop::collection::vec(0u32..633, 0..80),
        boundary in 45f64..75.0,
    ) {
        let mut book = PriorityBook::new();
        let cpu = CpuId(9);
        for &t in &suspected {
            book.record_processor_detection(cpu.0, TestcaseId(t));
        }
        for &t in &actives {
            book.record_fleet_detection(TestcaseId(t));
        }
        let plan = FarronScheduler::default().plan(
            suite(),
            &book,
            cpu,
            &[sdc_model::Feature::Fpu, sdc_model::Feature::Alu],
            boundary,
        );
        // Every testcase appears exactly once.
        let mut ids: Vec<u32> = plan.entries.iter().map(|e| e.testcase.0).collect();
        ids.sort_unstable();
        prop_assert_eq!(ids.len(), 633);
        ids.dedup();
        prop_assert_eq!(ids.len(), 633);
        // Suspected testcases get the largest slots.
        let max_rest = plan
            .entries
            .iter()
            .filter(|e| !suspected.contains(&e.testcase.0))
            .map(|e| e.duration)
            .max();
        for e in &plan.entries {
            if suspected.contains(&e.testcase.0) {
                if let Some(rest) = max_rest {
                    prop_assert!(e.duration >= rest, "suspected slot below others");
                }
            }
        }
        // And the round stays far below the 10.55 h baseline.
        prop_assert!(plan.total_duration().as_hours_f64() < 5.0);
    }
}

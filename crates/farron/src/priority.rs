//! Testcase priorities (§7.1).
//!
//! "We designate targeted features and priorities for testcases,
//! establishing three distinct priority levels: basic, active, suspected.
//! The 'basic' priority is assigned to testcases that, despite being
//! designed for a particular feature, fail to detect faults in our
//! large-scale tests. The 'active' priority is designated for testcases
//! with proven track records of successfully identifying defective
//! features. Lastly, the 'suspected' priority is only assigned to
//! testcases that have detected errors on the core(s) of the current
//! processor."

use sdc_model::TestcaseId;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// The three priority levels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum TestPriority {
    /// Never detected anything in fleet history.
    Basic,
    /// Has detected defects somewhere in the fleet.
    Active,
    /// Has detected errors on *this* processor.
    Suspected,
}

/// Per-processor priority assignment backed by fleet-wide history.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PriorityBook {
    /// Testcases with fleet-wide detection history.
    fleet_active: HashSet<TestcaseId>,
    /// Per-processor suspected testcases (keyed by CPU id).
    suspected: HashMap<u64, HashSet<TestcaseId>>,
}

impl PriorityBook {
    /// An empty book (everything `Basic`).
    pub fn new() -> PriorityBook {
        PriorityBook::default()
    }

    /// Records that `testcase` detected an SDC somewhere in the fleet
    /// (pre-production or earlier regular tests).
    pub fn record_fleet_detection(&mut self, testcase: TestcaseId) {
        self.fleet_active.insert(testcase);
    }

    /// Records that `testcase` detected an SDC on processor `cpu`.
    pub fn record_processor_detection(&mut self, cpu: u64, testcase: TestcaseId) {
        self.suspected.entry(cpu).or_default().insert(testcase);
        self.fleet_active.insert(testcase);
    }

    /// The priority of `testcase` when testing processor `cpu`.
    pub fn priority(&self, cpu: u64, testcase: TestcaseId) -> TestPriority {
        if self
            .suspected
            .get(&cpu)
            .is_some_and(|s| s.contains(&testcase))
        {
            TestPriority::Suspected
        } else if self.fleet_active.contains(&testcase) {
            TestPriority::Active
        } else {
            TestPriority::Basic
        }
    }

    /// Number of fleet-active testcases.
    pub fn active_count(&self) -> usize {
        self.fleet_active.len()
    }

    /// Suspected testcases for `cpu`.
    pub fn suspected_of(&self, cpu: u64) -> Vec<TestcaseId> {
        let mut v: Vec<TestcaseId> = self
            .suspected
            .get(&cpu)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default();
        v.sort();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_priority_is_basic() {
        let book = PriorityBook::new();
        assert_eq!(book.priority(1, TestcaseId(5)), TestPriority::Basic);
    }

    #[test]
    fn fleet_history_promotes_to_active() {
        let mut book = PriorityBook::new();
        book.record_fleet_detection(TestcaseId(5));
        assert_eq!(book.priority(1, TestcaseId(5)), TestPriority::Active);
        assert_eq!(book.priority(2, TestcaseId(5)), TestPriority::Active);
    }

    #[test]
    fn processor_history_promotes_to_suspected_locally() {
        let mut book = PriorityBook::new();
        book.record_processor_detection(1, TestcaseId(7));
        assert_eq!(book.priority(1, TestcaseId(7)), TestPriority::Suspected);
        // Other processors only see it as fleet-active.
        assert_eq!(book.priority(2, TestcaseId(7)), TestPriority::Active);
        assert_eq!(book.suspected_of(1), vec![TestcaseId(7)]);
        assert!(book.suspected_of(2).is_empty());
    }

    #[test]
    fn priorities_are_ordered() {
        assert!(TestPriority::Suspected > TestPriority::Active);
        assert!(TestPriority::Active > TestPriority::Basic);
    }
}

//! Chaos-aware test rounds: interrupted windows are re-queued.
//!
//! Farron's regular tests run *opportunistically on production machines*
//! (§5), so a test window can be preempted by workload pressure, lose
//! its runner, or hit a transient profile-read error mid-round. This
//! module runs a [`TestPlan`] the way the deployed scheduler would:
//! every entry gets its own RNG stream forked from `(round root, entry
//! index)` — never from the sequential position in the round — so an
//! entry that is interrupted and re-queued at the end of the round
//! produces the *identical* [`toolchain::TestcaseRun`] it would have
//! produced in place, and the report's runs stay in plan order no
//! matter how the round was shuffled by faults.

use fleet::chaos::{FaultPlan, OpFault};
use fleet::supervisor::{AttritionStats, RetryPolicy, SlotError, SlotReport};
use sdc_model::DetRng;
use silicon::Processor;
use std::collections::VecDeque;
use std::sync::Arc;
use toolchain::{ExecConfig, Executor, ProfileCache, Suite, TestPlan, TestReport};

/// The fault-plan slot label of entry `idx` in the round labelled
/// `round_label`. Golden-ratio mixing keeps labels distinct per entry
/// without colliding across rounds.
fn slot_label(round_label: u64, idx: usize) -> u64 {
    round_label ^ (idx as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

/// A round label for the fault plan, derived from a processor name, a
/// round index, and a stream tag (distinct plans running in the same
/// round — Farron vs. baseline — use distinct tags). FNV-1a over the
/// name, then multiplicative mixing, so labels never collide by
/// accident across the evaluation grid.
pub fn round_label(name: &str, round: u64, stream: u64) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^ round.wrapping_mul(0x9e37_79b9_7f4a_7c15)
        ^ stream.wrapping_mul(0xff51_afd7_ed55_8ccd)
}

/// The outcome of one chaos-exposed round.
#[derive(Debug)]
pub struct RequeueReport {
    /// Completed runs, in *plan* order (lost windows omitted).
    pub report: TestReport,
    /// Plan indices of windows lost after exhausting retries.
    pub lost: Vec<usize>,
    /// Per-window supervision accounting, aggregated.
    pub attrition: AttritionStats,
}

/// Runs `plan` against `processor`, observing interrupted test windows
/// and re-queuing them at the end of the round.
///
/// Faults are drawn from `chaos` per `(slot label, attempt)`; a window
/// hit by [`OpFault::ProfileRead`] routes through the executor's
/// profile-fault hook so the real fallible read path is exercised
/// (note: a profile already resident in `cache` is not re-read, so the
/// injected read error is absorbed — exactly as in production, where
/// only cold reads touch storage). All other faults skip the window and
/// re-queue it. Each window's RNG is `root.fork(slot label)`, re-forked
/// fresh on every attempt: supervision is transparent to results.
#[allow(clippy::too_many_arguments)]
pub fn run_plan_requeue(
    processor: &Processor,
    suite: &Suite,
    plan: &TestPlan,
    cfg: ExecConfig,
    root: &DetRng,
    cache: Option<Arc<ProfileCache>>,
    round_label: u64,
    chaos: &FaultPlan,
    policy: &RetryPolicy,
) -> RequeueReport {
    let cores: Vec<u16> = (0..processor.physical_cores).collect();
    let n = plan.entries.len();
    let mut runs: Vec<Option<toolchain::TestcaseRun>> = (0..n).map(|_| None).collect();
    let mut reports: Vec<SlotReport> = (0..n).map(|_| SlotReport::default()).collect();
    let mut queue: VecDeque<(usize, u32)> = (0..n).map(|i| (i, 0)).collect();

    while let Some((idx, attempt)) = queue.pop_front() {
        let label = slot_label(round_label, idx);
        let slot = &mut reports[idx];
        slot.attempts += 1;
        let injected = chaos.draw(label, attempt);
        match injected {
            Some(OpFault::ProfileRead) | None => {
                // A fresh executor per window: thermal and clock state
                // must not leak between windows, or re-queue order would
                // change results.
                let mut executor = Executor::new(processor, cfg);
                executor.set_cache(cache.clone());
                if injected.is_some() {
                    // Fail the next (cold) profile read through the real
                    // executor path.
                    executor.set_profile_fault_hook(Some(Arc::new(|_, _| true)));
                }
                let entry = &plan.entries[idx];
                let tc = suite.get(entry.testcase);
                let mut rng = root.fork(label);
                let result = executor.try_run(tc, &cores, entry.duration, &mut rng);
                match result {
                    Ok(run) => runs[idx] = Some(run),
                    Err(e) => {
                        let err = SlotError::Exec(e);
                        if let Some(kind) = err.fault_kind() {
                            slot.faults_by_kind[kind.index()] += 1;
                        }
                        if err.is_retryable() && attempt + 1 < policy.max_attempts {
                            slot.backoff_secs += policy.backoff_secs(chaos, label, attempt);
                            queue.push_back((idx, attempt + 1));
                        } else {
                            slot.lost = Some(err);
                        }
                    }
                }
            }
            Some(fault) => {
                slot.faults_by_kind[fault.index()] += 1;
                if attempt + 1 < policy.max_attempts {
                    slot.backoff_secs += policy.backoff_secs(chaos, label, attempt);
                    queue.push_back((idx, attempt + 1));
                } else {
                    slot.lost = Some(SlotError::Fault(fault));
                }
            }
        }
    }

    let mut attrition = AttritionStats::default();
    let mut lost = Vec::new();
    for (idx, report) in reports.iter().enumerate() {
        let completed = runs[idx].is_some();
        attrition.record(completed, report);
        if !completed {
            lost.push(idx);
        }
    }
    RequeueReport {
        report: TestReport {
            cpu: processor.id,
            runs: runs.into_iter().flatten().collect(),
        },
        lost,
        attrition,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdc_model::{Duration, TestcaseId};
    use silicon::catalog;
    use toolchain::PlanEntry;

    fn mini_plan(_suite: &Suite) -> TestPlan {
        let picks = [0u32, 140, 300, 450, 560];
        TestPlan {
            entries: picks
                .iter()
                .map(|&i| PlanEntry {
                    testcase: TestcaseId(i),
                    duration: Duration::from_secs(20),
                })
                .collect(),
        }
    }

    fn storm() -> FaultPlan {
        FaultPlan {
            seed: 13,
            offline: 0.10,
            crash: 0.05,
            preempt: 0.15,
            read_error: 0.10,
            timeout: 0.05,
        }
    }

    #[test]
    fn quiet_round_matches_plain_per_entry_execution() {
        let suite = Suite::standard();
        let simd1 = catalog::by_name("SIMD1").unwrap().processor;
        let plan = mini_plan(&suite);
        let root = DetRng::new(55);
        let out = run_plan_requeue(
            &simd1,
            &suite,
            &plan,
            ExecConfig::default(),
            &root,
            None,
            0xabc,
            &FaultPlan::default(),
            &RetryPolicy::default(),
        );
        assert!(out.lost.is_empty());
        assert_eq!(out.report.runs.len(), plan.entries.len());
        assert_eq!(out.attrition.retries, 0);
        assert_eq!(out.attrition.coverage(), 1.0);
        // Plan order is preserved.
        for (run, entry) in out.report.runs.iter().zip(&plan.entries) {
            assert_eq!(run.testcase, entry.testcase);
        }
    }

    #[test]
    fn stormy_round_is_deterministic_and_requeues() {
        let suite = Suite::standard();
        let simd1 = catalog::by_name("SIMD1").unwrap().processor;
        let plan = mini_plan(&suite);
        let root = DetRng::new(55);
        let run = || {
            run_plan_requeue(
                &simd1,
                &suite,
                &plan,
                ExecConfig::default(),
                &root,
                None,
                0xabc,
                &storm(),
                &RetryPolicy::default(),
            )
        };
        let a = run();
        let b = run();
        assert_eq!(a.attrition, b.attrition);
        assert_eq!(a.lost, b.lost);
        assert_eq!(a.report.runs.len(), b.report.runs.len());
        for (ra, rb) in a.report.runs.iter().zip(&b.report.runs) {
            assert_eq!(ra.testcase, rb.testcase);
            assert_eq!(ra.error_count, rb.error_count);
        }
    }

    #[test]
    fn empty_plan_round_is_a_clean_noop() {
        let suite = Suite::standard();
        let simd1 = catalog::by_name("SIMD1").unwrap().processor;
        let out = run_plan_requeue(
            &simd1,
            &suite,
            &TestPlan { entries: vec![] },
            ExecConfig::default(),
            &DetRng::new(55),
            None,
            0xabc,
            &storm(),
            &RetryPolicy::default(),
        );
        assert!(out.report.runs.is_empty());
        assert!(out.lost.is_empty());
        assert_eq!(out.attrition.retries, 0);
        assert_eq!(out.attrition.total_faults(), 0);
        // An empty round covers everything it was asked to cover.
        assert_eq!(out.attrition.coverage(), 1.0);
    }

    #[test]
    fn zero_duration_window_completes_without_panicking() {
        let suite = Suite::standard();
        let simd1 = catalog::by_name("SIMD1").unwrap().processor;
        let plan = TestPlan {
            entries: vec![PlanEntry {
                testcase: TestcaseId(0),
                duration: Duration::from_secs(0),
            }],
        };
        let out = run_plan_requeue(
            &simd1,
            &suite,
            &plan,
            ExecConfig::default(),
            &DetRng::new(55),
            None,
            0xabc,
            &FaultPlan::default(),
            &RetryPolicy::default(),
        );
        assert!(out.lost.is_empty());
        assert_eq!(out.report.runs.len(), 1);
        assert!(out.report.runs[0].records.is_empty());
    }

    #[test]
    fn interruption_at_the_last_slot_is_requeued_transparently() {
        // A fault plan crafted (by seed search) to hit ONLY the round's
        // final window on its first attempt: the retry lands after every
        // other window has drained, the exact situation where a
        // position-derived RNG would silently shift results.
        let suite = Suite::standard();
        let simd1 = catalog::by_name("SIMD1").unwrap().processor;
        let plan = mini_plan(&suite);
        let last = plan.entries.len() - 1;
        let policy = RetryPolicy::default();
        let chaos = (0..20_000u64)
            .map(|seed| FaultPlan {
                seed,
                preempt: 0.05,
                ..FaultPlan::default()
            })
            .find(|fp| {
                (0..plan.entries.len()).all(|idx| {
                    let label = slot_label(0xabc, idx);
                    (0..policy.max_attempts).all(|attempt| {
                        let faulted = fp.draw(label, attempt).is_some();
                        // Last slot faults on attempt 0 only; the rest
                        // never fault.
                        faulted == (idx == last && attempt == 0)
                    })
                })
            })
            .expect("some seed interrupts exactly the last slot");
        let root = DetRng::new(55);
        let quiet = run_plan_requeue(
            &simd1,
            &suite,
            &plan,
            ExecConfig::default(),
            &root,
            None,
            0xabc,
            &FaultPlan::default(),
            &RetryPolicy::default(),
        );
        let stormy = run_plan_requeue(
            &simd1,
            &suite,
            &plan,
            ExecConfig::default(),
            &root,
            None,
            0xabc,
            &chaos,
            &policy,
        );
        assert!(stormy.lost.is_empty(), "one retry wins the window back");
        assert_eq!(stormy.attrition.retries, 1);
        assert_eq!(stormy.attrition.total_faults(), 1);
        assert_eq!(stormy.report.runs.len(), quiet.report.runs.len());
        for (idx, (q, s)) in quiet.report.runs.iter().zip(&stormy.report.runs).enumerate() {
            assert_eq!(q.testcase, s.testcase, "window {idx}");
            assert_eq!(q.error_count, s.error_count, "window {idx}");
            assert_eq!(q.records, s.records, "window {idx}");
        }
    }

    #[test]
    fn interruption_is_transparent_to_completed_windows() {
        // The same round under a quiet plan and under a storm must agree
        // on every window the storm eventually completed.
        let suite = Suite::standard();
        let simd1 = catalog::by_name("SIMD1").unwrap().processor;
        let plan = mini_plan(&suite);
        let root = DetRng::new(55);
        let quiet = run_plan_requeue(
            &simd1,
            &suite,
            &plan,
            ExecConfig::default(),
            &root,
            None,
            0xabc,
            &FaultPlan::default(),
            &RetryPolicy::default(),
        );
        let stormy = run_plan_requeue(
            &simd1,
            &suite,
            &plan,
            ExecConfig::default(),
            &root,
            None,
            0xabc,
            &storm(),
            &RetryPolicy::default(),
        );
        let mut qi = 0usize;
        for (idx, _) in plan.entries.iter().enumerate() {
            let q = &quiet.report.runs[idx];
            if stormy.lost.contains(&idx) {
                continue;
            }
            let s = &stormy.report.runs[qi];
            qi += 1;
            assert_eq!(q.testcase, s.testcase);
            assert_eq!(q.error_count, s.error_count, "window {idx}");
            assert_eq!(q.records, s.records, "window {idx}");
        }
        assert!(
            stormy.attrition.total_faults() > 0,
            "storm must actually interrupt something"
        );
    }
}

//! The Farron workflow state machine (Figure 10).
//!
//! A processor is in one of three states: **pre-production** (adequate
//! testing before deployment), **online** (application running on proven
//! cores under triggering-condition control, with regular tests), or
//! **suspected** (a regular test failed; targeted in-depth testing and a
//! decommission decision follow).

use crate::decommission::{decide, DecommissionDecision};
use sdc_model::CoreId;
use serde::{Deserialize, Serialize};

/// The three workflow states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FarronState {
    /// Adequate pre-production testing.
    PreProduction,
    /// Serving applications; regular tests run for long-term protection.
    Online,
    /// A test failed; in-depth targeted testing in progress.
    Suspected,
}

/// Events that drive transitions.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// Pre-production testing completed clean.
    PreProductionPassed,
    /// Pre-production testing detected SDCs on these cores.
    PreProductionFailed(Vec<CoreId>),
    /// A regular (online) test detected SDCs.
    RegularTestFailed,
    /// Targeted testing finished; these cores are confirmed defective.
    TargetedTestCompleted(Vec<CoreId>),
}

/// Result of a transition.
#[derive(Debug, Clone, PartialEq)]
pub enum Transition {
    /// Moved to a new state.
    Moved(FarronState),
    /// Terminal: the processor is deprecated.
    Deprecated,
    /// The event is invalid in the current state.
    Invalid,
}

/// The per-processor state machine.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StateMachine {
    state: FarronState,
    masked_cores: Vec<CoreId>,
}

impl Default for StateMachine {
    fn default() -> Self {
        StateMachine::new()
    }
}

impl StateMachine {
    /// A new processor entering the workflow.
    pub fn new() -> StateMachine {
        StateMachine {
            state: FarronState::PreProduction,
            masked_cores: Vec::new(),
        }
    }

    /// Current state.
    pub fn state(&self) -> FarronState {
        self.state
    }

    /// Cores masked so far.
    pub fn masked_cores(&self) -> &[CoreId] {
        &self.masked_cores
    }

    /// Applies an event.
    pub fn handle(&mut self, event: Event) -> Transition {
        match (self.state, event) {
            (FarronState::PreProduction, Event::PreProductionPassed) => {
                self.state = FarronState::Online;
                Transition::Moved(FarronState::Online)
            }
            (FarronState::PreProduction, Event::PreProductionFailed(cores)) => {
                self.resolve_defects(cores)
            }
            (FarronState::Online, Event::RegularTestFailed) => {
                self.state = FarronState::Suspected;
                Transition::Moved(FarronState::Suspected)
            }
            (FarronState::Suspected, Event::TargetedTestCompleted(cores)) => {
                self.resolve_defects(cores)
            }
            _ => Transition::Invalid,
        }
    }

    /// Applies the decommission rule and returns to Online (or deprecates).
    fn resolve_defects(&mut self, mut cores: Vec<CoreId>) -> Transition {
        cores.extend(self.masked_cores.iter().copied());
        match decide(&cores) {
            DecommissionDecision::MaskCores(masked) => {
                self.masked_cores = masked;
                self.state = FarronState::Online;
                Transition::Moved(FarronState::Online)
            }
            DecommissionDecision::DeprecateProcessor => Transition::Deprecated,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_lifecycle() {
        let mut sm = StateMachine::new();
        assert_eq!(sm.state(), FarronState::PreProduction);
        assert_eq!(
            sm.handle(Event::PreProductionPassed),
            Transition::Moved(FarronState::Online)
        );
        assert_eq!(sm.state(), FarronState::Online);
    }

    #[test]
    fn regular_failure_leads_to_targeted_testing_and_masking() {
        let mut sm = StateMachine::new();
        sm.handle(Event::PreProductionPassed);
        assert_eq!(
            sm.handle(Event::RegularTestFailed),
            Transition::Moved(FarronState::Suspected)
        );
        assert_eq!(
            sm.handle(Event::TargetedTestCompleted(vec![CoreId(5)])),
            Transition::Moved(FarronState::Online)
        );
        assert_eq!(sm.masked_cores(), &[CoreId(5)]);
    }

    #[test]
    fn accumulated_defects_deprecate() {
        let mut sm = StateMachine::new();
        sm.handle(Event::PreProductionPassed);
        sm.handle(Event::RegularTestFailed);
        sm.handle(Event::TargetedTestCompleted(vec![CoreId(1), CoreId(2)]));
        assert_eq!(sm.masked_cores().len(), 2);
        // A third defective core crosses the >2 rule.
        sm.handle(Event::RegularTestFailed);
        assert_eq!(
            sm.handle(Event::TargetedTestCompleted(vec![CoreId(3)])),
            Transition::Deprecated
        );
    }

    #[test]
    fn pre_production_failure_can_mask_and_go_online() {
        let mut sm = StateMachine::new();
        assert_eq!(
            sm.handle(Event::PreProductionFailed(vec![CoreId(0)])),
            Transition::Moved(FarronState::Online)
        );
        assert_eq!(sm.masked_cores(), &[CoreId(0)]);
    }

    #[test]
    fn invalid_events_are_rejected() {
        let mut sm = StateMachine::new();
        assert_eq!(sm.handle(Event::RegularTestFailed), Transition::Invalid);
        sm.handle(Event::PreProductionPassed);
        assert_eq!(sm.handle(Event::PreProductionPassed), Transition::Invalid);
        assert_eq!(
            sm.handle(Event::TargetedTestCompleted(vec![])),
            Transition::Invalid
        );
    }
}

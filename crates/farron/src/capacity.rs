//! Fleet-capacity accounting for decommission policies (§3.2).
//!
//! "Large companies decommission the whole faulty processor or isolate
//! the whole machine no matter which of its cores are identified as
//! faulty … it could be worthwhile to investigate the feasibility of
//! continuing to utilize the unaffected cores within a faulty processor"
//! (the Hyrax fail-in-place direction the paper cites). This module
//! computes how much core capacity each policy retains over a set of
//! detected-faulty processors.

use crate::decommission::{decide, DecommissionDecision};
use silicon::Processor;

/// Capacity retained by one decommission policy.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CapacityReport {
    /// Faulty processors considered.
    pub processors: usize,
    /// Total physical cores on them.
    pub total_cores: u64,
    /// Cores kept serving under whole-processor decommission (always 0).
    pub whole_processor_retained: u64,
    /// Cores kept serving under fine-grained decommission.
    pub fine_grained_retained: u64,
    /// Processors deprecated even under the fine-grained policy (> 2
    /// defective cores).
    pub deprecated_anyway: usize,
}

impl CapacityReport {
    /// Fraction of faulty-processor capacity the fine-grained policy
    /// saves.
    pub fn saved_fraction(&self) -> f64 {
        if self.total_cores == 0 {
            0.0
        } else {
            self.fine_grained_retained as f64 / self.total_cores as f64
        }
    }
}

/// Evaluates both policies over `faulty` processors, using each
/// processor's *detected* defective cores.
pub fn capacity_report<'a>(faulty: impl IntoIterator<Item = &'a Processor>) -> CapacityReport {
    let mut report = CapacityReport::default();
    for p in faulty {
        report.processors += 1;
        report.total_cores += p.physical_cores as u64;
        match decide(&p.defective_cores()) {
            DecommissionDecision::MaskCores(masked) => {
                report.fine_grained_retained += p.physical_cores as u64 - masked.len() as u64;
            }
            DecommissionDecision::DeprecateProcessor => {
                report.deprecated_anyway += 1;
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use silicon::catalog;

    #[test]
    fn deep_study_set_capacity() {
        let set = catalog::deep_study_set();
        let processors: Vec<&Processor> = set.iter().map(|c| &c.processor).collect();
        let report = capacity_report(processors.iter().copied());
        assert_eq!(report.processors, 27);
        assert_eq!(report.whole_processor_retained, 0);
        // Roughly half the set is single-core-defective (Observation 4):
        // the fine-grained policy retains a large majority of their cores.
        assert!(
            report.saved_fraction() > 0.35,
            "fine-grained policy saves {:.0}% of faulty capacity",
            report.saved_fraction() * 100.0
        );
        // All-core-defective processors are deprecated under either policy.
        assert!(report.deprecated_anyway > 5);
        assert!(report.deprecated_anyway < 27);
    }

    #[test]
    fn single_core_defect_keeps_nearly_everything() {
        let fpu1 = catalog::by_name("FPU1").unwrap().processor;
        let report = capacity_report([&fpu1]);
        assert_eq!(report.total_cores, fpu1.physical_cores as u64);
        assert_eq!(report.fine_grained_retained, fpu1.physical_cores as u64 - 1);
        assert_eq!(report.deprecated_anyway, 0);
    }

    #[test]
    fn empty_input_is_zero() {
        let report = capacity_report(std::iter::empty());
        assert_eq!(report, CapacityReport::default());
        assert_eq!(report.saved_fraction(), 0.0);
    }
}

//! The Farron evaluation (§7.2): Figure 11 and Table 4.
//!
//! Per faulty processor:
//!
//! 1. **Known errors** come from an adequate reference study (long
//!    burn-in testing of every candidate testcase) — the paper's "total
//!    known errors in the faulty processor".
//! 2. The reference results seed the [`PriorityBook`] (adequate
//!    pre-production testing accumulates the suspected set, §7.1).
//! 3. One **Farron regular round** (prioritized slots, burn-in
//!    environment) and one **baseline round** (equal 60 s slots, no
//!    burn-in) each measure coverage = detected / known (Figure 11).
//! 4. Overheads (Table 4): testing = round duration over the three-month
//!    cadence; control = the online simulation's backoff fraction.

use crate::baseline::Baseline;
use crate::online::{simulate_online, AppProfile, OnlineConfig};
use crate::priority::PriorityBook;
use crate::requeue::run_plan_requeue;
use crate::schedule::FarronScheduler;
use analysis::study::{run_case_cached, StudyConfig};
use fleet::chaos::FaultPlan;
use fleet::checkpoint::{CheckpointError, CheckpointStore, Fingerprint};
use fleet::screening::SuiteProfileCache;
use fleet::supervisor::{AttritionStats, RetryPolicy};
use sdc_model::{DetRng, Duration, Feature, TestcaseId};
use serde::{Deserialize, Serialize};
use silicon::catalog;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use toolchain::{framework, ExecConfig, ProfileCache, Suite};

/// Evaluation parameters.
#[derive(Debug, Clone, Copy)]
pub struct EvalConfig {
    /// Reference ("adequate") per-testcase duration.
    pub reference_per_testcase: Duration,
    /// Seed.
    pub seed: u64,
    /// Online simulation length for control overhead.
    pub online_duration: Duration,
    /// Independent regular rounds averaged into each coverage figure.
    pub rounds: usize,
    /// Worker threads across evaluated processors (`0` = available
    /// parallelism). Each processor's randomness is forked from its name,
    /// so rows are identical for every value.
    pub threads: usize,
}

impl Default for EvalConfig {
    fn default() -> Self {
        EvalConfig {
            reference_per_testcase: Duration::from_mins(10),
            seed: 711,
            online_duration: Duration::from_hours(6),
            rounds: 4,
            threads: 0,
        }
    }
}

/// One Figure 11 / Table 4 row.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalRow {
    /// Processor name.
    pub name: &'static str,
    /// Known errors (failing testcases in the reference study).
    pub known_errors: usize,
    /// Farron one-round coverage (Figure 11).
    pub farron_coverage: f64,
    /// Baseline one-round coverage (Figure 11).
    pub baseline_coverage: f64,
    /// Farron round duration, hours (paper average: 1.02 h).
    pub farron_round_hours: f64,
    /// Baseline round duration, hours (paper: 10.55 h).
    pub baseline_round_hours: f64,
    /// Farron testing overhead (Table 4 "Test").
    pub farron_test_overhead: f64,
    /// Farron temperature-control overhead (Table 4 "Control").
    pub farron_control_overhead: f64,
    /// Baseline testing overhead (Table 4 baseline column, 0.488%).
    pub baseline_test_overhead: f64,
    /// Backoff seconds per hour in the online simulation.
    pub backoff_secs_per_hour: f64,
    /// Online SDC events under Farron protection (paper: none).
    pub protected_sdc_events: u64,
}

/// The six processors of Figure 11 / Table 4.
pub const EVAL_NAMES: [&str; 6] = ["MIX1", "SIMD1", "FPU1", "FPU2", "CNST1", "CNST2"];

/// The burn-in environment of Farron's regular tests: every core busy,
/// package preheated ("Farron initiates the testing by running burn-in
/// workloads and tests every core in a processor simultaneously").
fn burn_in_exec() -> ExecConfig {
    ExecConfig {
        preheat_c: Some(58.0),
        stress_idle_cores: true,
        ..ExecConfig::default()
    }
}

/// Shared per-evaluation context: the suite, both schedulers, and the
/// result-transparent profile caches.
struct EvalCtx {
    suite: Suite,
    baseline: Baseline,
    scheduler: FarronScheduler,
    suite_cache: SuiteProfileCache,
    unit_cache: Arc<ProfileCache>,
}

impl EvalCtx {
    fn fresh() -> EvalCtx {
        EvalCtx {
            suite: Suite::standard(),
            baseline: Baseline::default(),
            scheduler: FarronScheduler::default(),
            suite_cache: SuiteProfileCache::new(),
            unit_cache: ProfileCache::shared(),
        }
    }
}

/// How the regular rounds of one evaluation row execute.
#[derive(Clone, Copy)]
enum RoundMode<'a> {
    /// In-order execution of every window — the seed-pinned Figure 11
    /// path; its numbers must never change.
    Plain,
    /// Chaos-exposed execution: faults interrupt windows, interrupted
    /// windows are re-queued at the end of the round
    /// ([`run_plan_requeue`]).
    Chaos {
        plan: &'a FaultPlan,
        policy: &'a RetryPolicy,
    },
}

/// Evaluates one processor row. Pure in `(cfg, name, mode)`: randomness
/// is forked from the name, caches only memoize pure functions.
fn eval_row(
    cfg: &EvalConfig,
    name: &'static str,
    mode: RoundMode<'_>,
    ctx: &EvalCtx,
) -> (EvalRow, AttritionStats) {
    let suite = &ctx.suite;
    let case = catalog::by_name(name).expect("catalog name");
    let processor = &case.processor;
    let n_cores = processor.physical_cores as usize;
    let profiles = ctx.suite_cache.get_or_build(suite, n_cores, cfg.threads);

    // 1. Adequate reference study → known errors.
    let reference = run_case_cached(
        &case,
        suite,
        &profiles,
        &StudyConfig {
            per_testcase: cfg.reference_per_testcase,
            seed: cfg.seed,
            max_candidates: None,
            exec: burn_in_exec(),
            threads: 1,
        },
        Some(Arc::clone(&ctx.unit_cache)),
    );
    let known: Vec<TestcaseId> = reference.failing.clone();

    // 2. Seed priorities from the adequate testing.
    let mut book = PriorityBook::new();
    for &id in &known {
        book.record_processor_detection(processor.id.0, id);
    }
    // The protected application engages the implicated features.
    let app_features: Vec<Feature> = {
        let mut v: Vec<Feature> = known.iter().map(|&id| suite.get(id).feature).collect();
        v.sort();
        v.dedup();
        if v.is_empty() {
            vec![Feature::Alu]
        } else {
            v
        }
    };

    // 3. Regular rounds, averaged: Farron (prioritized + burn-in)
    // vs. baseline (equal slots, no burn-in).
    let boundary_c = 58.0;
    let farron_plan = ctx
        .scheduler
        .plan(suite, &book, processor.id, &app_features, boundary_c);
    let baseline_plan = ctx.baseline.plan(suite);
    let known_n = known.len().max(1);
    let mut farron_cov_sum = 0.0;
    let mut baseline_cov_sum = 0.0;
    let mut attrition = AttritionStats::default();
    let coverage = |report: &toolchain::TestReport| {
        report
            .failing_testcases()
            .iter()
            .filter(|t| known.contains(t))
            .count() as f64
            / known_n as f64
    };
    for round in 0..cfg.rounds.max(1) {
        match mode {
            RoundMode::Plain => {
                let mut rng = DetRng::new(cfg.seed + round as u64).fork_str(name);
                let farron_report = framework::run_plan_cached(
                    processor,
                    suite,
                    &farron_plan,
                    burn_in_exec(),
                    &mut rng,
                    Some(Arc::clone(&ctx.unit_cache)),
                );
                farron_cov_sum += coverage(&farron_report);
                let mut rng_b = DetRng::new(cfg.seed ^ 0xb ^ round as u64).fork_str(name);
                let baseline_report = framework::run_plan_cached(
                    processor,
                    suite,
                    &baseline_plan,
                    ExecConfig::default(),
                    &mut rng_b,
                    Some(Arc::clone(&ctx.unit_cache)),
                );
                baseline_cov_sum += coverage(&baseline_report);
            }
            RoundMode::Chaos { plan, policy } => {
                let root = DetRng::new(cfg.seed + round as u64).fork_str(name);
                let farron_out = run_plan_requeue(
                    processor,
                    suite,
                    &farron_plan,
                    burn_in_exec(),
                    &root,
                    Some(Arc::clone(&ctx.unit_cache)),
                    crate::requeue::round_label(name, round as u64, 0),
                    plan,
                    policy,
                );
                farron_cov_sum += coverage(&farron_out.report);
                attrition.merge(&farron_out.attrition);
                let root_b = DetRng::new(cfg.seed ^ 0xb ^ round as u64).fork_str(name);
                let baseline_out = run_plan_requeue(
                    processor,
                    suite,
                    &baseline_plan,
                    ExecConfig::default(),
                    &root_b,
                    Some(Arc::clone(&ctx.unit_cache)),
                    crate::requeue::round_label(name, round as u64, 1),
                    plan,
                    policy,
                );
                baseline_cov_sum += coverage(&baseline_out.report);
                attrition.merge(&baseline_out.attrition);
            }
        }
    }
    let rounds = cfg.rounds.max(1) as f64;

    // 4. Online control overhead: the impacted workload simulated with
    // the toolchain (§7.2) at production-like utilization; among the
    // known failing testcases pick the coolest profile (applications
    // are diluted relative to instruction loops).
    let app_testcase = known
        .iter()
        .copied()
        .max_by(|&a, &b| {
            let pa = fleet::screening::StaticProfile::of(suite.get(a), n_cores).power;
            let pb = fleet::screening::StaticProfile::of(suite.get(b), n_cores).power;
            pa.partial_cmp(&pb).expect("finite power")
        })
        .unwrap_or(TestcaseId(0));
    // Run the hottest impacted workload at moderate utilization so the
    // die sits near the learned boundary; occasional request storms
    // (spikes) push past it and trigger the rare backoffs of Table 4.
    let app = AppProfile {
        testcase: app_testcase,
        utilization: 0.25,
        burst_amplitude: 0.12,
        burst_period: Duration::from_secs(120),
        spike_prob: 0.002,
    };
    let cores: Vec<u16> = (0..processor.physical_cores).collect();
    let mut rng_o = DetRng::new(cfg.seed).fork_str(name);
    let online = simulate_online(
        processor,
        suite,
        &app,
        &cores,
        &OnlineConfig {
            duration: cfg.online_duration,
            ..OnlineConfig::default()
        },
        &mut rng_o,
    );

    let cadence_secs = ctx.baseline.cadence.as_secs_f64();
    let row = EvalRow {
        name,
        known_errors: known.len(),
        farron_coverage: farron_cov_sum / rounds,
        baseline_coverage: baseline_cov_sum / rounds,
        farron_round_hours: farron_plan.total_duration().as_hours_f64(),
        baseline_round_hours: baseline_plan.total_duration().as_hours_f64(),
        farron_test_overhead: farron_plan.total_duration().as_secs_f64() / cadence_secs,
        farron_control_overhead: online.backoff_fraction,
        baseline_test_overhead: ctx.baseline.test_overhead(suite),
        backoff_secs_per_hour: online.backoff_secs_per_hour,
        protected_sdc_events: online.sdc_events,
    };
    (row, attrition)
}

/// Runs the full evaluation.
///
/// Processors are sharded across `cfg.threads` workers; each one's
/// randomness is forked from its name and the shared caches are
/// result-transparent, so the rows are identical for every thread count.
pub fn evaluate(cfg: &EvalConfig) -> Vec<EvalRow> {
    let ctx = EvalCtx::fresh();
    fleet::parallel::run_indexed(&EVAL_NAMES, cfg.threads, |_, &name| {
        eval_row(cfg, name, RoundMode::Plain, &ctx).0
    })
}

/// Runs the evaluation with every regular round exposed to `plan`:
/// interrupted test windows are re-queued ([`run_plan_requeue`]), lost
/// windows are dropped from coverage, and the aggregated attrition is
/// returned alongside the rows.
///
/// Note the quiet-plan rows differ from [`evaluate`]'s: the re-queue
/// path forks each window's RNG from its plan index (so windows can be
/// re-ordered), while the plain path draws sequentially. Within the
/// chaos path, supervision is transparent — see the requeue tests.
pub fn evaluate_chaos(
    cfg: &EvalConfig,
    plan: &FaultPlan,
    policy: &RetryPolicy,
) -> (Vec<EvalRow>, AttritionStats) {
    let ctx = EvalCtx::fresh();
    let rows = fleet::parallel::run_indexed(&EVAL_NAMES, cfg.threads, |_, &name| {
        eval_row(cfg, name, RoundMode::Chaos { plan, policy }, &ctx)
    });
    let mut total = AttritionStats::default();
    let mut out = Vec::with_capacity(rows.len());
    for (row, att) in rows {
        total.merge(&att);
        out.push(row);
    }
    (out, total)
}

/// Format version of the evaluation row checkpoint.
pub const EVAL_FORMAT_VERSION: u32 = 1;

/// One completed evaluation row plus its attrition accounting, in a
/// serializable shape (`name` travels as a string and is mapped back to
/// the [`EVAL_NAMES`] entry on restore).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvalRowRecord {
    /// Processor name (must be one of [`EVAL_NAMES`]).
    pub name: String,
    /// [`EvalRow::known_errors`].
    pub known_errors: u64,
    /// [`EvalRow::farron_coverage`].
    pub farron_coverage: f64,
    /// [`EvalRow::baseline_coverage`].
    pub baseline_coverage: f64,
    /// [`EvalRow::farron_round_hours`].
    pub farron_round_hours: f64,
    /// [`EvalRow::baseline_round_hours`].
    pub baseline_round_hours: f64,
    /// [`EvalRow::farron_test_overhead`].
    pub farron_test_overhead: f64,
    /// [`EvalRow::farron_control_overhead`].
    pub farron_control_overhead: f64,
    /// [`EvalRow::baseline_test_overhead`].
    pub baseline_test_overhead: f64,
    /// [`EvalRow::backoff_secs_per_hour`].
    pub backoff_secs_per_hour: f64,
    /// [`EvalRow::protected_sdc_events`].
    pub protected_sdc_events: u64,
    /// Attrition: test windows supervised across this row's rounds.
    pub att_items: u64,
    /// Attrition: windows that completed.
    pub att_completed: u64,
    /// Attrition: windows lost after exhausting retries.
    pub att_lost: u64,
    /// Attrition: extra attempts beyond the first.
    pub att_retries: u64,
    /// Attrition: faults by [`fleet::chaos::OpFault::index`] (length 5).
    pub att_faults: Vec<u64>,
    /// Attrition: accounted backoff seconds.
    pub att_backoff_secs: f64,
}

serde::impl_json_struct!(EvalRowRecord {
    name,
    known_errors,
    farron_coverage,
    baseline_coverage,
    farron_round_hours,
    baseline_round_hours,
    farron_test_overhead,
    farron_control_overhead,
    baseline_test_overhead,
    backoff_secs_per_hour,
    protected_sdc_events,
    att_items,
    att_completed,
    att_lost,
    att_retries,
    att_faults,
    att_backoff_secs,
});

impl EvalRowRecord {
    /// Captures one completed row.
    pub fn of(row: &EvalRow, attrition: &AttritionStats) -> EvalRowRecord {
        EvalRowRecord {
            name: row.name.to_string(),
            known_errors: row.known_errors as u64,
            farron_coverage: row.farron_coverage,
            baseline_coverage: row.baseline_coverage,
            farron_round_hours: row.farron_round_hours,
            baseline_round_hours: row.baseline_round_hours,
            farron_test_overhead: row.farron_test_overhead,
            farron_control_overhead: row.farron_control_overhead,
            baseline_test_overhead: row.baseline_test_overhead,
            backoff_secs_per_hour: row.backoff_secs_per_hour,
            protected_sdc_events: row.protected_sdc_events,
            att_items: attrition.items,
            att_completed: attrition.completed,
            att_lost: attrition.lost,
            att_retries: attrition.retries,
            att_faults: attrition.faults_by_kind.to_vec(),
            att_backoff_secs: attrition.backoff_secs,
        }
    }

    /// Restores the row; `None` when the stored name is not an
    /// evaluation processor.
    pub fn to_row(&self) -> Option<EvalRow> {
        let name = *EVAL_NAMES.iter().find(|&&n| n == self.name)?;
        Some(EvalRow {
            name,
            known_errors: self.known_errors as usize,
            farron_coverage: self.farron_coverage,
            baseline_coverage: self.baseline_coverage,
            farron_round_hours: self.farron_round_hours,
            baseline_round_hours: self.baseline_round_hours,
            farron_test_overhead: self.farron_test_overhead,
            farron_control_overhead: self.farron_control_overhead,
            baseline_test_overhead: self.baseline_test_overhead,
            backoff_secs_per_hour: self.backoff_secs_per_hour,
            protected_sdc_events: self.protected_sdc_events,
        })
    }

    /// Restores the row's attrition accounting.
    pub fn attrition(&self) -> AttritionStats {
        let mut stats = AttritionStats {
            items: self.att_items,
            completed: self.att_completed,
            lost: self.att_lost,
            retries: self.att_retries,
            backoff_secs: self.att_backoff_secs,
            ..AttritionStats::default()
        };
        for (acc, &n) in stats.faults_by_kind.iter_mut().zip(self.att_faults.iter()) {
            *acc = n;
        }
        stats
    }
}

/// A versioned, fingerprinted snapshot of completed evaluation rows.
///
/// The fingerprint reuses the campaign [`Fingerprint`] shape; the
/// evaluation has no fleet, so the capacity seat carries the round
/// count instead (see [`eval_fingerprint`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvalCheckpoint {
    /// Format version ([`EVAL_FORMAT_VERSION`]).
    pub version: u32,
    /// Which evaluation this snapshot belongs to.
    pub fingerprint: Fingerprint,
    /// Completed rows, in completion (not [`EVAL_NAMES`]) order.
    pub rows: Vec<EvalRowRecord>,
}

serde::impl_json_struct!(EvalCheckpoint {
    version,
    fingerprint,
    rows,
});

/// Identity of a chaos evaluation for checkpoint validation: seed,
/// round count (in the fingerprint's capacity seat), and the canonical
/// fault-plan spec.
pub fn eval_fingerprint(cfg: &EvalConfig, plan: &FaultPlan) -> Fingerprint {
    Fingerprint {
        seed: cfg.seed,
        total_cpus: cfg.rounds as u64,
        plan: plan.spec(),
    }
}

impl EvalCheckpoint {
    /// An empty snapshot for `fingerprint`.
    pub fn empty(fingerprint: Fingerprint) -> EvalCheckpoint {
        EvalCheckpoint {
            version: EVAL_FORMAT_VERSION,
            fingerprint,
            rows: Vec::new(),
        }
    }

    /// Loads and validates a snapshot against the expected fingerprint.
    pub fn load(
        path: &std::path::Path,
        expected: &Fingerprint,
    ) -> Result<EvalCheckpoint, CheckpointError> {
        let text =
            std::fs::read_to_string(path).map_err(|e| CheckpointError::Io(e.to_string()))?;
        let ck: EvalCheckpoint =
            serde_json::from_str(&text).map_err(|e| CheckpointError::Corrupt(e.to_string()))?;
        if ck.version != EVAL_FORMAT_VERSION {
            return Err(CheckpointError::Version {
                found: ck.version,
                expected: EVAL_FORMAT_VERSION,
            });
        }
        if ck.fingerprint != *expected {
            return Err(CheckpointError::Mismatch {
                found: ck.fingerprint,
                expected: expected.clone(),
            });
        }
        Ok(ck)
    }
}

/// The outcome of a resumable evaluation run.
#[derive(Debug)]
pub enum EvalRun {
    /// Every row evaluated or restored, in [`EVAL_NAMES`] order.
    Completed {
        /// The Figure 11 / Table 4 rows.
        rows: Vec<EvalRow>,
        /// Aggregated attrition across all rows.
        attrition: AttritionStats,
    },
    /// The store's kill hook stopped the run; the snapshot on disk
    /// holds the rows completed so far.
    Interrupted,
}

/// [`evaluate_chaos`] with row-level checkpoint/resume.
///
/// If the store's snapshot exists it is loaded (and validated against
/// [`eval_fingerprint`]); completed rows are restored instead of
/// re-evaluated, so interrupt-plus-resume returns exactly what an
/// uninterrupted run would. Rows are few and expensive, so a snapshot
/// is written after *every* completion (`store.every` is ignored);
/// `store.kill_after` simulates SIGKILL after that many new rows.
pub fn evaluate_checkpointed(
    cfg: &EvalConfig,
    plan: &FaultPlan,
    policy: &RetryPolicy,
    store: &CheckpointStore,
) -> Result<EvalRun, CheckpointError> {
    let fingerprint = eval_fingerprint(cfg, plan);
    let prior = if store.path().exists() {
        EvalCheckpoint::load(store.path(), &fingerprint)?
    } else {
        EvalCheckpoint::empty(fingerprint)
    };
    let done: HashMap<String, EvalRowRecord> = prior
        .rows
        .iter()
        .map(|r| (r.name.clone(), r.clone()))
        .collect();

    struct Sink {
        snapshot: EvalCheckpoint,
        new_done: usize,
        error: Option<CheckpointError>,
    }
    let sink = Mutex::new(Sink {
        snapshot: prior,
        new_done: 0,
        error: None,
    });
    let killed = AtomicBool::new(false);
    let ctx = EvalCtx::fresh();

    let records = fleet::parallel::run_indexed(&EVAL_NAMES, cfg.threads, |_, &name| {
        if let Some(record) = done.get(name) {
            return Some(record.clone());
        }
        if killed.load(Ordering::SeqCst) {
            return None;
        }
        let (row, attrition) = eval_row(cfg, name, RoundMode::Chaos { plan, policy }, &ctx);
        let record = EvalRowRecord::of(&row, &attrition);
        let mut sink = sink.lock().expect("eval checkpoint sink");
        sink.snapshot.rows.push(record.clone());
        sink.new_done += 1;
        if let Err(e) = store.write_value(&sink.snapshot) {
            sink.error = Some(e);
        }
        if let Some(k) = store.kill_after {
            if sink.new_done >= k {
                killed.store(true, Ordering::SeqCst);
            }
        }
        Some(record)
    });

    let sink = sink.into_inner().expect("eval workers joined");
    if let Some(e) = sink.error {
        return Err(e);
    }
    if killed.load(Ordering::SeqCst) {
        return Ok(EvalRun::Interrupted);
    }
    let mut rows = Vec::with_capacity(EVAL_NAMES.len());
    let mut total = AttritionStats::default();
    for record in records {
        let record = record.expect("uninterrupted run evaluates every row");
        let row = record
            .to_row()
            .ok_or_else(|| CheckpointError::Corrupt(format!("unknown eval row '{}'", record.name)))?;
        total.merge(&record.attrition());
        rows.push(row);
    }
    Ok(EvalRun::Completed {
        rows,
        attrition: total,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use analysis::study::run_case;
    use fleet::screening::StaticSuiteProfile;

    /// One processor end to end (the full six run in the bench harness).
    #[test]
    fn simd1_round_beats_baseline() {
        let suite = Suite::standard();
        let case = catalog::by_name("SIMD1").unwrap();
        let profiles = StaticSuiteProfile::build(&suite, case.processor.physical_cores as usize);
        let reference = run_case(
            &case,
            &suite,
            &profiles,
            &StudyConfig {
                per_testcase: Duration::from_mins(10),
                seed: 5,
                max_candidates: None,
                exec: burn_in_exec(),
                threads: 1,
            },
        );
        assert!(!reference.failing.is_empty());
        let mut book = PriorityBook::new();
        for &id in &reference.failing {
            book.record_processor_detection(case.processor.id.0, id);
        }
        let plan = FarronScheduler::default().plan(
            &suite,
            &book,
            case.processor.id,
            &[Feature::VecUnit],
            58.0,
        );
        // Farron's round is far shorter than the 10.55 h baseline.
        assert!(plan.total_duration().as_hours_f64() < 3.0);
        let mut rng = DetRng::new(6);
        let report = framework::run_plan(&case.processor, &suite, &plan, burn_in_exec(), &mut rng);
        let farron_detected = report
            .failing_testcases()
            .iter()
            .filter(|t| reference.failing.contains(t))
            .count();
        let farron_coverage = farron_detected as f64 / reference.failing.len() as f64;

        let mut rng_b = DetRng::new(7);
        let baseline_report = framework::run_plan(
            &case.processor,
            &suite,
            &Baseline::default().plan(&suite),
            ExecConfig::default(),
            &mut rng_b,
        );
        let baseline_detected = baseline_report
            .failing_testcases()
            .iter()
            .filter(|t| reference.failing.contains(t))
            .count();
        let baseline_coverage = baseline_detected as f64 / reference.failing.len() as f64;
        assert!(
            farron_coverage >= baseline_coverage,
            "farron {farron_coverage} vs baseline {baseline_coverage}"
        );
        assert!(
            farron_coverage > 0.55,
            "farron one-round coverage {farron_coverage}"
        );
    }

    /// Small enough to evaluate all six processors a few times in a test.
    fn tiny_cfg() -> EvalConfig {
        EvalConfig {
            reference_per_testcase: Duration::from_mins(1),
            seed: 909,
            online_duration: Duration::from_mins(15),
            rounds: 1,
            threads: 0,
        }
    }

    fn storm() -> FaultPlan {
        FaultPlan {
            seed: 21,
            offline: 0.05,
            crash: 0.03,
            preempt: 0.10,
            read_error: 0.05,
            timeout: 0.02,
        }
    }

    #[test]
    fn quiet_chaos_eval_loses_nothing() {
        let (rows, attrition) =
            evaluate_chaos(&tiny_cfg(), &FaultPlan::default(), &RetryPolicy::default());
        assert_eq!(rows.len(), EVAL_NAMES.len());
        assert_eq!(attrition.lost, 0);
        assert_eq!(attrition.retries, 0);
        assert_eq!(attrition.total_faults(), 0);
        assert_eq!(attrition.coverage(), 1.0);
        for row in &rows {
            assert!((0.0..=1.0).contains(&row.farron_coverage), "{}", row.name);
        }
    }

    #[test]
    fn checkpointed_eval_interrupt_resume_matches_uninterrupted() {
        let cfg = tiny_cfg();
        let policy = RetryPolicy::default();
        let dir = std::env::temp_dir().join("sdc-eval-ck-test");
        std::fs::create_dir_all(&dir).unwrap();

        let full_store = CheckpointStore::new(dir.join("full.json"), 1);
        let (full_rows, full_att) =
            match evaluate_checkpointed(&cfg, &storm(), &policy, &full_store).unwrap() {
                EvalRun::Completed { rows, attrition } => (rows, attrition),
                EvalRun::Interrupted => panic!("run without a kill hook cannot be interrupted"),
            };
        assert_eq!(full_rows.len(), EVAL_NAMES.len());
        assert!(full_att.total_faults() > 0, "storm must interrupt something");

        // Kill after two new rows, then resume from the snapshot.
        let mut killer = CheckpointStore::new(dir.join("killed.json"), 1);
        killer.kill_after = Some(2);
        assert!(matches!(
            evaluate_checkpointed(&cfg, &storm(), &policy, &killer).unwrap(),
            EvalRun::Interrupted
        ));
        let resume_store = CheckpointStore::new(dir.join("killed.json"), 1);
        let (rows, attrition) =
            match evaluate_checkpointed(&cfg, &storm(), &policy, &resume_store).unwrap() {
                EvalRun::Completed { rows, attrition } => (rows, attrition),
                EvalRun::Interrupted => panic!("resume run has no kill hook"),
            };
        assert_eq!(rows, full_rows);
        assert_eq!(attrition, full_att);

        // A snapshot never resumes the wrong evaluation.
        let mut other = cfg;
        other.seed ^= 1;
        assert!(matches!(
            evaluate_checkpointed(&other, &storm(), &policy, &resume_store),
            Err(CheckpointError::Mismatch { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }
}

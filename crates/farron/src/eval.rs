//! The Farron evaluation (§7.2): Figure 11 and Table 4.
//!
//! Per faulty processor:
//!
//! 1. **Known errors** come from an adequate reference study (long
//!    burn-in testing of every candidate testcase) — the paper's "total
//!    known errors in the faulty processor".
//! 2. The reference results seed the [`PriorityBook`] (adequate
//!    pre-production testing accumulates the suspected set, §7.1).
//! 3. One **Farron regular round** (prioritized slots, burn-in
//!    environment) and one **baseline round** (equal 60 s slots, no
//!    burn-in) each measure coverage = detected / known (Figure 11).
//! 4. Overheads (Table 4): testing = round duration over the three-month
//!    cadence; control = the online simulation's backoff fraction.

use crate::baseline::Baseline;
use crate::online::{simulate_online, AppProfile, OnlineConfig};
use crate::priority::PriorityBook;
use crate::schedule::FarronScheduler;
use analysis::study::{run_case_cached, StudyConfig};
use fleet::screening::SuiteProfileCache;
use sdc_model::{DetRng, Duration, Feature, TestcaseId};
use silicon::catalog;
use std::sync::Arc;
use toolchain::{framework, ExecConfig, ProfileCache, Suite};

/// Evaluation parameters.
#[derive(Debug, Clone, Copy)]
pub struct EvalConfig {
    /// Reference ("adequate") per-testcase duration.
    pub reference_per_testcase: Duration,
    /// Seed.
    pub seed: u64,
    /// Online simulation length for control overhead.
    pub online_duration: Duration,
    /// Independent regular rounds averaged into each coverage figure.
    pub rounds: usize,
    /// Worker threads across evaluated processors (`0` = available
    /// parallelism). Each processor's randomness is forked from its name,
    /// so rows are identical for every value.
    pub threads: usize,
}

impl Default for EvalConfig {
    fn default() -> Self {
        EvalConfig {
            reference_per_testcase: Duration::from_mins(10),
            seed: 711,
            online_duration: Duration::from_hours(6),
            rounds: 4,
            threads: 0,
        }
    }
}

/// One Figure 11 / Table 4 row.
#[derive(Debug, Clone)]
pub struct EvalRow {
    /// Processor name.
    pub name: &'static str,
    /// Known errors (failing testcases in the reference study).
    pub known_errors: usize,
    /// Farron one-round coverage (Figure 11).
    pub farron_coverage: f64,
    /// Baseline one-round coverage (Figure 11).
    pub baseline_coverage: f64,
    /// Farron round duration, hours (paper average: 1.02 h).
    pub farron_round_hours: f64,
    /// Baseline round duration, hours (paper: 10.55 h).
    pub baseline_round_hours: f64,
    /// Farron testing overhead (Table 4 "Test").
    pub farron_test_overhead: f64,
    /// Farron temperature-control overhead (Table 4 "Control").
    pub farron_control_overhead: f64,
    /// Baseline testing overhead (Table 4 baseline column, 0.488%).
    pub baseline_test_overhead: f64,
    /// Backoff seconds per hour in the online simulation.
    pub backoff_secs_per_hour: f64,
    /// Online SDC events under Farron protection (paper: none).
    pub protected_sdc_events: u64,
}

/// The six processors of Figure 11 / Table 4.
pub const EVAL_NAMES: [&str; 6] = ["MIX1", "SIMD1", "FPU1", "FPU2", "CNST1", "CNST2"];

/// The burn-in environment of Farron's regular tests: every core busy,
/// package preheated ("Farron initiates the testing by running burn-in
/// workloads and tests every core in a processor simultaneously").
fn burn_in_exec() -> ExecConfig {
    ExecConfig {
        preheat_c: Some(58.0),
        stress_idle_cores: true,
        ..ExecConfig::default()
    }
}

/// Runs the full evaluation.
///
/// Processors are sharded across `cfg.threads` workers; each one's
/// randomness is forked from its name and the shared caches are
/// result-transparent, so the rows are identical for every thread count.
pub fn evaluate(cfg: &EvalConfig) -> Vec<EvalRow> {
    let suite = Suite::standard();
    let baseline = Baseline::default();
    let scheduler = FarronScheduler::default();
    let suite_cache = SuiteProfileCache::new();
    let unit_cache = ProfileCache::shared();

    fleet::parallel::run_indexed(&EVAL_NAMES, cfg.threads, |_, &name| {
        let case = catalog::by_name(name).expect("catalog name");
        let processor = &case.processor;
        let n_cores = processor.physical_cores as usize;
        let profiles = suite_cache.get_or_build(&suite, n_cores, cfg.threads);

        // 1. Adequate reference study → known errors.
        let reference = run_case_cached(
            &case,
            &suite,
            &profiles,
            &StudyConfig {
                per_testcase: cfg.reference_per_testcase,
                seed: cfg.seed,
                max_candidates: None,
                exec: burn_in_exec(),
                threads: 1,
            },
            Some(Arc::clone(&unit_cache)),
        );
        let known: Vec<TestcaseId> = reference.failing.clone();

        // 2. Seed priorities from the adequate testing.
        let mut book = PriorityBook::new();
        for &id in &known {
            book.record_processor_detection(processor.id.0, id);
        }
        // The protected application engages the implicated features.
        let app_features: Vec<Feature> = {
            let mut v: Vec<Feature> = known.iter().map(|&id| suite.get(id).feature).collect();
            v.sort();
            v.dedup();
            if v.is_empty() {
                vec![Feature::Alu]
            } else {
                v
            }
        };

        // 3. Regular rounds, averaged: Farron (prioritized + burn-in)
        // vs. baseline (equal slots, no burn-in).
        let boundary_c = 58.0;
        let farron_plan = scheduler.plan(&suite, &book, processor.id, &app_features, boundary_c);
        let baseline_plan = baseline.plan(&suite);
        let known_n = known.len().max(1);
        let mut farron_cov_sum = 0.0;
        let mut baseline_cov_sum = 0.0;
        for round in 0..cfg.rounds.max(1) {
            let mut rng = DetRng::new(cfg.seed + round as u64).fork_str(name);
            let farron_report = framework::run_plan_cached(
                processor,
                &suite,
                &farron_plan,
                burn_in_exec(),
                &mut rng,
                Some(Arc::clone(&unit_cache)),
            );
            farron_cov_sum += farron_report
                .failing_testcases()
                .iter()
                .filter(|t| known.contains(t))
                .count() as f64
                / known_n as f64;
            let mut rng_b = DetRng::new(cfg.seed ^ 0xb ^ round as u64).fork_str(name);
            let baseline_report = framework::run_plan_cached(
                processor,
                &suite,
                &baseline_plan,
                ExecConfig::default(),
                &mut rng_b,
                Some(Arc::clone(&unit_cache)),
            );
            baseline_cov_sum += baseline_report
                .failing_testcases()
                .iter()
                .filter(|t| known.contains(t))
                .count() as f64
                / known_n as f64;
        }
        let rounds = cfg.rounds.max(1) as f64;

        // 4. Online control overhead: the impacted workload simulated with
        // the toolchain (§7.2) at production-like utilization; among the
        // known failing testcases pick the coolest profile (applications
        // are diluted relative to instruction loops).
        let app_testcase = known
            .iter()
            .copied()
            .max_by(|&a, &b| {
                let pa = fleet::screening::StaticProfile::of(suite.get(a), n_cores).power;
                let pb = fleet::screening::StaticProfile::of(suite.get(b), n_cores).power;
                pa.partial_cmp(&pb).expect("finite power")
            })
            .unwrap_or(TestcaseId(0));
        // Run the hottest impacted workload at moderate utilization so the
        // die sits near the learned boundary; occasional request storms
        // (spikes) push past it and trigger the rare backoffs of Table 4.
        let app = AppProfile {
            testcase: app_testcase,
            utilization: 0.25,
            burst_amplitude: 0.12,
            burst_period: Duration::from_secs(120),
            spike_prob: 0.002,
        };
        let cores: Vec<u16> = (0..processor.physical_cores).collect();
        let mut rng_o = DetRng::new(cfg.seed).fork_str(name);
        let online = simulate_online(
            processor,
            &suite,
            &app,
            &cores,
            &OnlineConfig {
                duration: cfg.online_duration,
                ..OnlineConfig::default()
            },
            &mut rng_o,
        );

        let cadence_secs = baseline.cadence.as_secs_f64();
        EvalRow {
            name,
            known_errors: known.len(),
            farron_coverage: farron_cov_sum / rounds,
            baseline_coverage: baseline_cov_sum / rounds,
            farron_round_hours: farron_plan.total_duration().as_hours_f64(),
            baseline_round_hours: baseline_plan.total_duration().as_hours_f64(),
            farron_test_overhead: farron_plan.total_duration().as_secs_f64() / cadence_secs,
            farron_control_overhead: online.backoff_fraction,
            baseline_test_overhead: baseline.test_overhead(&suite),
            backoff_secs_per_hour: online.backoff_secs_per_hour,
            protected_sdc_events: online.sdc_events,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use analysis::study::run_case;
    use fleet::screening::StaticSuiteProfile;

    /// One processor end to end (the full six run in the bench harness).
    #[test]
    fn simd1_round_beats_baseline() {
        let suite = Suite::standard();
        let case = catalog::by_name("SIMD1").unwrap();
        let profiles = StaticSuiteProfile::build(&suite, case.processor.physical_cores as usize);
        let reference = run_case(
            &case,
            &suite,
            &profiles,
            &StudyConfig {
                per_testcase: Duration::from_mins(10),
                seed: 5,
                max_candidates: None,
                exec: burn_in_exec(),
                threads: 1,
            },
        );
        assert!(!reference.failing.is_empty());
        let mut book = PriorityBook::new();
        for &id in &reference.failing {
            book.record_processor_detection(case.processor.id.0, id);
        }
        let plan = FarronScheduler::default().plan(
            &suite,
            &book,
            case.processor.id,
            &[Feature::VecUnit],
            58.0,
        );
        // Farron's round is far shorter than the 10.55 h baseline.
        assert!(plan.total_duration().as_hours_f64() < 3.0);
        let mut rng = DetRng::new(6);
        let report = framework::run_plan(&case.processor, &suite, &plan, burn_in_exec(), &mut rng);
        let farron_detected = report
            .failing_testcases()
            .iter()
            .filter(|t| reference.failing.contains(t))
            .count();
        let farron_coverage = farron_detected as f64 / reference.failing.len() as f64;

        let mut rng_b = DetRng::new(7);
        let baseline_report = framework::run_plan(
            &case.processor,
            &suite,
            &Baseline::default().plan(&suite),
            ExecConfig::default(),
            &mut rng_b,
        );
        let baseline_detected = baseline_report
            .failing_testcases()
            .iter()
            .filter(|t| reference.failing.contains(t))
            .count();
        let baseline_coverage = baseline_detected as f64 / reference.failing.len() as f64;
        assert!(
            farron_coverage >= baseline_coverage,
            "farron {farron_coverage} vs baseline {baseline_coverage}"
        );
        assert!(
            farron_coverage > 0.55,
            "farron one-round coverage {farron_coverage}"
        );
    }
}

//! Fine-grained processor decommission (§7.1).
//!
//! "If more than two cores within a processor are found defective, Farron
//! deprecates the entire processor … Conversely, Farron masks that
//! particular defective core and continues utilizing the other cores as
//! normal." Masked-core packages live in the reliable resource pool.

use sdc_model::{CoreId, CpuId};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// The decommission decision for a faulty processor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecommissionDecision {
    /// Mask these cores, keep the rest serving.
    MaskCores(Vec<CoreId>),
    /// Too many defective cores: deprecate the whole package.
    DeprecateProcessor,
}

/// Applies the paper's rule to a set of defective cores.
pub fn decide(defective_cores: &[CoreId]) -> DecommissionDecision {
    let distinct: BTreeSet<CoreId> = defective_cores.iter().copied().collect();
    if distinct.len() > 2 {
        DecommissionDecision::DeprecateProcessor
    } else {
        DecommissionDecision::MaskCores(distinct.into_iter().collect())
    }
}

/// The reliable resource pool: which cores of which processors may run
/// user applications.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ReliablePool {
    /// cpu → masked cores (absent cpu = fully available).
    masked: BTreeMap<u64, BTreeSet<u16>>,
    /// Deprecated processors.
    deprecated: BTreeSet<u64>,
}

impl ReliablePool {
    /// An empty pool bookkeeping structure.
    pub fn new() -> ReliablePool {
        ReliablePool::default()
    }

    /// Applies a decommission decision for `cpu`.
    pub fn apply(&mut self, cpu: CpuId, decision: &DecommissionDecision) {
        match decision {
            DecommissionDecision::MaskCores(cores) => {
                let entry = self.masked.entry(cpu.0).or_default();
                for c in cores {
                    entry.insert(c.0);
                }
            }
            DecommissionDecision::DeprecateProcessor => {
                self.deprecated.insert(cpu.0);
            }
        }
    }

    /// Whether `cpu` may serve at all.
    pub fn is_serving(&self, cpu: CpuId) -> bool {
        !self.deprecated.contains(&cpu.0)
    }

    /// Whether a specific core may run application work.
    pub fn core_available(&self, cpu: CpuId, core: CoreId) -> bool {
        self.is_serving(cpu) && !self.masked.get(&cpu.0).is_some_and(|m| m.contains(&core.0))
    }

    /// Cores still serving on `cpu`, out of `total` physical cores.
    pub fn available_cores(&self, cpu: CpuId, total: u16) -> Vec<CoreId> {
        if !self.is_serving(cpu) {
            return Vec::new();
        }
        (0..total)
            .map(CoreId)
            .filter(|&c| self.core_available(cpu, c))
            .collect()
    }

    /// Fraction of `total` cores retained by the pool for `cpu` —
    /// the capacity advantage over whole-processor decommission.
    pub fn retained_capacity(&self, cpu: CpuId, total: u16) -> f64 {
        self.available_cores(cpu, total).len() as f64 / total.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_or_two_cores_are_masked() {
        assert_eq!(
            decide(&[CoreId(3)]),
            DecommissionDecision::MaskCores(vec![CoreId(3)])
        );
        assert_eq!(
            decide(&[CoreId(3), CoreId(7)]),
            DecommissionDecision::MaskCores(vec![CoreId(3), CoreId(7)])
        );
    }

    #[test]
    fn duplicates_do_not_trigger_deprecation() {
        assert_eq!(
            decide(&[CoreId(3), CoreId(3), CoreId(3)]),
            DecommissionDecision::MaskCores(vec![CoreId(3)])
        );
    }

    #[test]
    fn three_distinct_cores_deprecate() {
        assert_eq!(
            decide(&[CoreId(0), CoreId(1), CoreId(2)]),
            DecommissionDecision::DeprecateProcessor
        );
    }

    #[test]
    fn pool_masks_and_retains_capacity() {
        let mut pool = ReliablePool::new();
        pool.apply(CpuId(1), &decide(&[CoreId(4)]));
        assert!(pool.is_serving(CpuId(1)));
        assert!(!pool.core_available(CpuId(1), CoreId(4)));
        assert!(pool.core_available(CpuId(1), CoreId(5)));
        assert_eq!(pool.available_cores(CpuId(1), 16).len(), 15);
        assert!((pool.retained_capacity(CpuId(1), 16) - 15.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn pool_deprecation_removes_everything() {
        let mut pool = ReliablePool::new();
        pool.apply(CpuId(2), &DecommissionDecision::DeprecateProcessor);
        assert!(!pool.is_serving(CpuId(2)));
        assert!(pool.available_cores(CpuId(2), 16).is_empty());
        assert_eq!(pool.retained_capacity(CpuId(2), 16), 0.0);
    }

    #[test]
    fn untouched_processor_fully_available() {
        let pool = ReliablePool::new();
        assert_eq!(pool.available_cores(CpuId(9), 8).len(), 8);
    }
}

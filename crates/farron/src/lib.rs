//! Farron: the paper's SDC mitigation system (§7).
//!
//! Farron layers four mechanisms on top of the plain testing baseline:
//!
//! * **Prioritized testing** ([`priority`], [`schedule`]): testcases carry
//!   `basic` / `active` / `suspected` priorities from testing history;
//!   regular rounds give long slots to suspected and active testcases
//!   whose targeted feature the protected application uses, and a
//!   best-effort sliver to the rest — the source of the 10× round-time
//!   reduction (1.02 h vs. 10.55 h).
//! * **Adaptive temperature boundary + workload backoff** ([`boundary`],
//!   [`online`]): a window of temperature records learns the application's
//!   normal working temperature; excursions beyond the learned boundary
//!   trigger workload backoff until the die cools — mitigating *tricky*
//!   SDCs that testing can't economically cover (Observation 10).
//! * **Burn-in test environment**: regular tests run every core
//!   simultaneously and preheat the package so testing covers the
//!   application's execution temperatures.
//! * **Fine-grained decommission** ([`decommission`]): defective cores are
//!   masked and the rest keep serving from a reliable resource pool;
//!   processors with more than two defective cores are deprecated whole.
//!
//! The [`eval`] module reproduces Figure 11 (one-round coverage vs. the
//! baseline) and Table 4 (testing + control overhead per processor);
//! [`baseline`] implements Alibaba's pre-Farron strategy.

pub mod baseline;
pub mod boundary;
pub mod capacity;
pub mod decommission;
pub mod eval;
pub mod online;
pub mod priority;
pub mod requeue;
pub mod schedule;
pub mod state;

pub use boundary::{AdaptiveBoundary, BoundaryAction};
pub use capacity::{capacity_report, CapacityReport};
pub use decommission::{DecommissionDecision, ReliablePool};
pub use eval::{
    eval_fingerprint, evaluate, evaluate_chaos, evaluate_checkpointed, EvalCheckpoint, EvalConfig,
    EvalRow, EvalRowRecord, EvalRun,
};
pub use online::{simulate_online, AppProfile, ControlMode, OnlineConfig, OnlineReport};
pub use priority::{PriorityBook, TestPriority};
pub use requeue::{round_label, run_plan_requeue, RequeueReport};
pub use schedule::FarronScheduler;
pub use state::{FarronState, StateMachine};

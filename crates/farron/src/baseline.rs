//! The Alibaba baseline strategy (§7, "Baseline").
//!
//! "SDC tests are conducted both in pre-production and every three months
//! during production, and in every round of tests, all testcases are
//! executed sequentially and allocated with equal testing resources. As
//! for one processor whose core(s) are detected as defective, Alibaba
//! Cloud deprecates the entire processor."

use sdc_model::Duration;
use toolchain::{Suite, TestPlan};

/// The baseline regular-testing strategy.
#[derive(Debug, Clone, Copy)]
pub struct Baseline {
    /// One-round duration: 60 s for each of the 633 testcases = 10.55 h.
    pub per_testcase: Duration,
    /// Regular-test cadence.
    pub cadence: Duration,
}

impl Default for Baseline {
    fn default() -> Self {
        Baseline {
            per_testcase: Duration::from_secs(60),
            cadence: Duration::from_days(90),
        }
    }
}

impl Baseline {
    /// The equal-allocation sequential plan.
    pub fn plan(&self, suite: &Suite) -> TestPlan {
        let total = self.per_testcase * suite.len() as u64;
        TestPlan::equal_allocation(suite, total)
    }

    /// One-round duration.
    pub fn round_duration(&self, suite: &Suite) -> Duration {
        self.per_testcase * suite.len() as u64
    }

    /// Testing overhead: round duration over the cadence (paper: 0.488%).
    pub fn test_overhead(&self, suite: &Suite) -> f64 {
        self.round_duration(suite).as_secs_f64() / self.cadence.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_is_10_55_hours() {
        let suite = Suite::standard();
        let b = Baseline::default();
        assert!((b.round_duration(&suite).as_hours_f64() - 10.55).abs() < 0.001);
    }

    #[test]
    fn overhead_matches_table4() {
        let suite = Suite::standard();
        let b = Baseline::default();
        let overhead = b.test_overhead(&suite) * 100.0;
        assert!(
            (overhead - 0.488).abs() < 0.005,
            "baseline overhead {overhead}%"
        );
    }

    #[test]
    fn plan_is_equal_allocation() {
        let suite = Suite::standard();
        let plan = Baseline::default().plan(&suite);
        assert_eq!(plan.entries.len(), 633);
        assert!(plan
            .entries
            .iter()
            .all(|e| e.duration == Duration::from_secs(60)));
    }
}

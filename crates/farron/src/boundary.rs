//! The adaptive temperature boundary (§7.1).
//!
//! "Farron employs a window to track recent temperature monitoring
//! records, raising the temperature boundary for workload backoff if more
//! than a half of temperature records within the window exceed current
//! boundary … If less than half of the temperature records exceed current
//! boundary, workload backoff will be triggered, until the temperature is
//! below the boundary." The boundary thus converges onto the
//! application's standard working temperature, keeping backoff rare.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// What the controller should do after a temperature observation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoundaryAction {
    /// Temperature within bounds; run at full speed.
    Proceed,
    /// Temperature above the learned boundary; back the workload off.
    Backoff,
}

/// The adaptive boundary controller.
///
/// # Examples
///
/// ```
/// use farron::boundary::{AdaptiveBoundary, BoundaryAction};
///
/// let mut b = AdaptiveBoundary::new(50.0, 4, 70.0);
/// // The application's normal range is learned…
/// for _ in 0..20 {
///     b.observe(55.0);
/// }
/// assert!(b.boundary_c() >= 55.0);
/// // …and a genuine excursion still triggers backoff.
/// assert_eq!(b.observe(70.0), BoundaryAction::Backoff);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AdaptiveBoundary {
    boundary_c: f64,
    window: VecDeque<f64>,
    window_size: usize,
    raise_step_c: f64,
    max_boundary_c: f64,
    /// Hysteresis: backoff engages only beyond `boundary + margin`,
    /// preventing limit cycles when the learned boundary sits exactly at
    /// the application's natural peak ("minimizing the frequent use of
    /// workload backoff").
    backoff_margin_c: f64,
}

impl AdaptiveBoundary {
    /// A controller starting at `initial_c`, learning over windows of
    /// `window_size` observations, never exceeding `max_boundary_c` (the
    /// hard limit protects against learning a dangerous normal).
    ///
    /// # Panics
    ///
    /// Panics if `window_size` is zero or the bounds are inverted.
    pub fn new(initial_c: f64, window_size: usize, max_boundary_c: f64) -> AdaptiveBoundary {
        assert!(window_size > 0, "empty window");
        assert!(
            initial_c <= max_boundary_c,
            "initial boundary above maximum"
        );
        AdaptiveBoundary {
            boundary_c: initial_c,
            window: VecDeque::with_capacity(window_size),
            window_size,
            raise_step_c: 1.0,
            max_boundary_c,
            backoff_margin_c: 0.5,
        }
    }

    /// Current boundary, ℃.
    pub fn boundary_c(&self) -> f64 {
        self.boundary_c
    }

    /// Feeds one temperature record; returns the action to take.
    pub fn observe(&mut self, temp_c: f64) -> BoundaryAction {
        if self.window.len() == self.window_size {
            self.window.pop_front();
        }
        self.window.push_back(temp_c);
        let above = self.window.iter().filter(|&&t| t > self.boundary_c).count();
        if above * 2 > self.window.len() && self.window.len() == self.window_size {
            // The majority of recent records exceed the boundary: this is
            // the application's normal range — learn it (bounded by the
            // hard maximum; beyond that, backoff still applies).
            self.boundary_c = (self.boundary_c + self.raise_step_c).min(self.max_boundary_c);
        }
        if temp_c > self.boundary_c + self.backoff_margin_c {
            BoundaryAction::Backoff
        } else {
            BoundaryAction::Proceed
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stays_quiet_below_boundary() {
        let mut b = AdaptiveBoundary::new(59.0, 10, 80.0);
        for _ in 0..100 {
            assert_eq!(b.observe(52.0), BoundaryAction::Proceed);
        }
        assert_eq!(b.boundary_c(), 59.0, "boundary untouched");
    }

    #[test]
    fn learns_a_hotter_normal() {
        let mut b = AdaptiveBoundary::new(55.0, 10, 80.0);
        // The application normally runs at 62 ℃: after enough windows the
        // boundary converges above it and backoff stops.
        let mut backoffs = 0;
        for _ in 0..200 {
            if b.observe(62.0) == BoundaryAction::Backoff {
                backoffs += 1;
            }
        }
        assert!(
            b.boundary_c() >= 62.0,
            "boundary learned: {}",
            b.boundary_c()
        );
        assert!(backoffs < 30, "backoff stops once learned: {backoffs}");
        for _ in 0..50 {
            assert_eq!(b.observe(62.0), BoundaryAction::Proceed);
        }
    }

    #[test]
    fn transient_spikes_trigger_backoff_without_learning() {
        let mut b = AdaptiveBoundary::new(59.0, 10, 80.0);
        for _ in 0..20 {
            b.observe(50.0);
        }
        // A lone excursion: minority of the window → backoff, no raise.
        assert_eq!(b.observe(65.0), BoundaryAction::Backoff);
        assert_eq!(b.boundary_c(), 59.0);
    }

    #[test]
    fn boundary_respects_hard_maximum_and_keeps_backing_off() {
        let mut b = AdaptiveBoundary::new(70.0, 4, 72.0);
        let mut last = BoundaryAction::Proceed;
        for _ in 0..100 {
            last = b.observe(95.0);
        }
        assert_eq!(b.boundary_c(), 72.0);
        assert_eq!(
            last,
            BoundaryAction::Backoff,
            "a capped boundary still backs off"
        );
    }

    #[test]
    #[should_panic(expected = "empty window")]
    fn rejects_zero_window() {
        let _ = AdaptiveBoundary::new(59.0, 0, 80.0);
    }
}

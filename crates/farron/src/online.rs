//! The online state: application execution under triggering-condition
//! control.
//!
//! §7.2: "We simulate workloads affected by these errors using our
//! toolchain for hours and find these workloads do not trigger SDCs with
//! the protection of Farron. During the procedure, Farron's workload
//! backoff was triggered 0.864 seconds per hour on average, keeping the
//! temperature under 59 ℃."
//!
//! The simulation drives an application-shaped workload (a toolchain
//! testcase profile with a bursty utilization trace) on a defective
//! processor's available cores: each time chunk updates the thermal
//! model, feeds the hottest core temperature to the adaptive boundary,
//! backs the workload off when told to, and accumulates SDC events from
//! the defect trigger model at the realized temperatures.

use crate::boundary::{AdaptiveBoundary, BoundaryAction};
use fleet::screening::StaticProfile;
use sdc_model::{DetRng, Duration, TestcaseId};
use serde::{Deserialize, Serialize};
use silicon::defect::DefectKind;
use silicon::Processor;
use thermal::{ThermalConfig, ThermalModel};
use toolchain::Suite;

/// The protected application's workload shape.
#[derive(Debug, Clone, Copy)]
pub struct AppProfile {
    /// The toolchain testcase standing in for the impacted workload
    /// ("we simulate workloads affected by these errors using our
    /// toolchain").
    pub testcase: TestcaseId,
    /// Mean utilization (0..=1).
    pub utilization: f64,
    /// Burst amplitude on top of the mean (0..=1).
    pub burst_amplitude: f64,
    /// Burst period.
    pub burst_period: Duration,
    /// Per-chunk probability of a full-utilization spike (request storms);
    /// these are what occasionally pushes the die past the boundary and
    /// triggers the rare backoffs of Table 4's Control column.
    pub spike_prob: f64,
}

/// Online-controller parameters.
#[derive(Debug, Clone, Copy)]
pub struct OnlineConfig {
    /// Simulated duration.
    pub duration: Duration,
    /// Control interval.
    pub chunk: Duration,
    /// Initial temperature boundary.
    pub boundary_init_c: f64,
    /// Boundary learning window (observations).
    pub window: usize,
    /// Hard maximum the boundary may learn up to.
    pub max_boundary_c: f64,
    /// Utilization multiplier while backing off.
    pub backoff_factor: f64,
    /// Whether the boundary/backoff controller is active (false = the
    /// unprotected baseline).
    pub protected: bool,
    /// Which actuator the controller drives on a boundary excursion.
    pub control: ControlMode,
    /// Virtual clock (Hz) for translating utilization into retire rates.
    pub clock_hz: f64,
}

/// The two temperature-control actuators of §5: "We can control the
/// temperature by either controlling the cooling devices or by limiting
/// the CPU utilization of the workloads (called 'workload backoff'). The
/// former has no impact on application performance, but unfortunately it
/// is not widely applicable in Alibaba Cloud yet, so this work explores
/// the latter." Both are implemented here so the trade-off is measurable.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ControlMode {
    /// Limit workload utilization (the paper's deployed mechanism; costs
    /// application performance while active).
    WorkloadBackoff,
    /// Boost the cooling devices (ACPI-style fan/pump control; no
    /// performance impact, not universally available).
    CoolingDevice {
        /// Thermal-resistance multiplier while boosted (< 1 cools).
        boost_factor: f64,
    },
}

impl Default for OnlineConfig {
    fn default() -> Self {
        OnlineConfig {
            duration: Duration::from_hours(8),
            chunk: Duration::from_secs(1),
            boundary_init_c: 48.0,
            window: 12,
            max_boundary_c: 57.0,
            backoff_factor: 0.5,
            protected: true,
            control: ControlMode::WorkloadBackoff,
            clock_hz: 1e7,
        }
    }
}

/// What the online simulation measured.
#[derive(Debug, Clone, Copy)]
pub struct OnlineReport {
    /// Seconds of control actuation per simulated hour (paper: 0.864 s/h
    /// of workload backoff).
    pub backoff_secs_per_hour: f64,
    /// Fraction of time the actuator was engaged (Table 4's "Control").
    pub backoff_fraction: f64,
    /// Hottest temperature reached (paper: kept under 59 ℃).
    pub max_temp_c: f64,
    /// SDC events produced during the simulation.
    pub sdc_events: u64,
    /// Final learned boundary.
    pub boundary_final_c: f64,
    /// Application throughput lost to control, as a fraction of the
    /// uncontrolled utilization-time integral (zero for cooling-device
    /// control — its whole point).
    pub performance_loss: f64,
}

/// Simulates the online state of `processor` running `app` on `cores`.
pub fn simulate_online(
    processor: &Processor,
    suite: &Suite,
    app: &AppProfile,
    cores: &[u16],
    cfg: &OnlineConfig,
    rng: &mut DetRng,
) -> OnlineReport {
    assert!(!cores.is_empty(), "application needs cores");
    let tc = suite.get(app.testcase);
    let profile = StaticProfile::of(tc, cores.len());
    let mut thermal =
        ThermalModel::new(processor.physical_cores as usize, ThermalConfig::default());
    let mut boundary = AdaptiveBoundary::new(cfg.boundary_init_c, cfg.window, cfg.max_boundary_c);
    let mut backoff_time = Duration::ZERO;
    let mut elapsed = Duration::ZERO;
    let mut max_temp = f64::NEG_INFINITY;
    let mut sdc_events = 0u64;
    let mut backing_off = false;
    let mut util_served = 0.0f64;
    let mut util_offered = 0.0f64;

    while elapsed < cfg.duration {
        let dt = std::cmp::min(cfg.chunk, cfg.duration - elapsed);
        // Bursty utilization trace.
        let phase = elapsed.as_secs_f64() / app.burst_period.as_secs_f64().max(1e-9);
        let burst = app.burst_amplitude * (std::f64::consts::TAU * phase).sin().max(0.0);
        let mut util = (app.utilization + burst).clamp(0.0, 1.0);
        if rng.chance(app.spike_prob) {
            util = 1.0;
        }
        let offered = util;
        if backing_off {
            backoff_time += dt;
            match cfg.control {
                ControlMode::WorkloadBackoff => util *= cfg.backoff_factor,
                ControlMode::CoolingDevice { boost_factor } => {
                    thermal.set_cooling_factor(boost_factor.clamp(0.05, 1.0));
                }
            }
        } else if matches!(cfg.control, ControlMode::CoolingDevice { .. }) {
            thermal.set_cooling_factor(1.0);
        }
        util_offered += offered * dt.as_secs_f64();
        util_served += util * dt.as_secs_f64();
        for pc in 0..processor.physical_cores {
            let p = if cores.contains(&pc) {
                profile.power * util
            } else {
                0.0
            };
            thermal.set_power(pc as usize, p);
        }
        thermal.advance(dt);
        let hottest = cores
            .iter()
            .map(|&c| thermal.temp(c as usize))
            .fold(f64::NEG_INFINITY, f64::max);
        max_temp = max_temp.max(hottest);

        if cfg.protected {
            backing_off = matches!(boundary.observe(hottest), BoundaryAction::Backoff);
        }

        // SDC events at the realized temperature and utilization.
        let dt_secs = dt.as_secs_f64();
        for defect in &processor.defects {
            if !defect.applies_to(app.testcase) {
                continue;
            }
            for &pc in cores {
                let temp = thermal.temp(pc as usize);
                let rate = defect.rate(pc, temp);
                if rate <= 0.0 {
                    continue;
                }
                let events_per_cycle = match &defect.kind {
                    DefectKind::Computation { .. } => profile
                        .sites_per_cycle
                        .iter()
                        .filter(|((class, dt_), _)| defect.matches(*class, *dt_))
                        .map(|(_, v)| v)
                        .sum::<f64>(),
                    DefectKind::CoherenceDrop => profile.invalidations_per_cycle,
                    DefectKind::TxIsolation => profile.tx_conflicts_per_cycle,
                };
                let lambda = events_per_cycle * cfg.clock_hz * util * rate * dt_secs;
                sdc_events += rng.poisson(lambda);
            }
        }
        elapsed += dt;
    }
    let hours = cfg.duration.as_hours_f64().max(1e-9);
    OnlineReport {
        backoff_secs_per_hour: backoff_time.as_secs_f64() / hours,
        backoff_fraction: backoff_time.as_secs_f64() / cfg.duration.as_secs_f64().max(1e-9),
        max_temp_c: if max_temp.is_finite() { max_temp } else { 0.0 },
        sdc_events,
        boundary_final_c: boundary.boundary_c(),
        performance_loss: if util_offered > 0.0 {
            1.0 - util_served / util_offered
        } else {
            0.0
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use silicon::catalog;

    fn app(suite: &Suite, prefix: &str) -> AppProfile {
        AppProfile {
            testcase: suite
                .testcases()
                .iter()
                .find(|t| t.name.starts_with(prefix))
                .expect("testcase")
                .id,
            utilization: 0.55,
            burst_amplitude: 0.45,
            burst_period: Duration::from_secs(120),
            spike_prob: 0.002,
        }
    }

    #[test]
    fn protection_keeps_tricky_defect_silent() {
        // MIX1's tricky defect gates at 59 ℃; Farron's boundary is capped
        // there, so the protected run must see no tricky SDC events.
        let suite = Suite::standard();
        let mix1 = catalog::by_name("MIX1").unwrap().processor;
        // An application that exercises float division (the tricky class)
        // but not the apparent defect's vector/CRC classes.
        let profile = app(&suite, "fpu/f64/fam2");
        let cores: Vec<u16> = (0..16).collect();
        let mut rng = DetRng::new(1);

        let protected = simulate_online(
            &mix1,
            &suite,
            &profile,
            &cores,
            &OnlineConfig::default(),
            &mut rng,
        );
        assert!(
            protected.max_temp_c < 59.0,
            "kept under 59 ℃: {}",
            protected.max_temp_c
        );
        assert_eq!(protected.sdc_events, 0, "no SDCs under protection");

        let unprotected = simulate_online(
            &mix1,
            &suite,
            &profile,
            &cores,
            &OnlineConfig {
                protected: false,
                ..OnlineConfig::default()
            },
            &mut rng,
        );
        assert!(
            unprotected.max_temp_c > protected.max_temp_c,
            "uncontrolled run gets hotter"
        );
    }

    #[test]
    fn backoff_is_rare_after_learning() {
        let suite = Suite::standard();
        let fpu2 = catalog::by_name("FPU2").unwrap().processor;
        // A moderate application that stays inside the 59 ℃ envelope.
        let profile = AppProfile {
            utilization: 0.35,
            burst_amplitude: 0.2,
            ..app(&suite, "alu/i32")
        };
        let cores: Vec<u16> = (0..24).collect();
        let mut rng = DetRng::new(2);
        let report = simulate_online(
            &fpu2,
            &suite,
            &profile,
            &cores,
            &OnlineConfig::default(),
            &mut rng,
        );
        // The paper reports 0.864 s/h; require the same order of
        // magnitude (well under a minute per hour).
        assert!(
            report.backoff_secs_per_hour < 60.0,
            "backoff {} s/h",
            report.backoff_secs_per_hour
        );
    }

    #[test]
    fn unprotected_run_never_backs_off() {
        let suite = Suite::standard();
        let cnst1 = catalog::by_name("CNST1").unwrap().processor;
        let profile = app(&suite, "alu/crc32");
        let mut rng = DetRng::new(3);
        let report = simulate_online(
            &cnst1,
            &suite,
            &profile,
            &[4, 5],
            &OnlineConfig {
                protected: false,
                ..OnlineConfig::default()
            },
            &mut rng,
        );
        assert_eq!(report.backoff_secs_per_hour, 0.0);
    }

    #[test]
    fn cooling_device_controls_temperature_without_performance_loss() {
        // §5: cooling-device control "has no impact on application
        // performance" — same protection, zero throughput loss.
        let suite = Suite::standard();
        let mix1 = catalog::by_name("MIX1").unwrap().processor;
        let profile = AppProfile {
            utilization: 0.5,
            burst_amplitude: 0.3,
            ..app(&suite, "fpu/f64/fam2")
        };
        let cores: Vec<u16> = (0..16).collect();
        let base = OnlineConfig {
            duration: Duration::from_hours(2),
            ..OnlineConfig::default()
        };

        let mut rng = DetRng::new(11);
        let backoff = simulate_online(&mix1, &suite, &profile, &cores, &base, &mut rng);
        let mut rng2 = DetRng::new(11);
        let cooling = simulate_online(
            &mix1,
            &suite,
            &profile,
            &cores,
            &OnlineConfig {
                control: ControlMode::CoolingDevice { boost_factor: 0.5 },
                ..base
            },
            &mut rng2,
        );
        // Both keep the die under MIX1's 59 ℃ gate…
        assert!(
            backoff.max_temp_c < 59.5,
            "backoff peak {}",
            backoff.max_temp_c
        );
        assert!(
            cooling.max_temp_c < 59.5,
            "cooling peak {}",
            cooling.max_temp_c
        );
        // …but only workload backoff costs throughput.
        assert!(
            backoff.performance_loss > 0.0,
            "backoff trades performance: {}",
            backoff.performance_loss
        );
        assert_eq!(
            cooling.performance_loss, 0.0,
            "cooling devices cost no application performance"
        );
    }

    #[test]
    fn report_is_deterministic() {
        let suite = Suite::standard();
        let mix2 = catalog::by_name("MIX2").unwrap().processor;
        let profile = app(&suite, "alu/hash64");
        let run = |seed| {
            let mut rng = DetRng::new(seed);
            let r = simulate_online(
                &mix2,
                &suite,
                &profile,
                &[0, 1, 2, 3],
                &OnlineConfig {
                    duration: Duration::from_hours(1),
                    ..Default::default()
                },
                &mut rng,
            );
            (
                r.sdc_events,
                r.max_temp_c.to_bits(),
                r.backoff_secs_per_hour.to_bits(),
            )
        };
        assert_eq!(run(9), run(9));
    }
}

//! Efficiency-focused test scheduling (§7.1).
//!
//! Farron "mainly allocates testing resources to testcases whose targeted
//! feature is utilized by the protected application, focusing on those
//! marked as 'suspected' (if any) and 'active'. Remaining testcases are
//! tested in a best-effort mode." Regular test duration further scales
//! with the adaptive temperature boundary: a cooler learned boundary
//! means the application never exercises high-temperature conditions, so
//! less testing time is needed to cover them.

use crate::priority::{PriorityBook, TestPriority};
use sdc_model::{CpuId, Duration, Feature};
use toolchain::{PlanEntry, Suite, TestPlan};

/// Farron's regular-round scheduler.
///
/// Slots are budgeted: the suspected and active pools each split a fixed
/// time budget across their members (clamped per testcase), so the round
/// stays near one hour whether a processor has three suspected testcases
/// or eighty.
#[derive(Debug, Clone, Copy)]
pub struct FarronScheduler {
    /// Total budget for suspected testcases.
    pub suspected_budget: Duration,
    /// Per-testcase clamp for suspected slots (min, max).
    pub suspected_clamp: (Duration, Duration),
    /// Total budget for active testcases targeting application features.
    pub active_budget: Duration,
    /// Per-testcase clamp for active slots (min, max).
    pub active_clamp: (Duration, Duration),
    /// Best-effort slot for everything else.
    pub best_effort_slot: Duration,
}

impl Default for FarronScheduler {
    fn default() -> Self {
        FarronScheduler {
            suspected_budget: Duration::from_mins(45),
            suspected_clamp: (Duration::from_secs(90), Duration::from_mins(5)),
            active_budget: Duration::from_mins(20),
            active_clamp: (Duration::from_secs(10), Duration::from_secs(90)),
            best_effort_slot: Duration::from_millis(1500),
        }
    }
}

/// Splits `budget` across `n` testcases, clamped per testcase.
fn split(budget: Duration, n: usize, clamp: (Duration, Duration)) -> Duration {
    if n == 0 {
        return clamp.1;
    }
    let each = budget / n as u64;
    each.max(clamp.0).min(clamp.1)
}

impl FarronScheduler {
    /// Duration multiplier from the learned temperature boundary: at or
    /// below 50 ℃ only 40% of the nominal slots are needed; the factor
    /// reaches 1.0 at 75 ℃ (Observation 10: higher working temperatures
    /// demand longer testing).
    pub fn boundary_factor(boundary_c: f64) -> f64 {
        (0.4 + 0.6 * (boundary_c - 50.0) / 25.0).clamp(0.4, 1.2)
    }

    /// Builds the prioritized plan for one processor.
    ///
    /// Suspected testcases come first (longest slots), then active
    /// testcases targeting the application's features, then everything
    /// else in best-effort mode.
    pub fn plan(
        &self,
        suite: &Suite,
        book: &PriorityBook,
        cpu: CpuId,
        app_features: &[Feature],
        boundary_c: f64,
    ) -> TestPlan {
        let factor = Self::boundary_factor(boundary_c);
        let scale = |d: Duration| Duration::from_secs_f64(d.as_secs_f64() * factor);
        let mut suspected_ids = Vec::new();
        let mut active_ids = Vec::new();
        let mut rest = Vec::new();
        for tc in suite.testcases() {
            match book.priority(cpu.0, tc.id) {
                TestPriority::Suspected => suspected_ids.push(tc.id),
                TestPriority::Active if app_features.contains(&tc.feature) => {
                    active_ids.push(tc.id)
                }
                _ => rest.push(PlanEntry {
                    testcase: tc.id,
                    duration: self.best_effort_slot,
                }),
            }
        }
        // Suspected testcases are confirmed reproducers on this very
        // processor; their slots are not reduced by a cool boundary.
        let s_slot = split(
            self.suspected_budget,
            suspected_ids.len(),
            self.suspected_clamp,
        );
        let a_slot = scale(split(
            self.active_budget,
            active_ids.len(),
            self.active_clamp,
        ));
        let mut entries: Vec<PlanEntry> = suspected_ids
            .into_iter()
            .map(|testcase| PlanEntry {
                testcase,
                duration: s_slot,
            })
            .collect();
        entries.extend(active_ids.into_iter().map(|testcase| PlanEntry {
            testcase,
            duration: a_slot,
        }));
        entries.extend(rest);
        TestPlan { entries }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdc_model::TestcaseId;

    #[test]
    fn boundary_factor_shape() {
        assert_eq!(FarronScheduler::boundary_factor(45.0), 0.4);
        assert_eq!(FarronScheduler::boundary_factor(50.0), 0.4);
        assert!((FarronScheduler::boundary_factor(75.0) - 1.0).abs() < 1e-12);
        assert_eq!(FarronScheduler::boundary_factor(100.0), 1.2);
    }

    #[test]
    fn plan_orders_by_priority_and_scales() {
        let suite = Suite::standard();
        let mut book = PriorityBook::new();
        let cpu = CpuId(1);
        // One suspected testcase, a handful of active FPU testcases.
        let fpu = suite.by_feature(Feature::Fpu);
        book.record_processor_detection(cpu.0, fpu[0]);
        for &id in &fpu[1..5] {
            book.record_fleet_detection(id);
        }
        // And an active testcase of a feature the app does not use.
        let trx = suite.by_feature(Feature::TrxMem);
        book.record_fleet_detection(trx[0]);

        let sched = FarronScheduler::default();
        let plan = sched.plan(&suite, &book, cpu, &[Feature::Fpu], 62.5);
        assert_eq!(
            plan.entries.len(),
            suite.len(),
            "everything gets at least best effort"
        );
        // Suspected first with the longest slot (one suspected testcase:
        // budget clamps to the 5-minute maximum, unscaled).
        assert_eq!(plan.entries[0].testcase, fpu[0]);
        assert_eq!(plan.entries[0].duration, Duration::from_mins(5));
        // Active app-feature testcases next.
        for e in &plan.entries[1..5] {
            assert!(fpu[1..5].contains(&e.testcase));
            assert!(e.duration > sched.best_effort_slot);
        }
        // The non-app active testcase is best-effort only.
        let trx_entry = plan
            .entries
            .iter()
            .find(|e| e.testcase == trx[0])
            .expect("present");
        assert_eq!(trx_entry.duration, sched.best_effort_slot);
    }

    #[test]
    fn farron_round_is_an_order_of_magnitude_shorter_than_baseline() {
        let suite = Suite::standard();
        let mut book = PriorityBook::new();
        let cpu = CpuId(2);
        // Fleet history at the Observation-11 scale: 73 effective
        // testcases, a few suspected on this CPU.
        for tc in suite.testcases().iter().take(73) {
            book.record_fleet_detection(tc.id);
        }
        book.record_processor_detection(cpu.0, TestcaseId(0));
        let plan = FarronScheduler::default().plan(
            &suite,
            &book,
            cpu,
            &[Feature::Alu, Feature::Fpu],
            60.0,
        );
        let farron_h = plan.total_duration().as_hours_f64();
        let baseline_h = TestPlan::equal_allocation(&suite, Duration::from_mins(633))
            .total_duration()
            .as_hours_f64();
        assert!((baseline_h - 10.55).abs() < 0.01, "baseline {baseline_h} h");
        assert!(
            farron_h < baseline_h / 5.0,
            "farron {farron_h} h vs baseline {baseline_h} h"
        );
        assert!(
            (0.3..3.0).contains(&farron_h),
            "farron round ≈ 1 h, got {farron_h}"
        );
    }
}

//! Serial vs parallel fleet engine: wall-clock speedup and cache
//! effectiveness.
//!
//! Two parts:
//!
//! * a one-shot comparison at ISSUE scale — a fleet sized so that about
//!   ten thousand defective processors materialize (~26M CPUs at the
//!   paper's prevalence) — run once serially and once with all available
//!   cores, cross-checked for bitwise equality, and written to
//!   `BENCH_parallel.json` at the repo root;
//! * criterion benches of the campaign at 300k CPUs for each thread
//!   count, for regression tracking.
//!
//! The speedup is only meaningful on multi-core hardware; the artifact
//! records `available_cores` so single-core CI runs are honest about it.

use criterion::{criterion_group, criterion_main, Criterion};
use fleet::parallel::resolve_threads;
use fleet::{run_campaign_on, FleetConfig, FleetPopulation};
use std::time::Instant;
use toolchain::Suite;

/// ~26M CPUs materialize ~10k defective processors at the paper's
/// prevalence of a few per ten thousand.
const ARTIFACT_FLEET: u64 = 26_000_000;

fn artifact(suite: &Suite) {
    let mut cfg = FleetConfig {
        total_cpus: ARTIFACT_FLEET,
        seed: 2021,
        threads: 1,
    };
    let t = Instant::now();
    let pop = FleetPopulation::sample(&cfg);
    let sample_secs = t.elapsed().as_secs_f64();

    let t = Instant::now();
    let serial = run_campaign_on(&cfg, suite, &pop);
    let serial_secs = t.elapsed().as_secs_f64();

    let threads = resolve_threads(0);
    cfg.threads = threads;
    let t = Instant::now();
    let parallel = run_campaign_on(&cfg, suite, &pop);
    let parallel_secs = t.elapsed().as_secs_f64();

    assert_eq!(
        serial.fates, parallel.fates,
        "parallel campaign must be bitwise identical to serial"
    );
    let stats = parallel.suite_cache;
    let speedup = serial_secs / parallel_secs;
    eprintln!(
        "[parallel_campaign] {} defective CPUs: sample {sample_secs:.2}s, \
         serial screen {serial_secs:.2}s, {threads}-thread {parallel_secs:.2}s \
         ({speedup:.2}x), suite-profile cache hit rate {:.4}",
        pop.defective.len(),
        stats.hit_rate()
    );

    // The per-stage breakdown keeps single-core runs honest: when
    // `available_cores` is 1 and the speedup is ≈1×, the stage timings
    // still show where the serial wall-clock goes (population sampling
    // vs the screening scan itself).
    let json = format!(
        "{{\n  \"fleet_cpus\": {},\n  \"defective_cpus\": {},\n  \"serial_secs\": {:.4},\n  \"parallel_secs\": {:.4},\n  \"stage_sample_secs\": {:.4},\n  \"stage_screen_serial_secs\": {:.4},\n  \"stage_screen_parallel_secs\": {:.4},\n  \"threads\": {},\n  \"available_cores\": {},\n  \"speedup\": {:.4},\n  \"results_identical\": true,\n  \"suite_profile_cache\": {{\n    \"hits\": {},\n    \"misses\": {},\n    \"hit_rate\": {:.6}\n  }}\n}}\n",
        pop.total(),
        pop.defective.len(),
        serial_secs,
        parallel_secs,
        sample_secs,
        serial_secs,
        parallel_secs,
        threads,
        resolve_threads(0),
        speedup,
        stats.hits,
        stats.misses,
        stats.hit_rate(),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_parallel.json");
    std::fs::write(path, json).expect("write BENCH_parallel.json");
    eprintln!("[parallel_campaign] wrote {path}");
}

fn bench_campaign_by_threads(c: &mut Criterion) {
    let suite = Suite::standard();
    artifact(&suite);

    let cfg = FleetConfig {
        total_cpus: 300_000,
        seed: 2021,
        threads: 1,
    };
    let pop = FleetPopulation::sample(&cfg);
    let mut group = c.benchmark_group("fleet/parallel_campaign_300k");
    group.sample_size(10);
    for threads in [1usize, 2, 4, resolve_threads(0)] {
        let cfg = FleetConfig { threads, ..cfg };
        group.bench_function(format!("{threads}_threads"), |b| {
            b.iter(|| run_campaign_on(&cfg, &suite, &pop))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_campaign_by_threads
}
criterion_main!(benches);

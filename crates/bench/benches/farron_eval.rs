//! Figure 11 / Table 4 benches: one Farron regular round vs one baseline
//! round on a faulty processor, and the online temperature-control
//! simulation. Prints the coverage/overhead comparison once.

use analysis::study::{run_case, StudyConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use farron::baseline::Baseline;
use farron::online::{simulate_online, AppProfile, OnlineConfig};
use farron::priority::PriorityBook;
use farron::schedule::FarronScheduler;
use fleet::screening::StaticSuiteProfile;
use sdc_model::{DetRng, Duration, Feature};
use silicon::catalog;
use toolchain::{framework, ExecConfig, Suite};

fn burn_in() -> ExecConfig {
    ExecConfig {
        preheat_c: Some(58.0),
        stress_idle_cores: true,
        ..ExecConfig::default()
    }
}

fn bench_rounds(c: &mut Criterion) {
    let suite = Suite::standard();
    let case = catalog::by_name("FPU1").expect("catalog");
    let processor = &case.processor;
    let profiles = StaticSuiteProfile::build(&suite, processor.physical_cores as usize);
    let reference = run_case(
        &case,
        &suite,
        &profiles,
        &StudyConfig {
            per_testcase: Duration::from_mins(10),
            seed: 1,
            max_candidates: None,
            exec: burn_in(),
            threads: 0,
        },
    );
    let mut book = PriorityBook::new();
    for &id in &reference.failing {
        book.record_processor_detection(processor.id.0, id);
    }
    let farron_plan =
        FarronScheduler::default().plan(&suite, &book, processor.id, &[Feature::Fpu], 58.0);
    let baseline_plan = Baseline::default().plan(&suite);
    eprintln!(
        "[table 4] FPU1 round: Farron {:.2} h vs baseline {:.2} h (paper: 1.02 vs 10.55)",
        farron_plan.total_duration().as_hours_f64(),
        baseline_plan.total_duration().as_hours_f64()
    );

    let mut group = c.benchmark_group("farron");
    group.sample_size(10);
    group.bench_function("fig11_farron_round", |b| {
        b.iter(|| {
            let mut rng = DetRng::new(2);
            framework::run_plan(processor, &suite, &farron_plan, burn_in(), &mut rng)
        })
    });
    group.bench_function("fig11_baseline_round", |b| {
        b.iter(|| {
            let mut rng = DetRng::new(3);
            framework::run_plan(
                processor,
                &suite,
                &baseline_plan,
                ExecConfig::default(),
                &mut rng,
            )
        })
    });
    group.bench_function("table4_online_1h", |b| {
        let app = AppProfile {
            testcase: reference.failing[0],
            utilization: 0.3,
            burst_amplitude: 0.15,
            burst_period: Duration::from_secs(120),
            spike_prob: 0.002,
        };
        let cores: Vec<u16> = (0..processor.physical_cores).collect();
        b.iter(|| {
            let mut rng = DetRng::new(4);
            simulate_online(
                processor,
                &suite,
                &app,
                &cores,
                &OnlineConfig {
                    duration: Duration::from_hours(1),
                    ..Default::default()
                },
                &mut rng,
            )
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_rounds
}
criterion_main!(benches);

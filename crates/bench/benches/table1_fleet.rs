//! Table 1 / Table 2 regeneration benches: fleet sampling, static suite
//! profiling, screening, and the end-to-end campaign at reduced scale.
//! Prints the regenerated rows once so the bench doubles as a checker.

use criterion::{criterion_group, criterion_main, Criterion};
use fleet::screening::StaticSuiteProfile;
use fleet::{run_campaign, FleetConfig, FleetPopulation, StageSpec};
use toolchain::Suite;

fn bench_population(c: &mut Criterion) {
    c.bench_function("fleet/sample_population_100k", |b| {
        b.iter(|| {
            let cfg = FleetConfig {
                total_cpus: 100_000,
                seed: 7,
                threads: 0,
            };
            FleetPopulation::sample(&cfg)
        })
    });
}

fn bench_static_profiles(c: &mut Criterion) {
    let suite = Suite::standard();
    c.bench_function("fleet/static_suite_profile_16c", |b| {
        b.iter(|| StaticSuiteProfile::build(&suite, 16))
    });
}

fn bench_screening(c: &mut Criterion) {
    let suite = Suite::standard();
    let profiles = StaticSuiteProfile::build(&suite, 16);
    let cpu = silicon::catalog::by_name("MIX1")
        .expect("catalog")
        .processor;
    let stage = StageSpec::default_pipeline()[2]; // re-install
    c.bench_function("fleet/stage_detection_probability", |b| {
        b.iter(|| fleet::stage_detection_probability(&cpu, &suite, &profiles, &stage, 1e7))
    });
}

fn bench_campaign(c: &mut Criterion) {
    let suite = Suite::standard();
    // Print the regenerated Table 1 once (the paper's reference beside it).
    let out = run_campaign(
        &FleetConfig {
            total_cpus: 300_000,
            seed: 2021,
            threads: 0,
        },
        &suite,
    );
    eprintln!("[table1 @300k CPUs] measured vs paper (‱):");
    for ((label, measured), (_, paper)) in out
        .table1()
        .iter()
        .zip(analysis::failure_rates::PAPER_TABLE1_BP)
    {
        eprintln!("  {label:<12} {measured:>7.3} vs {paper:>6.3}");
    }
    let mut group = c.benchmark_group("fleet/campaign");
    group.sample_size(10);
    group.bench_function("300k_cpus", |b| {
        b.iter(|| {
            run_campaign(
                &FleetConfig {
                    total_cpus: 300_000,
                    seed: 2021,
                    threads: 0,
                },
                &suite,
            )
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_population, bench_static_profiles, bench_screening, bench_campaign
}
criterion_main!(benches);

//! Campaign-scale hot path: per-stage timing of the fleet pipeline —
//! sample (1.05M-CPU population), screen (closed-form campaign),
//! execute (the executor-driven deep study, fast event-skipping path
//! vs [`toolchain::Executor::try_run_reference`]) and analyze (the
//! columnar record corpus passes) — mirroring `BENCH_softcore.json`.
//!
//! Two modes:
//!
//! * default — measures every stage at the default 1.05M-CPU fleet,
//!   cross-checks that the fast executor's study is bitwise identical
//!   to the reference path at 1 and 8 threads, writes
//!   `BENCH_campaign.json` at the repo root, then runs criterion
//!   benches for tracking;
//! * `--quick` — tier-1 regression gate: re-measures the single-case
//!   executor speedup (fast vs reference chunk loop) and fails
//!   (exit 1) if it regressed more than 20% against the checked-in
//!   artifact. Like the softcore gate it compares the speedup *ratio*,
//!   so it is meaningful across machines of different absolute speed.
//!
//! Unit profiles are warmed before timing (one untimed fast run), so
//! the execute stages compare the chunk loops themselves — profiling
//! costs are identical on both paths (`ProfileKey` does not include
//! `reference_executor`; see `tests/executor_equivalence.rs`).

use analysis::study::{run_case_cached, run_deep_study, run_deep_study_with, StudyConfig, StudyData};
use fleet::screening::{StaticSuiteProfile, SuiteProfileCache};
use fleet::{run_campaign_on, FleetConfig, FleetPopulation};
use sdc_model::{DataType, Duration};
use silicon::catalog;
use std::sync::Arc;
use std::time::Instant;
use toolchain::{ExecConfig, ProfileCache, Suite};

const ARTIFACT: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_campaign.json");

/// The study behind the execute stage: the default deep-study shape
/// (seed 27, record cap 128) at a campaign-scale per-testcase duration,
/// long enough that the thermal trajectory converges and the
/// steady-state draw path carries most chunks — exactly the regime the
/// ROADMAP's weeks-long virtual campaigns live in.
fn execute_cfg(reference: bool, threads: usize) -> StudyConfig {
    StudyConfig {
        per_testcase: Duration::from_mins(30),
        seed: 27,
        max_candidates: None,
        exec: ExecConfig {
            max_records: 128,
            reference_executor: reference,
            ..ExecConfig::default()
        },
        threads,
    }
}

/// Field-wise study equality (CaseData has no PartialEq derive).
fn studies_identical(a: &StudyData, b: &StudyData) -> bool {
    a.cases.len() == b.cases.len()
        && a.cases.iter().zip(&b.cases).all(|(x, y)| {
            x.name == y.name
                && x.failing == y.failing
                && x.tested == y.tested
                && x.records == y.records
                && x.freq_per_setting == y.freq_per_setting
        })
}

fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t = Instant::now();
    let out = f();
    (out, t.elapsed().as_secs_f64())
}

/// The analyze stage: one corpus build plus every ported record pass,
/// the way `conformance::metrics::study_metrics` consumes a study.
fn analyze(study: &StudyData) -> f64 {
    let corpus = study.corpus();
    let shares = analysis::datatypes::figure3_from(&corpus);
    let mut acc = shares.iter().map(|s| s.proportion).sum::<f64>();
    acc += corpus.records.zero_to_one_share();
    acc += corpus.records.fraction_part_share(DataType::F64);
    for dt in [DataType::I32, DataType::F32, DataType::F64, DataType::F64X] {
        acc += analysis::bitflips::msb_share(&corpus.records.bit_histogram(dt), 4);
    }
    let mined = corpus.records.mine_patterns();
    acc += mined.iter().map(|s| s.pattern_share).sum::<f64>();
    acc += corpus.records.flip_multiplicity_with(&mined, DataType::F64).one;
    acc += analysis::reproducibility::summarize(study).share_above_one_per_min;
    acc += analysis::observations::obs5_types(study).computation as f64;
    acc
}

/// Single-case executor speedup (fast vs reference chunk loop) on a
/// shared, pre-warmed unit-profile cache — the quantity the `--quick`
/// gate tracks. FPU1's candidate set is small, so this stays fast. The
/// fast leg runs in well under a millisecond, where one-shot wall
/// clocks are dominated by scheduler noise, so each leg is timed as
/// the minimum over several alternating iterations.
fn single_case_speedup(per_testcase: Duration) -> f64 {
    let suite = Suite::standard();
    let case = catalog::by_name("FPU1").expect("catalog");
    let profiles = StaticSuiteProfile::build(&suite, case.processor.physical_cores as usize);
    let cache = Arc::new(ProfileCache::with_capacity(256));
    let cfg = |reference: bool| StudyConfig {
        per_testcase,
        ..execute_cfg(reference, 1)
    };
    // Warm the unit-profile cache so every timed run hits it.
    run_case_cached(&case, &suite, &profiles, &cfg(false), Some(Arc::clone(&cache)));
    let (mut fast_secs, mut ref_secs) = (f64::INFINITY, f64::INFINITY);
    let mut first = None;
    for _ in 0..7 {
        let (fast, secs) = timed(|| {
            run_case_cached(&case, &suite, &profiles, &cfg(false), Some(Arc::clone(&cache)))
        });
        fast_secs = fast_secs.min(secs);
        let (reference, secs) = timed(|| {
            run_case_cached(&case, &suite, &profiles, &cfg(true), Some(Arc::clone(&cache)))
        });
        ref_secs = ref_secs.min(secs);
        assert_eq!(fast.records, reference.records, "fast path must be bitwise identical");
        assert_eq!(fast.freq_per_setting, reference.freq_per_setting);
        let run = first.get_or_insert_with(|| fast.records.clone());
        assert_eq!(*run, fast.records, "repeated runs must be deterministic");
    }
    ref_secs / fast_secs
}

/// Reads a numeric field out of the checked-in artifact (the harness
/// has no JSON parser; the artifact is flat and written by this bench).
fn artifact_field(json: &str, field: &str) -> Option<f64> {
    let key = format!("\"{field}\":");
    let rest = &json[json.find(&key)? + key.len()..];
    let end = rest.find([',', '\n', '}'])?;
    rest[..end].trim().parse().ok()
}

fn artifact() {
    let suite = Suite::standard();

    // Stage 1: sample the default production-scale fleet.
    let fleet_cfg = FleetConfig::default();
    let (pop, sample_secs) = timed(|| FleetPopulation::sample(&fleet_cfg));

    // Stage 2: screen it (closed-form fates, no executor).
    let (outcome, screen_secs) = timed(|| run_campaign_on(&fleet_cfg, &suite, &pop));
    assert!(outcome.escaped() > 0, "campaign produces escapes at scale");

    // Stage 3: execute — the executor-driven study, fast vs reference,
    // threads 1 and 8. All runs share one suite-profile and one unit-
    // profile cache, warmed by an untimed run, the way a campaign that
    // studies many processors amortizes profiling: every timed run pays
    // the same (zero) profiling cost and the chunk loops are what is
    // measured. Both caches are result-transparent (`ProfileKey`
    // excludes `reference_executor`), so all five studies are identical.
    let suite_cache = SuiteProfileCache::new();
    let unit_cache = ProfileCache::shared();
    let deep = |reference: bool, threads: usize| {
        run_deep_study_with(&execute_cfg(reference, threads), &suite_cache, Arc::clone(&unit_cache))
    };
    deep(false, 0);
    let (fast_t1, exec_fast_t1) = timed(|| deep(false, 1));
    let (fast_t8, exec_fast_t8) = timed(|| deep(false, 8));
    let (ref_t1, exec_ref_t1) = timed(|| deep(true, 1));
    let (ref_t8, exec_ref_t8) = timed(|| deep(true, 8));
    let identical = studies_identical(&fast_t1, &ref_t1)
        && studies_identical(&fast_t8, &ref_t8)
        && studies_identical(&fast_t1, &fast_t8)
        && studies_identical(&ref_t1, &ref_t8);
    assert!(identical, "fast executor diverged from reference");

    // Stage 4: analyze — the columnar corpus passes.
    let (_, analyze_secs) = timed(|| analyze(&fast_t1));

    let speedup_t1 = exec_ref_t1 / exec_fast_t1;
    let speedup_t8 = exec_ref_t8 / exec_fast_t8;
    let fixed = sample_secs + screen_secs + analyze_secs;
    let campaign_speedup = (fixed + exec_ref_t1) / (fixed + exec_fast_t1);
    let speedup_quick = single_case_speedup(Duration::from_mins(20));

    eprintln!(
        "[campaign_hotpath] sample {sample_secs:.2}s, screen {screen_secs:.2}s, \
         execute fast {exec_fast_t1:.2}s/{exec_fast_t8:.2}s vs reference \
         {exec_ref_t1:.2}s/{exec_ref_t8:.2}s (t1/t8), analyze {analyze_secs:.3}s; \
         executor speedup {speedup_t1:.2}x (t1) {speedup_t8:.2}x (t8), \
         end-to-end {campaign_speedup:.2}x, quick-config {speedup_quick:.2}x"
    );
    let json = format!(
        "{{\n  \"fleet_cpus\": {},\n  \"defective_cpus\": {},\n  \
         \"stage_sample_secs\": {sample_secs:.4},\n  \
         \"stage_screen_secs\": {screen_secs:.4},\n  \
         \"stage_execute_fast_t1_secs\": {exec_fast_t1:.4},\n  \
         \"stage_execute_fast_t8_secs\": {exec_fast_t8:.4},\n  \
         \"stage_execute_reference_t1_secs\": {exec_ref_t1:.4},\n  \
         \"stage_execute_reference_t8_secs\": {exec_ref_t8:.4},\n  \
         \"stage_analyze_secs\": {analyze_secs:.4},\n  \
         \"results_identical\": {identical},\n  \
         \"speedup_execute_t1\": {speedup_t1:.4},\n  \
         \"speedup_execute_t8\": {speedup_t8:.4},\n  \
         \"campaign_speedup\": {campaign_speedup:.4},\n  \
         \"speedup_quick\": {speedup_quick:.4}\n}}\n",
        pop.total(),
        pop.defective.len(),
    );
    std::fs::write(ARTIFACT, json).expect("write BENCH_campaign.json");
    eprintln!("[campaign_hotpath] wrote {ARTIFACT}");
}

/// Tier-1 regression gate (`--quick`): exits nonzero if the executor
/// fast path's speedup over the reference chunk loop fell more than
/// 20% below the checked-in artifact.
fn quick_gate() {
    let json = match std::fs::read_to_string(ARTIFACT) {
        Ok(j) => j,
        Err(_) => {
            eprintln!("[campaign_hotpath] no {ARTIFACT}; run without --quick to create it");
            return;
        }
    };
    let recorded = artifact_field(&json, "speedup_quick")
        .expect("BENCH_campaign.json has no speedup_quick field");
    let current = single_case_speedup(Duration::from_mins(20));
    eprintln!(
        "[campaign_hotpath] quick gate: executor speedup {current:.2}x \
         (recorded {recorded:.2}x, floor {:.2}x)",
        recorded * 0.8
    );
    if current < recorded * 0.8 {
        eprintln!("[campaign_hotpath] FAIL: campaign executor speedup regressed >20%");
        std::process::exit(1);
    }
}

fn main() {
    if std::env::args().any(|a| a == "--quick") {
        quick_gate();
        return;
    }
    artifact();

    // Criterion tracking: the per-case executor paths and the analyze
    // stage, at a short duration that keeps iterations snappy.
    let mut c = criterion::Criterion::default().sample_size(10);
    let suite = Suite::standard();
    let case = catalog::by_name("FPU1").expect("catalog");
    let profiles = StaticSuiteProfile::build(&suite, case.processor.physical_cores as usize);
    let cache = Arc::new(ProfileCache::with_capacity(256));
    let short = |reference: bool| StudyConfig {
        per_testcase: Duration::from_mins(5),
        ..execute_cfg(reference, 1)
    };
    run_case_cached(&case, &suite, &profiles, &short(false), Some(Arc::clone(&cache)));
    let mut group = c.benchmark_group("campaign_hotpath");
    group.bench_function("execute_fast_fpu1", |b| {
        b.iter(|| run_case_cached(&case, &suite, &profiles, &short(false), Some(Arc::clone(&cache))))
    });
    group.bench_function("execute_reference_fpu1", |b| {
        b.iter(|| run_case_cached(&case, &suite, &profiles, &short(true), Some(Arc::clone(&cache))))
    });
    let study = run_deep_study(&StudyConfig::default());
    group.bench_function("analyze_corpus", |b| b.iter(|| analyze(&study)));
    group.finish();
}

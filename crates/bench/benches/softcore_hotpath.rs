//! Softcore interpreter hot-path throughput: the monomorphized,
//! predecoded fast path ([`Machine::run`]) vs the seed interpreter kept
//! verbatim as [`Machine::run_reference`], for golden (NoFaults) and
//! fault-injected runs.
//!
//! Two modes:
//!
//! * default — measures all paths, writes `BENCH_softcore.json` at the
//!   repo root (instructions/sec plus the fast-path speedup over the
//!   seed baseline), then runs criterion benches for tracking;
//! * `--quick` — regression gate for tier-1: re-measures the golden
//!   fast path and the reference baseline, and fails (exit 1) if the
//!   golden-vs-reference speedup regressed more than 20% against the
//!   checked-in artifact. The gate compares the speedup *ratio*, not
//!   raw instructions/sec, so it is meaningful across machines of
//!   different absolute speed.

use sdc_model::{ArchId, CpuId, DataType, DetRng};
use silicon::{BitPattern, Defect, DefectKind, DefectScope, Injector, Processor, Trigger};
use softcore::{DecodedProgram, InstClass, IntOpKind, Machine, NoFaults, Program, ProgramBuilder};
use std::time::Instant;

const ARTIFACT: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_softcore.json");

/// The integer hot loop every profiling run is dominated by: two ALU
/// ops per iteration, all three fusion shapes reachable.
fn hot_program(iters: u32) -> Program {
    let mut b = ProgramBuilder::new();
    b.mov_imm(0, 3).mov_imm(1, 5).loop_start(iters);
    b.int_op(IntOpKind::Add, DataType::I32, 2, 0, 1);
    b.int_op(IntOpKind::Xor, DataType::I32, 0, 0, 2);
    b.loop_end();
    b.build()
}

/// A lightly defective single-core processor: low flat rate so the
/// injected bench measures retire-path dispatch, not event handling.
fn defective_processor() -> Processor {
    let mut p = Processor::healthy(CpuId(1), ArchId(2), 1.0);
    p.physical_cores = 4;
    p.defects.push(Defect::new(
        DefectKind::Computation {
            classes: vec![InstClass::IntArith],
            datatypes: vec![DataType::I32],
            patterns: vec![BitPattern {
                mask: 0b100,
                weight: 1.0,
            }],
            pattern_dt: DataType::I32,
            random_mask_prob: 0.0,
        },
        DefectScope::SingleCore(0),
        Trigger::flat(1e-4),
    ));
    p
}

#[derive(Clone, Copy, PartialEq)]
enum Path {
    /// Fast path (predecode + fusion + monomorphized NoFaults).
    Golden,
    /// Seed interpreter, NoFaults through the same generic entry.
    Reference,
    /// Fast path with a sparse-indexed injector attached.
    Injected,
}

/// Instructions/sec of one interpreter path, measured by repeating the
/// hot program on one reused machine until `budget_secs` elapses.
fn measure_ips(path: Path, budget_secs: f64) -> f64 {
    let program = hot_program(10_000);
    let mut machine = Machine::new(1, 4096);
    machine.load(0, program);
    let proc_ = defective_processor();
    let run_once = |machine: &mut Machine| -> u64 {
        machine.restart();
        let mut rng = DetRng::new(1);
        let out = match path {
            Path::Golden => machine.run(&mut NoFaults, &mut rng, u64::MAX),
            Path::Reference => machine.run_reference(&mut NoFaults, &mut rng, u64::MAX),
            Path::Injected => {
                let mut injector = Injector::new(&proc_, vec![0], 45.0, DetRng::new(0x1f));
                injector.set_temps(&[62.0]);
                machine.run(&mut injector, &mut rng, u64::MAX)
            }
        };
        assert!(out.completed);
        out.steps
    };
    run_once(&mut machine); // warm-up, untimed
    let mut steps = 0u64;
    let mut reps = 0u32;
    let t = Instant::now();
    loop {
        steps += run_once(&mut machine);
        reps += 1;
        if reps >= 3 && t.elapsed().as_secs_f64() >= budget_secs {
            break;
        }
    }
    steps as f64 / t.elapsed().as_secs_f64()
}

/// Reads a numeric field out of the checked-in artifact (the harness
/// has no JSON parser; the artifact is flat and written by this bench).
fn artifact_field(json: &str, field: &str) -> Option<f64> {
    let key = format!("\"{field}\":");
    let rest = &json[json.find(&key)? + key.len()..];
    let end = rest.find([',', '\n', '}'])?;
    rest[..end].trim().parse().ok()
}

fn artifact() {
    let golden = measure_ips(Path::Golden, 1.0);
    let reference = measure_ips(Path::Reference, 1.0);
    let injected = measure_ips(Path::Injected, 1.0);
    let fused = DecodedProgram::decode(&hot_program(10_000)).fused_pairs();
    let speedup_golden = golden / reference;
    let speedup_injected = injected / reference;
    eprintln!(
        "[softcore_hotpath] golden {golden:.0} inst/s, reference {reference:.0} inst/s \
         ({speedup_golden:.2}x), injected {injected:.0} inst/s ({speedup_injected:.2}x), \
         {fused} fused pair sites"
    );
    let json = format!(
        "{{\n  \"golden_ips\": {golden:.0},\n  \"reference_ips\": {reference:.0},\n  \
         \"injected_ips\": {injected:.0},\n  \"speedup_golden\": {speedup_golden:.4},\n  \
         \"speedup_injected\": {speedup_injected:.4},\n  \"fused_pair_sites\": {fused}\n}}\n"
    );
    std::fs::write(ARTIFACT, json).expect("write BENCH_softcore.json");
    eprintln!("[softcore_hotpath] wrote {ARTIFACT}");
}

/// Tier-1 regression gate (`--quick`): exits nonzero if the fast path's
/// speedup over the seed interpreter fell more than 20% below the
/// checked-in artifact.
fn quick_gate() {
    let json = match std::fs::read_to_string(ARTIFACT) {
        Ok(j) => j,
        Err(_) => {
            eprintln!("[softcore_hotpath] no {ARTIFACT}; run without --quick to create it");
            return;
        }
    };
    let recorded = artifact_field(&json, "speedup_golden")
        .expect("BENCH_softcore.json has no speedup_golden field");
    let golden = measure_ips(Path::Golden, 0.4);
    let reference = measure_ips(Path::Reference, 0.4);
    let current = golden / reference;
    eprintln!(
        "[softcore_hotpath] quick gate: golden speedup {current:.2}x \
         (recorded {recorded:.2}x, floor {:.2}x)",
        recorded * 0.8
    );
    if current < recorded * 0.8 {
        eprintln!("[softcore_hotpath] FAIL: golden-run throughput regressed >20%");
        std::process::exit(1);
    }
}

fn main() {
    if std::env::args().any(|a| a == "--quick") {
        quick_gate();
        return;
    }
    artifact();
    let mut c = criterion::Criterion::default().sample_size(20);
    let mut group = c.benchmark_group("softcore_hotpath");
    let program = hot_program(10_000);
    let steps = program.estimated_steps();
    group.throughput(criterion::Throughput::Elements(steps));
    for (name, path) in [
        ("golden_fast", Path::Golden),
        ("reference", Path::Reference),
        ("injected", Path::Injected),
    ] {
        let proc_ = defective_processor();
        let mut machine = Machine::new(1, 4096);
        machine.load(0, program.clone());
        group.bench_function(name, |b| {
            b.iter(|| {
                machine.restart();
                let mut rng = DetRng::new(1);
                match path {
                    Path::Golden => machine.run(&mut NoFaults, &mut rng, u64::MAX),
                    Path::Reference => machine.run_reference(&mut NoFaults, &mut rng, u64::MAX),
                    Path::Injected => {
                        let mut injector =
                            Injector::new(&proc_, vec![0], 45.0, DetRng::new(0x1f));
                        injector.set_temps(&[62.0]);
                        machine.run(&mut injector, &mut rng, u64::MAX)
                    }
                }
            })
        });
    }
    group.finish();
}

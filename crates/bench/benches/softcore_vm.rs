//! Substrate benches: VM throughput per workload family, MESI traffic,
//! extended-precision soft-float throughput.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use sdc_model::DetRng;
use softcore::{
    FOpKind, IntOpKind, LaneType, Machine, NoFaults, Precision, ProgramBuilder, VOpKind,
};
use softfloat::{atan, F80};

fn bench_vm_families(c: &mut Criterion) {
    let mut group = c.benchmark_group("vm_throughput");
    let families: Vec<(&str, softcore::Program)> = vec![
        ("int_alu", {
            let mut b = ProgramBuilder::new();
            b.mov_imm(0, 3).mov_imm(1, 5).loop_start(10_000);
            b.int_op(IntOpKind::Add, sdc_model::DataType::I32, 2, 0, 1);
            b.int_op(IntOpKind::Xor, sdc_model::DataType::I32, 0, 0, 2);
            b.loop_end();
            b.build()
        }),
        ("float_fma", {
            let mut b = ProgramBuilder::new();
            b.fmov_imm(0, 1.1)
                .fmov_imm(1, 0.9)
                .fmov_imm(2, 0.1)
                .loop_start(10_000);
            b.ffma(Precision::F64, 3, 0, 1, 2);
            b.fop(FOpKind::Mul, Precision::F64, 0, 0, 1);
            b.loop_end();
            b.build()
        }),
        ("vector_fma", {
            let mut b = ProgramBuilder::new();
            b.loop_start(10_000);
            b.vop(VOpKind::Fma, LaneType::F32x8, 1, 0, 1, 2);
            b.loop_end();
            b.build()
        }),
        ("crc32", {
            let mut b = ProgramBuilder::new();
            b.mov_imm(0, 0xffff_ffff)
                .mov_imm(1, 0x0123_4567)
                .loop_start(10_000);
            b.crc32_step(0, 0, 1);
            b.loop_end();
            b.build()
        }),
        ("x87_atan", {
            let mut b = ProgramBuilder::new();
            b.fmov_imm(0, 0.7);
            b.push(softcore::Inst::XFromF { dst: 0, src: 0 });
            b.loop_start(500);
            b.xatan(1, 0);
            b.loop_end();
            b.build()
        }),
    ];
    for (name, program) in families {
        let steps = program.estimated_steps();
        group.throughput(Throughput::Elements(steps));
        group.bench_function(name, |bench| {
            bench.iter(|| {
                let mut m = Machine::new(1, 4096);
                m.load(0, program.clone());
                let mut rng = DetRng::new(1);
                m.run(&mut NoFaults, &mut rng, u64::MAX)
            })
        });
    }
    group.finish();
}

fn bench_mesi_contention(c: &mut Criterion) {
    let mut group = c.benchmark_group("mesi");
    for threads in [2usize, 4] {
        group.bench_function(format!("lock_counter_t{threads}"), |bench| {
            bench.iter(|| {
                let mut m = Machine::new(threads, 1 << 16);
                for t in 0..threads {
                    let mut b = ProgramBuilder::new();
                    b.mov_imm(0, 0).mov_imm(1, 64).mov_imm(2, 1).loop_start(200);
                    b.lock_acquire(0);
                    b.load(3, 1, 0);
                    b.int_op(IntOpKind::Add, sdc_model::DataType::Bin64, 3, 3, 2);
                    b.store(3, 1, 0);
                    b.lock_release(0);
                    b.loop_end();
                    m.load(t, b.build());
                }
                let mut rng = DetRng::new(2);
                let out = m.run(&mut NoFaults, &mut rng, 100_000_000);
                assert!(out.completed);
                assert_eq!(m.mem.raw_read_u64(64), threads as u64 * 200);
            })
        });
    }
    group.finish();
}

fn bench_softfloat(c: &mut Criterion) {
    let mut group = c.benchmark_group("softfloat");
    let a = F80::from_f64(1.234_567_89);
    let b = F80::from_f64(0.987_654_32);
    group.bench_function("mul", |bench| bench.iter(|| std::hint::black_box(a) * b));
    group.bench_function("add", |bench| bench.iter(|| std::hint::black_box(a) + b));
    group.bench_function("div", |bench| bench.iter(|| std::hint::black_box(a) / b));
    group.bench_function("atan", |bench| bench.iter(|| atan(std::hint::black_box(a))));
    group.bench_function("encode_decode", |bench| {
        bench.iter(|| F80::decode(std::hint::black_box(a).encode()))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_vm_families, bench_mesi_contention, bench_softfloat
}
criterion_main!(benches);

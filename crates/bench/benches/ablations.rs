//! Ablations of Farron's design choices (DESIGN.md §ablations).
//!
//! Each ablation disables one mechanism and reports its effect once
//! (coverage or capacity deltas), while Criterion measures the runtime of
//! the ablated round:
//!
//! 1. testcase prioritization on/off;
//! 2. burn-in preheating on/off (coverage of temperature-gated SDCs);
//! 3. adaptive vs. fixed temperature boundary (backoff frequency);
//! 4. fine-grained vs. whole-processor decommission (capacity retained).

use analysis::study::{run_case, StudyConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use farron::baseline::Baseline;
use farron::decommission::{decide, DecommissionDecision, ReliablePool};
use farron::online::{simulate_online, AppProfile, OnlineConfig};
use farron::priority::PriorityBook;
use farron::schedule::FarronScheduler;
use fleet::screening::StaticSuiteProfile;
use sdc_model::{CpuId, DetRng, Duration, Feature};
use silicon::catalog;
use toolchain::{framework, ExecConfig, Suite, TestPlan};

fn burn_in() -> ExecConfig {
    ExecConfig {
        preheat_c: Some(58.0),
        stress_idle_cores: true,
        ..ExecConfig::default()
    }
}

fn coverage(
    processor: &silicon::Processor,
    suite: &Suite,
    plan: &TestPlan,
    exec: ExecConfig,
    known: &[sdc_model::TestcaseId],
    seed: u64,
) -> f64 {
    let mut rng = DetRng::new(seed);
    let report = framework::run_plan(processor, suite, plan, exec, &mut rng);
    report
        .failing_testcases()
        .iter()
        .filter(|t| known.contains(t))
        .count() as f64
        / known.len().max(1) as f64
}

fn ablation_prioritization_and_burn_in(c: &mut Criterion) {
    let suite = Suite::standard();
    let case = catalog::by_name("FPU2").expect("catalog");
    let processor = &case.processor;
    let profiles = StaticSuiteProfile::build(&suite, processor.physical_cores as usize);
    let reference = run_case(
        &case,
        &suite,
        &profiles,
        &StudyConfig {
            per_testcase: Duration::from_mins(10),
            seed: 1,
            max_candidates: None,
            exec: burn_in(),
            threads: 0,
        },
    );
    let known = reference.failing.clone();
    let mut book = PriorityBook::new();
    for &id in &known {
        book.record_processor_detection(processor.id.0, id);
    }
    let farron_plan =
        FarronScheduler::default().plan(&suite, &book, processor.id, &[Feature::Fpu], 58.0);
    // Ablation 1: no prioritization — same total budget spread equally.
    let equal_plan = TestPlan::equal_allocation(&suite, farron_plan.total_duration());
    // Ablation 2: prioritization but no burn-in.
    let cov_full = coverage(processor, &suite, &farron_plan, burn_in(), &known, 10);
    let cov_no_prio = coverage(processor, &suite, &equal_plan, burn_in(), &known, 11);
    let cov_no_burn = coverage(
        processor,
        &suite,
        &farron_plan,
        ExecConfig::default(),
        &known,
        12,
    );
    let cov_baseline = coverage(
        processor,
        &suite,
        &Baseline::default().plan(&suite),
        ExecConfig::default(),
        &known,
        13,
    );
    eprintln!(
        "[ablation/FPU2] coverage: full {cov_full:.2}, -prioritization {cov_no_prio:.2}, -burn-in {cov_no_burn:.2}, baseline {cov_baseline:.2}"
    );

    let mut group = c.benchmark_group("ablation");
    group.sample_size(10);
    group.bench_function("farron_round_full", |b| {
        b.iter(|| {
            let mut rng = DetRng::new(20);
            framework::run_plan(processor, &suite, &farron_plan, burn_in(), &mut rng)
        })
    });
    group.bench_function("farron_round_no_prioritization", |b| {
        b.iter(|| {
            let mut rng = DetRng::new(21);
            framework::run_plan(processor, &suite, &equal_plan, burn_in(), &mut rng)
        })
    });
    group.finish();
}

fn ablation_boundary(c: &mut Criterion) {
    let suite = Suite::standard();
    let mix1 = catalog::by_name("MIX1").expect("catalog").processor;
    let app = AppProfile {
        testcase: bench::find(&suite, "fpu/f64/fam2"),
        utilization: 0.4,
        burst_amplitude: 0.25,
        burst_period: Duration::from_secs(120),
        spike_prob: 0.002,
    };
    let cores: Vec<u16> = (0..16).collect();
    // Adaptive (learning up to the 57 ℃ cap) vs a fixed low boundary.
    let adaptive = OnlineConfig {
        duration: Duration::from_hours(2),
        ..Default::default()
    };
    let fixed = OnlineConfig {
        duration: Duration::from_hours(2),
        boundary_init_c: 50.0,
        max_boundary_c: 50.0, // never learns: every warm period backs off
        ..Default::default()
    };
    let mut rng = DetRng::new(30);
    let a = simulate_online(&mix1, &suite, &app, &cores, &adaptive, &mut rng);
    let f = simulate_online(&mix1, &suite, &app, &cores, &fixed, &mut rng);
    eprintln!(
        "[ablation/boundary] backoff: adaptive {:.1} s/h vs fixed-50℃ {:.1} s/h (SDCs: {} vs {})",
        a.backoff_secs_per_hour, f.backoff_secs_per_hour, a.sdc_events, f.sdc_events
    );

    let mut group = c.benchmark_group("ablation");
    group.sample_size(10);
    group.bench_function("online_adaptive_boundary", |b| {
        b.iter(|| {
            let mut rng = DetRng::new(31);
            simulate_online(
                &mix1,
                &suite,
                &app,
                &cores,
                &OnlineConfig {
                    duration: Duration::from_mins(30),
                    ..Default::default()
                },
                &mut rng,
            )
        })
    });
    group.finish();
}

fn ablation_decommission(_c: &mut Criterion) {
    // Fine-grained vs whole-processor decommission: capacity retained
    // across the deep-study set (no runtime component worth benching).
    let mut fine = 0.0;
    let mut whole = 0.0;
    let mut total = 0.0;
    for case in catalog::deep_study_set() {
        let p = &case.processor;
        let cores = p.physical_cores as f64;
        total += cores;
        match decide(&p.defective_cores()) {
            DecommissionDecision::MaskCores(masked) => {
                let mut pool = ReliablePool::new();
                pool.apply(p.id, &decide(&p.defective_cores()));
                fine += cores - masked.len() as f64;
                let _ = pool;
            }
            DecommissionDecision::DeprecateProcessor => {}
        }
        // The whole-processor policy retains nothing on any faulty CPU.
        whole += 0.0;
    }
    eprintln!(
        "[ablation/decommission] capacity retained across the 27 faulty CPUs: fine-grained {:.0}% vs whole-processor {:.0}% of {total} cores",
        fine / total * 100.0,
        whole / total * 100.0
    );
    let _ = CpuId(0);
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = ablation_prioritization_and_burn_in, ablation_boundary, ablation_decommission
}
criterion_main!(benches);

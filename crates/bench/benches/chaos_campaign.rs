//! Cost of chaos hardening: what supervision and checkpointing add on
//! top of the bare campaign engine.
//!
//! Two parts:
//!
//! * a one-shot comparison at ~2.6M CPUs (≈1k defective processors):
//!   the bare engine, quiet supervision (fault plan all zeros — pure
//!   bookkeeping overhead), a storm (5% offline + 10% preempt plus
//!   crash/read/timeout noise), and the storm with a checkpoint
//!   snapshot every 64 completions. Quiet supervision is cross-checked
//!   for bitwise equality with the bare engine, and the results land in
//!   `BENCH_chaos.json` at the repo root;
//! * criterion benches of the three modes at 300k CPUs for regression
//!   tracking.

use criterion::{criterion_group, criterion_main, Criterion};
use fleet::parallel::resolve_threads;
use fleet::{
    run_campaign_on, run_campaign_resumable, CheckpointStore, FaultPlan, FleetConfig,
    FleetPopulation, ResumableRun, RetryPolicy, SupervisedCampaign,
};
use std::time::Instant;
use toolchain::Suite;

/// ~2.6M CPUs materialize ≈1k defective processors at the paper's
/// prevalence of a few per ten thousand.
const ARTIFACT_FLEET: u64 = 2_600_000;

/// The acceptance-scenario storm: 5% machine-offline + 10% slot
/// preemption, with crash/profile-read/timeout noise on top.
fn storm() -> FaultPlan {
    FaultPlan {
        seed: 7,
        offline: 0.05,
        crash: 0.02,
        preempt: 0.10,
        read_error: 0.04,
        timeout: 0.02,
    }
}

fn supervised(
    cfg: &FleetConfig,
    suite: &Suite,
    pop: &FleetPopulation,
    plan: &FaultPlan,
    store: Option<&CheckpointStore>,
) -> SupervisedCampaign {
    match run_campaign_resumable(cfg, suite, pop, plan, &RetryPolicy::default(), store, None) {
        Ok(ResumableRun::Completed(run)) => run,
        Ok(ResumableRun::Interrupted) => unreachable!("bench runs have no kill hook"),
        Err(e) => panic!("checkpoint I/O failed: {e}"),
    }
}

fn artifact(suite: &Suite) {
    let cfg = FleetConfig {
        total_cpus: ARTIFACT_FLEET,
        seed: 2021,
        threads: resolve_threads(0),
    };
    let pop = FleetPopulation::sample(&cfg);

    let t = Instant::now();
    let bare = run_campaign_on(&cfg, suite, &pop);
    let bare_secs = t.elapsed().as_secs_f64();

    let t = Instant::now();
    let quiet = supervised(&cfg, suite, &pop, &FaultPlan::default(), None);
    let quiet_secs = t.elapsed().as_secs_f64();
    assert_eq!(
        quiet.outcome.fates, bare.fates,
        "quiet supervision must be bitwise identical to the bare engine"
    );

    let t = Instant::now();
    let stormy = supervised(&cfg, suite, &pop, &storm(), None);
    let storm_secs = t.elapsed().as_secs_f64();

    let ck_path = std::env::temp_dir().join("sdc-bench-chaos-ck.json");
    std::fs::remove_file(&ck_path).ok();
    let store = CheckpointStore::new(&ck_path, 64);
    let t = Instant::now();
    let checkpointed = supervised(&cfg, suite, &pop, &storm(), Some(&store));
    let ck_secs = t.elapsed().as_secs_f64();
    std::fs::remove_file(&ck_path).ok();
    assert_eq!(
        checkpointed.outcome.fates, stormy.outcome.fates,
        "checkpoint writes must not perturb the storm's results"
    );

    let att = &stormy.attrition;
    eprintln!(
        "[chaos_campaign] {} defective CPUs, {} threads: bare {bare_secs:.2}s, \
         quiet supervision {quiet_secs:.2}s ({:.1}% overhead), \
         storm {storm_secs:.2}s, +checkpointing {ck_secs:.2}s; \
         storm coverage {:.4} ({} lost, {} retries, {} faults)",
        pop.defective.len(),
        cfg.threads,
        (quiet_secs / bare_secs - 1.0) * 100.0,
        att.coverage(),
        att.lost,
        att.retries,
        att.total_faults(),
    );

    let json = format!(
        "{{\n  \"fleet_cpus\": {},\n  \"defective_cpus\": {},\n  \"threads\": {},\n  \"bare_secs\": {:.4},\n  \"quiet_supervised_secs\": {:.4},\n  \"quiet_overhead_frac\": {:.4},\n  \"storm_secs\": {:.4},\n  \"storm_checkpointed_secs\": {:.4},\n  \"quiet_identical_to_bare\": true,\n  \"storm\": {{\n    \"plan\": \"{}\",\n    \"coverage\": {:.6},\n    \"completed\": {},\n    \"lost\": {},\n    \"retries\": {},\n    \"faults\": {},\n    \"accounted_backoff_secs\": {:.1}\n  }}\n}}\n",
        pop.total(),
        pop.defective.len(),
        cfg.threads,
        bare_secs,
        quiet_secs,
        quiet_secs / bare_secs - 1.0,
        storm_secs,
        ck_secs,
        storm().spec(),
        att.coverage(),
        att.completed,
        att.lost,
        att.retries,
        att.total_faults(),
        att.backoff_secs,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_chaos.json");
    std::fs::write(path, json).expect("write BENCH_chaos.json");
    eprintln!("[chaos_campaign] wrote {path}");
}

fn bench_chaos_modes(c: &mut Criterion) {
    let suite = Suite::standard();
    artifact(&suite);

    let cfg = FleetConfig {
        total_cpus: 300_000,
        seed: 2021,
        threads: resolve_threads(0),
    };
    let pop = FleetPopulation::sample(&cfg);
    let mut group = c.benchmark_group("fleet/chaos_campaign_300k");
    group.sample_size(10);
    group.bench_function("bare", |b| b.iter(|| run_campaign_on(&cfg, &suite, &pop)));
    group.bench_function("quiet_supervised", |b| {
        b.iter(|| supervised(&cfg, &suite, &pop, &FaultPlan::default(), None))
    });
    group.bench_function("storm", |b| {
        b.iter(|| supervised(&cfg, &suite, &pop, &storm(), None))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_chaos_modes
}
criterion_main!(benches);

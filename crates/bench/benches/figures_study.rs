//! Figure 2–7 / Table 3 pipeline benches: per-case deep study, bitflip
//! histogramming, precision-loss CDFs, and pattern mining. Prints the
//! regenerated Figure 2 proportions once.

use analysis::study::{run_case, StudyConfig, StudyData};
use analysis::{features, precision};
use criterion::{criterion_group, criterion_main, Criterion};
use fleet::screening::StaticSuiteProfile;
use sdc_model::{DataType, Duration};
use silicon::catalog;
use toolchain::Suite;

fn small_study(suite: &Suite) -> StudyData {
    let cfg = StudyConfig {
        per_testcase: Duration::from_secs(60),
        seed: 3,
        max_candidates: Some(20),
        ..StudyConfig::default()
    };
    let mut cases = Vec::new();
    for name in ["MIX1", "SIMD1", "FPU1", "CNST1"] {
        let case = catalog::by_name(name).expect("catalog");
        let profiles = StaticSuiteProfile::build(suite, case.processor.physical_cores as usize);
        cases.push(run_case(&case, suite, &profiles, &cfg));
    }
    StudyData { cases }
}

fn bench_case_study(c: &mut Criterion) {
    let suite = Suite::standard();
    let case = catalog::by_name("FPU1").expect("catalog");
    let profiles = StaticSuiteProfile::build(&suite, case.processor.physical_cores as usize);
    let cfg = StudyConfig {
        per_testcase: Duration::from_secs(60),
        seed: 5,
        max_candidates: Some(10),
        ..StudyConfig::default()
    };
    let mut group = c.benchmark_group("study");
    group.sample_size(10);
    group.bench_function("run_case_fpu1", |b| {
        b.iter(|| run_case(&case, &suite, &profiles, &cfg))
    });
    group.finish();
}

fn bench_figure_analyses(c: &mut Criterion) {
    let suite = Suite::standard();
    let study = small_study(&suite);
    eprintln!("[figure 2 @4 CPUs] proportion per feature:");
    for share in features::figure2(&study, &suite) {
        eprintln!("  {:<8} {:.3}", share.feature.label(), share.proportion);
    }
    let records: Vec<_> = study.all_records().cloned().collect();
    let corpus = analysis::RecordCorpus::from_records(&records);
    eprintln!("[corpus] {} records", corpus.len());

    let mut group = c.benchmark_group("figures");
    group.bench_function("corpus_build", |b| {
        b.iter(|| analysis::RecordCorpus::from_records(&records))
    });
    group.bench_function("fig4_bit_histogram_f64", |b| {
        b.iter(|| corpus.bit_histogram(DataType::F64))
    });
    group.bench_function("fig4_loss_cdf_f32", |b| {
        b.iter(|| precision::loss_cdf(records.iter(), DataType::F32))
    });
    group.bench_function("fig6_pattern_mining", |b| {
        b.iter(|| corpus.mine_patterns())
    });
    group.bench_function("fig7_flip_multiplicity", |b| {
        b.iter(|| corpus.flip_multiplicity(DataType::F32))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_case_study, bench_figure_analyses
}
criterion_main!(benches);

//! Figure 8 / Figure 9 benches: the controlled-temperature sweep harness
//! and the minimum-trigger scan. Prints the FPU2 panel fit once.

use analysis::temperature::{min_trigger_temp, temperature_sweep};
use bench::find;
use criterion::{criterion_group, criterion_main, Criterion};
use sdc_model::Duration;
use silicon::catalog;
use toolchain::Suite;

fn bench_sweep(c: &mut Criterion) {
    let suite = Suite::standard();
    let fpu2 = catalog::by_name("FPU2").expect("catalog").processor;
    let tc = find(&suite, "fpu/atan/f64/");
    let temps: Vec<f64> = (48..=56).step_by(2).map(f64::from).collect();

    // Regenerate the Figure 8(c) fit once.
    let sweep = temperature_sweep(&fpu2, &suite, tc, 8, &temps, Duration::from_mins(20), 42);
    if let Some(fit) = sweep.fit {
        eprintln!(
            "[figure 8c] FPU2 pcore8: Pearson r = {:.4} (paper: 0.8855), slope {:.3}/℃",
            fit.r, fit.slope
        );
    }

    let mut group = c.benchmark_group("temperature");
    group.sample_size(10);
    group.bench_function("fig8_sweep_5pts_5min", |b| {
        b.iter(|| temperature_sweep(&fpu2, &suite, tc, 8, &temps, Duration::from_mins(5), 42))
    });
    group.bench_function("fig9_min_trigger_scan", |b| {
        let grid: Vec<f64> = (46..=64).step_by(2).map(f64::from).collect();
        b.iter(|| min_trigger_temp(&fpu2, &suite, tc, 8, &grid, Duration::from_mins(5), 43))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_sweep
}
criterion_main!(benches);

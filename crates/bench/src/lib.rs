//! Shared helpers for the benchmark harness.
//!
//! The benches regenerate the paper's tables and figures at reduced scale
//! while Criterion measures the cost of each pipeline stage; the full-
//! fidelity regeneration lives in the `repro` binary. The `ablations`
//! bench additionally reports the effect of disabling each Farron design
//! choice (see DESIGN.md's ablation list).

use sdc_model::{DetRng, Duration, TestcaseId};
use silicon::Processor;
use toolchain::{ExecConfig, Executor, Suite, TestcaseRun};

/// A standard suite shared by benches.
pub fn suite() -> Suite {
    Suite::standard()
}

/// Finds a testcase id by name prefix.
///
/// # Panics
///
/// Panics if no testcase matches.
pub fn find(suite: &Suite, prefix: &str) -> TestcaseId {
    suite
        .testcases()
        .iter()
        .find(|t| t.name.starts_with(prefix))
        .unwrap_or_else(|| panic!("no testcase with prefix {prefix}"))
        .id
}

/// Finds a testcase by prefix that `processor`'s defects actually apply
/// to (§4.1 selectivity).
///
/// # Panics
///
/// Panics if no applicable testcase matches.
pub fn find_applicable(suite: &Suite, prefix: &str, processor: &Processor) -> TestcaseId {
    suite
        .testcases()
        .iter()
        .filter(|t| t.name.starts_with(prefix))
        .find(|t| processor.defects.iter().any(|d| d.applies_to(t.id)))
        .unwrap_or_else(|| panic!("no applicable testcase with prefix {prefix}"))
        .id
}

/// One accelerated testcase run with default settings.
pub fn run_once(
    processor: &Processor,
    suite: &Suite,
    prefix: &str,
    cores: &[u16],
    duration: Duration,
    seed: u64,
) -> TestcaseRun {
    let tc = suite.get(find(suite, prefix));
    let mut ex = Executor::new(processor, ExecConfig::default());
    let mut rng = DetRng::new(seed);
    ex.run(tc, cores, duration, &mut rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use silicon::catalog;

    #[test]
    fn helpers_work() {
        let s = suite();
        let simd1 = catalog::by_name("SIMD1").unwrap().processor;
        let tc_id = find_applicable(&s, "vec/matk/l0", &simd1);
        let tc_name = &s.get(tc_id).name;
        let run = run_once(&simd1, &s, tc_name, &[0], Duration::from_mins(2), 1);
        assert!(run.detected());
    }
}

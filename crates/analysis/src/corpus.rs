//! The columnar record corpus: the study's `Vec<SdcRecord>` re-shaped
//! once into struct-of-arrays columns, sorted and indexed by setting.
//!
//! Every figure module used to re-walk the record vector per call,
//! rebuilding a `HashMap<SettingId, Vec<&SdcRecord>>` each time. A
//! [`RecordCorpus`] is built once per study and the passes in
//! [`crate::patterns`], [`crate::bitflips`], [`crate::datatypes`] and
//! [`crate::observations`] run over its columns: contiguous scans, no
//! per-call grouping, and deterministic setting-sorted output for free.
//!
//! Every statistic computed here is value-identical to the record-slice
//! implementation it replaced (the slice entry points now delegate to a
//! corpus, so the unit tests in each figure module pin both layers).

use crate::bitflips::BitBin;
use crate::patterns::{FlipMultiplicity, SettingPatterns, PATTERN_THRESHOLD};
use crate::study::StudyData;
use sdc_model::{DataType, Duration, SdcRecord, SdcType, SettingId};
use std::ops::Range;

/// Column-oriented view of a set of SDC records, sorted by setting.
///
/// Rows are stable-sorted by [`SettingId`]; `groups` holds one
/// `(setting, row-range)` per distinct setting, in ascending order.
/// The `masks` column stores the width-masked XOR of expected and
/// actual (exactly [`SdcRecord::mask`]), so flip statistics never
/// touch the raw values again.
#[derive(Debug, Clone, Default)]
pub struct RecordCorpus {
    settings: Vec<SettingId>,
    kinds: Vec<SdcType>,
    datatypes: Vec<DataType>,
    /// Width-masked flip mask per row ([`SdcRecord::mask`]).
    masks: Vec<u128>,
    /// Expected value per row (flip directions need its bits).
    expecteds: Vec<u128>,
    temps: Vec<f64>,
    ats: Vec<Duration>,
    /// Per-setting row ranges, ascending by setting.
    groups: Vec<(SettingId, Range<usize>)>,
}

impl RecordCorpus {
    /// Builds a corpus from a record slice.
    pub fn from_records(records: &[SdcRecord]) -> Self {
        Self::collect(records)
    }

    /// Builds a corpus from any record iterator (e.g.
    /// [`StudyData::all_records`]).
    pub fn collect<'a>(records: impl IntoIterator<Item = &'a SdcRecord>) -> Self {
        let refs: Vec<&SdcRecord> = records.into_iter().collect();
        let mut order: Vec<u32> = (0..refs.len() as u32).collect();
        // Stable: rows of one setting keep their original order.
        order.sort_by_key(|&i| refs[i as usize].setting);

        let n = refs.len();
        let mut c = RecordCorpus {
            settings: Vec::with_capacity(n),
            kinds: Vec::with_capacity(n),
            datatypes: Vec::with_capacity(n),
            masks: Vec::with_capacity(n),
            expecteds: Vec::with_capacity(n),
            temps: Vec::with_capacity(n),
            ats: Vec::with_capacity(n),
            groups: Vec::new(),
        };
        for &i in &order {
            let r = refs[i as usize];
            c.settings.push(r.setting);
            c.kinds.push(r.kind);
            c.datatypes.push(r.datatype);
            c.masks.push(r.mask());
            c.expecteds.push(r.expected);
            c.temps.push(r.temp_c);
            c.ats.push(r.at);
        }
        let mut start = 0usize;
        while start < n {
            let setting = c.settings[start];
            let mut end = start + 1;
            while end < n && c.settings[end] == setting {
                end += 1;
            }
            c.groups.push((setting, start..end));
            start = end;
        }
        c
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.settings.len()
    }

    /// True when the corpus has no rows.
    pub fn is_empty(&self) -> bool {
        self.settings.is_empty()
    }

    /// Per-setting `(setting, row-range)` index, ascending by setting.
    pub fn groups(&self) -> &[(SettingId, Range<usize>)] {
        &self.groups
    }

    /// The setting column (sorted).
    pub fn settings(&self) -> &[SettingId] {
        &self.settings
    }

    /// The temperature column, row-aligned with [`Self::settings`].
    pub fn temps(&self) -> &[f64] {
        &self.temps
    }

    /// The virtual-time column, row-aligned with [`Self::settings`].
    pub fn ats(&self) -> &[Duration] {
        &self.ats
    }

    fn is_computation(&self, row: usize) -> bool {
        self.kinds[row] == SdcType::Computation
    }

    /// Figures 6–7 pattern mining (see [`crate::patterns::mine_patterns`]).
    ///
    /// One entry per setting with at least one computation record, in
    /// ascending setting order; `patterns` masks are ascending (the
    /// slice implementation's hash order was arbitrary — every derived
    /// statistic is set-based, so values are unchanged).
    pub fn mine_patterns(&self) -> Vec<SettingPatterns> {
        let mut out = Vec::new();
        let mut scratch: Vec<u128> = Vec::new();
        for (setting, range) in &self.groups {
            scratch.clear();
            scratch.extend(
                range
                    .clone()
                    .filter(|&row| self.is_computation(row))
                    .map(|row| self.masks[row]),
            );
            let n = scratch.len();
            if n == 0 {
                continue;
            }
            scratch.sort_unstable();
            // Run-length counting over the sorted masks replaces the
            // per-setting HashMap<u128, usize>.
            let threshold = (n as f64 * PATTERN_THRESHOLD).max(1.0);
            let mut patterns: Vec<u128> = Vec::new();
            let mut matched = 0usize;
            let mut i = 0usize;
            while i < n {
                let mask = scratch[i];
                let mut j = i + 1;
                while j < n && scratch[j] == mask {
                    j += 1;
                }
                let count = j - i;
                if count as f64 >= threshold && n > 1 {
                    patterns.push(mask);
                    matched += count;
                }
                i = j;
            }
            out.push(SettingPatterns {
                setting: *setting,
                n_records: n,
                patterns,
                pattern_share: matched as f64 / n.max(1) as f64,
            });
        }
        out
    }

    /// Figure 7 for `dt` (see [`crate::patterns::flip_multiplicity`]).
    pub fn flip_multiplicity(&self, dt: DataType) -> FlipMultiplicity {
        self.flip_multiplicity_with(&self.mine_patterns(), dt)
    }

    /// [`Self::flip_multiplicity`] reusing already-mined patterns (they
    /// must come from this corpus's [`Self::mine_patterns`]).
    pub fn flip_multiplicity_with(
        &self,
        mined: &[SettingPatterns],
        dt: DataType,
    ) -> FlipMultiplicity {
        let mut counts = [0u64; 3];
        // Both `groups` and `mined` ascend by setting; `mined` skips
        // settings without computation records, so walk them in step.
        let mut m = mined.iter().peekable();
        for (setting, range) in &self.groups {
            while m.next_if(|s| s.setting < *setting).is_some() {}
            let Some(s) = m.peek().filter(|s| s.setting == *setting) else {
                continue;
            };
            for row in range.clone() {
                if !self.is_computation(row) || self.datatypes[row] != dt {
                    continue;
                }
                if !s.patterns.contains(&self.masks[row]) {
                    continue;
                }
                match self.masks[row].count_ones() {
                    0 => {}
                    1 => counts[0] += 1,
                    2 => counts[1] += 1,
                    _ => counts[2] += 1,
                }
            }
        }
        let total = (counts[0] + counts[1] + counts[2]).max(1) as f64;
        FlipMultiplicity {
            datatype: dt,
            one: counts[0] as f64 / total,
            two: counts[1] as f64 / total,
            more: counts[2] as f64 / total,
        }
    }

    /// Figure 4/5 per-bit flip histogram for computation records of
    /// `dt` (see [`crate::bitflips::bit_histogram`]).
    pub fn bit_histogram(&self, dt: DataType) -> Vec<BitBin> {
        let bits = dt.bits();
        let mut up = vec![0u64; bits as usize];
        let mut down = vec![0u64; bits as usize];
        let mut total = 0u64;
        for row in 0..self.len() {
            if !self.is_computation(row) || self.datatypes[row] != dt {
                continue;
            }
            // The stored mask is width-masked, so every set bit is a
            // flip at an index below `bits`.
            let mut mask = self.masks[row];
            let expected = self.expecteds[row];
            while mask != 0 {
                let idx = mask.trailing_zeros();
                if (expected >> idx) & 1 == 0 {
                    up[idx as usize] += 1;
                } else {
                    down[idx as usize] += 1;
                }
                total += 1;
                mask &= mask - 1;
            }
        }
        let total = total.max(1) as f64;
        (0..bits)
            .map(|index| BitBin {
                index,
                zero_to_one: up[index as usize] as f64 / total,
                one_to_zero: down[index as usize] as f64 / total,
            })
            .collect()
    }

    /// Fraction of all computation flips going 0→1 (see
    /// [`crate::bitflips::zero_to_one_share`]).
    pub fn zero_to_one_share(&self) -> f64 {
        let mut up = 0u64;
        let mut total = 0u64;
        for row in 0..self.len() {
            if !self.is_computation(row) {
                continue;
            }
            let mask = self.masks[row];
            total += u64::from(mask.count_ones());
            up += u64::from((mask & !self.expecteds[row]).count_ones());
        }
        up as f64 / total.max(1) as f64
    }

    /// Fraction of `dt` flips landing in the float fraction part (see
    /// [`crate::bitflips::fraction_part_share`]).
    ///
    /// # Panics
    ///
    /// Panics if `dt` is not a float format.
    pub fn fraction_part_share(&self, dt: DataType) -> f64 {
        let frac_bits = dt.fraction_bits().expect("float datatype");
        self.bit_histogram(dt)
            .iter()
            .filter(|b| b.index < frac_bits)
            .map(|b| b.zero_to_one + b.one_to_zero)
            .sum()
    }
}

/// Per-case facts the record columns cannot answer: test fixtures (and
/// in principle re-used CPU ids) allow distinct cases to share a
/// [`sdc_model::CpuId`], so "processors affected" statistics must count
/// cases, not settings.
#[derive(Debug, Clone, Copy, Default)]
pub struct CaseSummary {
    /// Bitmask of computation-record datatypes, bit = discriminant.
    pub comp_datatypes: u16,
    /// The case has at least one computation record.
    pub has_computation: bool,
    /// The case has at least one consistency record.
    pub has_consistency: bool,
}

impl CaseSummary {
    /// True when the case has a computation record of `dt`.
    pub fn has_comp_datatype(&self, dt: DataType) -> bool {
        self.comp_datatypes & (1u16 << dt as u16) != 0
    }
}

/// A whole study, columnarized: every record in one [`RecordCorpus`]
/// plus one [`CaseSummary`] per studied processor (in case order).
#[derive(Debug, Clone, Default)]
pub struct StudyCorpus {
    /// All records across cases, setting-sorted.
    pub records: RecordCorpus,
    /// One summary per case, in [`StudyData::cases`] order.
    pub cases: Vec<CaseSummary>,
}

impl StudyData {
    /// Builds the columnar corpus: one pass over every case's records.
    pub fn corpus(&self) -> StudyCorpus {
        let records = RecordCorpus::collect(self.all_records());
        let cases = self
            .cases
            .iter()
            .map(|case| {
                let mut s = CaseSummary::default();
                for r in &case.records {
                    if r.is_computation() {
                        s.has_computation = true;
                        s.comp_datatypes |= 1u16 << r.datatype as u16;
                    } else {
                        s.has_consistency = true;
                    }
                }
                s
            })
            .collect();
        StudyCorpus { records, cases }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdc_model::{CoreId, CpuId, TestcaseId};

    fn rec(tc: u32, kind: SdcType, dt: DataType, expected: u128, actual: u128) -> SdcRecord {
        SdcRecord {
            setting: SettingId {
                cpu: CpuId(1),
                core: CoreId(0),
                testcase: TestcaseId(tc),
            },
            kind,
            datatype: dt,
            expected,
            actual,
            temp_c: 50.0,
            at: Duration::ZERO,
        }
    }

    #[test]
    fn groups_are_sorted_and_cover_all_rows() {
        let records = vec![
            rec(3, SdcType::Computation, DataType::I32, 0, 1),
            rec(1, SdcType::Computation, DataType::I32, 0, 2),
            rec(3, SdcType::Consistency, DataType::Bin64, 0, 4),
            rec(1, SdcType::Computation, DataType::F64, 0, 8),
        ];
        let c = RecordCorpus::from_records(&records);
        assert_eq!(c.len(), 4);
        assert_eq!(c.groups().len(), 2);
        assert!(c.groups()[0].0 < c.groups()[1].0);
        let covered: usize = c.groups().iter().map(|(_, r)| r.len()).sum();
        assert_eq!(covered, 4);
        // Stable within a setting: testcase 1's rows keep insertion order.
        let (_, r1) = &c.groups()[0];
        assert_eq!(c.datatypes[r1.start], DataType::I32);
        assert_eq!(c.datatypes[r1.start + 1], DataType::F64);
    }

    /// The pre-corpus `mine_patterns`: per-call `HashMap` grouping over
    /// a record slice. Kept here as the differential reference.
    fn mine_patterns_reference(records: &[SdcRecord]) -> Vec<SettingPatterns> {
        use std::collections::HashMap;
        let mut by_setting: HashMap<SettingId, Vec<&SdcRecord>> = HashMap::new();
        for r in records {
            if r.is_computation() {
                by_setting.entry(r.setting).or_default().push(r);
            }
        }
        let mut out: Vec<SettingPatterns> = by_setting
            .into_iter()
            .map(|(setting, rs)| {
                let n = rs.len();
                let mut mask_counts: HashMap<u128, usize> = HashMap::new();
                for r in &rs {
                    *mask_counts.entry(r.mask()).or_insert(0) += 1;
                }
                let threshold = (n as f64 * PATTERN_THRESHOLD).max(1.0);
                let patterns: Vec<u128> = mask_counts
                    .iter()
                    .filter(|&(_, &c)| c as f64 >= threshold && n > 1)
                    .map(|(&m, _)| m)
                    .collect();
                let matched: usize = mask_counts
                    .iter()
                    .filter(|(m, _)| patterns.contains(m))
                    .map(|(_, &c)| c)
                    .sum();
                SettingPatterns {
                    setting,
                    n_records: n,
                    patterns,
                    pattern_share: matched as f64 / n.max(1) as f64,
                }
            })
            .collect();
        out.sort_by_key(|s| s.setting);
        out
    }

    #[test]
    fn corpus_passes_match_reference_passes() {
        // A mixed corpus: dominant mask, noise masks, a consistency
        // record and a second setting.
        let mut records = Vec::new();
        for i in 0..40u128 {
            records.push(rec(1, SdcType::Computation, DataType::I32, i, i ^ 0b100));
        }
        for i in 0..4u128 {
            records.push(rec(
                1,
                SdcType::Computation,
                DataType::I32,
                i,
                i ^ (1 << (8 + i)),
            ));
        }
        records.push(rec(1, SdcType::Consistency, DataType::Bin64, 0, 1));
        for i in 0..10u128 {
            records.push(rec(2, SdcType::Computation, DataType::F64, i, i ^ 0b11));
        }
        let c = RecordCorpus::from_records(&records);

        let mined_ref = mine_patterns_reference(&records);
        let mined = c.mine_patterns();
        assert_eq!(mined.len(), mined_ref.len());
        for (a, b) in mined.iter().zip(&mined_ref) {
            assert_eq!(a.setting, b.setting);
            assert_eq!(a.n_records, b.n_records);
            assert_eq!(a.pattern_share, b.pattern_share);
            let mut bp = b.patterns.clone();
            bp.sort_unstable();
            assert_eq!(a.patterns, bp, "patterns ascend");
        }

        // Flip counting against the record-level iterator API.
        let hist = c.bit_histogram(DataType::I32);
        let mut up = vec![0u64; DataType::I32.bits() as usize];
        let mut down = vec![0u64; DataType::I32.bits() as usize];
        let mut total = 0u64;
        let mut up_all = 0u64;
        let mut total_all = 0u64;
        for r in records.iter().filter(|r| r.is_computation()) {
            for (idx, dir) in r.flips() {
                let is_up = dir == sdc_model::FlipDirection::ZeroToOne;
                if r.datatype == DataType::I32 {
                    if is_up {
                        up[idx as usize] += 1;
                    } else {
                        down[idx as usize] += 1;
                    }
                    total += 1;
                }
                up_all += u64::from(is_up);
                total_all += 1;
            }
        }
        for b in &hist {
            assert_eq!(b.zero_to_one, up[b.index as usize] as f64 / total as f64);
            assert_eq!(b.one_to_zero, down[b.index as usize] as f64 / total as f64);
        }
        assert_eq!(c.zero_to_one_share(), up_all as f64 / total_all as f64);
        assert!(c.fraction_part_share(DataType::F64) > 0.0);
    }

    #[test]
    fn empty_corpus_is_safe() {
        let c = RecordCorpus::from_records(&[]);
        assert!(c.is_empty());
        assert!(c.mine_patterns().is_empty());
        assert_eq!(c.zero_to_one_share(), 0.0);
        let m = c.flip_multiplicity(DataType::F64);
        assert_eq!((m.one, m.two, m.more), (0.0, 0.0, 0.0));
    }

    #[test]
    fn case_summary_tracks_datatypes_per_case() {
        use crate::study::CaseData;
        let case = |records: Vec<SdcRecord>| CaseData {
            name: "X",
            processor: silicon::catalog::by_name("SIMD1").unwrap().processor,
            failing: vec![],
            tested: vec![],
            records,
            freq_per_setting: vec![],
        };
        let study = StudyData {
            cases: vec![
                case(vec![rec(1, SdcType::Computation, DataType::F64, 0, 1)]),
                case(vec![rec(1, SdcType::Consistency, DataType::Bin64, 0, 1)]),
            ],
        };
        let sc = study.corpus();
        assert_eq!(sc.cases.len(), 2);
        assert!(sc.cases[0].has_comp_datatype(DataType::F64));
        assert!(!sc.cases[0].has_comp_datatype(DataType::I32));
        assert!(sc.cases[0].has_computation && !sc.cases[0].has_consistency);
        assert!(sc.cases[1].has_consistency && !sc.cases[1].has_computation);
        // Both cases share CpuId(1): the merged record corpus sees one
        // setting, but per-case stats still see two cases.
        assert_eq!(sc.records.len(), 2);
    }
}

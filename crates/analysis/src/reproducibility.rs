//! Observation 9: occurrence-frequency spread across settings.
//!
//! "SDC occurrence frequency varies significantly across different
//! settings, from as low as 0.01 times per minute to as high as hundreds
//! of times per minute. In 51.2% of the settings, the occurrence
//! frequency is higher than once per minute."

use crate::study::StudyData;

/// Summary of per-setting occurrence frequencies.
#[derive(Debug, Clone)]
pub struct ReproducibilitySummary {
    /// All measured per-setting frequencies (errors/minute).
    pub frequencies: Vec<f64>,
    /// Lowest observed frequency.
    pub min: f64,
    /// Highest observed frequency.
    pub max: f64,
    /// Share of settings above one error per minute (paper: 51.2%).
    pub share_above_one_per_min: f64,
}

/// Aggregates the study's per-setting frequencies: min, max and the
/// above-one-per-minute count accumulate in the same pass that collects
/// the frequency vector (the seed version re-scanned it three times).
pub fn summarize(study: &StudyData) -> ReproducibilitySummary {
    let n: usize = study.cases.iter().map(|c| c.freq_per_setting.len()).sum();
    let mut frequencies = Vec::with_capacity(n);
    let mut min = f64::INFINITY;
    let mut max = 0.0f64;
    let mut above = 0usize;
    for &(_, f) in study.cases.iter().flat_map(|c| &c.freq_per_setting) {
        min = min.min(f);
        max = max.max(f);
        above += usize::from(f > 1.0);
        frequencies.push(f);
    }
    let share = above as f64 / frequencies.len().max(1) as f64;
    ReproducibilitySummary {
        min: if min.is_finite() { min } else { 0.0 },
        max,
        share_above_one_per_min: share,
        frequencies,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::study::CaseData;
    use sdc_model::{CoreId, CpuId, SettingId, TestcaseId};
    use silicon::catalog;

    fn case_with_freqs(freqs: &[f64]) -> CaseData {
        CaseData {
            name: "X",
            processor: catalog::by_name("SIMD1").unwrap().processor,
            failing: vec![],
            tested: vec![],
            records: vec![],
            freq_per_setting: freqs
                .iter()
                .enumerate()
                .map(|(i, &f)| {
                    (
                        SettingId {
                            cpu: CpuId(1),
                            core: CoreId(0),
                            testcase: TestcaseId(i as u32),
                        },
                        f,
                    )
                })
                .collect(),
        }
    }

    #[test]
    fn summary_statistics() {
        let study = StudyData {
            cases: vec![case_with_freqs(&[0.02, 0.5, 2.0, 150.0])],
        };
        let s = summarize(&study);
        assert_eq!(s.min, 0.02);
        assert_eq!(s.max, 150.0);
        assert_eq!(s.share_above_one_per_min, 0.5);
        assert_eq!(s.frequencies.len(), 4);
    }

    #[test]
    fn empty_study_is_safe() {
        let s = summarize(&StudyData { cases: vec![] });
        assert_eq!(s.min, 0.0);
        assert_eq!(s.max, 0.0);
        assert_eq!(s.share_above_one_per_min, 0.0);
    }
}

//! The study machinery: every observation, table and figure of the paper.
//!
//! This crate turns the simulated fleet and the 27-processor deep-study
//! set into the paper's published artifacts:
//!
//! | Module | Paper artifact |
//! |---|---|
//! | [`study`] | the deep-study driver (§2.4's "tens of millions of tests") |
//! | [`corpus`] | the columnar record corpus the figure passes scan |
//! | [`failure_rates`] | Tables 1–2 (via the `fleet` campaign) |
//! | [`features`] | Figure 2 — faulty processors per vulnerable feature |
//! | [`datatypes`] | Figure 3 — faulty processors per affected datatype |
//! | [`bitflips`] | Figures 4(a–d), 5 — per-bit flip histograms |
//! | [`precision`] | Figure 4(e–h) — relative precision-loss CDFs |
//! | [`patterns`] | Figures 6–7 — bitflip patterns and flip multiplicity |
//! | [`reproducibility`] | Observation 9 — occurrence-frequency spread |
//! | [`temperature`] | Figures 8–9 — frequency/temperature structure |
//! | [`casebook`] | Table 3 — the named case studies |
//! | [`suspects`] | §4.1's statistical suspect-instruction localization |
//! | [`observations`] | Observations 1–12 as checkable summaries |

pub mod attrition;
pub mod bitflips;
pub mod casebook;
pub mod corpus;
pub mod datatypes;
pub mod failure_rates;
pub mod features;
pub mod observations;
pub mod patterns;
pub mod precision;
pub mod reproducibility;
pub mod study;
pub mod suspects;
pub mod temperature;

pub use attrition::AttritionReport;
pub use corpus::{CaseSummary, RecordCorpus, StudyCorpus};
pub use study::{run_deep_study, run_deep_study_with, CaseData, StudyConfig, StudyData};

//! Coverage and attrition reporting for supervised campaigns.
//!
//! A chaos-exposed campaign ends with partial results: some defective
//! processors completed their lifecycle walk (possibly after retries),
//! some were lost to operational faults. This module shapes the
//! supervision accounting into the summary block the repro binary
//! prints next to Table 1 — how much of the fleet the campaign actually
//! covered, what interrupted it, and how much backoff it accrued.

use fleet::chaos::OpFault;
use fleet::supervisor::AttritionStats;
use fleet::SupervisedCampaign;

/// Coverage/attrition of one supervised run, shaped for display.
#[derive(Debug, Clone, PartialEq)]
pub struct AttritionReport {
    /// Aggregated supervision accounting.
    pub stats: AttritionStats,
    /// Population indices of the lost slots, ascending.
    pub lost_items: Vec<u64>,
}

impl AttritionReport {
    /// Builds the report from a supervised campaign outcome.
    pub fn of(campaign: &SupervisedCampaign) -> AttritionReport {
        AttritionReport::from_parts(campaign.attrition, campaign.lost.clone())
    }

    /// Builds the report from raw parts (the Farron evaluation tracks
    /// window-level attrition without item indices).
    pub fn from_parts(stats: AttritionStats, mut lost_items: Vec<u64>) -> AttritionReport {
        lost_items.sort_unstable();
        AttritionReport { stats, lost_items }
    }

    /// Fraction of slots that completed.
    pub fn coverage(&self) -> f64 {
        self.stats.coverage()
    }

    /// Fault kinds observed at least once, with their counts, in
    /// [`OpFault::index`] order.
    pub fn faults(&self) -> Vec<(OpFault, u64)> {
        OpFault::ALL
            .iter()
            .map(|&f| (f, self.stats.faults_by_kind[f.index()]))
            .filter(|&(_, n)| n > 0)
            .collect()
    }
}

impl std::fmt::Display for AttritionReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = &self.stats;
        writeln!(
            f,
            "coverage: {}/{} slots completed ({:.2}%)",
            s.completed,
            s.items,
            self.coverage() * 100.0
        )?;
        writeln!(
            f,
            "retries:  {} extra attempts, {:.1} s accounted backoff",
            s.retries, s.backoff_secs
        )?;
        let faults = self.faults();
        if faults.is_empty() {
            writeln!(f, "faults:   none")?;
        } else {
            write!(f, "faults:   ")?;
            for (i, (kind, n)) in faults.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{kind} x{n}")?;
            }
            writeln!(f)?;
        }
        if s.lost == 0 {
            write!(f, "lost:     none")?;
        } else if self.lost_items.is_empty() {
            // Window-level attrition (the Farron evaluation) has no
            // population indices to name.
            write!(f, "lost:     {} slot(s)", s.lost)?;
        } else {
            write!(f, "lost:     {} slot(s), population indices ", s.lost)?;
            for (i, idx) in self.lost_items.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{idx}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats() -> AttritionStats {
        let mut s = AttritionStats::default();
        s.items = 400;
        s.completed = 398;
        s.lost = 2;
        s.retries = 37;
        s.backoff_secs = 1843.25;
        s.faults_by_kind[OpFault::MachineOffline.index()] = 12;
        s.faults_by_kind[OpFault::Preempted.index()] = 25;
        s
    }

    #[test]
    fn report_orders_lost_items_and_filters_faults() {
        let report = AttritionReport::from_parts(stats(), vec![388, 113]);
        assert_eq!(report.lost_items, vec![113, 388]);
        assert_eq!(
            report.faults(),
            vec![(OpFault::MachineOffline, 12), (OpFault::Preempted, 25)]
        );
        assert!((report.coverage() - 0.995).abs() < 1e-12);
    }

    #[test]
    fn display_names_every_section() {
        let text = AttritionReport::from_parts(stats(), vec![388, 113]).to_string();
        assert!(text.contains("398/400"), "{text}");
        assert!(text.contains("machine-offline x12"), "{text}");
        assert!(text.contains("113, 388"), "{text}");
        let quiet = AttritionReport::from_parts(AttritionStats::default(), Vec::new()).to_string();
        assert!(quiet.contains("faults:   none"), "{quiet}");
        assert!(quiet.contains("lost:     none"), "{quiet}");
        // Window-level attrition: lost slots counted even without indices.
        let indexless = AttritionReport::from_parts(stats(), Vec::new()).to_string();
        assert!(indexless.contains("lost:     2 slot(s)"), "{indexless}");
    }
}

//! Tables 1 and 2: failure rates by test timing and micro-architecture.
//!
//! The heavy lifting lives in the `fleet` crate; this module shapes the
//! campaign outcome into the paper's tables and states the quantitative
//! claims of Observations 1–3 so they can be checked.

use fleet::{CampaignOutcome, Stage};

/// The paper's Table 1 reference values in ‱ (§3.1; the four timing
/// rows sum to the 3.61‱ total of Observation 1).
pub const PAPER_TABLE1_BP: [(&str, f64); 5] = [
    ("Factory", 0.776),
    ("Datacenter", 0.18),
    ("Re-install", 2.306),
    ("Regular", 0.348),
    ("Total", 3.61),
];

/// The paper's Table 2 reference values in ‱ (§3.2, M1..M9 then avg;
/// Observation 3's spread is M4's 0.082 to M8's 9.29).
pub const PAPER_TABLE2_BP: [f64; 10] = [
    4.619, 0.352, 2.649, 0.082, 0.759, 3.251, 1.599, 9.29, 4.646, 3.61,
];

/// Observation 1–3 summary derived from a campaign.
#[derive(Debug, Clone)]
pub struct FailureRateSummary {
    /// Total detected rate in ‱ (paper: 3.61).
    pub total_bp: f64,
    /// Pre-production detected rate in ‱ (paper: 3.262).
    pub pre_production_bp: f64,
    /// Regular-testing detected rate in ‱ (paper: 0.348).
    pub regular_bp: f64,
    /// Share of detections that happened pre-production (paper: 90.36%).
    pub pre_production_share: f64,
    /// Per-architecture rates in ‱, M1..M9.
    pub per_arch_bp: Vec<f64>,
}

/// Summarizes a campaign into the Observation 1–3 quantities.
pub fn summarize(outcome: &CampaignOutcome) -> FailureRateSummary {
    let pre = outcome.rate_bp(Stage::Factory)
        + outcome.rate_bp(Stage::Datacenter)
        + outcome.rate_bp(Stage::Reinstall);
    let total = outcome.total_rate_bp();
    let t2 = outcome.table2();
    FailureRateSummary {
        total_bp: total,
        pre_production_bp: pre,
        regular_bp: outcome.rate_bp(Stage::Regular),
        pre_production_share: if total > 0.0 { pre / total } else { 0.0 },
        per_arch_bp: t2.iter().take(9).map(|&(_, r)| r).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fleet::{run_campaign, FleetConfig};
    use toolchain::Suite;

    #[test]
    fn summary_matches_paper_shape() {
        let cfg = FleetConfig {
            total_cpus: 300_000,
            seed: 5,
            threads: 0,
        };
        let out = run_campaign(&cfg, &Suite::standard());
        let s = summarize(&out);
        assert!((1.5..6.5).contains(&s.total_bp), "total {} bp", s.total_bp);
        assert!(
            s.pre_production_share > 0.75,
            "share {}",
            s.pre_production_share
        );
        assert!(s.regular_bp > 0.0);
        assert_eq!(s.per_arch_bp.len(), 9);
        // Observation 3 (non-monotonicity): the best and worst arch differ
        // by more than an order of magnitude in the paper; require a wide
        // spread here too.
        let max = s.per_arch_bp.iter().cloned().fold(0.0f64, f64::max);
        let min_pos = s
            .per_arch_bp
            .iter()
            .cloned()
            .filter(|&r| r > 0.0)
            .fold(f64::MAX, f64::min);
        assert!(max / min_pos > 3.0, "spread {max} / {min_pos}");
    }

    #[test]
    fn paper_reference_tables_are_consistent() {
        let sum: f64 = PAPER_TABLE1_BP[..4].iter().map(|&(_, r)| r).sum();
        assert!((sum - PAPER_TABLE1_BP[4].1).abs() < 0.01);
        assert_eq!(PAPER_TABLE2_BP.len(), 10);
    }
}

//! The deep-study driver.
//!
//! §2.4: "we have conducted extensive experiments on 27 of them … we have
//! run tens of millions of tests and collected more than ten thousand SDC
//! records." This module drives that study against the simulated catalog:
//! for each case-study processor, candidate testcases are prefiltered with
//! the fleet's static profiles (a testcase that never retires a matching
//! instruction class cannot fail), and the accelerated executor measures
//! errors, records, and per-setting occurrence frequencies.

use fleet::screening::{StaticSuiteProfile, SuiteProfileCache};
use sdc_model::{DetRng, Duration, SdcRecord, SettingId, TestcaseId};
use silicon::catalog::{self, CaseStudy};
use silicon::defect::DefectKind;
use silicon::Processor;
use std::sync::Arc;
use toolchain::{ExecConfig, Executor, ProfileCache, Suite};

/// Study parameters.
#[derive(Debug, Clone, Copy)]
pub struct StudyConfig {
    /// Virtual test duration per (processor × testcase).
    pub per_testcase: Duration,
    /// Root seed.
    pub seed: u64,
    /// Optional cap on candidate testcases per processor (keeps unit
    /// tests fast; `None` studies every candidate).
    pub max_candidates: Option<usize>,
    /// Executor configuration (burn-in, temperature hold, clock).
    pub exec: ExecConfig,
    /// Worker threads across case studies (`0` = available parallelism).
    /// Each case's randomness is forked from its processor id, so results
    /// are identical for every value.
    pub threads: usize,
}

impl Default for StudyConfig {
    fn default() -> Self {
        StudyConfig {
            per_testcase: Duration::from_mins(2),
            seed: 27,
            max_candidates: None,
            // Cap materialized records per run so prolific settings do not
            // flood the corpus — the paper's whole deep study collected
            // "more than ten thousand SDC records" across 27 processors.
            exec: ExecConfig {
                max_records: 128,
                ..ExecConfig::default()
            },
            threads: 0,
        }
    }
}

/// Everything measured about one case-study processor.
#[derive(Debug, Clone)]
pub struct CaseData {
    /// Study name ("MIX1", …).
    pub name: &'static str,
    /// The processor.
    pub processor: Processor,
    /// Testcases that produced at least one error.
    pub failing: Vec<TestcaseId>,
    /// Candidate testcases that were executed.
    pub tested: Vec<TestcaseId>,
    /// All materialized SDC records.
    pub records: Vec<SdcRecord>,
    /// Measured occurrence frequency (errors per minute) per setting.
    pub freq_per_setting: Vec<(SettingId, f64)>,
}

impl CaseData {
    /// Records of computation SDCs only.
    pub fn computation_records(&self) -> impl Iterator<Item = &SdcRecord> {
        self.records.iter().filter(|r| r.is_computation())
    }
}

/// The full deep-study result.
#[derive(Debug, Clone)]
pub struct StudyData {
    /// One entry per studied processor.
    pub cases: Vec<CaseData>,
}

impl StudyData {
    /// All records across cases.
    pub fn all_records(&self) -> impl Iterator<Item = &SdcRecord> {
        self.cases.iter().flat_map(|c| c.records.iter())
    }

    /// Case lookup by name.
    pub fn case(&self, name: &str) -> Option<&CaseData> {
        self.cases.iter().find(|c| c.name == name)
    }
}

/// True if `tc`'s static profile retires anything a defect of
/// `processor` can act on.
fn is_candidate(
    processor: &Processor,
    profiles: &StaticSuiteProfile,
    suite: &Suite,
    id: TestcaseId,
) -> bool {
    // Note: deliberately *not* gated on `Defect::applies_to` — the real
    // toolchain cannot know which code paths reach a defect; it tests
    // every plausible candidate and discovers that only a subset fails
    // (§4.1).
    let tc = suite.get(id);
    let profile = profiles.get(id.0 as usize);
    processor.defects.iter().any(|d| match &d.kind {
        DefectKind::Computation { .. } => profile
            .sites_per_cycle
            .keys()
            .any(|&(class, dt)| d.matches(class, dt)),
        DefectKind::CoherenceDrop | DefectKind::TxIsolation => tc.threads > 1,
    })
}

/// Studies one processor.
pub fn run_case(
    case: &CaseStudy,
    suite: &Suite,
    profiles: &StaticSuiteProfile,
    cfg: &StudyConfig,
) -> CaseData {
    run_case_cached(case, suite, profiles, cfg, None)
}

/// [`run_case`] with an optional shared unit-profile cache; the study's
/// cases overlap heavily in (testcase × core count), so sharing one cache
/// across cases profiles each shape once. Results are identical with or
/// without the cache.
pub fn run_case_cached(
    case: &CaseStudy,
    suite: &Suite,
    profiles: &StaticSuiteProfile,
    cfg: &StudyConfig,
    cache: Option<Arc<ProfileCache>>,
) -> CaseData {
    let processor = &case.processor;
    let cores: Vec<u16> = (0..processor.physical_cores).collect();
    let mut executor = Executor::new(processor, cfg.exec);
    executor.set_cache(cache);
    let mut rng = DetRng::new(cfg.seed).fork(processor.id.0);

    let mut candidates: Vec<TestcaseId> = suite
        .testcases()
        .iter()
        .map(|t| t.id)
        .filter(|&id| is_candidate(processor, profiles, suite, id))
        .collect();
    if let Some(cap) = cfg.max_candidates {
        candidates.truncate(cap);
    }

    let mut failing = Vec::new();
    let mut records = Vec::new();
    let mut freq = Vec::new();
    for &id in &candidates {
        let tc = suite.get(id);
        let run = executor.run(tc, &cores, cfg.per_testcase, &mut rng);
        if run.detected() {
            failing.push(id);
        }
        for (idx, &count) in run.errors_per_core.iter().enumerate() {
            if count > 0 {
                let setting = SettingId {
                    cpu: processor.id,
                    core: sdc_model::CoreId(cores[idx]),
                    testcase: id,
                };
                freq.push((setting, count as f64 / cfg.per_testcase.as_mins_f64()));
            }
        }
        records.extend(run.records);
    }
    CaseData {
        name: case.name,
        processor: processor.clone(),
        failing,
        tested: candidates,
        records,
        freq_per_setting: freq,
    }
}

/// Runs the whole 27-processor study.
///
/// Cases are sharded across `cfg.threads` workers; each case's randomness
/// is a stream forked from its processor id and the shared caches are
/// result-transparent, so the study is bitwise identical for every thread
/// count.
pub fn run_deep_study(cfg: &StudyConfig) -> StudyData {
    run_deep_study_with(cfg, &SuiteProfileCache::new(), ProfileCache::shared())
}

/// [`run_deep_study`] with caller-owned profile caches. Profiling is the
/// study's dominant fixed cost (the softcore interpreter runs every
/// testcase per package shape); callers that run several studies —
/// sweeps, eval loops, benchmarks — share one suite cache and one unit
/// cache so that cost is paid once. Both caches are result-transparent,
/// so the study is bitwise identical with or without reuse.
pub fn run_deep_study_with(
    cfg: &StudyConfig,
    suite_cache: &SuiteProfileCache,
    unit_cache: Arc<ProfileCache>,
) -> StudyData {
    let suite = Suite::standard();
    let set = catalog::deep_study_set();
    let cases = fleet::parallel::run_indexed(&set, cfg.threads, |_, case| {
        let profiles =
            suite_cache.get_or_build(&suite, case.processor.physical_cores as usize, cfg.threads);
        run_case_cached(case, &suite, &profiles, cfg, Some(Arc::clone(&unit_cache)))
    });
    StudyData { cases }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> StudyConfig {
        StudyConfig {
            per_testcase: Duration::from_secs(30),
            seed: 7,
            max_candidates: Some(12),
            ..StudyConfig::default()
        }
    }

    #[test]
    fn simd1_fails_a_strict_subset_of_candidates() {
        let suite = Suite::standard();
        let case = catalog::by_name("SIMD1").unwrap();
        let profiles = StaticSuiteProfile::build(&suite, case.processor.physical_cores as usize);
        let data = run_case(&case, &suite, &profiles, &StudyConfig::default());
        assert!(!data.failing.is_empty(), "SIMD1 fails something");
        assert!(
            data.failing.len() < data.tested.len(),
            "usage stress: not every matching testcase fails ({}/{})",
            data.failing.len(),
            data.tested.len()
        );
        // All failing testcases exercise the f32 vector-FMA path.
        for id in &data.failing {
            let name = &suite.get(*id).name;
            assert!(
                name.contains("matk/l0") || name.contains("axpy/l0"),
                "unexpected failing testcase {name}"
            );
        }
    }

    #[test]
    fn candidate_prefilter_excludes_unrelated_testcases() {
        let suite = Suite::standard();
        let case = catalog::by_name("FPU1").unwrap();
        let profiles = StaticSuiteProfile::build(&suite, case.processor.physical_cores as usize);
        let data = run_case(&case, &suite, &profiles, &quick_cfg());
        for id in &data.tested {
            let name = &suite.get(*id).name;
            assert!(
                name.contains("atan") || name.contains("x87"),
                "FPU1 candidates must involve arctangent: {name}"
            );
        }
    }

    #[test]
    fn consistency_case_candidates_are_multithreaded() {
        let suite = Suite::standard();
        let case = catalog::by_name("CNST2").unwrap();
        let profiles = StaticSuiteProfile::build(&suite, case.processor.physical_cores as usize);
        let data = run_case(&case, &suite, &profiles, &quick_cfg());
        for id in &data.tested {
            assert!(suite.get(*id).threads > 1);
        }
    }

    #[test]
    fn frequencies_are_per_setting_and_positive() {
        let suite = Suite::standard();
        let case = catalog::by_name("FPU1").unwrap();
        let profiles = StaticSuiteProfile::build(&suite, case.processor.physical_cores as usize);
        let data = run_case(&case, &suite, &profiles, &StudyConfig::default());
        assert!(!data.freq_per_setting.is_empty());
        for (setting, f) in &data.freq_per_setting {
            assert!(*f > 0.0);
            assert_eq!(setting.cpu, case.processor.id);
            // FPU1's only defective core is pcore 3.
            assert_eq!(setting.core.0, 3);
        }
    }
}

//! Suspect-instruction localization (§4.1).
//!
//! "We have tried to further pinpoint which instructions are problematic…
//! we turn to a statistical approach: we instrument the toolchain to
//! catch the number of times each type of instruction is executed during
//! each testcase via Pin. This method helps us narrow down the scope of
//! suspected instructions."
//!
//! Given a case's failing and passing testcases, this module ranks
//! instruction classes by how strongly their usage separates the two
//! sets: a class heavily used by every failing testcase and lightly used
//! by passing ones is a suspect. The paper's findings reproduce here:
//! the arctangent instruction stands out for FPU1/FPU2, the vector
//! multiply-add for SIMD1 — and CNST1 resists localization, "since cache
//! coherence mechanisms are mostly hidden from a program".

use crate::study::CaseData;
use fleet::screening::StaticSuiteProfile;
use sdc_model::DataType;
use softcore::InstClass;
use std::collections::BTreeMap;
use toolchain::Suite;

/// One ranked suspect.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Suspect {
    /// The suspected instruction class.
    pub class: InstClass,
    /// The datatype it operates on in the failing testcases.
    pub datatype: DataType,
    /// Mean per-cycle usage across failing testcases.
    pub usage_in_failing: f64,
    /// Mean per-cycle usage across passing (tested, non-failing)
    /// testcases.
    pub usage_in_passing: f64,
    /// Separation score: failing usage over passing usage (ε-smoothed).
    pub score: f64,
}

/// Ranks instruction classes as suspects for one case study.
///
/// Returns suspects sorted by descending score; classes never used by a
/// failing testcase are omitted. An empty result means no failing
/// testcases — nothing to localize.
pub fn rank_suspects(
    case: &CaseData,
    _suite: &Suite,
    profiles: &StaticSuiteProfile,
) -> Vec<Suspect> {
    if case.failing.is_empty() {
        return Vec::new();
    }
    let failing: std::collections::HashSet<u32> = case.failing.iter().map(|t| t.0).collect();
    // BTreeMaps keep (class, datatype) keys ordered, so equal-score
    // suspects rank deterministically (the sort below is stable).
    let mut fail_usage: BTreeMap<(InstClass, DataType), f64> = BTreeMap::new();
    let mut pass_usage: BTreeMap<(InstClass, DataType), f64> = BTreeMap::new();
    let mut n_fail = 0usize;
    let mut n_pass = 0usize;
    for &id in &case.tested {
        let profile = profiles.get(id.0 as usize);
        let bucket = if failing.contains(&id.0) {
            n_fail += 1;
            &mut fail_usage
        } else {
            n_pass += 1;
            &mut pass_usage
        };
        for (&key, &per_cycle) in &profile.sites_per_cycle {
            *bucket.entry(key).or_insert(0.0) += per_cycle;
        }
    }
    let mut suspects: Vec<Suspect> = fail_usage
        .iter()
        .map(|(&(class, datatype), &total)| {
            let usage_in_failing = total / n_fail.max(1) as f64;
            let usage_in_passing =
                pass_usage.get(&(class, datatype)).copied().unwrap_or(0.0) / n_pass.max(1) as f64;
            Suspect {
                class,
                datatype,
                usage_in_failing,
                usage_in_passing,
                score: usage_in_failing / (usage_in_passing + 1e-9),
            }
        })
        .collect();
    suspects.sort_by(|a, b| b.score.partial_cmp(&a.score).expect("finite scores"));
    suspects
}

/// The localization bar used by `repro ext` and the tests: the top
/// class must be used 5× more per cycle in failing than in passing
/// testcases. The paper states no numeric bar for §4.1's narrowing-down;
/// 5× is this reproduction's choice, set so the atan/FMA defects clear
/// it decisively while CNST's flat instruction mix never does.
pub const LOCALIZE_MIN_SCORE: f64 = 5.0;

/// True when the ranking cleanly localizes a suspect: the top class is
/// used at least `min_score` times more per cycle in failing testcases
/// than in passing ones. Coherence defects never clear a meaningful bar —
/// failing and passing multi-threaded testcases execute the same
/// instruction mix (§4.1: "a program often does not invoke a specific
/// instruction for cache coherence").
pub fn localizes(suspects: &[Suspect], min_score: f64) -> bool {
    suspects.first().is_some_and(|s| s.score >= min_score)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::study::{run_case, StudyConfig};
    use sdc_model::Duration;
    use silicon::catalog;

    fn study_case(name: &str) -> (CaseData, Suite, StaticSuiteProfile) {
        let suite = Suite::standard();
        let case = catalog::by_name(name).expect("catalog");
        let profiles = StaticSuiteProfile::build(&suite, case.processor.physical_cores as usize);
        let data = run_case(
            &case,
            &suite,
            &profiles,
            &StudyConfig {
                per_testcase: Duration::from_mins(2),
                seed: 11,
                max_candidates: None,
                ..StudyConfig::default()
            },
        );
        (data, suite, profiles)
    }

    #[test]
    fn fpu1_suspect_is_the_arctangent() {
        // §4.1: "we find one instruction, which uses the floating-point
        // calculation feature to calculate a complex math function
        // (arctangent), is a suspect in FPU1 and FPU2."
        let (data, suite, profiles) = study_case("FPU1");
        assert!(!data.failing.is_empty(), "FPU1 fails testcases");
        let suspects = rank_suspects(&data, &suite, &profiles);
        assert!(!suspects.is_empty());
        // The statistical method narrows to a set; the arctangent classes
        // must be at its top (alongside the x87 datapath they share).
        assert!(
            suspects
                .iter()
                .take(3)
                .any(|s| matches!(s.class, InstClass::FloatAtan | InstClass::X87Atan)),
            "top suspects {:?} should include an arctangent class",
            suspects.iter().take(3).map(|s| s.class).collect::<Vec<_>>()
        );
        assert!(localizes(&suspects, LOCALIZE_MIN_SCORE), "FPU1 localizes cleanly");
    }

    #[test]
    fn simd1_suspect_is_the_vector_fma() {
        // §4.1: "in SIMD1, the toolchain reports that a vector instruction
        // that performs multiplication and addition operations
        // simultaneously gives wrong results."
        let (data, suite, profiles) = study_case("SIMD1");
        assert!(!data.failing.is_empty());
        let suspects = rank_suspects(&data, &suite, &profiles);
        let top = &suspects[0];
        assert_eq!(top.class, InstClass::VecFma, "top suspect {:?}", top.class);
        assert_eq!(top.datatype, DataType::F32);
    }

    #[test]
    fn cnst1_resists_localization() {
        // §4.1: "The SDCs in CNST1 causes cache coherence issues and we
        // fail to locate the suspected instructions … a program often does
        // not invoke a specific instruction for cache coherence."
        let (data, suite, profiles) = study_case("CNST1");
        assert!(
            !data.failing.is_empty(),
            "CNST1 fails consistency testcases"
        );
        let suspects = rank_suspects(&data, &suite, &profiles);
        // All consistency testcases share the same lock/load/store mix, so
        // no class separates failing from passing runs strongly.
        assert!(
            !localizes(&suspects, LOCALIZE_MIN_SCORE),
            "coherence defects have no suspect instruction: {:?}",
            suspects.first()
        );
    }

    #[test]
    fn empty_case_yields_no_suspects() {
        let suite = Suite::standard();
        let case = catalog::by_name("FPU1").expect("catalog");
        let profiles = StaticSuiteProfile::build(&suite, case.processor.physical_cores as usize);
        let empty = CaseData {
            name: "X",
            processor: case.processor.clone(),
            failing: vec![],
            tested: vec![],
            records: vec![],
            freq_per_setting: vec![],
        };
        assert!(rank_suspects(&empty, &suite, &profiles).is_empty());
    }
}

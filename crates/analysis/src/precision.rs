//! Figure 4(e–h): relative precision-loss CDFs.
//!
//! The paper plots the CDF of base-10 logarithms of relative precision
//! losses per datatype and reads off headline quantiles: virtually all
//! f64x losses below 0.002%, 99.9% of f64 losses below 0.02%, 80.25% of
//! f32 losses below 5%, while 40.2% of int32 losses exceed 100%.

use sdc_model::stats::Cdf;
use sdc_model::{DataType, SdcRecord};

/// Precision-loss distribution for one datatype.
#[derive(Debug, Clone)]
pub struct LossCdf {
    /// The datatype.
    pub datatype: DataType,
    /// CDF over `log10(relative loss)` of nonzero losses.
    pub log10_cdf: Cdf,
    /// Number of records with infinite loss (expected value was zero).
    pub infinite: usize,
}

impl LossCdf {
    /// Fraction of (finite, nonzero) losses at most `loss` (e.g. `0.05`
    /// for the paper's "80.25% of f32 losses are less than 5%").
    pub fn fraction_below(&self, loss: f64) -> f64 {
        if self.log10_cdf.is_empty() {
            return 0.0;
        }
        self.log10_cdf.fraction_at_most(loss.log10())
    }
}

/// Builds the Figure 4(e–h) CDF for computation records of `dt`.
pub fn loss_cdf<'a>(records: impl IntoIterator<Item = &'a SdcRecord>, dt: DataType) -> LossCdf {
    let mut logs = Vec::new();
    let mut infinite = 0usize;
    for r in records {
        if !r.is_computation() || r.datatype != dt {
            continue;
        }
        match r.rel_precision_loss() {
            Some(loss) if loss.is_infinite() => infinite += 1,
            Some(loss) if loss > 0.0 => logs.push(loss.log10()),
            _ => {}
        }
    }
    LossCdf {
        datatype: dt,
        log10_cdf: Cdf::from_samples(logs),
        infinite,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdc_model::{CoreId, CpuId, Duration, SdcType, SettingId, TestcaseId, Value};

    fn rec(dt: DataType, expected: u128, actual: u128) -> SdcRecord {
        SdcRecord {
            setting: SettingId {
                cpu: CpuId(1),
                core: CoreId(0),
                testcase: TestcaseId(0),
            },
            kind: SdcType::Computation,
            datatype: dt,
            expected,
            actual,
            temp_c: 50.0,
            at: Duration::ZERO,
        }
    }

    #[test]
    fn f64_low_fraction_flips_have_tiny_losses() {
        let e = Value::from_f64(3.7);
        let records: Vec<SdcRecord> = (0..20)
            .map(|i| rec(DataType::F64, e.bits, e.bits ^ (1 << i)))
            .collect();
        let cdf = loss_cdf(&records, DataType::F64);
        assert_eq!(cdf.log10_cdf.len(), 20);
        // Flips in the low 20 fraction bits: losses far below 0.02%.
        assert_eq!(cdf.fraction_below(0.0002), 1.0);
    }

    #[test]
    fn int_flips_can_exceed_hundred_percent() {
        // Expected 1, flip bit 10 → 1025: loss 1024 ≫ 100%.
        let records = vec![rec(DataType::I32, 1, 1 ^ (1 << 10))];
        let cdf = loss_cdf(&records, DataType::I32);
        assert_eq!(cdf.fraction_below(1.0), 0.0);
        assert!(cdf.fraction_below(1e9) > 0.0);
    }

    #[test]
    fn infinite_losses_counted_separately() {
        let records = vec![rec(DataType::I32, 0, 8)];
        let cdf = loss_cdf(&records, DataType::I32);
        assert_eq!(cdf.infinite, 1);
        assert!(cdf.log10_cdf.is_empty());
    }

    #[test]
    fn filters_other_datatypes() {
        let e = Value::from_f64(1.0);
        let records = vec![
            rec(DataType::F64, e.bits, e.bits ^ 2),
            rec(DataType::I32, 1, 3),
        ];
        let cdf = loss_cdf(&records, DataType::F64);
        assert_eq!(cdf.log10_cdf.len(), 1);
    }
}

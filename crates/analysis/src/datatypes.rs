//! Figure 3: the proportion of faulty processors per affected datatype.
//!
//! A processor counts toward a datatype when its collected computation
//! SDC records include a corrupted operation result of that datatype.

use crate::corpus::StudyCorpus;
use crate::study::StudyData;
use sdc_model::DataType;

/// One Figure 3 bar.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DatatypeShare {
    /// The operation datatype.
    pub datatype: DataType,
    /// Fraction of studied faulty processors with records of it.
    pub proportion: f64,
}

/// Computes Figure 3 from study data (builds the per-case summaries of
/// [`StudyData::corpus`] on the fly; use [`figure3_from`] when a
/// [`StudyCorpus`] is already in hand).
pub fn figure3(study: &StudyData) -> Vec<DatatypeShare> {
    let n = study.cases.len().max(1) as f64;
    // One pass per case instead of |DataType::ALL| scans of its records.
    let mut counts = [0usize; DataType::ALL.len()];
    for case in &study.cases {
        let mut seen = 0u16;
        for r in case.computation_records() {
            seen |= 1u16 << r.datatype as u16;
        }
        for (i, &dt) in DataType::ALL.iter().enumerate() {
            counts[i] += usize::from(seen & (1u16 << dt as u16) != 0);
        }
    }
    DataType::ALL
        .iter()
        .zip(counts)
        .map(|(&datatype, count)| DatatypeShare {
            datatype,
            proportion: count as f64 / n,
        })
        .collect()
}

/// [`figure3`] from an already-built [`StudyCorpus`]: reads the
/// per-case datatype bitmasks, touching no records at all.
pub fn figure3_from(corpus: &StudyCorpus) -> Vec<DatatypeShare> {
    let n = corpus.cases.len().max(1) as f64;
    DataType::ALL
        .iter()
        .map(|&datatype| {
            let count = corpus
                .cases
                .iter()
                .filter(|c| c.has_comp_datatype(datatype))
                .count();
            DatatypeShare {
                datatype,
                proportion: count as f64 / n,
            }
        })
        .collect()
}

/// The affected datatypes of one case (Table 3's "impacted datatypes").
pub fn datatypes_of_case(case: &crate::study::CaseData) -> Vec<DataType> {
    let mut seen = 0u16;
    for r in case.computation_records() {
        seen |= 1u16 << r.datatype as u16;
    }
    let mut v: Vec<DataType> = DataType::ALL
        .iter()
        .copied()
        .filter(|&dt| seen & (1u16 << dt as u16) != 0)
        .collect();
    v.sort();
    v
}

/// Observation 6's headline: float datatypes implicate more processors
/// than others. Returns (mean float proportion, mean non-float numeric
/// proportion).
pub fn float_vs_other_share(shares: &[DatatypeShare]) -> (f64, f64) {
    let float: Vec<f64> = shares
        .iter()
        .filter(|s| s.datatype.is_float())
        .map(|s| s.proportion)
        .collect();
    let other: Vec<f64> = shares
        .iter()
        .filter(|s| !s.datatype.is_float())
        .map(|s| s.proportion)
        .collect();
    (
        float.iter().sum::<f64>() / float.len().max(1) as f64,
        other.iter().sum::<f64>() / other.len().max(1) as f64,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::study::CaseData;
    use sdc_model::{CoreId, CpuId, Duration, SdcRecord, SdcType, SettingId, TestcaseId};
    use silicon::catalog;

    fn record(dt: DataType) -> SdcRecord {
        SdcRecord {
            setting: SettingId {
                cpu: CpuId(1),
                core: CoreId(0),
                testcase: TestcaseId(0),
            },
            kind: SdcType::Computation,
            datatype: dt,
            expected: 1,
            actual: 2,
            temp_c: 50.0,
            at: Duration::ZERO,
        }
    }

    fn case_with(dts: &[DataType]) -> CaseData {
        CaseData {
            name: "X",
            processor: catalog::by_name("SIMD1").unwrap().processor,
            failing: vec![],
            tested: vec![],
            records: dts.iter().map(|&dt| record(dt)).collect(),
            freq_per_setting: vec![],
        }
    }

    #[test]
    fn figure3_counts_processors_not_records() {
        let study = StudyData {
            cases: vec![
                case_with(&[DataType::F64, DataType::F64, DataType::I32]),
                case_with(&[DataType::F64]),
            ],
        };
        let f3 = figure3(&study);
        let share = |dt: DataType| f3.iter().find(|s| s.datatype == dt).unwrap().proportion;
        assert_eq!(share(DataType::F64), 1.0, "both processors affected");
        assert_eq!(share(DataType::I32), 0.5);
        assert_eq!(share(DataType::Bin64), 0.0);
    }

    #[test]
    fn consistency_records_do_not_count() {
        let mut c = case_with(&[]);
        c.records.push(SdcRecord {
            kind: SdcType::Consistency,
            ..record(DataType::Bin64)
        });
        let study = StudyData { cases: vec![c] };
        let f3 = figure3(&study);
        assert!(f3.iter().all(|s| s.proportion == 0.0));
    }

    #[test]
    fn float_share_helper() {
        let study = StudyData {
            cases: vec![case_with(&[DataType::F32, DataType::F64, DataType::F64X])],
        };
        let (f, o) = float_vs_other_share(&figure3(&study));
        assert_eq!(f, 1.0);
        assert_eq!(o, 0.0);
    }

    #[test]
    fn figure3_from_corpus_matches_direct() {
        let study = StudyData {
            cases: vec![
                case_with(&[DataType::F64, DataType::F64, DataType::I32]),
                case_with(&[DataType::Byte]),
                case_with(&[]),
            ],
        };
        assert_eq!(figure3(&study), figure3_from(&study.corpus()));
    }

    #[test]
    fn datatypes_of_case_sorted_and_deduped() {
        let c = case_with(&[DataType::F64, DataType::I16, DataType::F64]);
        assert_eq!(datatypes_of_case(&c), vec![DataType::I16, DataType::F64]);
    }
}

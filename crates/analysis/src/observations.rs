//! The paper's twelve observations as checkable summaries.
//!
//! Each function distills one observation into numbers from the simulated
//! study; the `repro` binary prints them next to the paper's values and
//! the integration suite asserts the qualitative claims hold.

use crate::datatypes;
use crate::study::StudyData;
use sdc_model::{DataType, SdcType};
use toolchain::Suite;

/// Observation 4: defect scope — single core vs. all cores — and the
/// cross-core frequency spread.
#[derive(Debug, Clone)]
pub struct ScopeSummary {
    /// Studied processors with exactly one defective core (measured).
    pub single_core: usize,
    /// Studied processors with more than one defective core.
    pub multi_core: usize,
    /// Largest cross-core frequency ratio observed within one setting
    /// family (the paper: "up to several orders of magnitude").
    pub max_core_freq_ratio: f64,
}

/// Computes the Observation 4 summary.
pub fn obs4_scope(study: &StudyData) -> ScopeSummary {
    let mut single = 0;
    let mut multi = 0;
    let mut max_ratio = 1.0f64;
    for case in &study.cases {
        let mut cores: Vec<u16> = case
            .freq_per_setting
            .iter()
            .map(|&(s, _)| s.core.0)
            .collect();
        cores.sort_unstable();
        cores.dedup();
        match cores.len() {
            0 => {}
            1 => single += 1,
            _ => multi += 1,
        }
        // Cross-core ratio within the same testcase.
        let mut by_tc: std::collections::HashMap<u32, Vec<f64>> = Default::default();
        for &(s, f) in &case.freq_per_setting {
            by_tc.entry(s.testcase.0).or_default().push(f);
        }
        for freqs in by_tc.values() {
            if freqs.len() > 1 {
                let hi = freqs.iter().copied().fold(0.0f64, f64::max);
                let lo = freqs.iter().copied().fold(f64::INFINITY, f64::min);
                if lo > 0.0 {
                    max_ratio = max_ratio.max(hi / lo);
                }
            }
        }
    }
    ScopeSummary {
        single_core: single,
        multi_core: multi,
        max_core_freq_ratio: max_ratio,
    }
}

/// Observation 5: SDC type split and the single-type invariant.
#[derive(Debug, Clone)]
pub struct TypeSummary {
    /// Processors whose failures are computation SDCs (paper: 19 of 27).
    pub computation: usize,
    /// Processors whose failures are consistency SDCs (paper: 8 of 27).
    pub consistency: usize,
    /// True if no studied processor mixed both SDC types.
    pub single_type_invariant: bool,
}

/// Computes the Observation 5 type split from measured records.
pub fn obs5_types(study: &StudyData) -> TypeSummary {
    let mut computation = 0;
    let mut consistency = 0;
    let mut invariant = true;
    for case in &study.cases {
        // One pass per case (the two-`any` version re-scanned records).
        let mut has_comp = false;
        let mut has_cons = false;
        for r in &case.records {
            match r.kind {
                SdcType::Computation => has_comp = true,
                SdcType::Consistency => has_cons = true,
            }
            if has_comp && has_cons {
                break;
            }
        }
        match (has_comp, has_cons) {
            (true, false) => computation += 1,
            (false, true) => consistency += 1,
            (true, true) => invariant = false,
            (false, false) => {}
        }
    }
    TypeSummary {
        computation,
        consistency,
        single_type_invariant: invariant,
    }
}

/// Observations 6–7: float vulnerability and fraction-part concentration.
#[derive(Debug, Clone)]
pub struct FloatSummary {
    /// Mean share of processors affected per float datatype vs. others.
    pub float_share: f64,
    /// Same for non-float datatypes.
    pub other_share: f64,
    /// Share of f64 flips landing in the fraction part.
    pub f64_fraction_share: f64,
    /// Share of all flips going 0→1 (paper: 51.08%).
    pub zero_to_one_share: f64,
}

/// Computes the Observation 6–7 summary: one columnar corpus build,
/// then column scans (the record vector is never re-collected).
pub fn obs6_7_floats(study: &StudyData) -> FloatSummary {
    let corpus = study.corpus();
    let shares = datatypes::figure3_from(&corpus);
    let (float_share, other_share) = datatypes::float_vs_other_share(&shares);
    FloatSummary {
        float_share,
        other_share,
        f64_fraction_share: corpus.records.fraction_part_share(DataType::F64),
        zero_to_one_share: corpus.records.zero_to_one_share(),
    }
}

/// Observation 11: testcase effectiveness.
#[derive(Debug, Clone)]
pub struct EffectivenessSummary {
    /// Suite size (633).
    pub suite_size: usize,
    /// Testcases that detected at least one error across the whole study
    /// (paper: 73 = 633 − 560).
    pub effective: usize,
    /// Testcases that never detected anything (paper: 560).
    pub ineffective: usize,
}

/// Computes the Observation 11 summary.
pub fn obs11_effectiveness(study: &StudyData, suite: &Suite) -> EffectivenessSummary {
    let mut effective: Vec<u32> = study
        .cases
        .iter()
        .flat_map(|c| c.failing.iter().map(|t| t.0))
        .collect();
    effective.sort_unstable();
    effective.dedup();
    EffectivenessSummary {
        suite_size: suite.len(),
        effective: effective.len(),
        ineffective: suite.len() - effective.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::study::CaseData;
    use sdc_model::{CoreId, CpuId, Duration, SdcRecord, SettingId, TestcaseId};
    use silicon::catalog;

    fn case(records: Vec<SdcRecord>, freqs: Vec<(u16, u32, f64)>) -> CaseData {
        CaseData {
            name: "X",
            processor: catalog::by_name("SIMD1").unwrap().processor,
            failing: vec![TestcaseId(1)],
            tested: vec![TestcaseId(1), TestcaseId(2)],
            records,
            freq_per_setting: freqs
                .into_iter()
                .map(|(core, tc, f)| {
                    (
                        SettingId {
                            cpu: CpuId(1),
                            core: CoreId(core),
                            testcase: TestcaseId(tc),
                        },
                        f,
                    )
                })
                .collect(),
        }
    }

    fn rec(kind: SdcType) -> SdcRecord {
        SdcRecord {
            setting: SettingId {
                cpu: CpuId(1),
                core: CoreId(0),
                testcase: TestcaseId(1),
            },
            kind,
            datatype: DataType::F64,
            expected: 2,
            actual: 3,
            temp_c: 50.0,
            at: Duration::ZERO,
        }
    }

    #[test]
    fn scope_summary_counts_cores_and_ratio() {
        let study = StudyData {
            cases: vec![
                case(vec![], vec![(0, 1, 5.0)]),
                case(vec![], vec![(0, 1, 100.0), (1, 1, 0.1)]),
            ],
        };
        let s = obs4_scope(&study);
        assert_eq!(s.single_core, 1);
        assert_eq!(s.multi_core, 1);
        assert!((s.max_core_freq_ratio - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn type_summary_respects_invariant() {
        let study = StudyData {
            cases: vec![
                case(vec![rec(SdcType::Computation)], vec![]),
                case(vec![rec(SdcType::Consistency)], vec![]),
            ],
        };
        let s = obs5_types(&study);
        assert_eq!(s.computation, 1);
        assert_eq!(s.consistency, 1);
        assert!(s.single_type_invariant);

        let mixed = StudyData {
            cases: vec![case(
                vec![rec(SdcType::Computation), rec(SdcType::Consistency)],
                vec![],
            )],
        };
        assert!(!obs5_types(&mixed).single_type_invariant);
    }

    #[test]
    fn effectiveness_counts_union_of_failing() {
        let suite = Suite::standard();
        let study = StudyData {
            cases: vec![case(vec![], vec![]), case(vec![], vec![])],
        };
        let s = obs11_effectiveness(&study, &suite);
        assert_eq!(s.suite_size, 633);
        assert_eq!(s.effective, 1, "both cases fail the same testcase");
        assert_eq!(s.ineffective, 632);
    }
}

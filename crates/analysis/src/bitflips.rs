//! Figures 4(a–d) and 5: bitflip position histograms.
//!
//! For each bit index of a datatype, the proportion of (record, bit)
//! flips landing on it, split by direction. The paper's headline findings
//! (Observation 7): numerical datatypes rarely flip in the most
//! significant bits, floats flip overwhelmingly in the fraction part, and
//! non-numerical data flips roughly uniformly (Figure 5). About half of
//! all flips go 0→1.

use crate::corpus::RecordCorpus;
use sdc_model::{DataType, SdcRecord};

/// One histogram bin of Figure 4/5.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BitBin {
    /// Bit index (0 = least significant).
    pub index: u32,
    /// Fraction of flips at this index going 0→1.
    pub zero_to_one: f64,
    /// Fraction of flips at this index going 1→0.
    pub one_to_zero: f64,
}

/// Per-bit flip histogram for computation records of `dt` — adapter
/// over [`RecordCorpus::bit_histogram`]. Study-scale callers build one
/// corpus and run every histogram on its columns.
pub fn bit_histogram(records: &[SdcRecord], dt: DataType) -> Vec<BitBin> {
    RecordCorpus::from_records(records).bit_histogram(dt)
}

/// Aggregate flip-direction split: fraction of all flips going 0→1
/// (the paper reports 51.08%).
pub fn zero_to_one_share(records: &[SdcRecord]) -> f64 {
    RecordCorpus::from_records(records).zero_to_one_share()
}

/// Fraction of flips of float datatype `dt` that land in the fraction
/// part (Observation 7's "bitflips predominantly occur in the fraction").
///
/// # Panics
///
/// Panics if `dt` is not a float format.
pub fn fraction_part_share(records: &[SdcRecord], dt: DataType) -> f64 {
    RecordCorpus::from_records(records).fraction_part_share(dt)
}

/// Fraction of flips landing in the top `k` most significant bits.
pub fn msb_share(hist: &[BitBin], k: u32) -> f64 {
    let bits = hist.len() as u32;
    hist.iter()
        .filter(|b| b.index >= bits.saturating_sub(k))
        .map(|b| b.zero_to_one + b.one_to_zero)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdc_model::{CoreId, CpuId, Duration, SdcType, SettingId, TestcaseId};

    fn rec(dt: DataType, expected: u128, actual: u128) -> SdcRecord {
        SdcRecord {
            setting: SettingId {
                cpu: CpuId(1),
                core: CoreId(0),
                testcase: TestcaseId(0),
            },
            kind: SdcType::Computation,
            datatype: dt,
            expected,
            actual,
            temp_c: 50.0,
            at: Duration::ZERO,
        }
    }

    #[test]
    fn histogram_counts_positions_and_directions() {
        let records = vec![
            rec(DataType::Byte, 0b0000_0001, 0b0000_0011), // bit 1: 0→1
            rec(DataType::Byte, 0b0000_0010, 0b0000_0000), // bit 1: 1→0
        ];
        let h = bit_histogram(&records, DataType::Byte);
        assert_eq!(h.len(), 8);
        assert_eq!(h[1].zero_to_one, 0.5);
        assert_eq!(h[1].one_to_zero, 0.5);
        assert_eq!(h[0].zero_to_one + h[0].one_to_zero, 0.0);
    }

    #[test]
    fn histogram_filters_datatype_and_kind() {
        let mut other = rec(DataType::I32, 0, 1);
        other.kind = SdcType::Consistency;
        let records = vec![rec(DataType::Byte, 0, 1), rec(DataType::I32, 0, 1), other];
        let h = bit_histogram(&records, DataType::Byte);
        let total: f64 = h.iter().map(|b| b.zero_to_one + b.one_to_zero).sum();
        assert!((total - 1.0).abs() < 1e-12, "only the byte record counts");
    }

    #[test]
    fn direction_share() {
        let records = vec![
            rec(DataType::Byte, 0b01, 0b00), // 1→0
            rec(DataType::Byte, 0b00, 0b01), // 0→1
            rec(DataType::Byte, 0b00, 0b10), // 0→1
        ];
        let share = zero_to_one_share(&records);
        assert!((share - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn fraction_share_of_pure_fraction_flips_is_one() {
        // Flip bit 10 of an f64: well inside the 52-bit fraction.
        let e = 1.5f64.to_bits() as u128;
        let records = vec![rec(DataType::F64, e, e ^ (1 << 10))];
        assert_eq!(fraction_part_share(&records, DataType::F64), 1.0);
    }

    #[test]
    fn msb_share_detects_high_flips() {
        let records = vec![rec(DataType::I32, 0, 1u128 << 31)];
        let h = bit_histogram(&records, DataType::I32);
        assert_eq!(msb_share(&h, 4), 1.0);
        assert_eq!(msb_share(&h, 1), 1.0);
    }
}

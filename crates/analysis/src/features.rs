//! Figure 2: the proportion of faulty processors per vulnerable feature.
//!
//! A processor counts toward a feature if any of its *failing testcases*
//! target that feature — the measurement path the paper uses (features are
//! inferred from which workloads fail, not from knowing the defect).
//! The proportions sum to more than 1 because "a defect can occur on
//! shared or integrated components of multiple features".

use crate::study::StudyData;
use sdc_model::Feature;
use toolchain::Suite;

/// One Figure 2 bar.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FeatureShare {
    /// The feature.
    pub feature: Feature,
    /// Fraction of studied faulty processors whose failures implicate it.
    pub proportion: f64,
}

/// Computes Figure 2 from study data.
pub fn figure2(study: &StudyData, suite: &Suite) -> Vec<FeatureShare> {
    let n = study.cases.len().max(1) as f64;
    Feature::ALL
        .iter()
        .map(|&feature| {
            let count = study
                .cases
                .iter()
                .filter(|c| c.failing.iter().any(|&id| suite.get(id).feature == feature))
                .count();
            FeatureShare {
                feature,
                proportion: count as f64 / n,
            }
        })
        .collect()
}

/// The per-case feature sets (used by Table 3 and the observations).
pub fn features_of_case(case: &crate::study::CaseData, suite: &Suite) -> Vec<Feature> {
    let mut v: Vec<Feature> = Feature::ALL
        .iter()
        .copied()
        .filter(|&f| case.failing.iter().any(|&id| suite.get(id).feature == f))
        .collect();
    v.sort();
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::study::{run_case, StudyConfig};
    use fleet::screening::StaticSuiteProfile;
    use sdc_model::Duration;
    use silicon::catalog;

    #[test]
    fn figure2_attributes_features_from_failures() {
        let suite = Suite::standard();
        let cfg = StudyConfig {
            per_testcase: Duration::from_mins(1),
            seed: 3,
            max_candidates: Some(40),
            ..StudyConfig::default()
        };
        let mut cases = Vec::new();
        for name in ["SIMD1", "FPU1"] {
            let case = catalog::by_name(name).unwrap();
            let profiles =
                StaticSuiteProfile::build(&suite, case.processor.physical_cores as usize);
            cases.push(run_case(&case, &suite, &profiles, &cfg));
        }
        let study = StudyData { cases };
        let f2 = figure2(&study, &suite);
        assert_eq!(f2.len(), 5);
        let share = |f: Feature| f2.iter().find(|s| s.feature == f).unwrap().proportion;
        // SIMD1 implicates the vector unit, FPU1 the FPU: half each.
        assert_eq!(share(Feature::VecUnit), 0.5);
        assert_eq!(share(Feature::Fpu), 0.5);
        assert_eq!(share(Feature::TrxMem), 0.0);
        let fpu1 = study.case("FPU1").unwrap();
        assert_eq!(features_of_case(fpu1, &suite), vec![Feature::Fpu]);
    }
}

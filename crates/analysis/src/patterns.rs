//! Figures 6 and 7: bitflip patterns.
//!
//! Observation 8: "bitflips tend to manifest at fixed position(s) within
//! the number representations." A *bitflip pattern* of a setting is a
//! mask (XOR of expected and actual) carried by at least 5% of the
//! setting's SDC records. Figure 6 reports, per (testcase × processor),
//! the proportion of records matching some pattern; Figure 7 the number
//! of flipped bits among pattern records per datatype.

use crate::corpus::RecordCorpus;
use sdc_model::{DataType, SdcRecord, SettingId};

/// The paper's pattern threshold (§4.3, Figure 6 / Observation 8): a
/// mask is a pattern if ≥5% of the setting's records carry it.
pub const PATTERN_THRESHOLD: f64 = 0.05;

/// Pattern analysis of one setting.
#[derive(Debug, Clone)]
pub struct SettingPatterns {
    /// The setting (CPU × core × testcase).
    pub setting: SettingId,
    /// Records in the setting.
    pub n_records: usize,
    /// The pattern masks (≥5% of records each).
    pub patterns: Vec<u128>,
    /// Fraction of records carrying some pattern (a Figure 6 cell).
    pub pattern_share: f64,
}

/// Groups computation records per setting and mines mask patterns.
///
/// Thin adapter over [`RecordCorpus::mine_patterns`] for callers with a
/// record slice in hand; study-scale callers build one corpus and run
/// every pass on its columns instead of re-grouping here per call.
pub fn mine_patterns(records: &[SdcRecord]) -> Vec<SettingPatterns> {
    RecordCorpus::from_records(records).mine_patterns()
}

/// Figure 7: distribution of flipped-bit counts (1, 2, >2) among records
/// whose mask is one of their setting's patterns, for one datatype.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlipMultiplicity {
    /// The datatype.
    pub datatype: DataType,
    /// Share with exactly one flipped bit.
    pub one: f64,
    /// Share with exactly two flipped bits.
    pub two: f64,
    /// Share with more than two flipped bits.
    pub more: f64,
}

/// Computes Figure 7 for `dt` — adapter over
/// [`RecordCorpus::flip_multiplicity`] (one corpus build, no record
/// vector clone).
pub fn flip_multiplicity(records: &[SdcRecord], dt: DataType) -> FlipMultiplicity {
    RecordCorpus::from_records(records).flip_multiplicity(dt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdc_model::{CoreId, CpuId, Duration, SdcType, TestcaseId};

    fn rec(setting_tc: u32, expected: u128, actual: u128) -> SdcRecord {
        SdcRecord {
            setting: SettingId {
                cpu: CpuId(1),
                core: CoreId(0),
                testcase: TestcaseId(setting_tc),
            },
            kind: SdcType::Computation,
            datatype: DataType::I32,
            expected,
            actual,
            temp_c: 50.0,
            at: Duration::ZERO,
        }
    }

    #[test]
    fn dominant_mask_becomes_a_pattern() {
        let mut records = Vec::new();
        // 90 records with mask 0b100, 10 with unique random-ish masks.
        for i in 0..90u128 {
            records.push(rec(1, i, i ^ 0b100));
        }
        for i in 0..10u128 {
            records.push(rec(1, i, i ^ (1 << (10 + i))));
        }
        let mined = mine_patterns(&records);
        assert_eq!(mined.len(), 1);
        let s = &mined[0];
        assert!(s.patterns.contains(&0b100));
        assert!(
            (s.pattern_share - 0.9).abs() < 0.02,
            "share {}",
            s.pattern_share
        );
    }

    #[test]
    fn rare_masks_are_not_patterns() {
        // 100 distinct masks, 1% each: below the 5% threshold.
        let records: Vec<SdcRecord> = (0..100u128).map(|i| rec(2, 0, 1u128 << (i % 30))).collect();
        let mined = mine_patterns(&records);
        // Each distinct mask has ~3 occurrences out of 100 → under 5%.
        assert!(
            mined[0].pattern_share < 0.5,
            "share {}",
            mined[0].pattern_share
        );
    }

    #[test]
    fn settings_are_separate() {
        let mut records = Vec::new();
        for i in 0..20u128 {
            records.push(rec(1, i, i ^ 0b1));
            records.push(rec(2, i, i ^ 0b10));
        }
        let mined = mine_patterns(&records);
        assert_eq!(mined.len(), 2);
        assert_ne!(mined[0].patterns, mined[1].patterns);
    }

    #[test]
    fn multiplicity_counts_flips_of_pattern_records() {
        let mut records = Vec::new();
        for i in 0..50u128 {
            records.push(rec(1, i, i ^ 0b1)); // 1 bit
        }
        for i in 0..50u128 {
            records.push(rec(1, i, i ^ 0b110)); // 2 bits
        }
        let m = flip_multiplicity(&records, DataType::I32);
        assert!((m.one - 0.5).abs() < 1e-12);
        assert!((m.two - 0.5).abs() < 1e-12);
        assert_eq!(m.more, 0.0);
    }

    #[test]
    fn single_record_settings_have_no_patterns() {
        let records = vec![rec(9, 0, 1)];
        let mined = mine_patterns(&records);
        assert!(mined[0].patterns.is_empty());
        assert_eq!(mined[0].pattern_share, 0.0);
    }
}

//! Figures 8 and 9: temperature structure of SDC occurrence.
//!
//! Figure 8 sweeps controlled die temperatures for one setting and fits
//! `log10(frequency)` against temperature (the paper reports Pearson
//! correlations above 0.75 for six processors). Figure 9 scans each
//! setting's *minimum triggering temperature* and correlates it with the
//! frequency observed at that threshold (paper: r = −0.8272).

use sdc_model::stats::{linear_fit, pearson, LinFit};
use sdc_model::{DetRng, Duration, SettingId, TestcaseId};
use silicon::Processor;
use std::sync::Arc;
use toolchain::{ExecConfig, Executor, ProfileCache, Suite};

/// The cores a sweep runs on: the setting's core, plus enough neighbours
/// to satisfy a multi-threaded (consistency) testcase.
fn sweep_cores(processor: &Processor, suite: &Suite, testcase: TestcaseId, core: u16) -> Vec<u16> {
    let threads = suite.get(testcase).threads as u16;
    if threads <= 1 {
        vec![core]
    } else {
        (0..threads)
            .map(|i| (core + i) % processor.physical_cores)
            .collect()
    }
}

/// The physical core most sensitive to a processor's defects at `temp_c`
/// (all-core defects spread their rates over orders of magnitude, so
/// sweeps are best run on the hottest-rate core).
pub fn most_sensitive_core(processor: &Processor, temp_c: f64) -> u16 {
    (0..processor.physical_cores)
        .max_by(|&a, &b| {
            let ra: f64 = processor.defects.iter().map(|d| d.rate(a, temp_c)).sum();
            let rb: f64 = processor.defects.iter().map(|d| d.rate(b, temp_c)).sum();
            ra.partial_cmp(&rb).expect("finite rates")
        })
        .unwrap_or(0)
}

/// One measured (temperature, frequency) point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// Held die temperature, ℃.
    pub temp_c: f64,
    /// Errors per minute at that temperature.
    pub freq_per_min: f64,
}

/// A Figure 8 panel: sweep points and the log-linear fit.
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// The setting swept.
    pub setting: SettingId,
    /// Measured points (including zero-frequency temperatures).
    pub points: Vec<SweepPoint>,
    /// Fit of `log10(freq)` against temperature over nonzero points.
    pub fit: Option<LinFit>,
}

/// Sweeps `testcase` on one `core` of `processor` across held
/// temperatures, measuring occurrence frequency at each (Figure 8).
pub fn temperature_sweep(
    processor: &Processor,
    suite: &Suite,
    testcase: TestcaseId,
    core: u16,
    temps: &[f64],
    window: Duration,
    seed: u64,
) -> SweepResult {
    let tc = suite.get(testcase);
    let cores = sweep_cores(processor, suite, testcase, core);
    let mut points = Vec::with_capacity(temps.len());
    // The unit profile is temperature-independent (the cache key has no
    // hold field), so every grid point shares one cached profile.
    let cache = Arc::new(ProfileCache::with_capacity(4));
    for (i, &t) in temps.iter().enumerate() {
        let cfg = ExecConfig {
            hold_temp_c: Some(t),
            ..ExecConfig::default()
        };
        let mut ex = Executor::with_cache(processor, cfg, Arc::clone(&cache));
        let mut rng = DetRng::new(seed).fork(i as u64);
        let run = ex.run(tc, &cores, window, &mut rng);
        points.push(SweepPoint {
            temp_c: t,
            freq_per_min: run.error_count as f64 / window.as_mins_f64(),
        });
    }
    let xs: Vec<f64> = points
        .iter()
        .filter(|p| p.freq_per_min > 0.0)
        .map(|p| p.temp_c)
        .collect();
    let ys: Vec<f64> = points
        .iter()
        .filter(|p| p.freq_per_min > 0.0)
        .map(|p| p.freq_per_min.log10())
        .collect();
    let fit = linear_fit(&xs, &ys);
    SweepResult {
        setting: SettingId {
            cpu: processor.id,
            core: sdc_model::CoreId(core),
            testcase,
        },
        points,
        fit,
    }
}

/// A Figure 9 scatter point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TriggerPoint {
    /// The setting.
    pub setting: SettingId,
    /// Lowest held temperature at which the setting produced errors.
    pub min_trigger_temp_c: f64,
    /// Frequency observed at that threshold temperature.
    pub freq_at_min: f64,
}

/// Finds the minimum triggering temperature of one setting by scanning
/// `grid` (ascending) with a fixed observation `window` per temperature.
pub fn min_trigger_temp(
    processor: &Processor,
    suite: &Suite,
    testcase: TestcaseId,
    core: u16,
    grid: &[f64],
    window: Duration,
    seed: u64,
) -> Option<TriggerPoint> {
    let tc = suite.get(testcase);
    let cores = sweep_cores(processor, suite, testcase, core);
    // As in `temperature_sweep`: one profile serves the whole scan.
    let cache = Arc::new(ProfileCache::with_capacity(4));
    for (i, &t) in grid.iter().enumerate() {
        let cfg = ExecConfig {
            hold_temp_c: Some(t),
            ..ExecConfig::default()
        };
        let mut ex = Executor::with_cache(processor, cfg, Arc::clone(&cache));
        let mut rng = DetRng::new(seed).fork(i as u64);
        let run = ex.run(tc, &cores, window, &mut rng);
        if run.error_count > 0 {
            return Some(TriggerPoint {
                setting: SettingId {
                    cpu: processor.id,
                    core: sdc_model::CoreId(core),
                    testcase,
                },
                min_trigger_temp_c: t,
                freq_at_min: run.error_count as f64 / window.as_mins_f64(),
            });
        }
    }
    None
}

/// Pearson correlation between minimum triggering temperature and
/// `log10(frequency at threshold)` over a set of trigger points —
/// Figure 9's r = −0.8272.
pub fn figure9_correlation(points: &[TriggerPoint]) -> Option<f64> {
    let xs: Vec<f64> = points.iter().map(|p| p.min_trigger_temp_c).collect();
    let ys: Vec<f64> = points
        .iter()
        .filter(|p| p.freq_at_min > 0.0)
        .map(|p| p.freq_at_min.log10())
        .collect();
    if xs.len() != ys.len() {
        // Zero-frequency points carry no log value; filter consistently.
        let filtered: Vec<&TriggerPoint> = points.iter().filter(|p| p.freq_at_min > 0.0).collect();
        let xs: Vec<f64> = filtered.iter().map(|p| p.min_trigger_temp_c).collect();
        let ys: Vec<f64> = filtered.iter().map(|p| p.freq_at_min.log10()).collect();
        return pearson(&xs, &ys);
    }
    pearson(&xs, &ys)
}

#[cfg(test)]
mod tests {
    use super::*;
    use silicon::catalog;

    /// First testcase with `prefix` that the processor's defects actually
    /// apply to (§4.1 selectivity: not every matching testcase triggers).
    fn find_applicable(suite: &Suite, prefix: &str, p: &silicon::Processor) -> TestcaseId {
        suite
            .testcases()
            .iter()
            .filter(|t| t.name.starts_with(prefix))
            .find(|t| p.defects.iter().any(|d| d.applies_to(t.id)))
            .unwrap_or_else(|| panic!("no applicable testcase with prefix {prefix}"))
            .id
    }

    #[test]
    fn fpu2_sweep_shows_exponential_dependence() {
        // Figure 8(c): FPU2 pcore 8, ~48–56 ℃.
        let suite = Suite::standard();
        let fpu2 = catalog::by_name("FPU2").unwrap().processor;
        let tc = find_applicable(&suite, "fpu/atan/f64/", &fpu2);
        let temps: Vec<f64> = (48..=56).step_by(2).map(|t| t as f64).collect();
        let sweep = temperature_sweep(&fpu2, &suite, tc, 8, &temps, Duration::from_mins(20), 42);
        let fit = sweep.fit.expect("enough nonzero points to fit");
        assert!(
            fit.slope > 0.05,
            "positive exponential slope, got {}",
            fit.slope
        );
        assert!(fit.r > 0.75, "paper-grade correlation, got {}", fit.r);
    }

    #[test]
    fn flat_defect_shows_no_temperature_trend() {
        let suite = Suite::standard();
        let simd1 = catalog::by_name("SIMD1").unwrap().processor;
        let tc = find_applicable(&suite, "vec/matk/l0", &simd1);
        let temps = [48.0, 56.0, 64.0, 72.0];
        let sweep = temperature_sweep(&simd1, &suite, tc, 0, &temps, Duration::from_mins(5), 43);
        let fit = sweep.fit.expect("always fires");
        assert!(fit.slope.abs() < 0.02, "flat trigger, slope {}", fit.slope);
    }

    #[test]
    fn min_trigger_found_above_gate() {
        let suite = Suite::standard();
        let mix1 = catalog::by_name("MIX1").unwrap().processor;
        // The tricky defect gates at 59 ℃ on FloatDiv; pick a float-div
        // testcase its paths reach.
        // Pick a float-division testcase whose paths reach the *tricky*
        // (temperature-gated) defect, and that defect's hottest core —
        // the all-core rates spread over orders of magnitude (Obs. 4).
        let tricky = &mix1.defects[1];
        assert_eq!(tricky.trigger.t_min_c, 59.0);
        let tc = suite
            .testcases()
            .iter()
            .filter(|t| t.name.starts_with("fpu/f64/fam2"))
            .find(|t| tricky.applies_to(t.id))
            .expect("an applicable float-div testcase")
            .id;
        let core = (0..mix1.physical_cores)
            .max_by(|&a, &b| {
                tricky
                    .rate(a, 70.0)
                    .partial_cmp(&tricky.rate(b, 70.0))
                    .expect("finite")
            })
            .expect("cores");
        let grid: Vec<f64> = (46..=80).step_by(2).map(|t| t as f64).collect();
        let p = min_trigger_temp(&mix1, &suite, tc, core, &grid, Duration::from_hours(3), 44)
            .expect("fires somewhere on the grid");
        assert!(
            p.min_trigger_temp_c >= 59.0,
            "gate respected: {}",
            p.min_trigger_temp_c
        );
        assert!(p.freq_at_min > 0.0);
    }

    #[test]
    fn correlation_helper_handles_degenerate_inputs() {
        assert_eq!(figure9_correlation(&[]), None);
        let one = TriggerPoint {
            setting: SettingId {
                cpu: sdc_model::CpuId(1),
                core: sdc_model::CoreId(0),
                testcase: TestcaseId(0),
            },
            min_trigger_temp_c: 50.0,
            freq_at_min: 1.0,
        };
        assert_eq!(figure9_correlation(&[one]), None);
    }
}

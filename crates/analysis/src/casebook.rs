//! Table 3: the named case studies, regenerated from measurements.
//!
//! Everything in a row is *measured* by the study driver — the defective
//! physical cores are the cores that produced errors, `#err` is the
//! number of failing testcases, impacted datatypes come from the records —
//! so the table checks the whole pipeline, not the catalog definitions.

use crate::datatypes::datatypes_of_case;
use crate::study::StudyData;
use sdc_model::{ArchId, CoreId, DataType, SdcType};

/// One Table 3 row.
#[derive(Debug, Clone)]
pub struct CaseRow {
    /// Study name ("MIX1", …).
    pub name: &'static str,
    /// Micro-architecture.
    pub arch: ArchId,
    /// Age in years.
    pub age_years: f64,
    /// Defective physical cores, as measured (cores that produced errors).
    pub defective_cores: Vec<CoreId>,
    /// Number of failing testcases (`#err`).
    pub n_err: usize,
    /// Computation or consistency.
    pub sdc_type: Option<SdcType>,
    /// Impacted datatypes, as measured from records.
    pub impacted_datatypes: Vec<DataType>,
}

/// The named processors of Table 3, in paper order.
pub const TABLE3_NAMES: [&str; 10] = [
    "MIX1", "MIX2", "SIMD1", "SIMD2", "FPU1", "FPU2", "FPU3", "FPU4", "CNST1", "CNST2",
];

/// Regenerates Table 3 rows from study data.
pub fn table3(study: &StudyData) -> Vec<CaseRow> {
    TABLE3_NAMES
        .iter()
        .filter_map(|&name| {
            let case = study.case(name)?;
            let mut cores: Vec<CoreId> =
                case.freq_per_setting.iter().map(|&(s, _)| s.core).collect();
            cores.sort();
            cores.dedup();
            let sdc_type = case.records.first().map(|r| r.kind);
            Some(CaseRow {
                name: case.name,
                arch: case.processor.arch,
                age_years: case.processor.age_years,
                defective_cores: cores,
                n_err: case.failing.len(),
                sdc_type,
                impacted_datatypes: datatypes_of_case(case),
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::study::{run_case, StudyConfig};
    use fleet::screening::StaticSuiteProfile;
    use sdc_model::Duration;
    use silicon::catalog;
    use toolchain::Suite;

    #[test]
    fn table3_rows_are_measured() {
        let suite = Suite::standard();
        let cfg = StudyConfig {
            per_testcase: Duration::from_mins(2),
            seed: 9,
            max_candidates: Some(30),
            ..StudyConfig::default()
        };
        let mut cases = Vec::new();
        for name in ["SIMD1", "FPU1"] {
            let case = catalog::by_name(name).unwrap();
            let profiles =
                StaticSuiteProfile::build(&suite, case.processor.physical_cores as usize);
            cases.push(run_case(&case, &suite, &profiles, &cfg));
        }
        let rows = table3(&StudyData { cases });
        assert_eq!(rows.len(), 2);

        let simd1 = &rows[0];
        assert_eq!(simd1.name, "SIMD1");
        assert_eq!(simd1.arch, ArchId(2));
        assert_eq!(
            simd1.defective_cores,
            vec![CoreId(0)],
            "single defective core"
        );
        assert!(simd1.n_err > 0);
        assert_eq!(simd1.sdc_type, Some(SdcType::Computation));
        assert_eq!(simd1.impacted_datatypes, vec![DataType::F32]);

        let fpu1 = &rows[1];
        assert_eq!(fpu1.defective_cores, vec![CoreId(3)]);
        assert!(fpu1.impacted_datatypes.contains(&DataType::F64));
    }
}

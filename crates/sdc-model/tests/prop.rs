//! Property-based tests for the shared vocabulary.

use proptest::prelude::*;
use sdc_model::stats::{linear_fit, pearson, Cdf};
use sdc_model::{
    CoreId, CpuId, DataType, DetRng, Duration, SdcRecord, SdcType, SettingId, TestcaseId, Value,
};

fn any_datatype() -> impl Strategy<Value = DataType> {
    prop::sample::select(DataType::ALL.to_vec())
}

proptest! {
    #[test]
    fn value_bits_stay_in_width(dt in any_datatype(), bits in any::<u128>()) {
        let v = Value::from_bits(dt, bits);
        prop_assert_eq!(v.bits & !dt.mask(), 0);
    }

    #[test]
    fn precision_loss_is_nonnegative(dt in any_datatype(), e in any::<u128>(), a in any::<u128>()) {
        let ev = Value::from_bits(dt, e);
        let av = Value::from_bits(dt, a);
        if let Some(loss) = Value::rel_precision_loss(ev, av) {
            prop_assert!(loss >= 0.0 || loss.is_nan());
        }
    }

    #[test]
    fn identical_values_have_zero_loss(dt in any_datatype(), bits in any::<u128>()) {
        let v = Value::from_bits(dt, bits);
        if dt.is_numeric() {
            prop_assert_eq!(Value::rel_precision_loss(v, v), Some(0.0));
        }
    }

    #[test]
    fn record_mask_is_symmetric_and_bounded(
        dt in any_datatype(),
        e in any::<u128>(),
        a in any::<u128>(),
    ) {
        let rec = |expected, actual| SdcRecord {
            setting: SettingId { cpu: CpuId(1), core: CoreId(0), testcase: TestcaseId(0) },
            kind: SdcType::Computation,
            datatype: dt,
            expected,
            actual,
            temp_c: 50.0,
            at: Duration::ZERO,
        };
        let r1 = rec(e, a);
        let r2 = rec(a, e);
        prop_assert_eq!(r1.mask(), r2.mask());
        prop_assert_eq!(r1.mask() & !dt.mask(), 0);
        prop_assert_eq!(r1.flipped_bits(), r1.flips().count() as u32);
    }

    #[test]
    fn duration_arithmetic_is_consistent(a in 0u64..1_000_000, b in 0u64..1_000_000) {
        let da = Duration::from_micros(a);
        let db = Duration::from_micros(b);
        prop_assert_eq!((da + db).as_micros(), a + b);
        prop_assert_eq!(da.saturating_sub(db).as_micros(), a.saturating_sub(b));
        prop_assert!((da.as_secs_f64() - a as f64 / 1e6).abs() < 1e-12);
    }

    #[test]
    fn det_rng_forks_are_reproducible(seed in any::<u64>(), label in any::<u64>()) {
        use rand::RngCore as _;
        let a = DetRng::new(seed).fork(label).next_u64();
        let b = DetRng::new(seed).fork(label).next_u64();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn cdf_is_monotone(samples in prop::collection::vec(-1e6f64..1e6, 2..50)) {
        let cdf = Cdf::from_samples(samples.clone());
        let mut probe: Vec<f64> = samples;
        probe.sort_by(|x, y| x.partial_cmp(y).expect("finite"));
        let mut prev = 0.0;
        for &x in &probe {
            let f = cdf.fraction_at_most(x);
            prop_assert!(f >= prev - 1e-12, "CDF must be monotone");
            prop_assert!((0.0..=1.0).contains(&f));
            prev = f;
        }
        prop_assert_eq!(cdf.fraction_at_most(f64::MAX), 1.0);
    }

    #[test]
    fn pearson_is_bounded_and_symmetric(
        pairs in prop::collection::vec((-1e3f64..1e3, -1e3f64..1e3), 3..40),
    ) {
        let xs: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let ys: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        if let Some(r) = pearson(&xs, &ys) {
            prop_assert!((-1.0..=1.0).contains(&r));
            prop_assert!((pearson(&ys, &xs).expect("symmetric") - r).abs() < 1e-9);
        }
    }

    #[test]
    fn linear_fit_recovers_exact_lines(
        slope in -100f64..100.0,
        intercept in -100f64..100.0,
        xs in prop::collection::vec(-1e3f64..1e3, 3..20),
    ) {
        // Need spread in x for a well-posed fit.
        let spread = xs.iter().cloned().fold(f64::MIN, f64::max)
            - xs.iter().cloned().fold(f64::MAX, f64::min);
        prop_assume!(spread > 1.0);
        let ys: Vec<f64> = xs.iter().map(|&x| slope * x + intercept).collect();
        let fit = linear_fit(&xs, &ys).expect("well-posed");
        prop_assert!((fit.slope - slope).abs() < 1e-6 * slope.abs().max(1.0));
        prop_assert!((fit.intercept - intercept).abs() < 1e-4 * intercept.abs().max(1.0) + 1e-6);
    }

    #[test]
    fn poisson_is_zero_for_zero_lambda(seed in any::<u64>()) {
        let mut rng = DetRng::new(seed);
        prop_assert_eq!(rng.poisson(0.0), 0);
    }

    #[test]
    fn weighted_respects_zero_weights(seed in any::<u64>()) {
        let mut rng = DetRng::new(seed);
        for _ in 0..50 {
            let idx = rng.weighted(&[0.0, 1.0, 0.0]);
            prop_assert_eq!(idx, 1);
        }
    }
}

//! Operation datatypes affected by SDCs (Observation 6, Figure 3).
//!
//! The paper's Figure 3 enumerates: i16, i32, ui32, f32, f64, bit, byte,
//! bin16, bin32, bin64; Table 3 additionally mentions f64x (80-bit extended
//! precision) and Figure 4(d)/(h) analyse it.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A datatype an operation (and thus an SDC) can act on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum DataType {
    /// 16-bit signed integer.
    I16,
    /// 32-bit signed integer.
    I32,
    /// 32-bit unsigned integer.
    U32,
    /// Single-precision IEEE-754 floating point.
    F32,
    /// Double-precision IEEE-754 floating point.
    F64,
    /// 80-bit x87 extended-precision floating point ("float64x" in Table 3).
    F64X,
    /// A single bit (flag / predicate results).
    Bit,
    /// An 8-bit raw byte.
    Byte,
    /// 16 bits of non-numerical binary data (e.g. a hash fragment).
    Bin16,
    /// 32 bits of non-numerical binary data (e.g. a CRC32 value).
    Bin32,
    /// 64 bits of non-numerical binary data (e.g. a 64-bit hash).
    Bin64,
}

impl DataType {
    /// All datatypes, in the order of the paper's Figure 3 (with F64X
    /// inserted after F64, as analysed in Figure 4).
    pub const ALL: [DataType; 11] = [
        DataType::I16,
        DataType::I32,
        DataType::U32,
        DataType::F32,
        DataType::F64,
        DataType::F64X,
        DataType::Bit,
        DataType::Byte,
        DataType::Bin16,
        DataType::Bin32,
        DataType::Bin64,
    ];

    /// Width of the representation in bits.
    #[inline]
    pub fn bits(self) -> u32 {
        match self {
            DataType::Bit => 1,
            DataType::Byte => 8,
            DataType::I16 | DataType::Bin16 => 16,
            DataType::I32 | DataType::U32 | DataType::F32 | DataType::Bin32 => 32,
            DataType::F64 | DataType::Bin64 => 64,
            DataType::F64X => 80,
        }
    }

    /// Mask with the low `bits()` bits set; representations are stored in
    /// the low bits of a `u128`.
    #[inline]
    pub fn mask(self) -> u128 {
        if self.bits() == 128 {
            u128::MAX
        } else {
            (1u128 << self.bits()) - 1
        }
    }

    /// Whether this datatype carries a numerical value (integers and
    /// floats); bitflip *position* analyses split on this (Figures 4 vs 5).
    pub fn is_numeric(self) -> bool {
        matches!(
            self,
            DataType::I16
                | DataType::I32
                | DataType::U32
                | DataType::F32
                | DataType::F64
                | DataType::F64X
        )
    }

    /// Whether this datatype is an IEEE-754-style floating-point format.
    pub fn is_float(self) -> bool {
        matches!(self, DataType::F32 | DataType::F64 | DataType::F64X)
    }

    /// Number of fraction (mantissa) bits for float formats, `None`
    /// otherwise.
    ///
    /// For `F64X` this counts the 63 bits below the explicit integer bit.
    pub fn fraction_bits(self) -> Option<u32> {
        match self {
            DataType::F32 => Some(23),
            DataType::F64 => Some(52),
            DataType::F64X => Some(63),
            _ => None,
        }
    }

    /// Label used in tables and figures (matches Figure 3 ticks).
    pub fn label(self) -> &'static str {
        match self {
            DataType::I16 => "i16",
            DataType::I32 => "i32",
            DataType::U32 => "ui32",
            DataType::F32 => "f32",
            DataType::F64 => "f64",
            DataType::F64X => "f64x",
            DataType::Bit => "bit",
            DataType::Byte => "byte",
            DataType::Bin16 => "bin16",
            DataType::Bin32 => "bin32",
            DataType::Bin64 => "bin64",
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

serde::impl_json_unit_enum!(DataType {
    I16,
    I32,
    U32,
    F32,
    F64,
    F64X,
    Bit,
    Byte,
    Bin16,
    Bin32,
    Bin64,
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widths() {
        assert_eq!(DataType::Bit.bits(), 1);
        assert_eq!(DataType::Byte.bits(), 8);
        assert_eq!(DataType::I16.bits(), 16);
        assert_eq!(DataType::F32.bits(), 32);
        assert_eq!(DataType::F64.bits(), 64);
        assert_eq!(DataType::F64X.bits(), 80);
    }

    #[test]
    fn masks_cover_exactly_width() {
        for dt in DataType::ALL {
            assert_eq!(dt.mask().count_ones(), dt.bits());
        }
    }

    #[test]
    fn numeric_and_float_split() {
        assert!(DataType::I32.is_numeric());
        assert!(!DataType::I32.is_float());
        assert!(DataType::F64X.is_float());
        assert!(!DataType::Bin64.is_numeric());
        assert!(!DataType::Byte.is_numeric());
    }

    #[test]
    fn fraction_bits_for_floats_only() {
        assert_eq!(DataType::F32.fraction_bits(), Some(23));
        assert_eq!(DataType::F64.fraction_bits(), Some(52));
        assert_eq!(DataType::F64X.fraction_bits(), Some(63));
        assert_eq!(DataType::I32.fraction_bits(), None);
    }

    #[test]
    fn all_has_eleven_distinct() {
        let set: std::collections::HashSet<_> = DataType::ALL.into_iter().collect();
        assert_eq!(set.len(), 11);
    }
}

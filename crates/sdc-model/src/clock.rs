//! Virtual time.
//!
//! The whole study runs on simulated time: testcase durations, occurrence
//! frequencies (errors per *virtual* minute), regular-test cadences (every
//! three months) and backoff durations are all expressed against this
//! clock, so experiments are deterministic and fast regardless of the
//! wall-clock cost of the simulation.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// A span of virtual time with microsecond resolution.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Duration {
    micros: u64,
}

impl Duration {
    /// The zero duration.
    pub const ZERO: Duration = Duration { micros: 0 };

    /// Builds a duration from microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        Duration { micros }
    }

    /// Builds a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Duration { micros: ms * 1_000 }
    }

    /// Builds a duration from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        Duration {
            micros: secs * 1_000_000,
        }
    }

    /// Builds a duration from whole minutes.
    pub const fn from_mins(mins: u64) -> Self {
        Duration {
            micros: mins * 60_000_000,
        }
    }

    /// Builds a duration from whole hours.
    pub const fn from_hours(hours: u64) -> Self {
        Duration {
            micros: hours * 3_600_000_000,
        }
    }

    /// Builds a duration from whole days.
    pub const fn from_days(days: u64) -> Self {
        Duration {
            micros: days * 86_400_000_000,
        }
    }

    /// Builds a duration from fractional seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "invalid duration: {secs}");
        Duration {
            micros: (secs * 1e6).round() as u64,
        }
    }

    /// Microseconds in this duration.
    pub const fn as_micros(self) -> u64 {
        self.micros
    }

    /// Fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.micros as f64 / 1e6
    }

    /// Fractional minutes (the unit of occurrence frequency).
    pub fn as_mins_f64(self) -> f64 {
        self.micros as f64 / 60e6
    }

    /// Fractional hours.
    pub fn as_hours_f64(self) -> f64 {
        self.micros as f64 / 3_600e6
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: Duration) -> Duration {
        Duration {
            micros: self.micros.saturating_sub(rhs.micros),
        }
    }
}

impl Add for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration {
            micros: self.micros + rhs.micros,
        }
    }
}

impl AddAssign for Duration {
    fn add_assign(&mut self, rhs: Duration) {
        self.micros += rhs.micros;
    }
}

impl Sub for Duration {
    type Output = Duration;
    fn sub(self, rhs: Duration) -> Duration {
        Duration {
            micros: self.micros - rhs.micros,
        }
    }
}

impl Mul<u64> for Duration {
    type Output = Duration;
    fn mul(self, rhs: u64) -> Duration {
        Duration {
            micros: self.micros * rhs,
        }
    }
}

impl Div<u64> for Duration {
    type Output = Duration;
    fn div(self, rhs: u64) -> Duration {
        Duration {
            micros: self.micros / rhs,
        }
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.as_secs_f64();
        if s < 1.0 {
            write!(f, "{:.3}ms", s * 1e3)
        } else if s < 120.0 {
            write!(f, "{s:.3}s")
        } else if s < 7200.0 {
            write!(f, "{:.2}min", s / 60.0)
        } else {
            write!(f, "{:.2}h", s / 3600.0)
        }
    }
}

serde::impl_json_struct!(Duration { micros });

/// A monotonically advancing virtual clock.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct VirtualClock {
    now: Duration,
}

impl VirtualClock {
    /// A clock starting at time zero.
    pub fn new() -> Self {
        VirtualClock::default()
    }

    /// The current virtual time (as a duration since the epoch).
    pub fn now(&self) -> Duration {
        self.now
    }

    /// Advances the clock by `dt`.
    pub fn advance(&mut self, dt: Duration) {
        self.now += dt;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(Duration::from_secs(60), Duration::from_mins(1));
        assert_eq!(Duration::from_mins(60), Duration::from_hours(1));
        assert_eq!(Duration::from_hours(24), Duration::from_days(1));
        assert_eq!(Duration::from_millis(1000), Duration::from_secs(1));
    }

    #[test]
    fn fractional_views() {
        let d = Duration::from_secs(90);
        assert!((d.as_mins_f64() - 1.5).abs() < 1e-12);
        assert!((d.as_secs_f64() - 90.0).abs() < 1e-12);
    }

    #[test]
    fn from_secs_f64_rounds() {
        assert_eq!(Duration::from_secs_f64(0.5).as_micros(), 500_000);
    }

    #[test]
    #[should_panic(expected = "invalid duration")]
    fn from_secs_f64_rejects_negative() {
        let _ = Duration::from_secs_f64(-1.0);
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut c = VirtualClock::new();
        assert_eq!(c.now(), Duration::ZERO);
        c.advance(Duration::from_secs(5));
        c.advance(Duration::from_secs(7));
        assert_eq!(c.now(), Duration::from_secs(12));
    }

    #[test]
    fn arithmetic() {
        let a = Duration::from_secs(10);
        let b = Duration::from_secs(3);
        assert_eq!(a - b, Duration::from_secs(7));
        assert_eq!(b * 4, Duration::from_secs(12));
        assert_eq!(a / 2, Duration::from_secs(5));
        assert_eq!(b.saturating_sub(a), Duration::ZERO);
    }

    #[test]
    fn display_scales() {
        assert_eq!(Duration::from_millis(5).to_string(), "5.000ms");
        assert_eq!(Duration::from_secs(5).to_string(), "5.000s");
        assert_eq!(Duration::from_mins(10).to_string(), "10.00min");
        assert_eq!(Duration::from_hours(3).to_string(), "3.00h");
    }
}

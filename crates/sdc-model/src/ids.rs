//! Identifiers for processors, cores, testcases, and study settings.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a processor (a physical CPU package) in the fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CpuId(pub u64);

impl fmt::Display for CpuId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cpu{}", self.0)
    }
}

/// Identifier of a physical core within a processor.
///
/// Multiple hardware threads (logical cores) may share one physical core;
/// the study attributes defects to physical cores (Observation 4), so this
/// is the granularity used throughout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CoreId(pub u16);

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pcore{}", self.0)
    }
}

/// Identifier of a testcase in the toolchain (the paper's toolchain has 633).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TestcaseId(pub u32);

impl fmt::Display for TestcaseId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tc{}", self.0)
    }
}

/// A micro-architecture generation, `M1`–`M9` in the paper's Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ArchId(pub u8);

impl ArchId {
    /// Number of micro-architectures in the studied fleet (Table 2).
    pub const COUNT: usize = 9;

    /// All micro-architectures `M1..=M9`.
    pub fn all() -> impl Iterator<Item = ArchId> {
        (1..=Self::COUNT as u8).map(ArchId)
    }
}

impl fmt::Display for ArchId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "M{}", self.0)
    }
}

/// A *setting*: the combination of a processor, one of its cores, and a
/// testcase.
///
/// The paper measures occurrence frequency and bitflip patterns per setting
/// (Section 5): "Since the occurrence frequency depends on both the CPU and
/// the workload (i.e., testcase), we record the occurrence frequency per
/// setting."
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SettingId {
    /// The processor under test.
    pub cpu: CpuId,
    /// The physical core under test.
    pub core: CoreId,
    /// The testcase being executed.
    pub testcase: TestcaseId,
}

impl fmt::Display for SettingId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}/{}", self.cpu, self.core, self.testcase)
    }
}

serde::impl_json_newtype!(CpuId(u64));
serde::impl_json_newtype!(CoreId(u16));
serde::impl_json_newtype!(TestcaseId(u32));
serde::impl_json_newtype!(ArchId(u8));
serde::impl_json_struct!(SettingId { cpu, core, testcase });

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(CpuId(3).to_string(), "cpu3");
        assert_eq!(CoreId(1).to_string(), "pcore1");
        assert_eq!(TestcaseId(10).to_string(), "tc10");
        assert_eq!(ArchId(2).to_string(), "M2");
        let s = SettingId {
            cpu: CpuId(1),
            core: CoreId(0),
            testcase: TestcaseId(7),
        };
        assert_eq!(s.to_string(), "cpu1/pcore0/tc7");
    }

    #[test]
    fn arch_all_covers_table2() {
        let archs: Vec<_> = ArchId::all().collect();
        assert_eq!(archs.len(), 9);
        assert_eq!(archs[0], ArchId(1));
        assert_eq!(archs[8], ArchId(9));
    }

    #[test]
    fn ids_are_ordered() {
        assert!(CpuId(1) < CpuId(2));
        assert!(TestcaseId(632) > TestcaseId(0));
    }
}

//! The processor feature taxonomy of Observation 5.
//!
//! The study identifies five vulnerable features: arithmetic logic
//! computation, vector operations, floating-point calculation, cache
//! coherency, and transactional memory. Features split into two SDC types —
//! *computation* and *consistency* — that demand different testing
//! strategies (consistency SDCs only manifest under multi-threaded tests).

use serde::{Deserialize, Serialize};
use std::fmt;

/// A processor feature that can harbour an SDC-producing defect.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Feature {
    /// Arithmetic logic computation (integer ALU, bit operations, shifts).
    Alu,
    /// Vector (SIMD) operations.
    VecUnit,
    /// Scalar floating-point calculation, including complex math functions.
    Fpu,
    /// Cache coherency between cores.
    Cache,
    /// Transactional memory (hardware transactional regions).
    TrxMem,
}

impl Feature {
    /// All five features, in the order of the paper's Figure 2.
    pub const ALL: [Feature; 5] = [
        Feature::Alu,
        Feature::VecUnit,
        Feature::Fpu,
        Feature::Cache,
        Feature::TrxMem,
    ];

    /// The SDC type this feature produces when defective.
    ///
    /// Computation SDCs come from defective arithmetic (ALU, vector, FPU);
    /// consistency SDCs come from defective consistency guarantees (cache
    /// coherency, transactional memory).
    pub fn sdc_type(self) -> SdcType {
        match self {
            Feature::Alu | Feature::VecUnit | Feature::Fpu => SdcType::Computation,
            Feature::Cache | Feature::TrxMem => SdcType::Consistency,
        }
    }

    /// Whether detecting a defect in this feature requires multi-threaded
    /// testcases (true exactly for consistency features).
    pub fn needs_multithread(self) -> bool {
        self.sdc_type() == SdcType::Consistency
    }

    /// Short label used in tables and figures (matches Figure 2 ticks).
    pub fn label(self) -> &'static str {
        match self {
            Feature::Alu => "ALU",
            Feature::VecUnit => "VecUnit",
            Feature::Fpu => "FPU",
            Feature::Cache => "Cache",
            Feature::TrxMem => "TrxMem",
        }
    }
}

impl fmt::Display for Feature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The two SDC classes of Section 4.1.
///
/// The paper distinguishes them because (1) consistency SDCs can only be
/// detected with multi-threaded tests, and (2) when one processor has
/// multiple defective features, they always belong to one type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SdcType {
    /// Wrong results from defective arithmetic operations.
    Computation,
    /// Violations of consistency guarantees (stale reads, broken
    /// transactional isolation); these have no deterministic value pattern.
    Consistency,
}

impl fmt::Display for SdcType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SdcType::Computation => f.write_str("computation"),
            SdcType::Consistency => f.write_str("consistency"),
        }
    }
}

serde::impl_json_unit_enum!(SdcType { Computation, Consistency });

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_partition_matches_paper() {
        assert_eq!(Feature::Alu.sdc_type(), SdcType::Computation);
        assert_eq!(Feature::VecUnit.sdc_type(), SdcType::Computation);
        assert_eq!(Feature::Fpu.sdc_type(), SdcType::Computation);
        assert_eq!(Feature::Cache.sdc_type(), SdcType::Consistency);
        assert_eq!(Feature::TrxMem.sdc_type(), SdcType::Consistency);
    }

    #[test]
    fn only_consistency_needs_multithread() {
        for f in Feature::ALL {
            assert_eq!(f.needs_multithread(), f.sdc_type() == SdcType::Consistency);
        }
    }

    #[test]
    fn all_lists_five_distinct_features() {
        let mut set = std::collections::HashSet::new();
        for f in Feature::ALL {
            assert!(set.insert(f));
        }
        assert_eq!(set.len(), 5);
    }
}

//! Typed values stored as raw bit representations.
//!
//! SDC records compare an expected and an actual result at the bit level
//! (Figure 4–5) and at the value level (precision-loss CDFs, Figure 4e–h).
//! `Value` carries the raw representation in the low bits of a `u128`
//! together with its [`DataType`], and knows how to interpret itself
//! numerically — including the 80-bit x87 extended format.

use crate::datatype::DataType;
use serde::{Deserialize, Serialize};

/// A typed value stored as its raw bit representation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Value {
    /// The datatype of the representation.
    pub dt: DataType,
    /// Raw bits in the low `dt.bits()` bits.
    pub bits: u128,
}

impl Value {
    /// Builds a value from raw bits, masking to the datatype width.
    pub fn from_bits(dt: DataType, bits: u128) -> Self {
        Value {
            dt,
            bits: bits & dt.mask(),
        }
    }

    /// Builds an `i16` value.
    pub fn from_i16(v: i16) -> Self {
        Value::from_bits(DataType::I16, v as u16 as u128)
    }

    /// Builds an `i32` value.
    pub fn from_i32(v: i32) -> Self {
        Value::from_bits(DataType::I32, v as u32 as u128)
    }

    /// Builds a `u32` value.
    pub fn from_u32(v: u32) -> Self {
        Value::from_bits(DataType::U32, v as u128)
    }

    /// Builds an `f32` value from its numeric value.
    pub fn from_f32(v: f32) -> Self {
        Value::from_bits(DataType::F32, v.to_bits() as u128)
    }

    /// Builds an `f64` value from its numeric value.
    pub fn from_f64(v: f64) -> Self {
        Value::from_bits(DataType::F64, v.to_bits() as u128)
    }

    /// Builds an 80-bit extended-precision value from its raw encoding
    /// (sign bit 79, 15-bit exponent, 64-bit significand with explicit
    /// integer bit).
    pub fn from_f64x_bits(bits: u128) -> Self {
        Value::from_bits(DataType::F64X, bits)
    }

    /// Interprets the representation as a numeric `f64`, when the datatype
    /// is numeric. Non-numeric (binary) datatypes return `None`.
    pub fn to_f64(self) -> Option<f64> {
        match self.dt {
            DataType::I16 => Some(self.bits as u16 as i16 as f64),
            DataType::I32 => Some(self.bits as u32 as i32 as f64),
            DataType::U32 => Some(self.bits as u32 as f64),
            DataType::F32 => Some(f32::from_bits(self.bits as u32) as f64),
            DataType::F64 => Some(f64::from_bits(self.bits as u64)),
            DataType::F64X => Some(decode_f64x(self.bits)),
            DataType::Bit
            | DataType::Byte
            | DataType::Bin16
            | DataType::Bin32
            | DataType::Bin64 => None,
        }
    }

    /// Relative precision loss of `actual` with respect to `expected`:
    /// `|expected − actual| / |expected|`.
    ///
    /// For floating-point values whose sign and exponent agree, the loss is
    /// computed exactly from the significands, so sub-`f64`-epsilon losses
    /// (e.g. a flip in the low fraction bit of an 80-bit value) do not
    /// round to zero. Returns `None` for non-numeric datatypes, and
    /// `f64::INFINITY` when the expected value is zero but the actual is
    /// not.
    pub fn rel_precision_loss(expected: Value, actual: Value) -> Option<f64> {
        if expected.dt != actual.dt || !expected.dt.is_numeric() {
            return None;
        }
        if expected.bits == actual.bits {
            return Some(0.0);
        }
        if let Some(loss) = float_exact_loss(expected, actual) {
            return Some(loss);
        }
        let e = expected.to_f64()?;
        let a = actual.to_f64()?;
        if e == 0.0 {
            return Some(if a == 0.0 { 0.0 } else { f64::INFINITY });
        }
        Some(((e - a) / e).abs())
    }
}

/// Exact loss path for float formats when sign and exponent agree: the
/// relative difference is `|m_e − m_a| / m_e` over the significands.
fn float_exact_loss(expected: Value, actual: Value) -> Option<f64> {
    let (se, ee, me) = split_float(expected)?;
    let (sa, ea, ma) = split_float(actual)?;
    if se != sa || ee != ea || me == 0 {
        return None;
    }
    let diff = me.abs_diff(ma);
    Some(diff as f64 / me as f64)
}

/// Splits a float representation into (sign, biased exponent, significand
/// with the implicit/explicit leading bit made explicit).
fn split_float(v: Value) -> Option<(bool, u32, u128)> {
    match v.dt {
        DataType::F32 => {
            let b = v.bits as u32;
            let exp = (b >> 23) & 0xff;
            let frac = (b & 0x7f_ffff) as u128;
            let m = if exp == 0 { frac } else { frac | (1 << 23) };
            Some((b >> 31 == 1, exp, m))
        }
        DataType::F64 => {
            let b = v.bits as u64;
            let exp = ((b >> 52) & 0x7ff) as u32;
            let frac = (b & ((1u64 << 52) - 1)) as u128;
            let m = if exp == 0 { frac } else { frac | (1 << 52) };
            Some((b >> 63 == 1, exp, m))
        }
        DataType::F64X => {
            let b = v.bits;
            let exp = ((b >> 64) & 0x7fff) as u32;
            // The integer bit is explicit in the x87 format.
            let m = b & u64::MAX as u128;
            Some(((b >> 79) & 1 == 1, exp, m))
        }
        _ => None,
    }
}

/// Decodes an 80-bit x87 extended-precision representation to `f64`
/// (with precision loss, for display and coarse comparisons).
fn decode_f64x(bits: u128) -> f64 {
    let sign = if (bits >> 79) & 1 == 1 { -1.0 } else { 1.0 };
    let exp = ((bits >> 64) & 0x7fff) as i32;
    let frac = (bits & u64::MAX as u128) as u64;
    if exp == 0 && frac == 0 {
        return sign * 0.0;
    }
    if exp == 0x7fff {
        return if frac << 1 == 0 {
            sign * f64::INFINITY
        } else {
            f64::NAN
        };
    }
    if exp != 0 && frac >> 63 == 0 {
        // "Unnormal": nonzero exponent with a clear integer bit — invalid
        // on modern x87 hardware, decoded as NaN (matching `softfloat`).
        return f64::NAN;
    }
    // value = sign · frac · 2^(e); the exponent field 0 denotes an x87
    // denormal with the same scale as exponent 1.
    let e = if exp == 0 { 1 } else { exp } - 16383 - 63;
    // Split the scaling so deep f64 underflow is gradual rather than an
    // abrupt zero from `powi` underflowing before the multiply.
    if e >= -1000 {
        sign * (frac as f64) * 2f64.powi(e)
    } else {
        sign * (frac as f64) * 2f64.powi(-1000) * 2f64.powi(e + 1000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_numeric_interpretations() {
        assert_eq!(Value::from_i16(-5).to_f64(), Some(-5.0));
        assert_eq!(Value::from_i32(123456).to_f64(), Some(123456.0));
        assert_eq!(Value::from_u32(u32::MAX).to_f64(), Some(u32::MAX as f64));
        assert_eq!(Value::from_f32(1.5).to_f64(), Some(1.5));
        assert_eq!(Value::from_f64(-2.25).to_f64(), Some(-2.25));
    }

    #[test]
    fn binary_types_have_no_numeric_view() {
        assert_eq!(
            Value::from_bits(DataType::Bin32, 0xdead_beef).to_f64(),
            None
        );
        assert_eq!(Value::from_bits(DataType::Byte, 0xff).to_f64(), None);
    }

    #[test]
    fn f64x_decode_one() {
        // 1.0 in x87: exponent 16383, significand 1 << 63.
        let bits = (16383u128 << 64) | (1u128 << 63);
        assert_eq!(decode_f64x(bits), 1.0);
    }

    #[test]
    fn f64x_decode_negative_two() {
        let bits = (1u128 << 79) | (16384u128 << 64) | (1u128 << 63);
        assert_eq!(decode_f64x(bits), -2.0);
    }

    #[test]
    fn loss_zero_for_identical() {
        let v = Value::from_f64(3.125);
        assert_eq!(Value::rel_precision_loss(v, v), Some(0.0));
    }

    #[test]
    fn loss_int_flip_can_exceed_one() {
        // Flipping bit 5 of the value 1 gives 33: loss 32/1 = 3200%.
        let e = Value::from_i32(1);
        let a = Value::from_i32(33);
        let loss = Value::rel_precision_loss(e, a).unwrap();
        assert!((loss - 32.0).abs() < 1e-12);
    }

    #[test]
    fn loss_low_fraction_flip_is_tiny_but_nonzero() {
        // Flip the least-significant fraction bit of an F64X value of 1.0.
        let e = Value::from_f64x_bits((16383u128 << 64) | (1u128 << 63));
        let a = Value::from_f64x_bits(e.bits ^ 1);
        let loss = Value::rel_precision_loss(e, a).unwrap();
        assert!(loss > 0.0);
        assert!(loss < 1e-18, "loss {loss} should be ~2^-63");
    }

    #[test]
    fn loss_fraction_flip_independent_of_value() {
        // Observation 7: for floats, the relative loss of a fraction-bit
        // flip depends only on the bit position, not the value.
        for v in [1.0f64, 3.7, 1234.5, 9.1e-3] {
            let e = Value::from_f64(v);
            let a = Value::from_bits(DataType::F64, e.bits ^ (1 << 30));
            let loss = Value::rel_precision_loss(e, a).unwrap();
            let expected = 2f64.powi(30 - 52)
                / (f64::from_bits(e.bits as u64).abs()
                    / 2f64.powi(f64::from_bits(e.bits as u64).abs().log2().floor() as i32));
            // Position-only dependence: loss ∈ [2^-23, 2^-21] for bit 30.
            assert!(
                loss > 2f64.powi(-24) && loss < 2f64.powi(-21),
                "loss {loss} vs {expected}"
            );
        }
    }

    #[test]
    fn loss_from_zero_is_infinite() {
        let e = Value::from_i32(0);
        let a = Value::from_i32(4);
        assert_eq!(Value::rel_precision_loss(e, a), Some(f64::INFINITY));
    }

    #[test]
    fn loss_none_for_binary() {
        let e = Value::from_bits(DataType::Bin32, 1);
        let a = Value::from_bits(DataType::Bin32, 2);
        assert_eq!(Value::rel_precision_loss(e, a), None);
    }
}

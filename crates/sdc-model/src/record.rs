//! SDC records: the unit of evidence in the study.
//!
//! Every detected silent corruption produces one record: which setting
//! (CPU × core × testcase) produced it, the expected and actual bit
//! representations, the core temperature at the time, and the virtual
//! timestamp. All bit-level analyses (Figures 4–7) and reproducibility
//! analyses (Figures 8–9) consume streams of these records.

use crate::clock::Duration;
use crate::datatype::DataType;
use crate::feature::SdcType;
use crate::ids::SettingId;
use crate::value::Value;
use serde::{Deserialize, Serialize};

/// Direction of a single bitflip.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FlipDirection {
    /// The expected bit was 0, the actual bit is 1.
    ZeroToOne,
    /// The expected bit was 1, the actual bit is 0.
    OneToZero,
}

/// One detected silent data corruption.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SdcRecord {
    /// The setting (CPU, physical core, testcase) that produced the error.
    pub setting: SettingId,
    /// Computation or consistency error (Section 4.1).
    pub kind: SdcType,
    /// Datatype of the corrupted operation result. For consistency errors
    /// this describes the corrupted datum observed by the checker.
    pub datatype: DataType,
    /// Expected (correct) representation, low `datatype.bits()` bits.
    ///
    /// Meaningless for consistency records, which have no deterministic
    /// value pattern (Section 4.2 excludes them from bit analyses).
    pub expected: u128,
    /// Actual (corrupted) representation.
    pub actual: u128,
    /// Core temperature when the error was produced, in °C.
    pub temp_c: f64,
    /// Virtual time at which the error was detected.
    pub at: Duration,
}

impl SdcRecord {
    /// The exclusive-or mask of expected and actual representations: the
    /// set of flipped bit positions. This is the paper's "mask" used to
    /// mine bitflip patterns (Observation 8).
    pub fn mask(&self) -> u128 {
        (self.expected ^ self.actual) & self.datatype.mask()
    }

    /// Number of flipped bits.
    pub fn flipped_bits(&self) -> u32 {
        self.mask().count_ones()
    }

    /// Iterates over flipped bit positions with their directions
    /// (bit 0 = least significant).
    pub fn flips(&self) -> impl Iterator<Item = (u32, FlipDirection)> + '_ {
        let mask = self.mask();
        let expected = self.expected;
        (0..self.datatype.bits()).filter_map(move |i| {
            if (mask >> i) & 1 == 1 {
                let dir = if (expected >> i) & 1 == 0 {
                    FlipDirection::ZeroToOne
                } else {
                    FlipDirection::OneToZero
                };
                Some((i, dir))
            } else {
                None
            }
        })
    }

    /// Expected value as a typed [`Value`].
    pub fn expected_value(&self) -> Value {
        Value::from_bits(self.datatype, self.expected)
    }

    /// Actual value as a typed [`Value`].
    pub fn actual_value(&self) -> Value {
        Value::from_bits(self.datatype, self.actual)
    }

    /// Relative precision loss `|expected − actual| / |expected|`
    /// (numeric datatypes only; see [`Value::rel_precision_loss`]).
    pub fn rel_precision_loss(&self) -> Option<f64> {
        Value::rel_precision_loss(self.expected_value(), self.actual_value())
    }

    /// True if this record is a computation SDC (included in the bit-level
    /// analyses of Section 4.2).
    pub fn is_computation(&self) -> bool {
        self.kind == SdcType::Computation
    }
}

serde::impl_json_unit_enum!(FlipDirection { ZeroToOne, OneToZero });
serde::impl_json_struct!(SdcRecord {
    setting,
    kind,
    datatype,
    expected,
    actual,
    temp_c,
    at,
});

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{CoreId, CpuId, TestcaseId};

    fn record(dt: DataType, expected: u128, actual: u128) -> SdcRecord {
        SdcRecord {
            setting: SettingId {
                cpu: CpuId(1),
                core: CoreId(0),
                testcase: TestcaseId(2),
            },
            kind: SdcType::Computation,
            datatype: dt,
            expected,
            actual,
            temp_c: 55.0,
            at: Duration::from_secs(10),
        }
    }

    #[test]
    fn mask_is_xor_within_width() {
        let r = record(DataType::I32, 0b1010, 0b0110);
        assert_eq!(r.mask(), 0b1100);
        assert_eq!(r.flipped_bits(), 2);
    }

    #[test]
    fn mask_truncates_to_datatype_width() {
        let r = record(DataType::Byte, 0xff, 0x1ff);
        // Bit 8 is outside a byte; only in-width bits count.
        assert_eq!(r.mask(), 0x00);
        assert_eq!(r.flipped_bits(), 0);
    }

    #[test]
    fn flip_directions() {
        let r = record(DataType::Byte, 0b0000_0101, 0b0000_0110);
        let flips: Vec<_> = r.flips().collect();
        assert_eq!(
            flips,
            vec![(0, FlipDirection::OneToZero), (1, FlipDirection::ZeroToOne)]
        );
    }

    #[test]
    fn precision_loss_delegates_to_value() {
        let e = Value::from_f64(2.0);
        let r = record(DataType::F64, e.bits, e.bits ^ 1);
        let loss = r.rel_precision_loss().unwrap();
        assert!(loss > 0.0 && loss < 1e-15);
    }

    #[test]
    fn serde_roundtrip() {
        let r = record(DataType::F32, 0x3f80_0000, 0x3f80_0001);
        let json = serde_json::to_string(&r).unwrap();
        let back: SdcRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }
}

//! Shared vocabulary for the SDC study.
//!
//! This crate defines the domain types every other crate speaks:
//! processor/core/testcase identifiers, the processor feature taxonomy
//! (Observation 5), operation datatypes (Observation 6), SDC records with
//! bit-level diffing (Observations 7–8), a virtual clock, deterministic
//! hierarchical RNG streams, and the statistics toolbox used by the
//! analyses (least squares, Pearson correlation, CDFs, histograms).
//!
//! Nothing here depends on the simulator; conversely, everything in the
//! simulator and in the analyses depends on this crate.

pub mod clock;
pub mod datatype;
pub mod feature;
pub mod ids;
pub mod record;
pub mod rng;
pub mod stats;
pub mod value;

pub use clock::{Duration, VirtualClock};
pub use datatype::DataType;
pub use feature::{Feature, SdcType};
pub use ids::{ArchId, CoreId, CpuId, SettingId, TestcaseId};
pub use record::{FlipDirection, SdcRecord};
pub use rng::DetRng;
pub use value::Value;

//! Statistics toolbox for the analyses.
//!
//! The paper fits `log10(occurrence frequency)` against temperature with
//! least squares and reports Pearson correlation coefficients (Figures 8–9),
//! plots CDFs of precision losses (Figure 4e–h) and per-bit histograms
//! (Figures 4–5). This module provides those primitives.

use serde::{Deserialize, Serialize};

/// Arithmetic mean. Returns `None` on an empty slice.
pub fn mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        None
    } else {
        Some(xs.iter().sum::<f64>() / xs.len() as f64)
    }
}

/// Population variance. Returns `None` on an empty slice.
pub fn variance(xs: &[f64]) -> Option<f64> {
    let m = mean(xs)?;
    Some(xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64)
}

/// Population standard deviation. Returns `None` on an empty slice.
pub fn stddev(xs: &[f64]) -> Option<f64> {
    variance(xs).map(f64::sqrt)
}

/// Result of an ordinary-least-squares line fit `y ≈ slope·x + intercept`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinFit {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Pearson correlation coefficient of the inputs.
    pub r: f64,
}

impl LinFit {
    /// Predicted y at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.slope * x + self.intercept
    }
}

/// Ordinary least-squares fit. Returns `None` with fewer than two points
/// or a degenerate x spread.
pub fn linear_fit(xs: &[f64], ys: &[f64]) -> Option<LinFit> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    let mx = mean(xs)?;
    let my = mean(ys)?;
    let sxx: f64 = xs.iter().map(|x| (x - mx) * (x - mx)).sum();
    let syy: f64 = ys.iter().map(|y| (y - my) * (y - my)).sum();
    let sxy: f64 = xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    if sxx == 0.0 {
        return None;
    }
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let r = if syy == 0.0 {
        0.0
    } else {
        sxy / (sxx * syy).sqrt()
    };
    Some(LinFit {
        slope,
        intercept,
        r: r.clamp(-1.0, 1.0),
    })
}

/// Pearson correlation coefficient. Returns `None` with fewer than two
/// points or zero variance on either axis.
pub fn pearson(xs: &[f64], ys: &[f64]) -> Option<f64> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    let mx = mean(xs)?;
    let my = mean(ys)?;
    let sxx: f64 = xs.iter().map(|x| (x - mx) * (x - mx)).sum();
    let syy: f64 = ys.iter().map(|y| (y - my) * (y - my)).sum();
    let sxy: f64 = xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    if sxx == 0.0 || syy == 0.0 {
        return None;
    }
    Some((sxy / (sxx * syy).sqrt()).clamp(-1.0, 1.0))
}

/// An empirical cumulative distribution function.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Builds a CDF from samples (non-finite samples are dropped; note
    /// that infinities would otherwise dominate quantiles — the paper's
    /// log-scale plots likewise exclude them).
    pub fn from_samples(samples: impl IntoIterator<Item = f64>) -> Self {
        let mut sorted: Vec<f64> = samples.into_iter().filter(|x| x.is_finite()).collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
        Cdf { sorted }
    }

    /// Number of retained (finite) samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True if the CDF holds no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Fraction of samples ≤ `x`.
    pub fn fraction_at_most(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// The `q`-quantile for `q ∈ [0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if the CDF is empty or `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!(!self.sorted.is_empty(), "quantile of empty CDF");
        assert!((0.0..=1.0).contains(&q), "quantile {q} out of range");
        let idx = ((self.sorted.len() - 1) as f64 * q).round() as usize;
        self.sorted[idx]
    }

    /// (x, F(x)) points suitable for plotting, subsampled to at most
    /// `max_points`.
    pub fn points(&self, max_points: usize) -> Vec<(f64, f64)> {
        if self.sorted.is_empty() || max_points == 0 {
            return Vec::new();
        }
        let n = self.sorted.len();
        let step = (n / max_points).max(1);
        let mut pts: Vec<(f64, f64)> = (0..n)
            .step_by(step)
            .map(|i| (self.sorted[i], (i + 1) as f64 / n as f64))
            .collect();
        if pts.last().map(|p| p.1) != Some(1.0) {
            pts.push((self.sorted[n - 1], 1.0));
        }
        pts
    }
}

/// A fixed-bin histogram over `[lo, hi)`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins over `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `lo >= hi`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0 && lo < hi, "bad histogram shape");
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            total: 0,
        }
    }

    /// Adds a sample; out-of-range samples clamp into the edge bins.
    pub fn add(&mut self, x: f64) {
        let bins = self.counts.len();
        let t = (x - self.lo) / (self.hi - self.lo);
        let idx = ((t * bins as f64).floor() as i64).clamp(0, bins as i64 - 1) as usize;
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// Raw bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total samples added.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Bin proportions (each count over the total).
    pub fn proportions(&self) -> Vec<f64> {
        if self.total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts
            .iter()
            .map(|&c| c as f64 / self.total as f64)
            .collect()
    }
}

/// Safe base-10 logarithm for strictly positive values.
pub fn log10_pos(x: f64) -> Option<f64> {
    if x > 0.0 && x.is_finite() {
        Some(x.log10())
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance() {
        assert_eq!(mean(&[]), None);
        assert_eq!(mean(&[2.0, 4.0]), Some(3.0));
        assert_eq!(variance(&[1.0, 1.0, 1.0]), Some(0.0));
        assert_eq!(variance(&[0.0, 2.0]), Some(1.0));
        assert_eq!(stddev(&[0.0, 2.0]), Some(1.0));
    }

    #[test]
    fn perfect_line_fit() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [3.0, 5.0, 7.0, 9.0];
        let fit = linear_fit(&xs, &ys).unwrap();
        assert!((fit.slope - 2.0).abs() < 1e-12);
        assert!((fit.intercept - 1.0).abs() < 1e-12);
        assert!((fit.r - 1.0).abs() < 1e-12);
        assert!((fit.predict(10.0) - 21.0).abs() < 1e-12);
    }

    #[test]
    fn anti_correlated_fit() {
        let xs = [0.0, 1.0, 2.0];
        let ys = [4.0, 2.0, 0.0];
        let fit = linear_fit(&xs, &ys).unwrap();
        assert!((fit.slope + 2.0).abs() < 1e-12);
        assert!((fit.r + 1.0).abs() < 1e-12);
    }

    #[test]
    fn fit_degenerate_cases() {
        assert!(linear_fit(&[1.0], &[2.0]).is_none());
        assert!(linear_fit(&[1.0, 1.0], &[2.0, 3.0]).is_none());
        assert!(linear_fit(&[1.0, 2.0], &[1.0]).is_none());
    }

    #[test]
    fn pearson_matches_fit_r() {
        let xs = [1.0, 2.0, 3.0, 5.0, 8.0];
        let ys = [1.2, 1.9, 3.4, 4.6, 8.3];
        let r1 = pearson(&xs, &ys).unwrap();
        let r2 = linear_fit(&xs, &ys).unwrap().r;
        assert!((r1 - r2).abs() < 1e-12);
        assert!(r1 > 0.98);
    }

    #[test]
    fn pearson_zero_variance_is_none() {
        assert_eq!(pearson(&[1.0, 1.0], &[2.0, 3.0]), None);
        assert_eq!(pearson(&[1.0, 2.0], &[3.0, 3.0]), None);
    }

    #[test]
    fn cdf_basic() {
        let cdf = Cdf::from_samples([3.0, 1.0, 2.0, 4.0]);
        assert_eq!(cdf.len(), 4);
        assert_eq!(cdf.fraction_at_most(0.5), 0.0);
        assert_eq!(cdf.fraction_at_most(2.0), 0.5);
        assert_eq!(cdf.fraction_at_most(10.0), 1.0);
        assert_eq!(cdf.quantile(0.0), 1.0);
        assert_eq!(cdf.quantile(1.0), 4.0);
    }

    #[test]
    fn cdf_drops_nonfinite() {
        let cdf = Cdf::from_samples([1.0, f64::INFINITY, f64::NAN, 2.0]);
        assert_eq!(cdf.len(), 2);
    }

    #[test]
    fn cdf_points_end_at_one() {
        let cdf = Cdf::from_samples((0..100).map(|i| i as f64));
        let pts = cdf.points(10);
        assert!(pts.len() <= 12);
        assert_eq!(pts.last().unwrap().1, 1.0);
    }

    #[test]
    fn histogram_bins_and_clamping() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.add(0.5);
        h.add(9.5);
        h.add(-3.0); // clamps into bin 0
        h.add(42.0); // clamps into bin 9
        assert_eq!(h.counts()[0], 2);
        assert_eq!(h.counts()[9], 2);
        assert_eq!(h.total(), 4);
        let p = h.proportions();
        assert!((p[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn log10_pos_filters() {
        assert_eq!(log10_pos(100.0), Some(2.0));
        assert_eq!(log10_pos(0.0), None);
        assert_eq!(log10_pos(-1.0), None);
        assert_eq!(log10_pos(f64::INFINITY), None);
    }
}

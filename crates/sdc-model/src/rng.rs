//! Deterministic, forkable random-number streams.
//!
//! Every stochastic component of the simulation (defect sampling, testcase
//! inputs, interleavings, trigger draws) pulls from a [`DetRng`]. Streams
//! are derived hierarchically with [`DetRng::fork`], so adding draws in one
//! component never perturbs another — a requirement for regenerating the
//! paper's tables and figures bit-identically across runs.

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

/// A deterministic RNG with hierarchical stream forking.
#[derive(Debug, Clone)]
pub struct DetRng {
    seed: u64,
    inner: SmallRng,
}

impl DetRng {
    /// Creates a stream from a root seed.
    pub fn new(seed: u64) -> Self {
        DetRng {
            seed,
            inner: SmallRng::seed_from_u64(seed),
        }
    }

    /// The seed this stream was created from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives an independent child stream identified by `label`.
    ///
    /// Forking is a pure function of `(self.seed, label)` — it does not
    /// consume state from the parent stream.
    pub fn fork(&self, label: u64) -> DetRng {
        DetRng::new(splitmix64(self.seed ^ splitmix64(label)))
    }

    /// Derives an independent child stream from a string label.
    pub fn fork_str(&self, label: &str) -> DetRng {
        self.fork(fnv1a(label.as_bytes()))
    }

    /// Draws a uniform `f64` in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.inner.gen::<f64>() < p
        }
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        self.inner.gen_range(0..n)
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        self.inner.gen_range(lo..hi)
    }

    /// Standard-normal draw (Box–Muller).
    pub fn normal(&mut self) -> f64 {
        let u1: f64 = self.inner.gen_range(f64::EPSILON..1.0);
        let u2: f64 = self.inner.gen();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Samples an index according to non-negative `weights`.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or sums to zero.
    pub fn weighted(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weighted() needs a positive total weight");
        let mut x = self.inner.gen::<f64>() * total;
        for (i, w) in weights.iter().enumerate() {
            x -= w;
            if x < 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }

    /// Samples from a Poisson distribution with mean `lambda`.
    ///
    /// Knuth's multiplication method for small means, normal approximation
    /// for large ones; used by the accelerated executor to draw SDC event
    /// counts per time chunk.
    pub fn poisson(&mut self, lambda: f64) -> u64 {
        if lambda <= 0.0 {
            return 0;
        }
        if lambda > 64.0 {
            let draw = lambda + lambda.sqrt() * self.normal();
            return draw.round().max(0.0) as u64;
        }
        let l = (-lambda).exp();
        self.poisson_knuth(l)
    }

    /// [`Self::poisson`] with the caller supplying a precomputed
    /// `exp(-lambda)` for the small-mean branch.
    ///
    /// The executor's steady-state fast path draws the same `lambda`
    /// for hundreds of consecutive chunks; memoizing `exp(-lambda)`
    /// removes the transcendental from the per-chunk cost. Draws are
    /// bit-identical to `poisson(lambda)` whenever `exp_neg_lambda ==
    /// (-lambda).exp()`: the zero and large-mean branches ignore the
    /// hint, and the Knuth loop consumes the identical uniform stream.
    pub fn poisson_with_exp(&mut self, lambda: f64, exp_neg_lambda: f64) -> u64 {
        if lambda <= 0.0 {
            return 0;
        }
        if lambda > 64.0 {
            let draw = lambda + lambda.sqrt() * self.normal();
            return draw.round().max(0.0) as u64;
        }
        self.poisson_knuth(exp_neg_lambda)
    }

    /// Knuth's multiplication loop given `l = exp(-lambda)`.
    fn poisson_knuth(&mut self, l: f64) -> u64 {
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= self.inner.gen::<f64>();
            if p <= l {
                return k;
            }
            k += 1;
        }
    }

    /// Samples `k` draws from a binomial(n, p) distribution.
    ///
    /// Uses the normal approximation when `n·p·(1−p)` is large, exact
    /// Bernoulli summation otherwise; adequate for fleet-scale population
    /// sampling.
    pub fn binomial(&mut self, n: u64, p: f64) -> u64 {
        if p <= 0.0 || n == 0 {
            return 0;
        }
        if p >= 1.0 {
            return n;
        }
        let mean = n as f64 * p;
        let var = mean * (1.0 - p);
        if var > 100.0 {
            let draw = mean + var.sqrt() * self.normal();
            draw.round().clamp(0.0, n as f64) as u64
        } else if mean < 50.0 && n > 1000 {
            // Poisson-style thinning for rare events over huge n.
            let mut count = 0u64;
            let lambda = mean;
            // Knuth's algorithm on expected count; exact enough for rates
            // of a few per ten thousand.
            let l = (-lambda).exp();
            let mut k = 0u64;
            let mut prod = 1.0;
            loop {
                prod *= self.inner.gen::<f64>();
                if prod <= l {
                    break;
                }
                k += 1;
                if k >= n {
                    break;
                }
            }
            count += k;
            count.min(n)
        } else {
            (0..n).filter(|_| self.inner.gen::<f64>() < p).count() as u64
        }
    }
}

impl RngCore for DetRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

/// SplitMix64 finalizer; decorrelates fork labels.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// FNV-1a over bytes, for string fork labels.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::new(42);
        let mut b = DetRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn forks_are_independent_of_parent_consumption() {
        let a = DetRng::new(7);
        let mut a2 = DetRng::new(7);
        let _ = a2.next_u64(); // consume from one parent
        let mut f1 = a.fork(3);
        let mut f2 = a2.fork(3);
        assert_eq!(f1.next_u64(), f2.next_u64());
    }

    #[test]
    fn distinct_labels_give_distinct_streams() {
        let root = DetRng::new(1);
        let mut xs = std::collections::HashSet::new();
        for label in 0..64u64 {
            xs.insert(root.fork(label).next_u64());
        }
        assert_eq!(xs.len(), 64);
    }

    #[test]
    fn fork_str_stable() {
        let root = DetRng::new(9);
        let x = root.fork_str("thermal").next_u64();
        let y = root.fork_str("thermal").next_u64();
        let z = root.fork_str("silicon").next_u64();
        assert_eq!(x, y);
        assert_ne!(x, z);
    }

    #[test]
    fn chance_extremes() {
        let mut r = DetRng::new(5);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-1.0));
        assert!(r.chance(2.0));
    }

    #[test]
    fn unit_in_range() {
        let mut r = DetRng::new(11);
        for _ in 0..1000 {
            let x = r.unit();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn weighted_prefers_heavy_bucket() {
        let mut r = DetRng::new(13);
        let mut counts = [0usize; 3];
        for _ in 0..3000 {
            counts[r.weighted(&[0.1, 0.1, 0.8])] += 1;
        }
        assert!(counts[2] > counts[0] + counts[1]);
    }

    #[test]
    fn binomial_mean_is_sane() {
        let mut r = DetRng::new(17);
        let n = 100_000u64;
        let p = 3.61e-4;
        let mut total = 0u64;
        let rounds = 200;
        for _ in 0..rounds {
            total += r.binomial(n, p);
        }
        let mean = total as f64 / rounds as f64;
        let expect = n as f64 * p;
        assert!(
            (mean - expect).abs() < expect * 0.25,
            "mean {mean} vs {expect}"
        );
    }

    #[test]
    fn binomial_extremes() {
        let mut r = DetRng::new(19);
        assert_eq!(r.binomial(10, 0.0), 0);
        assert_eq!(r.binomial(10, 1.0), 10);
        assert_eq!(r.binomial(0, 0.5), 0);
    }

    #[test]
    fn poisson_mean_small_and_large() {
        let mut r = DetRng::new(29);
        for lambda in [0.5f64, 5.0, 200.0] {
            let n = 4000;
            let total: u64 = (0..n).map(|_| r.poisson(lambda)).sum();
            let mean = total as f64 / n as f64;
            assert!(
                (mean - lambda).abs() < lambda.max(1.0) * 0.1,
                "lambda {lambda}: mean {mean}"
            );
        }
        assert_eq!(r.poisson(0.0), 0);
        assert_eq!(r.poisson(-3.0), 0);
    }

    /// `poisson_with_exp` must return the same value AND leave the
    /// stream in the same state as `poisson` for every branch (zero,
    /// Knuth, normal approximation) — the executor fast path depends
    /// on this for bit-identity with the reference chunk loop.
    #[test]
    fn poisson_with_exp_is_draw_equivalent() {
        for seed in [1u64, 29, 0xfeed] {
            for lambda in [-1.0f64, 0.0, 1e-9, 0.01, 0.7, 5.0, 63.9, 64.0, 64.1, 500.0] {
                let mut a = DetRng::new(seed);
                let mut b = DetRng::new(seed);
                for _ in 0..64 {
                    assert_eq!(
                        a.poisson(lambda),
                        b.poisson_with_exp(lambda, (-lambda).exp()),
                        "lambda {lambda} seed {seed}"
                    );
                }
                // Streams advanced identically.
                assert_eq!(a.next_u64(), b.next_u64(), "lambda {lambda} seed {seed}");
            }
        }
    }

    #[test]
    fn normal_moments() {
        let mut r = DetRng::new(23);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| r.normal()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }
}

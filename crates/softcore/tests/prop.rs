//! Property-based tests for the VM substrate: ISA semantics against host
//! arithmetic, MESI coherence invariants, and interleaving robustness.

use proptest::prelude::*;
use sdc_model::{DataType, DetRng};
use softcore::cpu::{crc32_step, hash_mix};
use softcore::{FOpKind, IntOpKind, Machine, NoFaults, Precision, ProgramBuilder};

/// Runs a single-core program to completion and returns the machine.
fn run1(p: softcore::Program, seed: u64) -> Machine {
    let mut m = Machine::new(1, 1 << 16);
    m.load(0, p);
    let mut rng = DetRng::new(seed);
    let out = m.run(&mut NoFaults, &mut rng, 10_000_000);
    assert!(out.completed);
    m
}

proptest! {
    #[test]
    fn int_add_matches_host(a in any::<u32>(), b in any::<u32>()) {
        let mut builder = ProgramBuilder::new();
        builder.mov_imm(0, a as u64).mov_imm(1, b as u64);
        builder.int_op(IntOpKind::Add, DataType::U32, 2, 0, 1);
        let m = run1(builder.build(), 1);
        prop_assert_eq!(m.core(0).regs.int(2) as u32, a.wrapping_add(b));
    }

    #[test]
    fn int_mul_and_div_match_host(a in any::<u32>(), b in 1u32..) {
        let mut builder = ProgramBuilder::new();
        builder.mov_imm(0, a as u64).mov_imm(1, b as u64);
        builder.int_op(IntOpKind::Mul, DataType::U32, 2, 0, 1);
        builder.int_op(IntOpKind::Div, DataType::U32, 3, 0, 1);
        let m = run1(builder.build(), 2);
        prop_assert_eq!(m.core(0).regs.int(2) as u32, a.wrapping_mul(b));
        prop_assert_eq!(m.core(0).regs.int(3) as u32, a / b);
    }

    #[test]
    fn int_ops_respect_width(a in any::<u64>(), b in any::<u64>()) {
        let mut builder = ProgramBuilder::new();
        builder.mov_imm(0, a).mov_imm(1, b);
        builder.int_op(IntOpKind::Add, DataType::I16, 2, 0, 1);
        builder.int_op(IntOpKind::Xor, DataType::Byte, 3, 0, 1);
        let m = run1(builder.build(), 3);
        prop_assert_eq!(
            m.core(0).regs.int(2),
            ((a as u16).wrapping_add(b as u16)) as u64
        );
        prop_assert_eq!(m.core(0).regs.int(3), ((a as u8) ^ (b as u8)) as u64);
    }

    #[test]
    fn float_ops_match_host(a in -1e100f64..1e100, b in -1e100f64..1e100) {
        let mut builder = ProgramBuilder::new();
        builder.fmov_imm(0, a).fmov_imm(1, b);
        builder.fop(FOpKind::Add, Precision::F64, 2, 0, 1);
        builder.fop(FOpKind::Mul, Precision::F64, 3, 0, 1);
        builder.ffma(Precision::F64, 4, 0, 1, 2);
        let m = run1(builder.build(), 4);
        prop_assert_eq!(m.core(0).regs.float(2).to_bits(), (a + b).to_bits());
        prop_assert_eq!(m.core(0).regs.float(3).to_bits(), (a * b).to_bits());
        prop_assert_eq!(m.core(0).regs.float(4).to_bits(), a.mul_add(b, a + b).to_bits());
    }

    #[test]
    fn memory_roundtrips(vals in prop::collection::vec(any::<u64>(), 1..16)) {
        let mut builder = ProgramBuilder::new();
        builder.mov_imm(0, 0x400);
        for (i, &v) in vals.iter().enumerate() {
            builder.mov_imm(1, v);
            builder.store(1, 0, (i as u64) * 8);
        }
        for (i, _) in vals.iter().enumerate() {
            builder.load((2 + i % 8) as u8, 0, (i as u64) * 8);
        }
        let m = run1(builder.build(), 5);
        // The last store/load pair must roundtrip; spot-check via memory.
        for (i, &v) in vals.iter().enumerate() {
            prop_assert_eq!(m.mem.raw_read_u64(0x400 + (i as u64) * 8), v);
        }
    }

    #[test]
    fn crc_and_hash_are_pure(acc in any::<u32>(), data in any::<u64>()) {
        prop_assert_eq!(crc32_step(acc, data), crc32_step(acc, data));
        prop_assert_eq!(hash_mix(acc as u64, data), hash_mix(acc as u64, data));
        // Single-bit sensitivity.
        prop_assert_ne!(crc32_step(acc, data), crc32_step(acc, data ^ 1));
        prop_assert_ne!(hash_mix(acc as u64, data), hash_mix(acc as u64, data ^ 1));
    }

    #[test]
    fn lock_counter_invariant_under_any_interleaving(
        seed in any::<u64>(),
        threads in 2usize..5,
        rounds in 1u32..20,
    ) {
        let mut m = Machine::new(threads, 1 << 16);
        for t in 0..threads {
            let mut b = ProgramBuilder::new();
            b.mov_imm(0, 0).mov_imm(1, 128).mov_imm(2, 1).loop_start(rounds);
            b.lock_acquire(0);
            b.load(3, 1, 0);
            b.int_op(IntOpKind::Add, DataType::Bin64, 3, 3, 2);
            b.store(3, 1, 0);
            b.lock_release(0);
            b.loop_end();
            m.load(t, b.build());
        }
        let mut rng = DetRng::new(seed);
        let out = m.run(&mut NoFaults, &mut rng, 100_000_000);
        prop_assert!(out.completed);
        prop_assert_eq!(m.mem.raw_read_u64(128), threads as u64 * rounds as u64);
    }

    #[test]
    fn coherent_reads_after_remote_writes(seed in any::<u64>(), val in any::<u64>()) {
        // Core 0 writes, halts; core 1 then reads the same address through
        // its own cache: MESI must deliver the written value.
        let mut m = Machine::new(2, 4096);
        let mut w = ProgramBuilder::new();
        w.mov_imm(0, 256).mov_imm(1, val);
        w.store(1, 0, 0);
        m.load(0, w.build());
        let mut rng = DetRng::new(seed);
        m.run(&mut NoFaults, &mut rng, 1_000_000);
        let mut r = ProgramBuilder::new();
        r.mov_imm(0, 256);
        r.load(2, 0, 0);
        m.load(1, r.build());
        m.run(&mut NoFaults, &mut rng, 1_000_000);
        prop_assert_eq!(m.core(1).regs.int(2), val);
    }
}

//! Per-core register files.

use softfloat::F80;

/// Number of integer registers.
pub const NUM_INT_REGS: usize = 32;
/// Number of scalar float registers.
pub const NUM_FLOAT_REGS: usize = 32;
/// Number of x87 extended-precision registers.
pub const NUM_X87_REGS: usize = 8;
/// Number of 256-bit vector registers.
pub const NUM_VEC_REGS: usize = 16;

/// A 256-bit vector register as four 64-bit words, little-endian lanes.
pub type VecReg = [u64; 4];

/// The architectural register state of one core.
#[derive(Debug, Clone)]
pub struct RegFile {
    int: [u64; NUM_INT_REGS],
    float: [f64; NUM_FLOAT_REGS],
    x87: [F80; NUM_X87_REGS],
    vec: [VecReg; NUM_VEC_REGS],
}

impl Default for RegFile {
    fn default() -> Self {
        RegFile {
            int: [0; NUM_INT_REGS],
            float: [0.0; NUM_FLOAT_REGS],
            x87: [F80::ZERO; NUM_X87_REGS],
            vec: [[0; 4]; NUM_VEC_REGS],
        }
    }
}

impl RegFile {
    /// Fresh register file, all zeros.
    pub fn new() -> Self {
        RegFile::default()
    }

    /// Reads integer register `r`.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range register index (a malformed program).
    #[inline]
    pub fn int(&self, r: u8) -> u64 {
        self.int[r as usize]
    }

    /// Writes integer register `r`.
    #[inline]
    pub fn set_int(&mut self, r: u8, v: u64) {
        self.int[r as usize] = v;
    }

    /// Reads float register `r`.
    #[inline]
    pub fn float(&self, r: u8) -> f64 {
        self.float[r as usize]
    }

    /// Writes float register `r`.
    #[inline]
    pub fn set_float(&mut self, r: u8, v: f64) {
        self.float[r as usize] = v;
    }

    /// Reads x87 register `r`.
    #[inline]
    pub fn x87(&self, r: u8) -> F80 {
        self.x87[r as usize]
    }

    /// Writes x87 register `r`.
    #[inline]
    pub fn set_x87(&mut self, r: u8, v: F80) {
        self.x87[r as usize] = v;
    }

    /// Reads vector register `r`.
    #[inline]
    pub fn vec(&self, r: u8) -> VecReg {
        self.vec[r as usize]
    }

    /// Writes vector register `r`.
    #[inline]
    pub fn set_vec(&mut self, r: u8, v: VecReg) {
        self.vec[r as usize] = v;
    }
}

/// Views a vector register as eight `f32` lanes.
pub fn vec_as_f32(v: &VecReg) -> [f32; 8] {
    let mut out = [0f32; 8];
    for (i, lane) in out.iter_mut().enumerate() {
        let word = v[i / 2];
        let half = ((word >> ((i % 2) * 32)) & 0xffff_ffff) as u32;
        *lane = f32::from_bits(half);
    }
    out
}

/// Packs eight `f32` lanes into a vector register.
pub fn f32_as_vec(lanes: &[f32; 8]) -> VecReg {
    let mut v = [0u64; 4];
    for (i, lane) in lanes.iter().enumerate() {
        let bits = lane.to_bits() as u64;
        v[i / 2] |= bits << ((i % 2) * 32);
    }
    v
}

/// Views a vector register as four `f64` lanes.
pub fn vec_as_f64(v: &VecReg) -> [f64; 4] {
    [
        f64::from_bits(v[0]),
        f64::from_bits(v[1]),
        f64::from_bits(v[2]),
        f64::from_bits(v[3]),
    ]
}

/// Packs four `f64` lanes into a vector register.
pub fn f64_as_vec(lanes: &[f64; 4]) -> VecReg {
    [
        lanes[0].to_bits(),
        lanes[1].to_bits(),
        lanes[2].to_bits(),
        lanes[3].to_bits(),
    ]
}

/// Views a vector register as eight `i32` lanes.
pub fn vec_as_i32(v: &VecReg) -> [i32; 8] {
    let mut out = [0i32; 8];
    for (i, lane) in out.iter_mut().enumerate() {
        let word = v[i / 2];
        *lane = ((word >> ((i % 2) * 32)) & 0xffff_ffff) as u32 as i32;
    }
    out
}

/// Packs eight `i32` lanes into a vector register.
pub fn i32_as_vec(lanes: &[i32; 8]) -> VecReg {
    let mut v = [0u64; 4];
    for (i, lane) in lanes.iter().enumerate() {
        let bits = *lane as u32 as u64;
        v[i / 2] |= bits << ((i % 2) * 32);
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_roundtrip() {
        let mut r = RegFile::new();
        r.set_int(5, 0xdead_beef);
        assert_eq!(r.int(5), 0xdead_beef);
        assert_eq!(r.int(6), 0);
    }

    #[test]
    fn float_and_x87_roundtrip() {
        let mut r = RegFile::new();
        r.set_float(1, 2.5);
        r.set_x87(2, F80::from_f64(-7.0));
        assert_eq!(r.float(1), 2.5);
        assert_eq!(r.x87(2).to_f64(), -7.0);
    }

    #[test]
    fn f32_lane_roundtrip() {
        let lanes = [1.0f32, -2.0, 3.5, 0.0, 1e-3, 1e3, -0.5, 42.0];
        assert_eq!(vec_as_f32(&f32_as_vec(&lanes)), lanes);
    }

    #[test]
    fn f64_lane_roundtrip() {
        let lanes = [1.0f64, -2.0, 3.5e100, 1e-300];
        assert_eq!(vec_as_f64(&f64_as_vec(&lanes)), lanes);
    }

    #[test]
    fn i32_lane_roundtrip() {
        let lanes = [1i32, -2, i32::MAX, i32::MIN, 0, 7, -7, 1000];
        assert_eq!(vec_as_i32(&i32_as_vec(&lanes)), lanes);
    }

    #[test]
    fn lane_packing_is_position_faithful() {
        let mut lanes = [0f32; 8];
        lanes[3] = 9.25;
        let v = f32_as_vec(&lanes);
        // Lane 3 lives in the high half of word 1.
        assert_eq!((v[1] >> 32) as u32, 9.25f32.to_bits());
    }
}

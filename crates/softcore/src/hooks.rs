//! Fault-injection hooks.
//!
//! The machine is defect-agnostic: at the points where real silicon
//! defects act, it consults a [`FaultHook`]. The `silicon` crate implements
//! the hook from a processor's defect catalog; the golden (reference) run
//! uses [`NoFaults`].

use crate::inst::InstClass;
use sdc_model::DataType;

/// Context for a retiring value-producing instruction.
#[derive(Debug, Clone, Copy)]
pub struct RetireInfo {
    /// Index of the executing core (machine-local physical core).
    pub core: usize,
    /// Class of the retiring instruction.
    pub class: InstClass,
    /// Datatype of the result (per lane, for vector instructions).
    pub dt: DataType,
    /// Correct result bits, in the low `dt.bits()` bits.
    pub bits: u128,
}

/// Injection points where a silicon defect can act.
///
/// All methods have healthy defaults, so a hook only overrides the
/// behaviours its defect model covers.
pub trait FaultHook {
    /// Called when a value-producing instruction retires. Returning
    /// `Some(bits)` replaces the architectural result — a computation SDC.
    fn corrupt(&mut self, _info: &RetireInfo) -> Option<u128> {
        None
    }

    /// Called once per cache holding a copy when an exclusive-ownership
    /// request invalidates `observer_core`'s copy of `line_addr`.
    /// Returning true *drops* the invalidation, leaving a stale line —
    /// a cache-coherence defect.
    fn drop_invalidation(&mut self, _observer_core: usize, _line_addr: u64) -> bool {
        false
    }

    /// Called when a transaction with a read-set conflict is about to
    /// abort. Returning true forces the commit anyway — a transactional-
    /// memory isolation defect.
    fn tx_commit_despite_conflict(&mut self, _core: usize) -> bool {
        false
    }
}

/// The healthy hook: no defects. Used for golden reference runs.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoFaults;

impl FaultHook for NoFaults {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_faults_is_inert() {
        let mut h = NoFaults;
        let info = RetireInfo {
            core: 0,
            class: InstClass::IntArith,
            dt: DataType::I32,
            bits: 7,
        };
        assert_eq!(h.corrupt(&info), None);
        assert!(!h.drop_invalidation(1, 0));
        assert!(!h.tx_commit_despite_conflict(0));
    }
}

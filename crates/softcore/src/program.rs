//! Programs and the builder used by testcase generators.

use crate::inst::{FOpKind, Inst, IntOpKind, LaneType, Precision, VOpKind, XOpKind};
use crate::regs::{NUM_FLOAT_REGS, NUM_INT_REGS, NUM_VEC_REGS, NUM_X87_REGS};
use sdc_model::DataType;
use std::collections::HashMap;

/// A validated, immutable program.
#[derive(Debug, Clone)]
pub struct Program {
    insts: Vec<Inst>,
    loop_ends: HashMap<usize, usize>,
}

impl Program {
    /// The instruction sequence.
    pub fn insts(&self) -> &[Inst] {
        &self.insts
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// True for an empty program.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// The pc of the `LoopEnd` matching the `LoopStart` at `pc`.
    ///
    /// # Panics
    ///
    /// Panics if `pc` is not a `LoopStart` (cannot happen for programs
    /// produced by [`ProgramBuilder::build`]).
    pub fn loop_end_of(&self, pc: usize) -> usize {
        *self
            .loop_ends
            .get(&pc)
            .expect("pc is a validated LoopStart")
    }

    /// A static estimate of executed instructions (loop bodies multiplied
    /// by their counts), used by the framework to size test durations.
    pub fn estimated_steps(&self) -> u64 {
        let mut total = 0u64;
        let mut multipliers: Vec<u64> = vec![1];
        for inst in &self.insts {
            match inst {
                Inst::LoopStart { count } => {
                    total += multipliers.last().unwrap();
                    let m = multipliers.last().unwrap().saturating_mul(*count as u64);
                    multipliers.push(m);
                }
                Inst::LoopEnd => {
                    total += multipliers.last().unwrap();
                    multipliers.pop();
                }
                _ => total += multipliers.last().unwrap(),
            }
        }
        total
    }
}

/// Incremental program builder with register-index and loop validation.
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    insts: Vec<Inst>,
    open_loops: Vec<usize>,
}

impl ProgramBuilder {
    /// A fresh builder.
    pub fn new() -> Self {
        ProgramBuilder::default()
    }

    /// Appends a raw instruction.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range register indices.
    pub fn push(&mut self, inst: Inst) -> &mut Self {
        validate_regs(&inst);
        if let Inst::LoopStart { .. } = inst {
            self.open_loops.push(self.insts.len());
        }
        if let Inst::LoopEnd = inst {
            assert!(self.open_loops.pop().is_some(), "LoopEnd without LoopStart");
        }
        self.insts.push(inst);
        self
    }

    /// `dst ← imm`.
    pub fn mov_imm(&mut self, dst: u8, imm: u64) -> &mut Self {
        self.push(Inst::MovImm { dst, imm })
    }

    /// `dst ← src`.
    pub fn mov(&mut self, dst: u8, src: u8) -> &mut Self {
        self.push(Inst::Mov { dst, src })
    }

    /// `dst ← src + imm`.
    pub fn add_imm(&mut self, dst: u8, src: u8, imm: u64) -> &mut Self {
        self.push(Inst::AddImm { dst, src, imm })
    }

    /// Integer ALU operation.
    pub fn int_op(&mut self, op: IntOpKind, dt: DataType, dst: u8, a: u8, b: u8) -> &mut Self {
        self.push(Inst::IntOp { op, dt, dst, a, b })
    }

    /// `fdst ← imm`.
    pub fn fmov_imm(&mut self, dst: u8, imm: f64) -> &mut Self {
        self.push(Inst::FMovImm { dst, imm })
    }

    /// Scalar float operation.
    pub fn fop(&mut self, op: FOpKind, prec: Precision, dst: u8, a: u8, b: u8) -> &mut Self {
        self.push(Inst::FOp {
            op,
            prec,
            dst,
            a,
            b,
        })
    }

    /// Scalar fused multiply-add.
    pub fn ffma(&mut self, prec: Precision, dst: u8, a: u8, b: u8, c: u8) -> &mut Self {
        self.push(Inst::FFma { prec, dst, a, b, c })
    }

    /// Scalar arctangent.
    pub fn fatan(&mut self, prec: Precision, dst: u8, a: u8) -> &mut Self {
        self.push(Inst::FAtan { prec, dst, a })
    }

    /// x87 arithmetic.
    pub fn xop(&mut self, op: XOpKind, dst: u8, a: u8, b: u8) -> &mut Self {
        self.push(Inst::XOp { op, dst, a, b })
    }

    /// x87 arctangent.
    pub fn xatan(&mut self, dst: u8, a: u8) -> &mut Self {
        self.push(Inst::XAtan { dst, a })
    }

    /// Vector operation.
    pub fn vop(&mut self, op: VOpKind, lane: LaneType, dst: u8, a: u8, b: u8, c: u8) -> &mut Self {
        self.push(Inst::VOp {
            op,
            lane,
            dst,
            a,
            b,
            c,
        })
    }

    /// Cached 64-bit load.
    pub fn load(&mut self, dst: u8, addr: u8, offset: u64) -> &mut Self {
        self.push(Inst::Load { dst, addr, offset })
    }

    /// Cached 64-bit store.
    pub fn store(&mut self, src: u8, addr: u8, offset: u64) -> &mut Self {
        self.push(Inst::Store { src, addr, offset })
    }

    /// Float load.
    pub fn load_f(&mut self, dst: u8, addr: u8, offset: u64) -> &mut Self {
        self.push(Inst::LoadF { dst, addr, offset })
    }

    /// Float store.
    pub fn store_f(&mut self, src: u8, addr: u8, offset: u64) -> &mut Self {
        self.push(Inst::StoreF { src, addr, offset })
    }

    /// Vector load.
    pub fn load_v(&mut self, dst: u8, addr: u8, offset: u64) -> &mut Self {
        self.push(Inst::LoadV { dst, addr, offset })
    }

    /// Vector store.
    pub fn store_v(&mut self, src: u8, addr: u8, offset: u64) -> &mut Self {
        self.push(Inst::StoreV { src, addr, offset })
    }

    /// x87 load (80-bit encoding, 16 bytes).
    pub fn load_x(&mut self, dst: u8, addr: u8, offset: u64) -> &mut Self {
        self.push(Inst::LoadX { dst, addr, offset })
    }

    /// x87 store.
    pub fn store_x(&mut self, src: u8, addr: u8, offset: u64) -> &mut Self {
        self.push(Inst::StoreX { src, addr, offset })
    }

    /// CRC32 accumulation step.
    pub fn crc32_step(&mut self, dst: u8, acc: u8, data: u8) -> &mut Self {
        self.push(Inst::Crc32Step { dst, acc, data })
    }

    /// Hash mixing step.
    pub fn hash_mix(&mut self, dst: u8, acc: u8, data: u8) -> &mut Self {
        self.push(Inst::HashMix { dst, acc, data })
    }

    /// Lock acquire (spin).
    pub fn lock_acquire(&mut self, addr: u8) -> &mut Self {
        self.push(Inst::LockAcquire { addr })
    }

    /// Lock release.
    pub fn lock_release(&mut self, addr: u8) -> &mut Self {
        self.push(Inst::LockRelease { addr })
    }

    /// Long-latency low-power filler.
    pub fn pause(&mut self) -> &mut Self {
        self.push(Inst::Pause)
    }

    /// `dst ← (a != b)`.
    pub fn cmp_ne(&mut self, dst: u8, a: u8, b: u8) -> &mut Self {
        self.push(Inst::CmpNe { dst, a, b })
    }

    /// Transaction begin.
    pub fn tx_begin(&mut self) -> &mut Self {
        self.push(Inst::TxBegin)
    }

    /// Transaction commit; `dst` receives the success flag.
    pub fn tx_commit(&mut self, dst: u8) -> &mut Self {
        self.push(Inst::TxCommit { dst })
    }

    /// Opens a counted loop.
    pub fn loop_start(&mut self, count: u32) -> &mut Self {
        self.push(Inst::LoopStart { count })
    }

    /// Closes the innermost loop.
    pub fn loop_end(&mut self) -> &mut Self {
        self.push(Inst::LoopEnd)
    }

    /// Finalizes the program: validates loop nesting, appends a trailing
    /// `Halt` if missing, and precomputes loop-end positions.
    ///
    /// # Panics
    ///
    /// Panics if a loop is left open.
    pub fn build(mut self) -> Program {
        assert!(self.open_loops.is_empty(), "unclosed LoopStart");
        if !matches!(self.insts.last(), Some(Inst::Halt)) {
            self.insts.push(Inst::Halt);
        }
        let mut stack = Vec::new();
        let mut loop_ends = HashMap::new();
        for (pc, inst) in self.insts.iter().enumerate() {
            match inst {
                Inst::LoopStart { .. } => stack.push(pc),
                Inst::LoopEnd => {
                    let start = stack.pop().expect("validated nesting");
                    loop_ends.insert(start, pc);
                }
                _ => {}
            }
        }
        Program {
            insts: self.insts,
            loop_ends,
        }
    }
}

/// Panics on out-of-range register indices.
fn validate_regs(inst: &Inst) {
    let int = |r: u8| assert!((r as usize) < NUM_INT_REGS, "int reg {r} out of range");
    let flt = |r: u8| assert!((r as usize) < NUM_FLOAT_REGS, "float reg {r} out of range");
    let x87 = |r: u8| assert!((r as usize) < NUM_X87_REGS, "x87 reg {r} out of range");
    let vec = |r: u8| assert!((r as usize) < NUM_VEC_REGS, "vec reg {r} out of range");
    match *inst {
        Inst::MovImm { dst, .. } => int(dst),
        Inst::Mov { dst, src } => {
            int(dst);
            int(src);
        }
        Inst::AddImm { dst, src, .. } => {
            int(dst);
            int(src);
        }
        Inst::IntOp { dst, a, b, .. } => {
            int(dst);
            int(a);
            int(b);
        }
        Inst::FMovImm { dst, .. } => flt(dst),
        Inst::FOp { dst, a, b, .. } => {
            flt(dst);
            flt(a);
            flt(b);
        }
        Inst::FFma { dst, a, b, c, .. } => {
            flt(dst);
            flt(a);
            flt(b);
            flt(c);
        }
        Inst::FAtan { dst, a, .. } => {
            flt(dst);
            flt(a);
        }
        Inst::XFromF { dst, src } => {
            x87(dst);
            flt(src);
        }
        Inst::XToF { dst, src } => {
            flt(dst);
            x87(src);
        }
        Inst::XOp { dst, a, b, .. } => {
            x87(dst);
            x87(a);
            x87(b);
        }
        Inst::XAtan { dst, a } => {
            x87(dst);
            x87(a);
        }
        Inst::VOp { dst, a, b, c, .. } => {
            vec(dst);
            vec(a);
            vec(b);
            vec(c);
        }
        Inst::Crc32Step { dst, acc, data } | Inst::HashMix { dst, acc, data } => {
            int(dst);
            int(acc);
            int(data);
        }
        Inst::Load { dst, addr, .. } => {
            int(dst);
            int(addr);
        }
        Inst::Store { src, addr, .. } => {
            int(src);
            int(addr);
        }
        Inst::LoadF { dst, addr, .. } => {
            flt(dst);
            int(addr);
        }
        Inst::StoreF { src, addr, .. } => {
            flt(src);
            int(addr);
        }
        Inst::LoadV { dst, addr, .. } => {
            vec(dst);
            int(addr);
        }
        Inst::StoreV { src, addr, .. } => {
            vec(src);
            int(addr);
        }
        Inst::LoadX { dst, addr, .. } => {
            x87(dst);
            int(addr);
        }
        Inst::StoreX { src, addr, .. } => {
            x87(src);
            int(addr);
        }
        Inst::Cas {
            dst,
            addr,
            expected,
            new,
        } => {
            int(dst);
            int(addr);
            int(expected);
            int(new);
        }
        Inst::LockAcquire { addr } | Inst::LockRelease { addr } => int(addr),
        Inst::TxBegin | Inst::LoopStart { .. } | Inst::LoopEnd | Inst::Halt | Inst::Pause => {}
        Inst::TxCommit { dst } => int(dst),
        Inst::CmpNe { dst, a, b } => {
            int(dst);
            int(a);
            int(b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_appends_halt() {
        let mut b = ProgramBuilder::new();
        b.mov_imm(0, 1);
        let p = b.build();
        assert!(matches!(p.insts().last(), Some(Inst::Halt)));
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn build_does_not_double_halt() {
        let mut b = ProgramBuilder::new();
        b.push(Inst::Halt);
        let p = b.build();
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn loop_ends_precomputed() {
        let mut b = ProgramBuilder::new();
        b.loop_start(2); // pc 0
        b.loop_start(3); // pc 1
        b.mov_imm(0, 1); // pc 2
        b.loop_end(); // pc 3
        b.loop_end(); // pc 4
        let p = b.build();
        assert_eq!(p.loop_end_of(0), 4);
        assert_eq!(p.loop_end_of(1), 3);
    }

    #[test]
    #[should_panic(expected = "unclosed LoopStart")]
    fn unclosed_loop_panics() {
        let mut b = ProgramBuilder::new();
        b.loop_start(2);
        let _ = b.build();
    }

    #[test]
    #[should_panic(expected = "LoopEnd without LoopStart")]
    fn dangling_loop_end_panics() {
        let mut b = ProgramBuilder::new();
        b.loop_end();
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn register_validation() {
        let mut b = ProgramBuilder::new();
        b.mov_imm(200, 1);
    }

    #[test]
    #[should_panic(expected = "x87 reg")]
    fn x87_register_range_is_small() {
        let mut b = ProgramBuilder::new();
        b.xatan(9, 0);
    }

    #[test]
    fn estimated_steps_accounts_for_loops() {
        let mut b = ProgramBuilder::new();
        b.mov_imm(0, 1); // 1
        b.loop_start(10); // 1
        b.mov_imm(1, 2); // 10
        b.loop_end(); // 10
        let p = b.build();
        // 1 + 1 + 10 + 10 + 1 (halt) = 23
        assert_eq!(p.estimated_steps(), 23);
    }
}

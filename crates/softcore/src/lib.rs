//! The execution substrate: a deterministic multi-core register VM.
//!
//! The paper's toolchain testcases "simulate cloud workloads … carefully
//! crafted with consideration of both software behaviors and hardware
//! features" (§2.3). To run those testcases against *simulated* defective
//! silicon, this crate provides a small but real machine:
//!
//! * a register VM with integer ALU, scalar `f32`/`f64` floating point,
//!   80-bit x87 extended precision (via the [`softfloat`] crate), 256-bit
//!   vector lanes, CRC and hash mixing instructions — each tagged with an
//!   [`InstClass`] that maps onto the paper's five vulnerable features;
//! * per-core L1 caches kept coherent with a snooping MESI protocol, whose
//!   invalidation messages a fault hook may *drop* (the cache-coherence
//!   defects of processors CNST1/MIX-class);
//! * hardware transactional memory with read/write-set conflict detection,
//!   whose commit decision a fault hook may override (CNST2's defective
//!   transactional region management);
//! * deterministic random interleaving of cores, instruction-usage counters
//!   (the equivalent of the paper's Pin-based instrumentation, §4.1), and a
//!   cycle/energy model that feeds the thermal simulator.
//!
//! Fault injection happens at instruction *retire*: the hook sees the
//! correct result bits and may replace them, exactly the level at which a
//! defective arithmetic unit corrupts architectural state.

pub mod cpu;
pub mod decode;
pub mod hooks;
pub mod inst;
pub mod machine;
pub mod mem;
pub mod program;
pub mod regs;
pub mod tx;
pub mod usage;

pub use decode::DecodedProgram;
pub use hooks::{FaultHook, NoFaults, RetireInfo};
pub use inst::{
    FOpKind, Inst, InstClass, IntOpKind, LaneType, Precision, VOpKind, XOpKind, NUM_SITES,
};
pub use machine::{CorruptionEvent, Machine, RunOutcome};
pub use mem::MemSystem;
pub use program::{Program, ProgramBuilder};

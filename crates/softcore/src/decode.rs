//! Predecoded programs: the interpreter fast path's flattened form.
//!
//! `DecodedProgram::decode` runs once per loaded program and precomputes
//! everything `Core::step` otherwise rederives on every retire:
//!
//! * per-instruction class, cycle and energy costs;
//! * the `loop_end + 1` skip target of every `LoopStart`, flattening the
//!   `HashMap` lookup out of zero-count loop entry;
//! * per-`IntOp` datatype masks and shift widths;
//! * superinstruction marks fusing common adjacent pairs
//!   (`MovImm`+`IntOp`, `IntOp`+`IntOp`, and the compare-and-branch
//!   analogue `IntOp`+`LoopEnd`) for the single-live-core execution
//!   phase.
//!
//! The decoded form keeps a strict 1:1 pc mapping with the source
//! program — fusion is a per-pc mark consulted at dispatch, not a
//! rewrite — so control transfers (loop back-edges, zero-count skips,
//! lock spins) land on exactly the same pcs as undecoded execution.

use crate::cpu::StepCost;
use crate::inst::{Inst, InstClass, IntOpKind};
use crate::program::Program;
use sdc_model::DataType;

/// One predecoded instruction: the original `Inst` plus everything the
/// dispatch loop needs without recomputation.
#[derive(Debug, Clone)]
pub(crate) struct DecodedOp {
    pub(crate) inst: Inst,
    pub(crate) class: InstClass,
    pub(crate) cycles: u64,
    pub(crate) energy: f64,
    /// For `LoopStart`: the pc after the matching `LoopEnd` (taken when
    /// the trip count is zero). Unused for every other instruction.
    pub(crate) skip_to: u32,
}

/// A predecoded `IntOp` with its datatype mask and shift width resolved.
#[derive(Debug, Clone)]
pub(crate) struct AluOp {
    pub(crate) op: IntOpKind,
    pub(crate) dt: DataType,
    pub(crate) mask: u64,
    pub(crate) width: u64,
    pub(crate) dst: u8,
    pub(crate) a: u8,
    pub(crate) b: u8,
    pub(crate) class: InstClass,
}

/// The fusable pair shapes. All operands stay in registers and neither
/// micro-op can transfer control out of the pair except the trailing
/// `LoopEnd`, which is exactly the macro-fused decrement-compare-branch.
#[derive(Debug, Clone)]
pub(crate) enum FusedKind {
    MovImmIntOp { imm_dst: u8, imm: u64, alu: AluOp },
    IntOpIntOp { first: AluOp, second: AluOp },
    IntOpLoopEnd { alu: AluOp },
}

/// A fused pair with both micro-op costs kept separate so the executor
/// accumulates energy in the same f64 addition order as unfused runs.
#[derive(Debug, Clone)]
pub(crate) struct FusedOp {
    pub(crate) kind: FusedKind,
    pub(crate) cost1: StepCost,
    pub(crate) cost2: StepCost,
}

/// The decoded image of one `Program`.
#[derive(Debug, Clone)]
pub struct DecodedProgram {
    ops: Vec<DecodedOp>,
    /// Per-pc index into `fused`, `u32::MAX` when the pair starting at
    /// that pc is not fusable. A jump landing mid-pair simply uses the
    /// landing pc's own entry.
    fuse_idx: Vec<u32>,
    fused: Vec<FusedOp>,
}

const NO_FUSE: u32 = u32::MAX;

fn alu_of(inst: &Inst) -> Option<AluOp> {
    if let Inst::IntOp { op, dt, dst, a, b } = *inst {
        Some(AluOp {
            op,
            dt,
            mask: dt.mask() as u64,
            width: dt.bits() as u64,
            dst,
            a,
            b,
            class: op.class(),
        })
    } else {
        None
    }
}

impl DecodedProgram {
    /// Decodes a program. Pure: depends only on the instruction stream.
    pub fn decode(program: &Program) -> Self {
        let insts = program.insts();
        let ops = insts
            .iter()
            .enumerate()
            .map(|(pc, &inst)| {
                let class = inst.class();
                let skip_to = match inst {
                    Inst::LoopStart { .. } => (program.loop_end_of(pc) + 1) as u32,
                    _ => 0,
                };
                DecodedOp {
                    inst,
                    class,
                    cycles: class.cycles(),
                    energy: class.energy(),
                    skip_to,
                }
            })
            .collect::<Vec<_>>();

        let mut fuse_idx = vec![NO_FUSE; insts.len()];
        let mut fused = Vec::new();
        for pc in 0..insts.len().saturating_sub(1) {
            let kind = match (&insts[pc], &insts[pc + 1]) {
                (&Inst::MovImm { dst, imm }, second @ &Inst::IntOp { .. }) => {
                    Some(FusedKind::MovImmIntOp {
                        imm_dst: dst,
                        imm,
                        alu: alu_of(second).expect("IntOp"),
                    })
                }
                (first @ &Inst::IntOp { .. }, second @ &Inst::IntOp { .. }) => {
                    Some(FusedKind::IntOpIntOp {
                        first: alu_of(first).expect("IntOp"),
                        second: alu_of(second).expect("IntOp"),
                    })
                }
                (first @ &Inst::IntOp { .. }, &Inst::LoopEnd) => Some(FusedKind::IntOpLoopEnd {
                    alu: alu_of(first).expect("IntOp"),
                }),
                _ => None,
            };
            if let Some(kind) = kind {
                let (c1, c2) = (ops[pc].class, ops[pc + 1].class);
                fuse_idx[pc] = fused.len() as u32;
                fused.push(FusedOp {
                    kind,
                    cost1: StepCost {
                        cycles: c1.cycles(),
                        energy: c1.energy(),
                    },
                    cost2: StepCost {
                        cycles: c2.cycles(),
                        energy: c2.energy(),
                    },
                });
            }
        }
        DecodedProgram {
            ops,
            fuse_idx,
            fused,
        }
    }

    #[inline]
    pub(crate) fn op(&self, pc: usize) -> Option<&DecodedOp> {
        self.ops.get(pc)
    }

    /// The fused pair starting at `pc`, if the decoder marked one.
    #[inline]
    pub(crate) fn fused_at(&self, pc: usize) -> Option<&FusedOp> {
        match self.fuse_idx.get(pc) {
            Some(&i) if i != NO_FUSE => Some(&self.fused[i as usize]),
            _ => None,
        }
    }

    /// Number of predecoded instructions (same as the program length).
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the program is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Number of fusable pair marks found (diagnostics and benches).
    pub fn fused_pairs(&self) -> usize {
        self.fused.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::ProgramBuilder;

    #[test]
    fn decode_preserves_pc_mapping_and_costs() {
        let mut b = ProgramBuilder::new();
        b.mov_imm(0, 3).mov_imm(1, 5).loop_start(10);
        b.int_op(IntOpKind::Add, DataType::I32, 2, 0, 1);
        b.int_op(IntOpKind::Xor, DataType::I32, 0, 0, 2);
        b.loop_end();
        let prog = b.build();
        let d = DecodedProgram::decode(&prog);
        assert_eq!(d.len(), prog.len());
        for (pc, inst) in prog.insts().iter().enumerate() {
            let op = d.op(pc).expect("1:1 mapping");
            assert_eq!(op.class, inst.class());
            assert_eq!(op.cycles, inst.class().cycles());
        }
    }

    #[test]
    fn loop_start_skip_targets_match_program() {
        let mut b = ProgramBuilder::new();
        b.loop_start(0);
        b.mov_imm(0, 1);
        b.loop_end();
        b.mov_imm(0, 2);
        let prog = b.build();
        let d = DecodedProgram::decode(&prog);
        assert_eq!(d.op(0).expect("pc 0").skip_to as usize, prog.loop_end_of(0) + 1);
    }

    #[test]
    fn fusion_marks_expected_pairs() {
        let mut b = ProgramBuilder::new();
        b.mov_imm(0, 3); // pc 0: MovImm followed by IntOp -> fused
        b.int_op(IntOpKind::Add, DataType::I32, 1, 0, 0); // pc 1: IntOp+IntOp -> fused
        b.int_op(IntOpKind::Xor, DataType::I32, 2, 1, 0); // pc 2: IntOp before fmov -> not fused
        b.fmov_imm(0, 1.0); // pc 3
        let prog = b.build();
        let d = DecodedProgram::decode(&prog);
        assert!(d.fused_at(0).is_some(), "MovImm+IntOp fuses");
        assert!(d.fused_at(1).is_some(), "IntOp+IntOp fuses");
        assert!(d.fused_at(2).is_none(), "IntOp+FMovImm does not fuse");
        assert_eq!(d.fused_pairs(), 2);
    }

    #[test]
    fn int_loop_body_fuses_with_loop_end() {
        let mut b = ProgramBuilder::new();
        b.mov_imm(0, 1).loop_start(4);
        b.int_op(IntOpKind::Add, DataType::Bin64, 0, 0, 0);
        b.loop_end();
        let prog = b.build();
        let d = DecodedProgram::decode(&prog);
        let f = d.fused_at(2).expect("IntOp+LoopEnd fuses");
        assert!(matches!(f.kind, FusedKind::IntOpLoopEnd { .. }));
        assert_eq!(f.cost2.cycles, InstClass::Control.cycles());
    }
}

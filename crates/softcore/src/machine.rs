//! The multi-core machine: cores, shared memory, and a deterministic
//! random interleaver.

use crate::cpu::Core;
use crate::decode::DecodedProgram;
use crate::hooks::FaultHook;
use crate::inst::InstClass;
use crate::mem::MemSystem;
use crate::program::Program;
use crate::usage::UsageCounters;
use sdc_model::{DataType, DetRng};

/// Ground-truth log entry: the fault hook replaced a result.
///
/// This is the *injector's* view, used to validate detection machinery;
/// the toolchain detects SDCs independently, by comparing outputs against
/// a golden run (it never reads this log).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorruptionEvent {
    /// Core that retired the corrupted instruction.
    pub core: usize,
    /// Instruction class.
    pub class: InstClass,
    /// Result datatype.
    pub dt: DataType,
    /// Correct bits.
    pub expected: u128,
    /// Corrupted bits.
    pub actual: u128,
}

/// Outcome of a machine run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunOutcome {
    /// True if every core halted within the step budget.
    pub completed: bool,
    /// Total instructions executed across cores.
    pub steps: u64,
    /// Maximum per-core cycle count (wall-clock proxy for the run).
    pub cycles: u64,
}

/// A multi-core machine executing one program per core.
#[derive(Debug)]
pub struct Machine {
    /// The shared memory system.
    pub mem: MemSystem,
    cores: Vec<Core>,
    programs: Vec<Option<Program>>,
    decoded: Vec<Option<DecodedProgram>>,
    /// Instruction-usage counters (the Pin-instrumentation equivalent).
    pub usage: UsageCounters,
    /// Ground-truth corruption log.
    pub events: Vec<CorruptionEvent>,
    /// Cycles consumed per core.
    pub cycles: Vec<u64>,
    /// Energy consumed per core (feeds the thermal model).
    pub energy: Vec<f64>,
}

impl Machine {
    /// A machine with `cores` cores sharing `mem_bytes` of memory.
    ///
    /// # Panics
    ///
    /// Panics if `cores == 0`.
    pub fn new(cores: usize, mem_bytes: u64) -> Self {
        assert!(cores > 0, "need at least one core");
        Machine {
            mem: MemSystem::new(cores, mem_bytes),
            cores: (0..cores).map(Core::new).collect(),
            programs: vec![None; cores],
            decoded: vec![None; cores],
            usage: UsageCounters::new(cores),
            events: Vec::new(),
            cycles: vec![0; cores],
            energy: vec![0.0; cores],
        }
    }

    /// Number of cores.
    pub fn num_cores(&self) -> usize {
        self.cores.len()
    }

    /// Loads `program` onto `core` and predecodes it. Cores without a
    /// program stay halted.
    pub fn load(&mut self, core: usize, program: Program) {
        self.decoded[core] = Some(DecodedProgram::decode(&program));
        self.programs[core] = Some(program);
        self.cores[core].restart();
    }

    /// Read access to a core's registers (for result extraction in tests).
    pub fn core(&self, core: usize) -> &Core {
        &self.cores[core]
    }

    /// Runs until every loaded core halts or `max_steps` instructions have
    /// executed, interleaving cores uniformly at random (deterministic
    /// under `rng`). Flushes caches on completion so raw memory reads see
    /// final state.
    ///
    /// Execution uses the predecoded fast path and is bit-identical to
    /// [`Machine::run_reference`] in every observable product: hook call
    /// sequence, corruption events, usage counters, cycles, energy,
    /// memory, and the returned outcome. The only non-contractual
    /// difference is the `rng` stream position afterwards — with a single
    /// live core the schedule is forced, so the fast path consumes no
    /// interleave draws (forks are seed-derived and unaffected).
    pub fn run<H: FaultHook + ?Sized>(
        &mut self,
        hook: &mut H,
        rng: &mut DetRng,
        max_steps: u64,
    ) -> RunOutcome {
        let mut steps = 0u64;
        let mut live: Vec<usize> = (0..self.cores.len())
            .filter(|&i| self.programs[i].is_some())
            .collect();
        if live.is_empty() {
            return RunOutcome {
                completed: true,
                steps: 0,
                cycles: 0,
            };
        }
        live.retain(|&i| !self.cores[i].halted());

        // Contended phase: more than one live core, so each step draws a
        // scheduling pick exactly as the reference interpreter does.
        while live.len() > 1 && steps < max_steps {
            let pick = rng.below(live.len() as u64) as usize;
            let core_idx = live[pick];
            let prog = self.decoded[core_idx].as_ref().expect("loaded");
            let cost = self.cores[core_idx].step_decoded(
                prog,
                &mut self.mem,
                hook,
                &mut self.usage,
                &mut self.events,
            );
            self.cycles[core_idx] += cost.cycles;
            self.energy[core_idx] += cost.energy;
            steps += 1;
            if self.cores[core_idx].halted() {
                live.swap_remove(pick);
            }
        }

        // Single-live-core phase (the whole run for golden/profiling
        // workloads): the schedule is forced, so no draws, and fused
        // pairs execute straight-line when the step budget allows both
        // micro-ops. Costs accumulate per micro-op in original order —
        // f64 addition is not associative, so the energy sums must not
        // be folded.
        if let [core_idx] = live[..] {
            let prog = self.decoded[core_idx].as_ref().expect("loaded");
            let core = &mut self.cores[core_idx];
            let cycles = &mut self.cycles[core_idx];
            let energy = &mut self.energy[core_idx];
            while !core.halted && steps < max_steps {
                if steps + 2 <= max_steps {
                    if let Some(fused) = prog.fused_at(core.pc) {
                        let (c1, c2) =
                            core.exec_fused(fused, hook, &mut self.usage, &mut self.events);
                        *cycles += c1.cycles;
                        *energy += c1.energy;
                        *cycles += c2.cycles;
                        *energy += c2.energy;
                        steps += 2;
                        continue;
                    }
                }
                let cost =
                    core.step_decoded(prog, &mut self.mem, hook, &mut self.usage, &mut self.events);
                *cycles += cost.cycles;
                *energy += cost.energy;
                steps += 1;
            }
            if core.halted {
                live.clear();
            }
        }

        self.mem.flush_all();
        RunOutcome {
            completed: live.is_empty(),
            steps,
            cycles: self.cycles.iter().copied().max().unwrap_or(0),
        }
    }

    /// The seed interpreter loop, kept verbatim: un-predecoded dispatch
    /// and one scheduling draw per step regardless of live-core count.
    /// The conformance gate and `tests/fastpath_equivalence.rs` compare
    /// [`Machine::run`] against this to prove the fast path emits
    /// identical bits.
    pub fn run_reference<H: FaultHook + ?Sized>(
        &mut self,
        hook: &mut H,
        rng: &mut DetRng,
        max_steps: u64,
    ) -> RunOutcome {
        let mut steps = 0u64;
        let runnable: Vec<usize> = (0..self.cores.len())
            .filter(|&i| self.programs[i].is_some())
            .collect();
        if runnable.is_empty() {
            return RunOutcome {
                completed: true,
                steps: 0,
                cycles: 0,
            };
        }
        let mut live: Vec<usize> = runnable
            .iter()
            .copied()
            .filter(|&i| !self.cores[i].halted())
            .collect();
        while !live.is_empty() && steps < max_steps {
            let pick = rng.below(live.len() as u64) as usize;
            let core_idx = live[pick];
            let prog = self.programs[core_idx].as_ref().expect("loaded");
            let cost = self.cores[core_idx].step(
                prog,
                &mut self.mem,
                hook,
                &mut self.usage,
                &mut self.events,
            );
            self.cycles[core_idx] += cost.cycles;
            self.energy[core_idx] += cost.energy;
            steps += 1;
            if self.cores[core_idx].halted() {
                live.swap_remove(pick);
            }
        }
        self.mem.flush_all();
        RunOutcome {
            completed: live.is_empty(),
            steps,
            cycles: self.cycles.iter().copied().max().unwrap_or(0),
        }
    }

    /// Clears the run products (events, cycles, energy, usage) while
    /// keeping memory contents and loaded programs; cores restart.
    pub fn reset_run_state(&mut self) {
        for c in &mut self.cores {
            c.restart();
        }
        self.events.clear();
        self.usage.reset();
        self.cycles.iter_mut().for_each(|c| *c = 0);
        self.energy.iter_mut().for_each(|e| *e = 0.0);
    }

    /// Cold restart: zeroed memory, fresh caches and stats, zeroed
    /// registers, cleared run products — indistinguishable from a newly
    /// constructed machine except that loaded programs (and their decoded
    /// images) are kept. Lets callers reuse one `Machine` across unit
    /// iterations instead of reallocating memory and re-decoding.
    pub fn restart(&mut self) {
        self.mem.reset();
        for c in &mut self.cores {
            *c = Core::new(c.id);
        }
        self.usage.reset();
        self.events.clear();
        self.cycles.iter_mut().for_each(|c| *c = 0);
        self.energy.iter_mut().for_each(|e| *e = 0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hooks::NoFaults;
    use crate::inst::IntOpKind;
    use crate::program::ProgramBuilder;
    use sdc_model::DataType;

    fn counter_program(lock_addr: u64, counter_addr: u64, rounds: u32) -> Program {
        let mut b = ProgramBuilder::new();
        b.mov_imm(0, lock_addr);
        b.mov_imm(1, counter_addr);
        b.mov_imm(2, 1);
        b.loop_start(rounds);
        b.lock_acquire(0);
        b.load(3, 1, 0);
        b.int_op(IntOpKind::Add, DataType::Bin64, 3, 3, 2);
        b.store(3, 1, 0);
        b.lock_release(0);
        b.loop_end();
        b.build()
    }

    #[test]
    fn single_core_runs_to_halt() {
        let mut m = Machine::new(1, 4096);
        let mut b = ProgramBuilder::new();
        b.mov_imm(0, 7);
        m.load(0, b.build());
        let mut rng = DetRng::new(1);
        let out = m.run(&mut NoFaults, &mut rng, 1_000);
        assert!(out.completed);
        assert_eq!(m.core(0).regs.int(0), 7);
        assert!(out.cycles > 0);
    }

    #[test]
    fn unloaded_cores_do_not_block_completion() {
        let mut m = Machine::new(4, 4096);
        let mut b = ProgramBuilder::new();
        b.mov_imm(0, 1);
        m.load(2, b.build());
        let mut rng = DetRng::new(2);
        let out = m.run(&mut NoFaults, &mut rng, 1_000);
        assert!(out.completed);
    }

    #[test]
    fn step_budget_stops_runaway() {
        let mut m = Machine::new(1, 4096);
        let mut b = ProgramBuilder::new();
        b.loop_start(u32::MAX);
        b.mov_imm(0, 1);
        b.loop_end();
        m.load(0, b.build());
        let mut rng = DetRng::new(3);
        let out = m.run(&mut NoFaults, &mut rng, 10_000);
        assert!(!out.completed);
        assert_eq!(out.steps, 10_000);
    }

    #[test]
    fn step_budget_is_exact_with_fused_pairs() {
        // The runaway body is IntOp+LoopEnd, a fused pair; odd budgets
        // force the fast path to fall back to single-step dispatch for
        // the final instruction.
        let mut m = Machine::new(1, 4096);
        let mut b = ProgramBuilder::new();
        b.mov_imm(0, 1);
        b.loop_start(u32::MAX);
        b.int_op(IntOpKind::Add, DataType::Bin64, 0, 0, 0);
        b.loop_end();
        m.load(0, b.build());
        let mut rng = DetRng::new(3);
        let out = m.run(&mut NoFaults, &mut rng, 10_001);
        assert!(!out.completed);
        assert_eq!(out.steps, 10_001);
    }

    #[test]
    fn lock_counter_is_exact_with_healthy_coherence() {
        let mut m = Machine::new(4, 1 << 16);
        for c in 0..4 {
            m.load(c, counter_program(0, 64, 25));
        }
        let mut rng = DetRng::new(4);
        let out = m.run(&mut NoFaults, &mut rng, 10_000_000);
        assert!(out.completed, "all cores finish");
        assert_eq!(m.mem.raw_read_u64(64), 100, "no lost updates");
    }

    #[test]
    fn interleaving_is_deterministic_per_seed() {
        let run = |seed: u64| {
            let mut m = Machine::new(2, 1 << 16);
            for c in 0..2 {
                m.load(c, counter_program(0, 64, 10));
            }
            let mut rng = DetRng::new(seed);
            let out = m.run(&mut NoFaults, &mut rng, 1_000_000);
            (out.steps, m.mem.raw_read_u64(64))
        };
        assert_eq!(run(7), run(7));
        // Different seeds interleave differently but are equally correct.
        assert_eq!(run(7).1, run(8).1);
    }

    #[test]
    fn energy_and_cycles_accumulate() {
        let mut m = Machine::new(2, 4096);
        let mut b = ProgramBuilder::new();
        b.fmov_imm(0, 1.0);
        b.fatan(crate::inst::Precision::F64, 1, 0);
        m.load(0, b.build());
        let mut rng = DetRng::new(5);
        m.run(&mut NoFaults, &mut rng, 1_000);
        assert!(m.energy[0] > 0.0);
        assert!(m.cycles[0] >= InstClass::FloatAtan.cycles());
        assert_eq!(m.cycles[1], 0, "idle core consumes nothing");
    }

    #[test]
    fn reset_run_state_clears_products() {
        let mut m = Machine::new(1, 4096);
        let mut b = ProgramBuilder::new();
        b.mov_imm(0, 7);
        m.load(0, b.build());
        let mut rng = DetRng::new(6);
        m.run(&mut NoFaults, &mut rng, 100);
        m.reset_run_state();
        assert_eq!(m.cycles[0], 0);
        assert_eq!(m.usage.core_total(0), 0);
        assert!(m.events.is_empty());
        // And it can run again.
        let out = m.run(&mut NoFaults, &mut rng, 100);
        assert!(out.completed);
    }

    #[test]
    fn restart_matches_fresh_machine() {
        let program = counter_program(0, 64, 10);
        let mut reused = Machine::new(1, 1 << 16);
        reused.load(0, program.clone());
        let mut rng = DetRng::new(9);
        reused.run(&mut NoFaults, &mut rng, 1_000_000);
        reused.restart();
        let mut rng = DetRng::new(9);
        let out_reused = reused.run(&mut NoFaults, &mut rng, 1_000_000);

        let mut fresh = Machine::new(1, 1 << 16);
        fresh.load(0, program);
        let mut rng = DetRng::new(9);
        let out_fresh = fresh.run(&mut NoFaults, &mut rng, 1_000_000);

        assert_eq!(out_reused, out_fresh);
        assert_eq!(reused.mem.raw_read_u64(64), fresh.mem.raw_read_u64(64));
        assert_eq!(reused.cycles, fresh.cycles);
        assert_eq!(
            reused.core(0).regs.int(3),
            fresh.core(0).regs.int(3),
            "registers match after restart"
        );
    }

    #[test]
    fn fast_path_matches_reference_interpreter() {
        for cores in [1usize, 2, 4] {
            for seed in [1u64, 7, 42] {
                let build = || {
                    let mut m = Machine::new(cores, 1 << 16);
                    for c in 0..cores {
                        m.load(c, counter_program(0, 64, 12));
                    }
                    m
                };
                let mut fast = build();
                let mut rng = DetRng::new(seed);
                let out_fast = fast.run(&mut NoFaults, &mut rng, 5_000_000);
                let mut reference = build();
                let mut rng = DetRng::new(seed);
                let out_ref = reference.run_reference(&mut NoFaults, &mut rng, 5_000_000);
                assert_eq!(out_fast, out_ref, "cores={cores} seed={seed}");
                assert_eq!(fast.mem.raw_read_u64(64), reference.mem.raw_read_u64(64));
                assert_eq!(fast.cycles, reference.cycles);
                assert_eq!(fast.usage.profile(), reference.usage.profile());
            }
        }
    }
}

//! Single-core instruction execution.
//!
//! The interpreter is generic over the fault hook so the golden/profiling
//! path (`NoFaults`) monomorphizes to straight-line code with no virtual
//! call per retire; callers holding a `&mut dyn FaultHook` still compile
//! against the same functions with `H = dyn FaultHook`.

use crate::decode::{AluOp, DecodedProgram, FusedKind, FusedOp};
use crate::hooks::{FaultHook, RetireInfo};
use crate::inst::{FOpKind, Inst, InstClass, IntOpKind, LaneType, Precision, VOpKind, XOpKind};
use crate::machine::CorruptionEvent;
use crate::mem::MemSystem;
use crate::program::Program;
use crate::regs::{
    f32_as_vec, f64_as_vec, i32_as_vec, vec_as_f32, vec_as_f64, vec_as_i32, RegFile,
};
use crate::tx::TxState;
use crate::usage::UsageCounters;
use sdc_model::DataType;
use softfloat::{atan as x87_atan, F80};

/// Cost of one executed instruction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepCost {
    /// Cycles consumed.
    pub cycles: u64,
    /// Energy consumed (arbitrary units; feeds the thermal model).
    pub energy: f64,
}

impl StepCost {
    pub(crate) const ZERO: StepCost = StepCost {
        cycles: 0,
        energy: 0.0,
    };
}

/// One simulated physical core.
#[derive(Debug, Clone)]
pub struct Core {
    /// Machine-local index of this core.
    pub id: usize,
    /// Architectural registers.
    pub regs: RegFile,
    pub(crate) pc: usize,
    loop_stack: Vec<(usize, u32)>,
    pub(crate) halted: bool,
    tx: TxState,
}

impl Core {
    /// A fresh core with the given machine-local index.
    pub fn new(id: usize) -> Self {
        Core {
            id,
            regs: RegFile::new(),
            pc: 0,
            loop_stack: Vec::new(),
            halted: false,
            tx: TxState::new(),
        }
    }

    /// Whether the core has executed `Halt` (or run off the program end).
    #[inline]
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Transaction commit/abort counts for this core.
    pub fn tx_stats(&self) -> (u64, u64) {
        (self.tx.commits, self.tx.aborts)
    }

    /// Resets control state for a new program (registers persist; callers
    /// that need a cold start create a new `Core`).
    pub fn restart(&mut self) {
        self.pc = 0;
        self.loop_stack.clear();
        self.halted = false;
        self.tx = TxState::new();
    }

    /// Runs a scalar result through the fault hook, logging a corruption
    /// event if the hook fires.
    #[inline]
    fn retire<H: FaultHook + ?Sized>(
        &self,
        class: InstClass,
        dt: DataType,
        bits: u128,
        hook: &mut H,
        events: &mut Vec<CorruptionEvent>,
    ) -> u128 {
        let bits = bits & dt.mask();
        let info = RetireInfo {
            core: self.id,
            class,
            dt,
            bits,
        };
        match hook.corrupt(&info) {
            Some(corrupted) => {
                let corrupted = corrupted & dt.mask();
                events.push(CorruptionEvent {
                    core: self.id,
                    class,
                    dt,
                    expected: bits,
                    actual: corrupted,
                });
                corrupted
            }
            None => bits,
        }
    }

    /// Executes one instruction. Returns its cost; a halted core returns a
    /// zero-cost step.
    pub fn step<H: FaultHook + ?Sized>(
        &mut self,
        prog: &Program,
        mem: &mut MemSystem,
        hook: &mut H,
        usage: &mut UsageCounters,
        events: &mut Vec<CorruptionEvent>,
    ) -> StepCost {
        if self.halted {
            return StepCost::ZERO;
        }
        let Some(&inst) = prog.insts().get(self.pc) else {
            self.halted = true;
            return StepCost::ZERO;
        };
        let class = inst.class();
        usage.record(self.id, class);
        let skip_to = match inst {
            Inst::LoopStart { count: 0 } => prog.loop_end_of(self.pc) + 1,
            _ => 0,
        };
        self.exec_inst(inst, class, skip_to, mem, hook, events);
        StepCost {
            cycles: class.cycles(),
            energy: class.energy(),
        }
    }

    /// `step` against a predecoded program: class, costs and zero-count
    /// loop skip targets come from the decode pass instead of per-step
    /// recomputation. Bit-identical to `step` on the same state.
    pub(crate) fn step_decoded<H: FaultHook + ?Sized>(
        &mut self,
        prog: &DecodedProgram,
        mem: &mut MemSystem,
        hook: &mut H,
        usage: &mut UsageCounters,
        events: &mut Vec<CorruptionEvent>,
    ) -> StepCost {
        if self.halted {
            return StepCost::ZERO;
        }
        let Some(op) = prog.op(self.pc) else {
            self.halted = true;
            return StepCost::ZERO;
        };
        usage.record(self.id, op.class);
        self.exec_inst(op.inst, op.class, op.skip_to as usize, mem, hook, events);
        StepCost {
            cycles: op.cycles,
            energy: op.energy,
        }
    }

    /// Executes a fused instruction pair straight-line, preserving the
    /// exact per-instruction order of usage recording, retires and cost
    /// accounting. Only legal for pairs the decoder marked (no memory, no
    /// control transfer out of the pair other than the trailing
    /// `LoopEnd`). Returns the two per-instruction costs separately so the
    /// caller can accumulate energy in the same f64 order as unfused
    /// execution.
    pub(crate) fn exec_fused<H: FaultHook + ?Sized>(
        &mut self,
        fused: &FusedOp,
        hook: &mut H,
        usage: &mut UsageCounters,
        events: &mut Vec<CorruptionEvent>,
    ) -> (StepCost, StepCost) {
        match fused.kind {
            FusedKind::MovImmIntOp {
                imm_dst,
                imm,
                ref alu,
            } => {
                usage.record(self.id, InstClass::Control);
                self.regs.set_int(imm_dst, imm);
                usage.record(self.id, alu.class);
                self.exec_alu(alu, hook, events);
                self.pc += 2;
            }
            FusedKind::IntOpIntOp {
                ref first,
                ref second,
            } => {
                usage.record(self.id, first.class);
                self.exec_alu(first, hook, events);
                usage.record(self.id, second.class);
                self.exec_alu(second, hook, events);
                self.pc += 2;
            }
            FusedKind::IntOpLoopEnd { ref alu } => {
                usage.record(self.id, alu.class);
                self.exec_alu(alu, hook, events);
                usage.record(self.id, InstClass::Control);
                let top = self
                    .loop_stack
                    .last_mut()
                    .expect("LoopEnd without LoopStart (validated programs cannot reach this)");
                top.1 -= 1;
                if top.1 > 0 {
                    self.pc = top.0 + 1;
                } else {
                    self.loop_stack.pop();
                    self.pc += 2;
                }
            }
        }
        (fused.cost1, fused.cost2)
    }

    /// The predecoded `IntOp` body (mask/width precomputed by the
    /// decoder). Mirrors the `Inst::IntOp` arm of `exec_inst` exactly.
    #[inline]
    fn exec_alu<H: FaultHook + ?Sized>(
        &mut self,
        alu: &AluOp,
        hook: &mut H,
        events: &mut Vec<CorruptionEvent>,
    ) {
        let x = self.regs.int(alu.a) & alu.mask;
        let y = self.regs.int(alu.b) & alu.mask;
        let raw = match alu.op {
            IntOpKind::Add => x.wrapping_add(y),
            IntOpKind::Sub => x.wrapping_sub(y),
            IntOpKind::Mul => x.wrapping_mul(y),
            IntOpKind::Div => x.checked_div(y).unwrap_or(0),
            IntOpKind::And => x & y,
            IntOpKind::Or => x | y,
            IntOpKind::Xor => x ^ y,
            IntOpKind::Shl => x << (y % alu.width),
            IntOpKind::Shr => x >> (y % alu.width),
        };
        let out = self.retire(alu.class, alu.dt, raw as u128, hook, events);
        self.regs.set_int(alu.dst, out as u64);
    }

    /// The interpreter body shared by `step` and `step_decoded`. `skip_to`
    /// is the precomputed `LoopEnd`+1 target consumed by zero-count
    /// `LoopStart` (unused for every other instruction).
    fn exec_inst<H: FaultHook + ?Sized>(
        &mut self,
        inst: Inst,
        class: InstClass,
        skip_to: usize,
        mem: &mut MemSystem,
        hook: &mut H,
        events: &mut Vec<CorruptionEvent>,
    ) {
        let mut next_pc = self.pc + 1;
        match inst {
            Inst::MovImm { dst, imm } => self.regs.set_int(dst, imm),
            Inst::Mov { dst, src } => {
                let v = self.regs.int(src);
                self.regs.set_int(dst, v);
            }
            Inst::AddImm { dst, src, imm } => {
                let v = self.regs.int(src).wrapping_add(imm);
                self.regs.set_int(dst, v);
            }
            Inst::IntOp { op, dt, dst, a, b } => {
                let mask = dt.mask() as u64;
                let x = self.regs.int(a) & mask;
                let y = self.regs.int(b) & mask;
                let width = dt.bits() as u64;
                let raw = match op {
                    IntOpKind::Add => x.wrapping_add(y),
                    IntOpKind::Sub => x.wrapping_sub(y),
                    IntOpKind::Mul => x.wrapping_mul(y),
                    IntOpKind::Div => x.checked_div(y).unwrap_or(0),
                    IntOpKind::And => x & y,
                    IntOpKind::Or => x | y,
                    IntOpKind::Xor => x ^ y,
                    IntOpKind::Shl => x << (y % width),
                    IntOpKind::Shr => x >> (y % width),
                };
                let out = self.retire(class, dt, raw as u128, hook, events);
                self.regs.set_int(dst, out as u64);
            }
            Inst::FMovImm { dst, imm } => self.regs.set_float(dst, imm),
            Inst::FOp {
                op,
                prec,
                dst,
                a,
                b,
            } => {
                let out = match prec {
                    Precision::F32 => {
                        let x = self.regs.float(a) as f32;
                        let y = self.regs.float(b) as f32;
                        let r = match op {
                            FOpKind::Add => x + y,
                            FOpKind::Sub => x - y,
                            FOpKind::Mul => x * y,
                            FOpKind::Div => x / y,
                        };
                        let bits =
                            self.retire(class, DataType::F32, r.to_bits() as u128, hook, events);
                        f32::from_bits(bits as u32) as f64
                    }
                    Precision::F64 => {
                        let x = self.regs.float(a);
                        let y = self.regs.float(b);
                        let r = match op {
                            FOpKind::Add => x + y,
                            FOpKind::Sub => x - y,
                            FOpKind::Mul => x * y,
                            FOpKind::Div => x / y,
                        };
                        let bits =
                            self.retire(class, DataType::F64, r.to_bits() as u128, hook, events);
                        f64::from_bits(bits as u64)
                    }
                };
                self.regs.set_float(dst, out);
            }
            Inst::FFma { prec, dst, a, b, c } => {
                let out = match prec {
                    Precision::F32 => {
                        let r = (self.regs.float(a) as f32)
                            .mul_add(self.regs.float(b) as f32, self.regs.float(c) as f32);
                        let bits =
                            self.retire(class, DataType::F32, r.to_bits() as u128, hook, events);
                        f32::from_bits(bits as u32) as f64
                    }
                    Precision::F64 => {
                        let r = self
                            .regs
                            .float(a)
                            .mul_add(self.regs.float(b), self.regs.float(c));
                        let bits =
                            self.retire(class, DataType::F64, r.to_bits() as u128, hook, events);
                        f64::from_bits(bits as u64)
                    }
                };
                self.regs.set_float(dst, out);
            }
            Inst::FAtan { prec, dst, a } => {
                let out = match prec {
                    Precision::F32 => {
                        let r = (self.regs.float(a) as f32).atan();
                        let bits =
                            self.retire(class, DataType::F32, r.to_bits() as u128, hook, events);
                        f32::from_bits(bits as u32) as f64
                    }
                    Precision::F64 => {
                        let r = self.regs.float(a).atan();
                        let bits =
                            self.retire(class, DataType::F64, r.to_bits() as u128, hook, events);
                        f64::from_bits(bits as u64)
                    }
                };
                self.regs.set_float(dst, out);
            }
            Inst::XFromF { dst, src } => {
                let v = F80::from_f64(self.regs.float(src));
                self.regs.set_x87(dst, v);
            }
            Inst::XToF { dst, src } => {
                let v = self.regs.x87(src).to_f64();
                self.regs.set_float(dst, v);
            }
            Inst::XOp { op, dst, a, b } => {
                let x = self.regs.x87(a);
                let y = self.regs.x87(b);
                let r = match op {
                    XOpKind::Add => x + y,
                    XOpKind::Sub => x - y,
                    XOpKind::Mul => x * y,
                    XOpKind::Div => x / y,
                };
                let bits = self.retire(class, DataType::F64X, r.encode(), hook, events);
                self.regs.set_x87(dst, F80::decode(bits));
            }
            Inst::XAtan { dst, a } => {
                let r = x87_atan(self.regs.x87(a));
                let bits = self.retire(class, DataType::F64X, r.encode(), hook, events);
                self.regs.set_x87(dst, F80::decode(bits));
            }
            Inst::VOp {
                op,
                lane,
                dst,
                a,
                b,
                c,
            } => {
                let out = self.exec_vector(op, lane, a, b, c, class, hook, events);
                self.regs.set_vec(dst, out);
            }
            Inst::Crc32Step { dst, acc, data } => {
                let r = crc32_step(self.regs.int(acc) as u32, self.regs.int(data));
                let bits = self.retire(class, DataType::Bin32, r as u128, hook, events);
                self.regs.set_int(dst, bits as u64);
            }
            Inst::HashMix { dst, acc, data } => {
                let r = hash_mix(self.regs.int(acc), self.regs.int(data));
                let bits = self.retire(class, DataType::Bin64, r as u128, hook, events);
                self.regs.set_int(dst, bits as u64);
            }
            Inst::Load { dst, addr, offset } => {
                let a = self.regs.int(addr).wrapping_add(offset);
                let v = if self.tx.active() {
                    self.tx.read(self.id, a, mem, hook)
                } else {
                    mem.read_u64(self.id, a, hook)
                };
                self.regs.set_int(dst, v);
            }
            Inst::Store { src, addr, offset } => {
                let a = self.regs.int(addr).wrapping_add(offset);
                let v = self.regs.int(src);
                if self.tx.active() {
                    self.tx.write(a, v);
                } else {
                    mem.write_u64(self.id, a, v, hook);
                }
            }
            Inst::LoadF { dst, addr, offset } => {
                let a = self.regs.int(addr).wrapping_add(offset);
                let v = mem.read_u64(self.id, a, hook);
                self.regs.set_float(dst, f64::from_bits(v));
            }
            Inst::StoreF { src, addr, offset } => {
                let a = self.regs.int(addr).wrapping_add(offset);
                mem.write_u64(self.id, a, self.regs.float(src).to_bits(), hook);
            }
            Inst::LoadV { dst, addr, offset } => {
                let a = self.regs.int(addr).wrapping_add(offset);
                let mut v = [0u64; 4];
                for (i, w) in v.iter_mut().enumerate() {
                    *w = mem.read_u64(self.id, a + 8 * i as u64, hook);
                }
                self.regs.set_vec(dst, v);
            }
            Inst::StoreV { src, addr, offset } => {
                let a = self.regs.int(addr).wrapping_add(offset);
                let v = self.regs.vec(src);
                for (i, w) in v.iter().enumerate() {
                    mem.write_u64(self.id, a + 8 * i as u64, *w, hook);
                }
            }
            Inst::StoreX { src, addr, offset } => {
                let a = self.regs.int(addr).wrapping_add(offset);
                let bits = self.regs.x87(src).encode();
                mem.write_u64(self.id, a, bits as u64, hook);
                mem.write_u64(self.id, a + 8, (bits >> 64) as u64, hook);
            }
            Inst::LoadX { dst, addr, offset } => {
                let a = self.regs.int(addr).wrapping_add(offset);
                let lo = mem.read_u64(self.id, a, hook) as u128;
                let hi = mem.read_u64(self.id, a + 8, hook) as u128;
                self.regs.set_x87(dst, F80::decode(lo | (hi << 64)));
            }
            Inst::Cas {
                dst,
                addr,
                expected,
                new,
            } => {
                let a = self.regs.int(addr);
                let ok = mem.cas_u64(
                    self.id,
                    a,
                    self.regs.int(expected),
                    self.regs.int(new),
                    hook,
                );
                self.regs.set_int(dst, ok as u64);
            }
            Inst::LockAcquire { addr } => {
                let a = self.regs.int(addr);
                if !mem.cas_u64(self.id, a, 0, 1, hook) {
                    // Spin: retry this instruction on the next step.
                    next_pc = self.pc;
                }
            }
            Inst::LockRelease { addr } => {
                let a = self.regs.int(addr);
                mem.write_u64(self.id, a, 0, hook);
            }
            Inst::TxBegin => self.tx.begin(),
            Inst::TxCommit { dst } => {
                let ok = self.tx.commit(self.id, mem, hook);
                self.regs.set_int(dst, ok as u64);
            }
            Inst::LoopStart { count } => {
                if count == 0 {
                    next_pc = skip_to;
                } else {
                    self.loop_stack.push((self.pc, count));
                }
            }
            Inst::LoopEnd => {
                let top = self
                    .loop_stack
                    .last_mut()
                    .expect("LoopEnd without LoopStart (validated programs cannot reach this)");
                top.1 -= 1;
                if top.1 > 0 {
                    next_pc = top.0 + 1;
                } else {
                    self.loop_stack.pop();
                }
            }
            Inst::Pause => {}
            Inst::CmpNe { dst, a, b } => {
                let v = (self.regs.int(a) != self.regs.int(b)) as u64;
                self.regs.set_int(dst, v);
            }
            Inst::Halt => {
                self.halted = true;
                next_pc = self.pc;
            }
        }
        self.pc = next_pc;
    }

    /// Vector execution with per-lane fault-hook retirement.
    #[allow(clippy::too_many_arguments)]
    fn exec_vector<H: FaultHook + ?Sized>(
        &mut self,
        op: VOpKind,
        lane: LaneType,
        a: u8,
        b: u8,
        c: u8,
        class: InstClass,
        hook: &mut H,
        events: &mut Vec<CorruptionEvent>,
    ) -> [u64; 4] {
        let va = self.regs.vec(a);
        let vb = self.regs.vec(b);
        let vc = self.regs.vec(c);
        match lane {
            LaneType::F32x8 => {
                let (xa, xb, xc) = (vec_as_f32(&va), vec_as_f32(&vb), vec_as_f32(&vc));
                let mut out = [0f32; 8];
                for i in 0..8 {
                    let r = match op {
                        VOpKind::Add => xa[i] + xb[i],
                        VOpKind::Mul => xa[i] * xb[i],
                        VOpKind::Fma => xa[i].mul_add(xb[i], xc[i]),
                        VOpKind::Xor => f32::from_bits(xa[i].to_bits() ^ xb[i].to_bits()),
                    };
                    let bits = self.retire(class, DataType::F32, r.to_bits() as u128, hook, events);
                    out[i] = f32::from_bits(bits as u32);
                }
                f32_as_vec(&out)
            }
            LaneType::F64x4 => {
                let (xa, xb, xc) = (vec_as_f64(&va), vec_as_f64(&vb), vec_as_f64(&vc));
                let mut out = [0f64; 4];
                for i in 0..4 {
                    let r = match op {
                        VOpKind::Add => xa[i] + xb[i],
                        VOpKind::Mul => xa[i] * xb[i],
                        VOpKind::Fma => xa[i].mul_add(xb[i], xc[i]),
                        VOpKind::Xor => f64::from_bits(xa[i].to_bits() ^ xb[i].to_bits()),
                    };
                    let bits = self.retire(class, DataType::F64, r.to_bits() as u128, hook, events);
                    out[i] = f64::from_bits(bits as u64);
                }
                f64_as_vec(&out)
            }
            LaneType::I32x8 => {
                let (xa, xb, xc) = (vec_as_i32(&va), vec_as_i32(&vb), vec_as_i32(&vc));
                let mut out = [0i32; 8];
                for i in 0..8 {
                    let r = match op {
                        VOpKind::Add => xa[i].wrapping_add(xb[i]),
                        VOpKind::Mul => xa[i].wrapping_mul(xb[i]),
                        VOpKind::Fma => xa[i].wrapping_mul(xb[i]).wrapping_add(xc[i]),
                        VOpKind::Xor => xa[i] ^ xb[i],
                    };
                    let bits = self.retire(class, DataType::I32, r as u32 as u128, hook, events);
                    out[i] = bits as u32 as i32;
                }
                i32_as_vec(&out)
            }
        }
    }
}

/// One CRC-32 (IEEE, reflected) accumulation step over 8 data bytes.
pub fn crc32_step(mut crc: u32, data: u64) -> u32 {
    const POLY: u32 = 0xedb8_8320;
    for byte in data.to_le_bytes() {
        crc ^= byte as u32;
        for _ in 0..8 {
            let lsb = crc & 1;
            crc >>= 1;
            if lsb == 1 {
                crc ^= POLY;
            }
        }
    }
    crc
}

/// One 64-bit avalanche mixing step (xx-hash style).
pub fn hash_mix(acc: u64, data: u64) -> u64 {
    const P1: u64 = 0x9e37_79b1_85eb_ca87;
    const P2: u64 = 0xc2b2_ae3d_27d4_eb4f;
    let mut h = acc.wrapping_add(data.wrapping_mul(P1));
    h = h.rotate_left(31).wrapping_mul(P2);
    h ^ (h >> 29)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hooks::NoFaults;
    use crate::program::ProgramBuilder;

    fn run_one(prog: &Program) -> (Core, MemSystem) {
        let mut core = Core::new(0);
        let mut mem = MemSystem::new(1, 1 << 16);
        let mut hook = NoFaults;
        let mut usage = UsageCounters::new(1);
        let mut events = Vec::new();
        let mut steps = 0;
        while !core.halted() {
            core.step(prog, &mut mem, &mut hook, &mut usage, &mut events);
            steps += 1;
            assert!(steps < 1_000_000, "runaway program");
        }
        (core, mem)
    }

    #[test]
    fn int_arithmetic() {
        let mut b = ProgramBuilder::new();
        b.mov_imm(0, 20);
        b.mov_imm(1, 22);
        b.int_op(IntOpKind::Add, DataType::I32, 2, 0, 1);
        b.int_op(IntOpKind::Mul, DataType::I32, 3, 2, 1);
        let (core, _) = run_one(&b.build());
        assert_eq!(core.regs.int(2), 42);
        assert_eq!(core.regs.int(3), 42 * 22);
    }

    #[test]
    fn int_width_masking() {
        let mut b = ProgramBuilder::new();
        b.mov_imm(0, 0xffff);
        b.mov_imm(1, 1);
        b.int_op(IntOpKind::Add, DataType::I16, 2, 0, 1);
        let (core, _) = run_one(&b.build());
        assert_eq!(core.regs.int(2), 0, "i16 wraps at 16 bits");
    }

    #[test]
    fn int_div_by_zero_is_zero() {
        let mut b = ProgramBuilder::new();
        b.mov_imm(0, 10);
        b.mov_imm(1, 0);
        b.int_op(IntOpKind::Div, DataType::U32, 2, 0, 1);
        let (core, _) = run_one(&b.build());
        assert_eq!(core.regs.int(2), 0);
    }

    #[test]
    fn float_ops() {
        let mut b = ProgramBuilder::new();
        b.fmov_imm(0, 1.5);
        b.fmov_imm(1, 2.0);
        b.fop(FOpKind::Mul, Precision::F64, 2, 0, 1);
        b.ffma(Precision::F64, 3, 0, 1, 2);
        let (core, _) = run_one(&b.build());
        assert_eq!(core.regs.float(2), 3.0);
        assert_eq!(core.regs.float(3), 1.5f64.mul_add(2.0, 3.0));
    }

    #[test]
    fn f32_precision_rounds() {
        let mut b = ProgramBuilder::new();
        b.fmov_imm(0, 0.1);
        b.fmov_imm(1, 0.2);
        b.fop(FOpKind::Add, Precision::F32, 2, 0, 1);
        let (core, _) = run_one(&b.build());
        assert_eq!(core.regs.float(2), (0.1f32 + 0.2f32) as f64);
    }

    #[test]
    fn x87_pipeline() {
        let mut b = ProgramBuilder::new();
        b.fmov_imm(0, 1.0);
        b.push(Inst::XFromF { dst: 0, src: 0 });
        b.push(Inst::XAtan { dst: 1, a: 0 });
        b.push(Inst::XToF { dst: 2, src: 1 });
        let (core, _) = run_one(&b.build());
        assert!((core.regs.float(2) - std::f64::consts::FRAC_PI_4).abs() < 1e-15);
    }

    #[test]
    fn vector_fma_f32() {
        // Lane data is seeded directly into memory; the program loads the
        // blocks, fuses them, and stores the result.
        let prog = {
            let mut b = ProgramBuilder::new();
            b.mov_imm(0, 0); // base address 0: a
            b.mov_imm(1, 32); // base address 32: b
            b.mov_imm(2, 64); // base address 64: c
            b.load_v(0, 0, 0);
            b.load_v(1, 1, 0);
            b.load_v(2, 2, 0);
            b.vop(VOpKind::Fma, LaneType::F32x8, 3, 0, 1, 2);
            b.mov_imm(3, 96);
            b.store_v(3, 3, 0);
            b.build()
        };
        let mut core = Core::new(0);
        let mut mem = MemSystem::new(1, 4096);
        let a: Vec<f32> = (0..8).map(|i| i as f32).collect();
        let bb: Vec<f32> = (0..8).map(|i| (i * 2) as f32).collect();
        let cc: Vec<f32> = (0..8).map(|i| 0.5 + i as f32).collect();
        for i in 0..4 {
            let pack = |s: &[f32], i: usize| {
                s[2 * i].to_bits() as u64 | ((s[2 * i + 1].to_bits() as u64) << 32)
            };
            mem.raw_write_u64(i as u64 * 8, pack(&a, i));
            mem.raw_write_u64(32 + i as u64 * 8, pack(&bb, i));
            mem.raw_write_u64(64 + i as u64 * 8, pack(&cc, i));
        }
        let mut hook = NoFaults;
        let mut usage = UsageCounters::new(1);
        let mut events = Vec::new();
        while !core.halted() {
            core.step(&prog, &mut mem, &mut hook, &mut usage, &mut events);
        }
        mem.flush_all();
        for i in 0..8usize {
            let word = mem.raw_read_u64(96 + (i / 2) as u64 * 8);
            let bits = ((word >> ((i % 2) * 32)) & 0xffff_ffff) as u32;
            let got = f32::from_bits(bits);
            let want = (i as f32).mul_add((i * 2) as f32, 0.5 + i as f32);
            assert_eq!(got, want, "lane {i}");
        }
    }

    #[test]
    fn loops_nest() {
        let mut b = ProgramBuilder::new();
        b.mov_imm(0, 0);
        b.mov_imm(1, 1);
        b.loop_start(3);
        b.loop_start(4);
        b.int_op(IntOpKind::Add, DataType::Bin64, 0, 0, 1);
        b.loop_end();
        b.loop_end();
        let (core, _) = run_one(&b.build());
        assert_eq!(core.regs.int(0), 12);
    }

    #[test]
    fn zero_iteration_loop_skips_body() {
        let mut b = ProgramBuilder::new();
        b.mov_imm(0, 7);
        b.loop_start(0);
        b.mov_imm(0, 99);
        b.loop_end();
        let (core, _) = run_one(&b.build());
        assert_eq!(core.regs.int(0), 7);
    }

    #[test]
    fn memory_roundtrip() {
        let mut b = ProgramBuilder::new();
        b.mov_imm(0, 512);
        b.mov_imm(1, 0xabcd);
        b.store(1, 0, 8);
        b.load(2, 0, 8);
        let (core, _) = run_one(&b.build());
        assert_eq!(core.regs.int(2), 0xabcd);
    }

    #[test]
    fn crc_and_hash_steps() {
        let mut b = ProgramBuilder::new();
        b.mov_imm(0, 0xffff_ffff);
        b.mov_imm(1, 0x0123_4567_89ab_cdef);
        b.push(Inst::Crc32Step {
            dst: 2,
            acc: 0,
            data: 1,
        });
        b.push(Inst::HashMix {
            dst: 3,
            acc: 0,
            data: 1,
        });
        let (core, _) = run_one(&b.build());
        assert_eq!(
            core.regs.int(2),
            crc32_step(0xffff_ffff, 0x0123_4567_89ab_cdef) as u64
        );
        assert_eq!(
            core.regs.int(3),
            hash_mix(0xffff_ffff, 0x0123_4567_89ab_cdef)
        );
    }

    #[test]
    fn crc32_known_vector() {
        // CRC-32 of "123456789" == 0xCBF43926 (classic check value).
        let mut crc = 0xffff_ffffu32;
        let data = b"123456789";
        // Process one byte at a time by placing it in the low byte and
        // checking against a manual bytewise implementation.
        for &byte in data {
            crc ^= byte as u32;
            for _ in 0..8 {
                let lsb = crc & 1;
                crc >>= 1;
                if lsb == 1 {
                    crc ^= 0xedb8_8320;
                }
            }
        }
        assert_eq!(crc ^ 0xffff_ffff, 0xcbf4_3926);
    }

    #[test]
    fn cas_instruction() {
        let mut b = ProgramBuilder::new();
        b.mov_imm(0, 128); // address
        b.mov_imm(1, 0); // expected
        b.mov_imm(2, 77); // new
        b.push(Inst::Cas {
            dst: 3,
            addr: 0,
            expected: 1,
            new: 2,
        });
        b.load(4, 0, 0);
        let (core, _) = run_one(&b.build());
        assert_eq!(core.regs.int(3), 1);
        assert_eq!(core.regs.int(4), 77);
    }

    #[test]
    fn tx_commit_publishes() {
        let mut b = ProgramBuilder::new();
        b.mov_imm(0, 256);
        b.mov_imm(1, 5);
        b.push(Inst::TxBegin);
        b.store(1, 0, 0);
        b.push(Inst::TxCommit { dst: 2 });
        b.load(3, 0, 0);
        let (core, _) = run_one(&b.build());
        assert_eq!(core.regs.int(2), 1, "commit succeeds");
        assert_eq!(core.regs.int(3), 5);
    }

    #[test]
    fn halt_is_sticky() {
        let mut b = ProgramBuilder::new();
        b.mov_imm(0, 1);
        let prog = b.build();
        let mut core = Core::new(0);
        let mut mem = MemSystem::new(1, 4096);
        let mut hook = NoFaults;
        let mut usage = UsageCounters::new(1);
        let mut events = Vec::new();
        for _ in 0..10 {
            core.step(&prog, &mut mem, &mut hook, &mut usage, &mut events);
        }
        assert!(core.halted());
        let cost = core.step(&prog, &mut mem, &mut hook, &mut usage, &mut events);
        assert_eq!(cost.cycles, 0);
    }

    #[test]
    fn usage_counters_track_classes() {
        let mut b = ProgramBuilder::new();
        b.fmov_imm(0, 1.0);
        b.fop(FOpKind::Add, Precision::F64, 1, 0, 0);
        b.fop(FOpKind::Add, Precision::F64, 1, 1, 0);
        let prog = b.build();
        let mut core = Core::new(0);
        let mut mem = MemSystem::new(1, 4096);
        let mut hook = NoFaults;
        let mut usage = UsageCounters::new(1);
        let mut events = Vec::new();
        while !core.halted() {
            core.step(&prog, &mut mem, &mut hook, &mut usage, &mut events);
        }
        assert_eq!(usage.count(0, InstClass::FloatAdd), 2);
        assert!(usage.count(0, InstClass::Control) >= 2);
    }

    #[test]
    fn step_decoded_matches_step() {
        let mut b = ProgramBuilder::new();
        b.mov_imm(0, 3);
        b.mov_imm(1, 5);
        b.loop_start(100);
        b.int_op(IntOpKind::Add, DataType::I32, 2, 0, 1);
        b.int_op(IntOpKind::Xor, DataType::I32, 0, 0, 2);
        b.loop_end();
        let prog = b.build();
        let decoded = DecodedProgram::decode(&prog);

        let (ref_core, _) = run_one(&prog);

        let mut core = Core::new(0);
        let mut mem = MemSystem::new(1, 1 << 16);
        let mut hook = NoFaults;
        let mut usage = UsageCounters::new(1);
        let mut events = Vec::new();
        let mut total = StepCost::ZERO;
        while !core.halted() {
            let c = core.step_decoded(&decoded, &mut mem, &mut hook, &mut usage, &mut events);
            total.cycles += c.cycles;
            total.energy += c.energy;
        }
        assert_eq!(core.regs.int(0), ref_core.regs.int(0));
        assert_eq!(core.regs.int(2), ref_core.regs.int(2));
        assert!(total.cycles > 0);
    }
}

//! Hardware transactional memory.
//!
//! A transaction buffers writes and records the values it has read; at
//! commit the read set is validated against the current memory state, and
//! a conflict aborts the transaction. Processor CNST2's defect —
//! "instructions responsible for managing the transactional region" — is
//! modelled by a fault hook that forces a conflicted transaction to commit
//! anyway, breaking isolation.

use crate::hooks::FaultHook;
use crate::mem::MemSystem;
use std::collections::BTreeMap;

/// Per-core transactional state.
#[derive(Debug, Clone, Default)]
pub struct TxState {
    active: bool,
    /// Values observed by transactional reads (first read wins — later
    /// validation compares against this snapshot).
    read_set: BTreeMap<u64, u64>,
    /// Buffered transactional writes.
    write_set: BTreeMap<u64, u64>,
    /// Successful commits on this core.
    pub commits: u64,
    /// Aborted transactions on this core.
    pub aborts: u64,
}

impl TxState {
    /// Fresh, inactive state.
    pub fn new() -> Self {
        TxState::default()
    }

    /// Whether a transaction is active.
    pub fn active(&self) -> bool {
        self.active
    }

    /// Begins a transaction. Beginning while active aborts the previous
    /// transaction (flat nesting, like real HTM on abort paths).
    pub fn begin(&mut self) {
        self.active = true;
        self.read_set.clear();
        self.write_set.clear();
    }

    /// Transactional read: own writes first, then memory (recording the
    /// observed value for validation).
    pub fn read<H: FaultHook + ?Sized>(
        &mut self,
        core: usize,
        addr: u64,
        mem: &mut MemSystem,
        hook: &mut H,
    ) -> u64 {
        if let Some(&v) = self.write_set.get(&addr) {
            return v;
        }
        let v = mem.read_u64(core, addr, hook);
        self.read_set.entry(addr).or_insert(v);
        v
    }

    /// Transactional write: buffered until commit.
    pub fn write(&mut self, addr: u64, val: u64) {
        self.write_set.insert(addr, val);
    }

    /// Attempts to commit. Returns true on commit, false on abort.
    ///
    /// Validation re-reads every read-set address; any changed value is a
    /// conflict. On conflict the hook may force the commit (the CNST2
    /// defect), publishing writes despite lost isolation.
    pub fn commit<H: FaultHook + ?Sized>(
        &mut self,
        core: usize,
        mem: &mut MemSystem,
        hook: &mut H,
    ) -> bool {
        if !self.active {
            return false;
        }
        self.active = false;
        let mut conflict = false;
        for (&addr, &seen) in &self.read_set {
            if mem.read_u64(core, addr, hook) != seen {
                conflict = true;
                break;
            }
        }
        if conflict && !hook.tx_commit_despite_conflict(core) {
            self.aborts += 1;
            self.read_set.clear();
            self.write_set.clear();
            return false;
        }
        for (&addr, &val) in &self.write_set {
            mem.write_u64(core, addr, val, hook);
        }
        self.commits += 1;
        self.read_set.clear();
        self.write_set.clear();
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hooks::NoFaults;

    struct ForceCommit;

    impl FaultHook for ForceCommit {
        fn tx_commit_despite_conflict(&mut self, _core: usize) -> bool {
            true
        }
    }

    #[test]
    fn read_own_write() {
        let mut mem = MemSystem::new(1, 4096);
        let mut h = NoFaults;
        let mut tx = TxState::new();
        tx.begin();
        tx.write(64, 5);
        assert_eq!(tx.read(0, 64, &mut mem, &mut h), 5);
    }

    #[test]
    fn commit_publishes_writes() {
        let mut mem = MemSystem::new(1, 4096);
        let mut h = NoFaults;
        let mut tx = TxState::new();
        tx.begin();
        tx.write(0, 11);
        tx.write(8, 22);
        assert!(tx.commit(0, &mut mem, &mut h));
        assert_eq!(mem.read_u64(0, 0, &mut h), 11);
        assert_eq!(mem.read_u64(0, 8, &mut h), 22);
        assert!(!tx.active());
    }

    #[test]
    fn conflicting_commit_aborts() {
        let mut mem = MemSystem::new(2, 4096);
        let mut h = NoFaults;
        let mut tx = TxState::new();
        tx.begin();
        let v = tx.read(0, 0, &mut mem, &mut h);
        assert_eq!(v, 0);
        // Core 1 races a write to the read-set address.
        mem.write_u64(1, 0, 99, &mut h);
        tx.write(8, 1);
        assert!(!tx.commit(0, &mut mem, &mut h), "conflict must abort");
        assert_eq!(mem.read_u64(0, 8, &mut h), 0, "aborted writes invisible");
    }

    #[test]
    fn defective_htm_commits_despite_conflict() {
        let mut mem = MemSystem::new(2, 4096);
        let mut h = ForceCommit;
        let mut tx = TxState::new();
        tx.begin();
        let _ = tx.read(0, 0, &mut mem, &mut h);
        mem.write_u64(1, 0, 99, &mut h);
        tx.write(8, 1);
        assert!(tx.commit(0, &mut mem, &mut h), "defect forces the commit");
        assert_eq!(mem.read_u64(0, 8, &mut h), 1, "isolation violated");
    }

    #[test]
    fn commit_without_begin_fails() {
        let mut mem = MemSystem::new(1, 4096);
        let mut h = NoFaults;
        let mut tx = TxState::new();
        assert!(!tx.commit(0, &mut mem, &mut h));
    }

    #[test]
    fn begin_resets_previous_state() {
        let mut mem = MemSystem::new(1, 4096);
        let mut h = NoFaults;
        let mut tx = TxState::new();
        tx.begin();
        tx.write(0, 1);
        tx.begin(); // implicit abort of the first transaction
        assert!(tx.commit(0, &mut mem, &mut h));
        assert_eq!(mem.read_u64(0, 0, &mut h), 0, "first tx write discarded");
    }
}

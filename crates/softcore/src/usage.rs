//! Instruction-usage counters.
//!
//! Section 4.1 of the paper: "we instrument the toolchain to catch the
//! number of times each type of instruction is executed during each
//! testcase via Pin. This method helps us narrow down the scope of
//! suspected instructions." These counters are the simulator's equivalent,
//! and also drive the usage-stress triggering condition of Observation 10.

use crate::inst::InstClass;
use serde::{Deserialize, Serialize};

/// Per-core, per-class execution counts.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct UsageCounters {
    counts: Vec<[u64; InstClass::ALL.len()]>,
}

impl UsageCounters {
    /// Counters for `cores` cores, all zero.
    pub fn new(cores: usize) -> Self {
        UsageCounters {
            counts: vec![[0; InstClass::ALL.len()]; cores],
        }
    }

    /// Records one execution of `class` on `core`.
    #[inline]
    pub fn record(&mut self, core: usize, class: InstClass) {
        self.counts[core][class as usize] += 1;
    }

    /// Executions of `class` on `core`.
    #[inline]
    pub fn count(&self, core: usize, class: InstClass) -> u64 {
        self.counts[core][class as usize]
    }

    /// Total executions of `class` across all cores.
    pub fn total(&self, class: InstClass) -> u64 {
        self.counts.iter().map(|c| c[class as usize]).sum()
    }

    /// Total executions of all classes on `core`.
    pub fn core_total(&self, core: usize) -> u64 {
        self.counts[core].iter().sum()
    }

    /// The classes executed at least once, with totals, descending.
    pub fn profile(&self) -> Vec<(InstClass, u64)> {
        let mut v: Vec<(InstClass, u64)> = InstClass::ALL
            .into_iter()
            .map(|c| (c, self.total(c)))
            .filter(|&(_, n)| n > 0)
            .collect();
        v.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
        v
    }

    /// Resets all counters.
    pub fn reset(&mut self) {
        for c in &mut self.counts {
            *c = [0; InstClass::ALL.len()];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_query() {
        let mut u = UsageCounters::new(2);
        u.record(0, InstClass::IntArith);
        u.record(0, InstClass::IntArith);
        u.record(1, InstClass::FloatMul);
        assert_eq!(u.count(0, InstClass::IntArith), 2);
        assert_eq!(u.count(1, InstClass::IntArith), 0);
        assert_eq!(u.total(InstClass::IntArith), 2);
        assert_eq!(u.core_total(1), 1);
    }

    #[test]
    fn profile_sorted_and_sparse() {
        let mut u = UsageCounters::new(1);
        for _ in 0..5 {
            u.record(0, InstClass::VecFma);
        }
        u.record(0, InstClass::Load);
        let p = u.profile();
        assert_eq!(p[0], (InstClass::VecFma, 5));
        assert_eq!(p[1], (InstClass::Load, 1));
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn reset_zeroes() {
        let mut u = UsageCounters::new(1);
        u.record(0, InstClass::Crc);
        u.reset();
        assert_eq!(u.core_total(0), 0);
    }
}

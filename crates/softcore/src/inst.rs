//! The instruction set and its classification.
//!
//! Every instruction carries enough typing information to (1) execute, and
//! (2) classify the result for fault matching: an [`InstClass`] that maps
//! onto the paper's five vulnerable features, and a result [`DataType`]
//! used for bit-level SDC records.

use sdc_model::{DataType, Feature};
use serde::{Deserialize, Serialize};

/// Integer ALU operation kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IntOpKind {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Unsigned division; division by zero yields zero (no trap — a trap
    /// would be a *detected* error, not a silent one).
    Div,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Logical shift left (by `b mod width`).
    Shl,
    /// Logical shift right (by `b mod width`).
    Shr,
}

impl IntOpKind {
    /// The instruction class this operation belongs to.
    pub fn class(self) -> InstClass {
        match self {
            IntOpKind::Add | IntOpKind::Sub => InstClass::IntArith,
            IntOpKind::Mul | IntOpKind::Div => InstClass::IntMulDiv,
            IntOpKind::And | IntOpKind::Or | IntOpKind::Xor => InstClass::IntLogic,
            IntOpKind::Shl | IntOpKind::Shr => InstClass::IntShift,
        }
    }
}

/// Scalar floating-point precision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Precision {
    /// IEEE-754 single precision.
    F32,
    /// IEEE-754 double precision.
    F64,
}

impl Precision {
    /// The result datatype of operations at this precision.
    pub fn datatype(self) -> DataType {
        match self {
            Precision::F32 => DataType::F32,
            Precision::F64 => DataType::F64,
        }
    }
}

/// Scalar floating-point operation kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FOpKind {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
}

impl FOpKind {
    /// The instruction class this operation belongs to.
    pub fn class(self) -> InstClass {
        match self {
            FOpKind::Add | FOpKind::Sub => InstClass::FloatAdd,
            FOpKind::Mul => InstClass::FloatMul,
            FOpKind::Div => InstClass::FloatDiv,
        }
    }
}

/// x87 extended-precision operation kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum XOpKind {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
}

/// Vector lane interpretation of a 256-bit register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LaneType {
    /// Eight `f32` lanes.
    F32x8,
    /// Four `f64` lanes.
    F64x4,
    /// Eight `i32` lanes.
    I32x8,
}

impl LaneType {
    /// Number of lanes.
    pub fn lanes(self) -> usize {
        match self {
            LaneType::F32x8 | LaneType::I32x8 => 8,
            LaneType::F64x4 => 4,
        }
    }

    /// The per-lane datatype.
    pub fn datatype(self) -> DataType {
        match self {
            LaneType::F32x8 => DataType::F32,
            LaneType::F64x4 => DataType::F64,
            LaneType::I32x8 => DataType::I32,
        }
    }
}

/// Vector operation kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VOpKind {
    /// Lane-wise addition.
    Add,
    /// Lane-wise multiplication.
    Mul,
    /// Lane-wise fused multiply-add (`dst = a*b + c`); the SIMD1 case study
    /// reports "a vector instruction that performs multiplication and
    /// addition operations simultaneously gives wrong results".
    Fma,
    /// Lane-wise XOR (integer lanes only in practice, but defined for all).
    Xor,
}

impl VOpKind {
    /// The instruction class this operation belongs to.
    pub fn class(self, lane: LaneType) -> InstClass {
        match (self, lane) {
            (VOpKind::Fma, _) => InstClass::VecFma,
            (VOpKind::Xor, _) => InstClass::VecLogic,
            (_, LaneType::I32x8) => InstClass::VecIntArith,
            _ => InstClass::VecFloatArith,
        }
    }
}

/// One instruction of the softcore ISA.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Inst {
    /// Load an immediate into an integer register.
    MovImm {
        /// Destination integer register.
        dst: u8,
        /// Immediate value.
        imm: u64,
    },
    /// Copy one integer register to another.
    Mov {
        /// Destination integer register.
        dst: u8,
        /// Source integer register.
        src: u8,
    },
    /// Add an immediate to an integer register (address arithmetic).
    AddImm {
        /// Destination integer register.
        dst: u8,
        /// Source integer register.
        src: u8,
        /// Immediate addend.
        imm: u64,
    },
    /// Integer ALU operation at a given datatype width.
    IntOp {
        /// Operation kind.
        op: IntOpKind,
        /// Result datatype; operands and result are masked to its width.
        dt: DataType,
        /// Destination integer register.
        dst: u8,
        /// First operand register.
        a: u8,
        /// Second operand register.
        b: u8,
    },
    /// Load a float immediate into a float register.
    FMovImm {
        /// Destination float register.
        dst: u8,
        /// Immediate value.
        imm: f64,
    },
    /// Scalar float operation.
    FOp {
        /// Operation kind.
        op: FOpKind,
        /// Precision (f32 ops round through `f32`).
        prec: Precision,
        /// Destination float register.
        dst: u8,
        /// First operand register.
        a: u8,
        /// Second operand register.
        b: u8,
    },
    /// Scalar fused multiply-add `dst = a*b + c`.
    FFma {
        /// Precision.
        prec: Precision,
        /// Destination float register.
        dst: u8,
        /// Multiplicand.
        a: u8,
        /// Multiplier.
        b: u8,
        /// Addend.
        c: u8,
    },
    /// Scalar arctangent (the complex math function of FPU1/FPU2).
    FAtan {
        /// Precision.
        prec: Precision,
        /// Destination float register.
        dst: u8,
        /// Operand register.
        a: u8,
    },
    /// Move a float register into an x87 extended register.
    XFromF {
        /// Destination x87 register.
        dst: u8,
        /// Source float register.
        src: u8,
    },
    /// Round an x87 extended register into a float register.
    XToF {
        /// Destination float register.
        dst: u8,
        /// Source x87 register.
        src: u8,
    },
    /// x87 extended-precision arithmetic.
    XOp {
        /// Operation kind.
        op: XOpKind,
        /// Destination x87 register.
        dst: u8,
        /// First operand register.
        a: u8,
        /// Second operand register.
        b: u8,
    },
    /// x87 extended-precision arctangent.
    XAtan {
        /// Destination x87 register.
        dst: u8,
        /// Operand register.
        a: u8,
    },
    /// Vector operation over 256-bit registers.
    VOp {
        /// Operation kind.
        op: VOpKind,
        /// Lane interpretation.
        lane: LaneType,
        /// Destination vector register.
        dst: u8,
        /// First operand register.
        a: u8,
        /// Second operand register.
        b: u8,
        /// Third operand register (FMA addend; ignored otherwise).
        c: u8,
    },
    /// CRC32 accumulation step over the 8 bytes of `data`.
    Crc32Step {
        /// Destination integer register (new CRC, datatype `Bin32`).
        dst: u8,
        /// Accumulator register (current CRC).
        acc: u8,
        /// Data register.
        data: u8,
    },
    /// 64-bit hash mixing step (xx-style avalanche).
    HashMix {
        /// Destination integer register (datatype `Bin64`).
        dst: u8,
        /// Accumulator register.
        acc: u8,
        /// Data register.
        data: u8,
    },
    /// Load a 64-bit word through the cache hierarchy.
    Load {
        /// Destination integer register.
        dst: u8,
        /// Address base register.
        addr: u8,
        /// Byte offset (must keep the access 8-byte aligned).
        offset: u64,
    },
    /// Store a 64-bit word through the cache hierarchy.
    Store {
        /// Source integer register.
        src: u8,
        /// Address base register.
        addr: u8,
        /// Byte offset.
        offset: u64,
    },
    /// Load a float register (64-bit pattern) from memory.
    LoadF {
        /// Destination float register.
        dst: u8,
        /// Address base register.
        addr: u8,
        /// Byte offset.
        offset: u64,
    },
    /// Store a float register to memory.
    StoreF {
        /// Source float register.
        src: u8,
        /// Address base register.
        addr: u8,
        /// Byte offset.
        offset: u64,
    },
    /// Load a 256-bit vector register from memory (4 aligned words).
    LoadV {
        /// Destination vector register.
        dst: u8,
        /// Address base register.
        addr: u8,
        /// Byte offset.
        offset: u64,
    },
    /// Store a 256-bit vector register to memory.
    StoreV {
        /// Source vector register.
        src: u8,
        /// Address base register.
        addr: u8,
        /// Byte offset.
        offset: u64,
    },
    /// Store an x87 register's 80-bit encoding to memory (16 bytes).
    StoreX {
        /// Source x87 register.
        src: u8,
        /// Address base register.
        addr: u8,
        /// Byte offset.
        offset: u64,
    },
    /// Load an x87 register from its 80-bit encoding in memory.
    LoadX {
        /// Destination x87 register.
        dst: u8,
        /// Address base register.
        addr: u8,
        /// Byte offset.
        offset: u64,
    },
    /// Atomic compare-and-swap of a 64-bit word; `dst` receives 1 on
    /// success, 0 on failure.
    Cas {
        /// Success flag destination.
        dst: u8,
        /// Address base register.
        addr: u8,
        /// Register holding the expected value.
        expected: u8,
        /// Register holding the replacement value.
        new: u8,
    },
    /// Spin until the word at `addr` can be CAS'd from 0 to 1.
    LockAcquire {
        /// Address base register.
        addr: u8,
    },
    /// Store 0 to the lock word at `addr`.
    LockRelease {
        /// Address base register.
        addr: u8,
    },
    /// Begin a hardware transaction.
    TxBegin,
    /// Commit the current transaction; `dst` receives 1 on commit, 0 on
    /// abort.
    TxCommit {
        /// Success flag destination.
        dst: u8,
    },
    /// Begin a counted loop body repeated `count` times (nestable).
    LoopStart {
        /// Iteration count.
        count: u32,
    },
    /// End the innermost loop body.
    LoopEnd,
    /// A long-latency, low-power no-op standing in for surrounding
    /// application code (page walks, pointer chasing, syscalls): burns 64
    /// cycles at low energy without touching architectural state.
    Pause,
    /// `dst ← (a != b)` — branch-free comparison used by testcase
    /// checkers (class `Control`, so a defective ALU cannot corrupt the
    /// check itself).
    CmpNe {
        /// Destination integer register (receives 0 or 1).
        dst: u8,
        /// First operand register.
        a: u8,
        /// Second operand register.
        b: u8,
    },
    /// Stop this core.
    Halt,
}

/// Coarse instruction classes used for fault matching, usage counting, and
/// the cycle/energy model. Each class maps to one of the paper's five
/// vulnerable features (or to `None` for control instructions that cannot
/// silently corrupt data).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum InstClass {
    /// Integer add/sub.
    IntArith,
    /// Integer mul/div.
    IntMulDiv,
    /// Integer and/or/xor.
    IntLogic,
    /// Integer shifts.
    IntShift,
    /// Scalar float add/sub.
    FloatAdd,
    /// Scalar float multiply.
    FloatMul,
    /// Scalar float divide.
    FloatDiv,
    /// Scalar fused multiply-add.
    FloatFma,
    /// Scalar arctangent.
    FloatAtan,
    /// x87 extended arithmetic.
    X87Arith,
    /// x87 extended arctangent.
    X87Atan,
    /// Vector integer arithmetic.
    VecIntArith,
    /// Vector float arithmetic.
    VecFloatArith,
    /// Vector fused multiply-add.
    VecFma,
    /// Vector logic.
    VecLogic,
    /// CRC accumulation.
    Crc,
    /// Hash mixing.
    Hash,
    /// Cached loads.
    Load,
    /// Cached stores.
    Store,
    /// Atomic compare-and-swap.
    Cas,
    /// Lock acquire/release.
    Lock,
    /// Transaction begin/commit.
    Tx,
    /// Register moves, loop control, halt.
    Control,
    /// Long-latency low-power filler (surrounding application code).
    Pause,
}

/// Number of distinct `(InstClass, DataType)` retire sites — the size of
/// flat per-site tables indexed by [`InstClass::site_index`].
pub const NUM_SITES: usize = InstClass::ALL.len() * DataType::ALL.len();

impl InstClass {
    /// Dense class-major index of the `(self, dt)` retire site into a
    /// [`NUM_SITES`]-entry table. Ascending index order equals ascending
    /// `(InstClass, DataType)` `Ord` order, so iterating a flat table is
    /// already sorted by site.
    #[inline]
    pub fn site_index(self, dt: DataType) -> usize {
        self as usize * DataType::ALL.len() + dt as usize
    }

    /// All classes (for exhaustive usage tables).
    pub const ALL: [InstClass; 24] = [
        InstClass::IntArith,
        InstClass::IntMulDiv,
        InstClass::IntLogic,
        InstClass::IntShift,
        InstClass::FloatAdd,
        InstClass::FloatMul,
        InstClass::FloatDiv,
        InstClass::FloatFma,
        InstClass::FloatAtan,
        InstClass::X87Arith,
        InstClass::X87Atan,
        InstClass::VecIntArith,
        InstClass::VecFloatArith,
        InstClass::VecFma,
        InstClass::VecLogic,
        InstClass::Crc,
        InstClass::Hash,
        InstClass::Load,
        InstClass::Store,
        InstClass::Cas,
        InstClass::Lock,
        InstClass::Tx,
        InstClass::Control,
        InstClass::Pause,
    ];

    /// The vulnerable feature this class exercises, if any.
    pub fn feature(self) -> Option<Feature> {
        match self {
            InstClass::IntArith
            | InstClass::IntMulDiv
            | InstClass::IntLogic
            | InstClass::IntShift
            | InstClass::Crc
            | InstClass::Hash => Some(Feature::Alu),
            InstClass::FloatAdd
            | InstClass::FloatMul
            | InstClass::FloatDiv
            | InstClass::FloatFma
            | InstClass::FloatAtan
            | InstClass::X87Arith
            | InstClass::X87Atan => Some(Feature::Fpu),
            InstClass::VecIntArith
            | InstClass::VecFloatArith
            | InstClass::VecFma
            | InstClass::VecLogic => Some(Feature::VecUnit),
            InstClass::Load | InstClass::Store | InstClass::Cas | InstClass::Lock => {
                Some(Feature::Cache)
            }
            InstClass::Tx => Some(Feature::TrxMem),
            InstClass::Control | InstClass::Pause => None,
        }
    }

    /// Nominal execution latency in cycles (drives virtual time).
    #[inline]
    pub fn cycles(self) -> u64 {
        match self {
            InstClass::Control => 1,
            InstClass::Pause => 64,
            InstClass::IntArith | InstClass::IntLogic | InstClass::IntShift => 1,
            InstClass::IntMulDiv => 4,
            InstClass::FloatAdd | InstClass::FloatMul => 4,
            InstClass::FloatDiv => 14,
            InstClass::FloatFma => 5,
            InstClass::FloatAtan | InstClass::X87Atan => 60,
            InstClass::X87Arith => 6,
            InstClass::VecIntArith | InstClass::VecLogic => 2,
            InstClass::VecFloatArith => 4,
            InstClass::VecFma => 5,
            InstClass::Crc => 3,
            InstClass::Hash => 3,
            InstClass::Load | InstClass::Store => 4,
            InstClass::Cas | InstClass::Lock => 20,
            InstClass::Tx => 30,
        }
    }

    /// Nominal energy per execution, in arbitrary units.
    ///
    /// The thermal model consumes *energy per cycle* (a power proxy), so
    /// these values are chosen relative to [`InstClass::cycles`]: heavy
    /// functional units (vector FMA, arctangent microcode) burn the most
    /// per cycle, matching the observation that stressful testcases heat
    /// the core (Observation 10).
    #[inline]
    pub fn energy(self) -> f64 {
        match self {
            InstClass::Control => 0.2,
            InstClass::Pause => 9.6, // 0.15 per cycle: cooler than compute
            InstClass::IntArith | InstClass::IntLogic | InstClass::IntShift => 0.5,
            InstClass::IntMulDiv => 3.2,
            InstClass::FloatAdd | InstClass::FloatMul => 2.8,
            InstClass::FloatDiv => 11.0,
            InstClass::FloatFma => 4.5,
            InstClass::FloatAtan | InstClass::X87Atan => 60.0,
            InstClass::X87Arith => 6.0,
            InstClass::VecIntArith | InstClass::VecLogic => 2.2,
            InstClass::VecFloatArith => 4.4,
            InstClass::VecFma => 6.5,
            InstClass::Crc => 2.4,
            InstClass::Hash => 3.0,
            InstClass::Load | InstClass::Store => 2.0,
            InstClass::Cas | InstClass::Lock => 10.0,
            InstClass::Tx => 12.0,
        }
    }
}

impl Inst {
    /// The class of this instruction.
    pub fn class(self) -> InstClass {
        match self {
            Inst::MovImm { .. }
            | Inst::Mov { .. }
            | Inst::AddImm { .. }
            | Inst::FMovImm { .. }
            | Inst::XFromF { .. }
            | Inst::XToF { .. }
            | Inst::LoopStart { .. }
            | Inst::LoopEnd
            | Inst::CmpNe { .. }
            | Inst::Halt => InstClass::Control,
            Inst::Pause => InstClass::Pause,
            Inst::IntOp { op, .. } => op.class(),
            Inst::FOp { op, .. } => op.class(),
            Inst::FFma { .. } => InstClass::FloatFma,
            Inst::FAtan { .. } => InstClass::FloatAtan,
            Inst::XOp { .. } => InstClass::X87Arith,
            Inst::XAtan { .. } => InstClass::X87Atan,
            Inst::VOp { op, lane, .. } => op.class(lane),
            Inst::Crc32Step { .. } => InstClass::Crc,
            Inst::HashMix { .. } => InstClass::Hash,
            Inst::Load { .. } | Inst::LoadF { .. } | Inst::LoadV { .. } | Inst::LoadX { .. } => {
                InstClass::Load
            }
            Inst::Store { .. }
            | Inst::StoreF { .. }
            | Inst::StoreV { .. }
            | Inst::StoreX { .. } => InstClass::Store,
            Inst::Cas { .. } => InstClass::Cas,
            Inst::LockAcquire { .. } | Inst::LockRelease { .. } => InstClass::Lock,
            Inst::TxBegin | Inst::TxCommit { .. } => InstClass::Tx,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_feature_mapping_covers_all_five() {
        let mut feats = std::collections::HashSet::new();
        for c in InstClass::ALL {
            if let Some(f) = c.feature() {
                feats.insert(f);
            }
        }
        assert_eq!(feats.len(), 5);
    }

    #[test]
    fn control_has_no_feature() {
        assert_eq!(InstClass::Control.feature(), None);
        assert_eq!(Inst::Halt.class(), InstClass::Control);
        assert_eq!(Inst::LoopStart { count: 3 }.class(), InstClass::Control);
    }

    #[test]
    fn int_ops_classify() {
        assert_eq!(IntOpKind::Add.class(), InstClass::IntArith);
        assert_eq!(IntOpKind::Mul.class(), InstClass::IntMulDiv);
        assert_eq!(IntOpKind::Xor.class(), InstClass::IntLogic);
        assert_eq!(IntOpKind::Shl.class(), InstClass::IntShift);
    }

    #[test]
    fn vector_fma_class_is_fma_for_all_lanes() {
        for lane in [LaneType::F32x8, LaneType::F64x4, LaneType::I32x8] {
            assert_eq!(VOpKind::Fma.class(lane), InstClass::VecFma);
        }
        assert_eq!(VOpKind::Add.class(LaneType::I32x8), InstClass::VecIntArith);
        assert_eq!(
            VOpKind::Add.class(LaneType::F64x4),
            InstClass::VecFloatArith
        );
    }

    #[test]
    fn lanes_and_datatypes() {
        assert_eq!(LaneType::F32x8.lanes(), 8);
        assert_eq!(LaneType::F64x4.lanes(), 4);
        assert_eq!(LaneType::F32x8.datatype(), DataType::F32);
        assert_eq!(LaneType::I32x8.datatype(), DataType::I32);
    }

    #[test]
    fn cycles_and_energy_positive() {
        for c in InstClass::ALL {
            assert!(c.cycles() >= 1);
            assert!(c.energy() > 0.0);
        }
    }

    #[test]
    fn atan_is_expensive() {
        assert!(InstClass::X87Atan.cycles() > InstClass::X87Arith.cycles());
        assert!(InstClass::FloatAtan.energy() > InstClass::FloatAdd.energy());
    }
}

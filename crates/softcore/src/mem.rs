//! The shared-memory system: per-core L1 caches with snooping MESI.
//!
//! Cache coherency is one of the paper's five vulnerable features, and the
//! CNST1 case study ("a client thread packed data and its checksum into a
//! buffer … due to defective cache coherence, the daemon thread sometimes
//! got inconsistent data") motivates modelling coherence at the protocol
//! level: a fault hook may *drop* an invalidation message, leaving the
//! victim core with a stale shared line that it keeps reading.

use crate::hooks::FaultHook;

/// Bytes per cache line.
pub const LINE_BYTES: u64 = 64;
/// 64-bit words per cache line.
pub const LINE_WORDS: usize = 8;
/// Direct-mapped sets per L1 cache (16 KiB per core).
pub const L1_SETS: usize = 256;

/// MESI line states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LineState {
    Modified,
    Exclusive,
    Shared,
}

/// One resident cache line.
#[derive(Debug, Clone)]
struct CacheLine {
    /// Line-aligned byte address.
    tag: u64,
    state: LineState,
    data: [u64; LINE_WORDS],
}

/// A direct-mapped L1 cache.
#[derive(Debug, Clone)]
struct L1 {
    lines: Vec<Option<CacheLine>>,
}

impl L1 {
    fn new() -> Self {
        L1 {
            lines: vec![None; L1_SETS],
        }
    }

    fn set_of(tag: u64) -> usize {
        ((tag / LINE_BYTES) as usize) % L1_SETS
    }

    fn lookup(&self, tag: u64) -> Option<&CacheLine> {
        self.lines[Self::set_of(tag)]
            .as_ref()
            .filter(|l| l.tag == tag)
    }

    fn lookup_mut(&mut self, tag: u64) -> Option<&mut CacheLine> {
        self.lines[Self::set_of(tag)]
            .as_mut()
            .filter(|l| l.tag == tag)
    }
}

/// Counters describing memory-system behaviour during a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemStats {
    /// Cache hits.
    pub hits: u64,
    /// Cache misses (line fetches).
    pub misses: u64,
    /// Invalidations delivered to other cores.
    pub invalidations: u64,
    /// Invalidations *dropped* by the fault hook (coherence defect fired).
    pub dropped_invalidations: u64,
    /// Dirty lines written back to memory.
    pub writebacks: u64,
}

/// The shared memory plus all per-core caches.
#[derive(Debug)]
pub struct MemSystem {
    mem: Vec<u64>,
    caches: Vec<L1>,
    /// Behaviour counters.
    pub stats: MemStats,
}

impl MemSystem {
    /// Creates a memory of `bytes` (rounded up to a line) shared by
    /// `cores` caches.
    ///
    /// # Panics
    ///
    /// Panics if `cores == 0` or `bytes == 0`.
    pub fn new(cores: usize, bytes: u64) -> Self {
        assert!(cores > 0 && bytes > 0, "degenerate memory system");
        let words = bytes.div_ceil(LINE_BYTES) as usize * LINE_WORDS;
        MemSystem {
            mem: vec![0; words],
            caches: (0..cores).map(|_| L1::new()).collect(),
            stats: MemStats::default(),
        }
    }

    /// Total addressable bytes.
    pub fn size_bytes(&self) -> u64 {
        (self.mem.len() * 8) as u64
    }

    /// Number of cores (caches).
    pub fn cores(&self) -> usize {
        self.caches.len()
    }

    fn word_index(&self, addr: u64) -> usize {
        assert!(
            addr.is_multiple_of(8),
            "unaligned 64-bit access at {addr:#x}"
        );
        let idx = (addr / 8) as usize;
        assert!(idx < self.mem.len(), "address {addr:#x} out of bounds");
        idx
    }

    fn line_tag(addr: u64) -> u64 {
        assert!(
            addr.is_multiple_of(8),
            "unaligned 64-bit access at {addr:#x}"
        );
        addr & !(LINE_BYTES - 1)
    }

    /// Resets to the just-constructed state: zeroed memory, empty caches,
    /// zeroed stats. Geometry (size, core count) is unchanged.
    pub fn reset(&mut self) {
        self.mem.iter_mut().for_each(|w| *w = 0);
        for cache in &mut self.caches {
            *cache = L1::new();
        }
        self.stats = MemStats::default();
    }

    /// Reads a word through `core`'s cache.
    #[inline]
    pub fn read_u64<H: FaultHook + ?Sized>(&mut self, core: usize, addr: u64, hook: &mut H) -> u64 {
        let tag = Self::line_tag(addr);
        let word = (addr - tag) as usize / 8;
        if let Some(line) = self.caches[core].lookup(tag) {
            self.stats.hits += 1;
            return line.data[word];
        }
        self.stats.misses += 1;
        let data = self.fetch_line(core, tag, hook);
        data[word]
    }

    /// Writes a word through `core`'s cache (write-allocate, write-back).
    #[inline]
    pub fn write_u64<H: FaultHook + ?Sized>(
        &mut self,
        core: usize,
        addr: u64,
        val: u64,
        hook: &mut H,
    ) {
        let tag = Self::line_tag(addr);
        let word = (addr - tag) as usize / 8;
        // Fast path: already exclusive or modified.
        if let Some(line) = self.caches[core].lookup_mut(tag) {
            match line.state {
                LineState::Modified => {
                    self.stats.hits += 1;
                    line.data[word] = val;
                    return;
                }
                LineState::Exclusive => {
                    self.stats.hits += 1;
                    line.state = LineState::Modified;
                    line.data[word] = val;
                    return;
                }
                LineState::Shared => { /* upgrade below */ }
            }
        }
        // Need exclusive ownership: invalidate other copies.
        self.invalidate_others(core, tag, hook);
        if let Some(line) = self.caches[core].lookup_mut(tag) {
            // S → M upgrade: data is already resident (possibly stale if a
            // past invalidation to *this* core was dropped — the defect).
            self.stats.hits += 1;
            line.state = LineState::Modified;
            line.data[word] = val;
            return;
        }
        self.stats.misses += 1;
        let mut data = [0u64; LINE_WORDS];
        let base = self.word_index(tag);
        data.copy_from_slice(&self.mem[base..base + LINE_WORDS]);
        data[word] = val;
        self.insert_line(
            core,
            CacheLine {
                tag,
                state: LineState::Modified,
                data,
            },
        );
    }

    /// Atomic compare-and-swap of the word at `addr`. Returns true (and
    /// stores `new`) iff the current value equals `expected`.
    ///
    /// Atomic RMWs take a dedicated bus transaction that re-reads memory
    /// after invalidating other copies, so they stay linearizable even
    /// when the *plain-load* invalidation path drops messages. This
    /// mirrors the paper's CNST1 case study, where locking still works but
    /// "the daemon thread sometimes got inconsistent data" through
    /// ordinary reads. (Without this, a dropped invalidation would leave
    /// a spin-lock waiter caching a stale `held` word forever — a hang,
    /// i.e. a *detected* failure, not a silent one.)
    pub fn cas_u64<H: FaultHook + ?Sized>(
        &mut self,
        core: usize,
        addr: u64,
        expected: u64,
        new: u64,
        hook: &mut H,
    ) -> bool {
        let tag = Self::line_tag(addr);
        let word = (addr - tag) as usize / 8;
        // Acquire exclusivity; writebacks of remote dirty copies land in
        // memory before the re-read below.
        self.invalidate_others(core, tag, hook);
        // Discard any local (possibly stale) copy and re-read memory;
        // a dirty local copy is written back first so no store is lost.
        let set = L1::set_of(tag);
        if let Some(line) = self.caches[core].lookup(tag) {
            if line.state == LineState::Modified {
                let data = line.data;
                self.stats.writebacks += 1;
                let base = self.word_index(tag);
                self.mem[base..base + LINE_WORDS].copy_from_slice(&data);
            }
            self.caches[core].lines[set] = None;
        }
        self.stats.misses += 1;
        let base = self.word_index(tag);
        let mut data = [0u64; LINE_WORDS];
        data.copy_from_slice(&self.mem[base..base + LINE_WORDS]);
        let success = data[word] == expected;
        if success {
            data[word] = new;
        }
        self.insert_line(
            core,
            CacheLine {
                tag,
                state: LineState::Modified,
                data,
            },
        );
        success
    }

    /// Fetches a line into `core`'s cache (read miss path). Returns the
    /// line data.
    fn fetch_line<H: FaultHook + ?Sized>(
        &mut self,
        core: usize,
        tag: u64,
        _hook: &mut H,
    ) -> [u64; LINE_WORDS] {
        // Snoop: a Modified copy elsewhere is written back and demoted.
        let mut shared_elsewhere = false;
        for other in 0..self.caches.len() {
            if other == core {
                continue;
            }
            if let Some(line) = self.caches[other].lookup_mut(tag) {
                shared_elsewhere = true;
                if line.state == LineState::Modified {
                    let data = line.data;
                    line.state = LineState::Shared;
                    self.stats.writebacks += 1;
                    let base = self.word_index(tag);
                    self.mem[base..base + LINE_WORDS].copy_from_slice(&data);
                } else {
                    line.state = LineState::Shared;
                }
            }
        }
        let base = self.word_index(tag);
        let mut data = [0u64; LINE_WORDS];
        data.copy_from_slice(&self.mem[base..base + LINE_WORDS]);
        let state = if shared_elsewhere {
            LineState::Shared
        } else {
            LineState::Exclusive
        };
        self.insert_line(core, CacheLine { tag, state, data });
        data
    }

    /// Sends invalidations for `tag` to every core but `core`; the fault
    /// hook may drop individual deliveries, leaving stale Shared copies.
    fn invalidate_others<H: FaultHook + ?Sized>(&mut self, core: usize, tag: u64, hook: &mut H) {
        for other in 0..self.caches.len() {
            if other == core {
                continue;
            }
            let present = self.caches[other].lookup(tag).is_some();
            if !present {
                continue;
            }
            // A Modified copy must be written back so the requester sees
            // its data (the bus transfer happens regardless of the defect).
            if let Some(line) = self.caches[other].lookup_mut(tag) {
                if line.state == LineState::Modified {
                    let data = line.data;
                    line.state = LineState::Shared;
                    self.stats.writebacks += 1;
                    let base = self.word_index(tag);
                    self.mem[base..base + LINE_WORDS].copy_from_slice(&data);
                }
            }
            if hook.drop_invalidation(other, tag) {
                // Defect: the invalidation is lost; the stale copy stays
                // Shared and keeps serving reads.
                self.stats.dropped_invalidations += 1;
            } else {
                self.stats.invalidations += 1;
                let set = L1::set_of(tag);
                self.caches[other].lines[set] = None;
            }
        }
    }

    /// Inserts a line, writing back any evicted dirty line.
    fn insert_line(&mut self, core: usize, line: CacheLine) {
        let set = L1::set_of(line.tag);
        if let Some(old) = self.caches[core].lines[set].take() {
            if old.state == LineState::Modified {
                self.stats.writebacks += 1;
                let base = self.word_index(old.tag);
                self.mem[base..base + LINE_WORDS].copy_from_slice(&old.data);
            }
        }
        self.caches[core].lines[set] = Some(line);
    }

    /// Writes back every dirty line (run at machine halt so that raw
    /// memory inspection sees the final state).
    pub fn flush_all(&mut self) {
        for core in 0..self.caches.len() {
            for set in 0..L1_SETS {
                if let Some(line) = self.caches[core].lines[set].take() {
                    if line.state == LineState::Modified {
                        self.stats.writebacks += 1;
                        let base = (line.tag / 8) as usize;
                        self.mem[base..base + LINE_WORDS].copy_from_slice(&line.data);
                    }
                }
            }
        }
    }

    /// Raw (non-coherent) word read, for initialization and final
    /// inspection by the test framework. Call [`MemSystem::flush_all`]
    /// first when inspecting after a run.
    pub fn raw_read_u64(&self, addr: u64) -> u64 {
        assert!(addr.is_multiple_of(8), "unaligned raw read");
        self.mem[(addr / 8) as usize]
    }

    /// Raw word write, for workload initialization before a run.
    pub fn raw_write_u64(&mut self, addr: u64, val: u64) {
        let idx = self.word_index(addr);
        self.mem[idx] = val;
    }

    /// Raw 128-bit read spanning two consecutive words (little endian),
    /// used for 80-bit extended values stored via `StoreX`.
    pub fn raw_read_u128(&self, addr: u64) -> u128 {
        let lo = self.raw_read_u64(addr) as u128;
        let hi = self.raw_read_u64(addr + 8) as u128;
        lo | (hi << 64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hooks::NoFaults;

    /// A hook that drops every invalidation aimed at one victim core.
    struct DropFor {
        victim: usize,
    }

    impl FaultHook for DropFor {
        fn drop_invalidation(&mut self, observer_core: usize, _line: u64) -> bool {
            observer_core == self.victim
        }
    }

    #[test]
    fn read_after_write_same_core() {
        let mut m = MemSystem::new(2, 4096);
        let mut h = NoFaults;
        m.write_u64(0, 64, 42, &mut h);
        assert_eq!(m.read_u64(0, 64, &mut h), 42);
    }

    #[test]
    fn coherent_read_across_cores() {
        let mut m = MemSystem::new(2, 4096);
        let mut h = NoFaults;
        m.write_u64(0, 128, 7, &mut h);
        // Core 1 reads the dirty line: writeback + shared fetch.
        assert_eq!(m.read_u64(1, 128, &mut h), 7);
        assert!(m.stats.writebacks >= 1);
    }

    #[test]
    fn write_invalidates_other_copies() {
        let mut m = MemSystem::new(2, 4096);
        let mut h = NoFaults;
        m.write_u64(0, 0, 1, &mut h);
        assert_eq!(m.read_u64(1, 0, &mut h), 1);
        m.write_u64(0, 0, 2, &mut h);
        assert!(m.stats.invalidations >= 1);
        assert_eq!(m.read_u64(1, 0, &mut h), 2, "healthy protocol is coherent");
    }

    #[test]
    fn dropped_invalidation_leaves_stale_copy() {
        let mut m = MemSystem::new(2, 4096);
        let mut h = DropFor { victim: 1 };
        m.write_u64(0, 0, 1, &mut h);
        assert_eq!(m.read_u64(1, 0, &mut h), 1); // line now shared by core 1
        m.write_u64(0, 0, 2, &mut h); // invalidation to core 1 dropped
        assert_eq!(m.stats.dropped_invalidations, 1);
        assert_eq!(m.read_u64(1, 0, &mut h), 1, "core 1 reads stale data");
        assert_eq!(m.read_u64(0, 0, &mut h), 2, "writer sees its own write");
    }

    #[test]
    fn eviction_writes_back_dirty_line() {
        let mut m = MemSystem::new(1, LINE_BYTES * (L1_SETS as u64 + 1));
        let mut h = NoFaults;
        // Two addresses mapping to the same set.
        let a = 0u64;
        let b = LINE_BYTES * L1_SETS as u64;
        m.write_u64(0, a, 11, &mut h);
        m.write_u64(0, b, 22, &mut h); // evicts line a
        assert_eq!(m.raw_read_u64(a), 11, "dirty line written back on eviction");
        assert_eq!(m.read_u64(0, a, &mut h), 11);
    }

    #[test]
    fn cas_success_and_failure() {
        let mut m = MemSystem::new(2, 4096);
        let mut h = NoFaults;
        m.write_u64(0, 8, 5, &mut h);
        assert!(m.cas_u64(1, 8, 5, 9, &mut h));
        assert_eq!(m.read_u64(0, 8, &mut h), 9);
        assert!(!m.cas_u64(0, 8, 5, 100, &mut h));
        assert_eq!(m.read_u64(0, 8, &mut h), 9);
    }

    #[test]
    fn flush_exposes_final_state_to_raw_reads() {
        let mut m = MemSystem::new(2, 4096);
        let mut h = NoFaults;
        m.write_u64(0, 256, 1234, &mut h);
        assert_ne!(m.raw_read_u64(256), 1234, "still dirty in cache");
        m.flush_all();
        assert_eq!(m.raw_read_u64(256), 1234);
    }

    #[test]
    fn raw_u128_roundtrip() {
        let mut m = MemSystem::new(1, 4096);
        m.raw_write_u64(16, 0xdead_beef);
        m.raw_write_u64(24, 0xcafe);
        assert_eq!(m.raw_read_u128(16), 0xdead_beef | (0xcafeu128 << 64));
    }

    #[test]
    #[should_panic(expected = "unaligned")]
    fn unaligned_access_panics() {
        let mut m = MemSystem::new(1, 4096);
        let mut h = NoFaults;
        let _ = m.read_u64(0, 3, &mut h);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_panics() {
        let mut m = MemSystem::new(1, 4096);
        let mut h = NoFaults;
        m.write_u64(0, 1 << 30, 1, &mut h);
    }
}

//! The SDC test toolchain (§2.3).
//!
//! The paper's manufacturer-provided toolchain has two parts, both
//! reproduced here:
//!
//! * **633 testcases** ([`suite`]) that "simulate cloud workloads,
//!   carefully crafted with consideration of both software behaviors and
//!   hardware features": per-feature instruction loops, library-style
//!   kernels (CRC, hashing, arctangent, AXPY, matrix kernels) and
//!   app-logic workloads (producer/consumer with checksums, lock counters,
//!   transactional counters);
//! * **a framework** ([`framework`]) that "drives these testcases and
//!   checks for the occurrence of SDCs", selecting testcases, controlling
//!   execution order and resource allocation, and collecting
//!   [`sdc_model::SdcRecord`]s.
//!
//! Execution ([`executor`]) is two-mode: a full-VM *execute* mode used to
//! validate detection end to end, and an *accelerated* mode that profiles
//! one unit of the workload in the VM and then advances a discrete-event
//! model of (defect × temperature × instruction-throughput) over the
//! requested virtual duration — the only way to observe a 0.01-errors-per-
//! minute defect over simulated weeks.

pub mod builders;
pub mod cache;
pub mod error;
pub mod executor;
pub mod framework;
pub mod profile;
pub mod suite;
pub mod testcase;

pub use cache::{CacheStats, ProfileCache, ProfileKey};
pub use error::ExecError;
pub use executor::{ExecConfig, Executor, ProfileFaultHook, TestcaseRun};
pub use framework::{run_plan, run_plan_cached, try_run_plan_cached, PlanEntry, TestPlan, TestReport};
pub use suite::Suite;
pub use testcase::{BuiltTestcase, CheckKind, Invariant, OutputRegion, Testcase, WorkloadKind};

//! The two-mode testcase executor.
//!
//! **Accelerated mode** ([`Executor::run`]) is how all long-horizon
//! studies run: one unit of the workload executes in the VM under a
//! [`Profiler`], yielding per-core retire-site rates, per-core power and
//! coherence/transaction event rates; the executor then advances a
//! discrete-event model in time chunks — thermal state first, then
//! Poisson-sampled defect firings at the current temperatures. This is
//! the only practical way to observe a 0.01-errors-per-minute defect
//! (Observation 9's low end) over simulated weeks of testing.
//!
//! **Execute mode** ([`Executor::run_vm`]) runs the whole workload in the
//! VM against both a golden machine and a fault-injected machine and
//! derives SDC records from output differences and invariant violations —
//! the ground-truth path used to validate the accelerated model.

use crate::builders;
use crate::cache::{CachedUnitProfile, ProfileCache, ProfileKey};
use crate::error::ExecError;
use crate::profile::Profiler;
use crate::testcase::{CheckKind, Invariant, OutputRegion, Testcase};
use rand::RngCore as _;
use sdc_model::{CoreId, DataType, DetRng, Duration, SdcRecord, SdcType, SettingId, VirtualClock};
use silicon::defect::{Defect, DefectKind};
use silicon::{Injector, Processor};
use softcore::{InstClass, Machine, NoFaults};
use std::sync::Arc;
use thermal::{ThermalConfig, ThermalModel};

/// Executor configuration.
#[derive(Debug, Clone, Copy)]
pub struct ExecConfig {
    /// Simulated core clock in Hz (virtual time = cycles / clock).
    pub clock_hz: f64,
    /// Loop iterations of the profiling unit run.
    pub unit_iters: u32,
    /// Discrete-event time chunk.
    pub chunk: Duration,
    /// Cap on materialized SDC records per testcase run (the error *count*
    /// is exact; only record materialization is capped).
    pub max_records: usize,
    /// Preheat all cores to this temperature before each run (burn-in).
    pub preheat_c: Option<f64>,
    /// Hold the whole package at this temperature for the entire run —
    /// the paper's controlled-temperature methodology (§5: stress-tool
    /// preheating to a desired temperature while measuring occurrence
    /// frequency). Overrides thermal dynamics.
    pub hold_temp_c: Option<f64>,
    /// Keep non-tested cores busy with stress load during the run
    /// (Farron's whole-package heating; also the paper's §5 method to
    /// separate utilization from temperature).
    pub stress_idle_cores: bool,
    /// Step budget for VM runs (guards against spin-heavy interleavings).
    pub max_unit_steps: u64,
    /// Run accelerated mode through the seed chunk loop
    /// ([`Executor::try_run_reference`]) instead of the event-skipping
    /// fast path. Results are bitwise identical either way (proven by
    /// `tests/executor_equivalence.rs`); the reference path exists for
    /// differential testing and the campaign bench baseline. Not part of
    /// the profile cache key — both paths see identical unit profiles.
    pub reference_executor: bool,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            clock_hz: 1e7,
            unit_iters: 4,
            chunk: Duration::from_secs(1),
            max_records: 2048,
            preheat_c: None,
            hold_temp_c: None,
            stress_idle_cores: false,
            max_unit_steps: 40_000_000,
            reference_executor: false,
        }
    }
}

/// Result of one testcase run on one processor.
#[derive(Debug, Clone, PartialEq)]
pub struct TestcaseRun {
    /// The testcase executed.
    pub testcase: sdc_model::TestcaseId,
    /// Physical cores the workload ran on.
    pub cores: Vec<u16>,
    /// Allotted virtual duration.
    pub duration: Duration,
    /// Materialized SDC records (capped at `max_records`).
    pub records: Vec<SdcRecord>,
    /// Exact number of SDC events.
    pub error_count: u64,
    /// Exact SDC events per entry of `cores` (same indexing).
    pub errors_per_core: Vec<u64>,
    /// Mean of per-chunk hottest-tested-core temperatures.
    pub mean_temp_c: f64,
    /// Hottest temperature any tested core reached.
    pub max_temp_c: f64,
}

impl TestcaseRun {
    /// True if the run detected at least one SDC.
    pub fn detected(&self) -> bool {
        self.error_count > 0
    }

    /// Errors per virtual minute — the paper's occurrence frequency.
    pub fn occurrence_frequency(&self) -> f64 {
        let mins = self.duration.as_mins_f64();
        if mins == 0.0 {
            0.0
        } else {
            self.error_count as f64 / mins
        }
    }
}

/// Per-(class, datatype) site rates for one machine core.
#[derive(Debug, Clone, Default)]
pub(crate) struct CoreProfile {
    /// (class, dt) → retired results per second.
    site_rates: Vec<((InstClass, DataType), f64)>,
    /// Average energy per cycle (thermal power proxy).
    power: f64,
    /// Cache invalidations received per second.
    invalidations_per_sec: f64,
    /// Conflicted transactional commits per second.
    tx_conflicts_per_sec: f64,
}

/// Precomputed computation-site weights for one (defect, tested core):
/// which sites the defect can corrupt, their sampling weights, and the
/// weights' sum. All three are temperature-independent, so the
/// accelerated run builds them once instead of once per time chunk.
struct CompSites {
    keys: Vec<(InstClass, DataType)>,
    weights: Vec<f64>,
    total_rate: f64,
}

/// Event source of one retained (defect, tested core) pair in the fast
/// path: the per-second base rate the trigger rate multiplies into a
/// chunk's Poisson mean.
enum PairEvents {
    /// Computation defect with its precomputed corruptible sites.
    Comp(CompSites),
    /// Coherence drop at this core's invalidation rate.
    Coherence(f64),
    /// Transaction-isolation violation at this core's conflict rate.
    Tx(f64),
}

impl PairEvents {
    /// Events per second before the trigger rate is applied.
    fn base_per_sec(&self) -> f64 {
        match self {
            PairEvents::Comp(sites) => sites.total_rate,
            PairEvents::Coherence(per) | PairEvents::Tx(per) => *per,
        }
    }
}

/// One (defect, tested core) pair the fast path keeps, in the seed
/// loop's draw order (defect-major, tested-core-minor). Pairs whose
/// rate is provably zero at every temperature — zero core scale, zero
/// trigger base rate, or zero event base rate — are pruned at build
/// time: the reference loop `continue`s (Poisson with a non-positive
/// mean draws nothing), so skipping them consumes no randomness.
struct ActivePair<'d> {
    defect: &'d Defect,
    /// Index into `cores` / `errors_per_core`.
    idx: usize,
    pcore: u16,
    events: PairEvents,
}

/// Per-pair memo once the thermal trajectory reaches its fixed point:
/// temperatures stop changing, so the chunk's Poisson mean (and its
/// `exp(-lambda)`) are constants.
struct SteadyPair {
    /// Index into the run's `ActivePair` list.
    active_i: usize,
    temp: f64,
    lambda: f64,
    exp_neg_lambda: f64,
}

/// Steady-state snapshot of a run's chunk loop: reached when the
/// integrated temperatures stop changing bitwise (or immediately under
/// `hold_temp_c`).
struct SteadyState {
    hottest: f64,
    pairs: Vec<SteadyPair>,
}

/// Key of one cached thermal trajectory: the relaxation step plus the
/// exact start temperatures and per-core targets (bit patterns — the
/// integration below is bitwise deterministic in these).
#[derive(PartialEq, Eq, Hash)]
struct TrajKey {
    alpha: u64,
    temps: Vec<u64>,
    targets: Vec<u64>,
}

impl TrajKey {
    fn of(alpha: f64, temps: &[f64], targets: &[f64]) -> Self {
        TrajKey {
            alpha: alpha.to_bits(),
            temps: temps.iter().map(|t| t.to_bits()).collect(),
            targets: targets.iter().map(|t| t.to_bits()).collect(),
        }
    }
}

/// One integrated thermal curve: temperatures after each full chunk,
/// stored until the sequence reaches a bitwise fixed point.
///
/// Exponential relaxation `t += (target - t) * alpha` with `alpha <
/// 0.5` moves each core monotonically toward its target without
/// overshoot, so in f64 the per-core sequence is monotone over a finite
/// value set and must land on an exact fixed point — after which every
/// further chunk is a no-op and `converged` is set.
#[derive(Clone, Default)]
struct Trajectory {
    steps: Vec<Vec<f64>>,
    converged: bool,
}

/// Transient prefix cap per cached trajectory (the default 1 s chunk /
/// 15 s tau converges in well under 1k steps; pathological tiny-alpha
/// configs fall back to live stepping past the cap).
const MAX_TRAJ_STEPS: usize = 4096;
/// Cached trajectories per executor (keys differ by start temperature,
/// so sequential runs with remaining heat each get an entry).
const MAX_TRAJ_ENTRIES: usize = 32;

/// Extends `traj` with integration steps until it covers `need` chunks,
/// hits the storage cap, or converges.
fn extend_trajectory(traj: &mut Trajectory, start: &[f64], targets: &[f64], alpha: f64, need: usize) {
    while !traj.converged && traj.steps.len() < need.min(MAX_TRAJ_STEPS) {
        let cur: &[f64] = traj.steps.last().map(|v| v.as_slice()).unwrap_or(start);
        let next: Vec<f64> = cur
            .iter()
            .zip(targets)
            .map(|(&t, &target)| t + (target - t) * alpha)
            .collect();
        if next.iter().zip(cur).all(|(a, b)| a.to_bits() == b.to_bits()) {
            traj.converged = true;
        } else {
            traj.steps.push(next);
        }
    }
}

/// Advances `temps` by one chunk in place with the exact
/// [`thermal::ThermalModel::advance`] arithmetic; returns `true` when
/// nothing changed bitwise (the trajectory's fixed point).
fn step_temps(temps: &mut [f64], targets: &[f64], alpha: f64) -> bool {
    let mut unchanged = true;
    for (t, &target) in temps.iter_mut().zip(targets) {
        let next = *t + (target - *t) * alpha;
        if next.to_bits() != t.to_bits() {
            unchanged = false;
        }
        *t = next;
    }
    unchanged
}

/// Materializes up to `max_records − records.len()` computation records
/// for `k` events of one pair — the same draws, in the same order, as
/// the seed loop's materialization block.
#[allow(clippy::too_many_arguments)]
fn materialize_computation(
    sites: &CompSites,
    defect: &Defect,
    sampler_samples: &Profiler,
    setting: SettingId,
    temp: f64,
    at: Duration,
    k: u64,
    max_records: usize,
    records: &mut Vec<SdcRecord>,
    rng: &mut DetRng,
) {
    let materialize = (k as usize).min(max_records.saturating_sub(records.len()));
    for _ in 0..materialize {
        let (class, dt_) = sites.keys[rng.weighted(&sites.weights)];
        let samples = sampler_samples.samples(class, dt_);
        let expected = if samples.is_empty() {
            0
        } else {
            samples[rng.below(samples.len() as u64) as usize]
        };
        let mask = defect.choose_mask(dt_, rng);
        records.push(SdcRecord {
            setting,
            kind: SdcType::Computation,
            datatype: dt_,
            expected,
            actual: expected ^ mask,
            temp_c: temp,
            at,
        });
    }
}

/// Operational-fault hook for profile reads: `(key, read attempt)` →
/// "this read fails". Must be a pure function of its arguments for
/// deterministic campaigns.
pub type ProfileFaultHook = Arc<dyn Fn(&ProfileKey, u32) -> bool + Send + Sync>;

/// Executes testcases against one (possibly defective) processor.
pub struct Executor<'p> {
    /// The processor under test.
    pub processor: &'p Processor,
    /// Package thermal state (persists across runs: remaining heat).
    pub thermal: ThermalModel,
    /// Virtual wall clock (persists across runs).
    pub clock: VirtualClock,
    cfg: ExecConfig,
    /// Shared unit-profile memoization; `None` computes every profile.
    cache: Option<Arc<ProfileCache>>,
    /// Operational-fault hook for profile reads: when it returns `true`
    /// for a key, that read fails with [`ExecError::ProfileRead`]. Used
    /// by the chaos layer to model transient infrastructure errors; the
    /// hook must be a pure function of its arguments for determinism.
    profile_fault: Option<ProfileFaultHook>,
    /// Profile reads attempted so far (feeds the fault hook's attempt
    /// counter and the supervisor's per-item accounting).
    profile_reads: u32,
    /// Thermal trajectory cache: `(alpha, start temps, targets)` →
    /// integrated curve. Hits when runs repeat a power configuration
    /// from the same starting temperatures (burn-in preheat makes this
    /// the common case in Farron evals).
    trajectories: std::collections::HashMap<TrajKey, Arc<Trajectory>>,
}

impl std::fmt::Debug for Executor<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Executor")
            .field("processor", &self.processor.id)
            .field("cfg", &self.cfg)
            .field("cached", &self.cache.is_some())
            .field("profile_fault_hook", &self.profile_fault.is_some())
            .finish()
    }
}

impl<'p> Executor<'p> {
    /// A fresh executor for `processor` at idle temperature.
    pub fn new(processor: &'p Processor, cfg: ExecConfig) -> Self {
        Executor {
            processor,
            thermal: ThermalModel::new(processor.physical_cores as usize, ThermalConfig::default()),
            clock: VirtualClock::new(),
            cfg,
            cache: None,
            profile_fault: None,
            profile_reads: 0,
            trajectories: std::collections::HashMap::new(),
        }
    }

    /// A fresh executor sharing `cache` for unit profiles. Profiling
    /// streams are derived from the cache key, so results are bitwise
    /// identical with or without a cache.
    pub fn with_cache(processor: &'p Processor, cfg: ExecConfig, cache: Arc<ProfileCache>) -> Self {
        let mut e = Executor::new(processor, cfg);
        e.cache = Some(cache);
        e
    }

    /// Attaches (or detaches) a shared unit-profile cache.
    pub fn set_cache(&mut self, cache: Option<Arc<ProfileCache>>) {
        self.cache = cache;
    }

    /// Installs an operational-fault hook for profile reads. The hook is
    /// called with the profile key and a 0-based read-attempt counter;
    /// returning `true` fails that read with [`ExecError::ProfileRead`].
    /// For deterministic campaigns the hook must be a pure function of
    /// its arguments (e.g. a seeded fault-plan draw).
    pub fn set_profile_fault_hook(&mut self, hook: Option<ProfileFaultHook>) {
        self.profile_fault = hook;
    }

    /// The active configuration.
    pub fn config(&self) -> &ExecConfig {
        &self.cfg
    }

    /// Replaces the configuration (e.g. to toggle burn-in between rounds).
    pub fn set_config(&mut self, cfg: ExecConfig) {
        self.cfg = cfg;
    }

    /// Profiles one unit of `tc` on the VM (through the shared cache when
    /// one is attached). The profile is a pure function of the
    /// [`ProfileKey`] — the RNG driving the unit run is derived from the
    /// key, not from the caller's stream — so every executor observes the
    /// same profile for the same key.
    ///
    /// Fails with [`ExecError::ProfileRead`] when the installed fault
    /// hook fires for this read; nothing is cached in that case, so a
    /// retry re-reads (and, absent another fault, succeeds with the
    /// identical profile).
    fn try_profile_unit(
        &mut self,
        tc: &Testcase,
        cores: &[u16],
    ) -> Result<Arc<CachedUnitProfile>, ExecError> {
        let key = ProfileKey::of(tc.id, cores.len(), &self.cfg);
        let attempt = self.profile_reads;
        self.profile_reads = self.profile_reads.wrapping_add(1);
        if let Some(hook) = &self.profile_fault {
            if hook(&key, attempt) {
                return Err(ExecError::ProfileRead {
                    testcase: tc.id,
                    attempt,
                });
            }
        }
        Ok(match &self.cache {
            Some(cache) => cache.get_or_compute(key, || compute_unit_profile(tc, key, &self.cfg)),
            None => Arc::new(compute_unit_profile(tc, key, &self.cfg)),
        })
    }

    /// Validates the core selection shared by both run modes.
    fn check_cores(&self, tc: &Testcase, cores: &[u16]) -> Result<(), ExecError> {
        if cores.is_empty() {
            return Err(ExecError::NoCores);
        }
        if let Some(&bad) = cores.iter().find(|&&c| c >= self.processor.physical_cores) {
            return Err(ExecError::CoreOutOfRange {
                core: bad,
                physical_cores: self.processor.physical_cores,
            });
        }
        if cores.len() < tc.threads as usize {
            return Err(ExecError::TooFewCores {
                cores: cores.len(),
                threads: tc.threads as usize,
            });
        }
        Ok(())
    }

    /// Accelerated run of `tc` on physical `cores` for `duration`.
    ///
    /// # Panics
    ///
    /// Panics if the core selection violates [`Executor::try_run`]'s
    /// invariants or an installed profile-fault hook fires — infallible
    /// callers (studies, figures) never install one.
    pub fn run(
        &mut self,
        tc: &Testcase,
        cores: &[u16],
        duration: Duration,
        rng: &mut DetRng,
    ) -> TestcaseRun {
        self.try_run(tc, cores, duration, rng)
            .unwrap_or_else(|e| panic!("invariant violated: executor run of {}: {e}", tc.name))
    }

    /// Fallible accelerated run: validates the core selection and the
    /// profile read instead of panicking, so a supervisor can retry
    /// transient failures.
    ///
    /// This is the event-skipping fast path. It is bitwise identical to
    /// [`Executor::try_run_reference`] — same [`TestcaseRun`], same RNG
    /// stream consumption, same final thermal/clock state — via three
    /// draw-equivalent shortcuts:
    ///
    /// * **zero-rate pruning** — (defect, core) pairs whose rate is zero
    ///   at every temperature (zero core scale, zero trigger base rate,
    ///   zero event base rate) never reach a Poisson draw in the seed
    ///   loop (`continue`, or a non-positive mean that returns before
    ///   consuming randomness), so they are dropped up front;
    /// * **thermal trajectory cache** — the chunk loop's temperature
    ///   curve is a pure function of (step alpha, start temps, targets);
    ///   it is integrated once outside [`ThermalModel`] with the exact
    ///   `advance` arithmetic ([`ThermalModel::step_alpha`]), cached,
    ///   and replayed until it reaches its bitwise fixed point;
    /// * **steady-state memoization** — past the fixed point every
    ///   chunk's Poisson mean is a constant, so the trigger's `powf`
    ///   and `exp(-lambda)` are hoisted and draws go through
    ///   [`DetRng::poisson_with_exp`], which consumes the identical
    ///   uniform stream.
    pub fn try_run(
        &mut self,
        tc: &Testcase,
        cores: &[u16],
        duration: Duration,
        rng: &mut DetRng,
    ) -> Result<TestcaseRun, ExecError> {
        // A zero chunk never advances `elapsed`; leave that degenerate
        // config to the reference loop rather than divide by zero here.
        if self.cfg.reference_executor || self.cfg.chunk == Duration::ZERO {
            return self.try_run_reference(tc, cores, duration, rng);
        }
        self.check_cores(tc, cores)?;
        let unit = self.try_profile_unit(tc, cores)?;
        let profiles = &unit.profiles;
        let sampler_samples = &unit.profiler;
        let processor = self.processor;

        if let Some(t) = self.cfg.preheat_c {
            self.thermal.preheat(t);
        }
        // Tested-core lookup built once — replaces the seed loop's
        // per-core `position` scan and `tested` HashSet (first index
        // wins, matching `position` if a core is listed twice).
        let phys = processor.physical_cores as usize;
        let mut core_index: Vec<Option<usize>> = vec![None; phys];
        for (idx, &c) in cores.iter().enumerate() {
            let slot = &mut core_index[c as usize];
            if slot.is_none() {
                *slot = Some(idx);
            }
        }
        for (pc, slot) in core_index.iter().enumerate() {
            let power = match slot {
                Some(idx) => profiles[*idx].power,
                None if self.cfg.stress_idle_cores => 1.2,
                None => 0.0,
            };
            self.thermal.set_power(pc, power);
        }

        // Retained (defect, tested core) pairs in the seed loop's draw
        // order (defect-major, core-minor); see `ActivePair` for the
        // pruning argument.
        let mut active: Vec<ActivePair<'_>> = Vec::new();
        for defect in processor.defects.iter().filter(|d| d.applies_to(tc.id)) {
            if defect.trigger.base_rate <= 0.0 {
                continue;
            }
            for (idx, &pcore) in cores.iter().enumerate() {
                if defect.scope.core_scale(pcore) <= 0.0 {
                    continue;
                }
                let events = match &defect.kind {
                    DefectKind::Computation { .. } => {
                        let matching: Vec<((InstClass, DataType), f64)> = profiles[idx]
                            .site_rates
                            .iter()
                            .filter(|((class, dt_), _)| defect.matches(*class, *dt_))
                            .copied()
                            .collect();
                        let sites = CompSites {
                            keys: matching.iter().map(|&(k, _)| k).collect(),
                            weights: matching.iter().map(|&(_, v)| v).collect(),
                            total_rate: matching.iter().map(|&(_, v)| v).sum(),
                        };
                        if sites.total_rate <= 0.0 {
                            continue;
                        }
                        PairEvents::Comp(sites)
                    }
                    DefectKind::CoherenceDrop => {
                        let per = profiles[idx].invalidations_per_sec;
                        if per <= 0.0 {
                            continue;
                        }
                        PairEvents::Coherence(per)
                    }
                    DefectKind::TxIsolation => {
                        let per = profiles[idx].tx_conflicts_per_sec;
                        if per <= 0.0 {
                            continue;
                        }
                        PairEvents::Tx(per)
                    }
                };
                active.push(ActivePair {
                    defect,
                    idx,
                    pcore,
                    events,
                });
            }
        }

        let start = self.clock.now();
        let mut elapsed = Duration::ZERO;
        let mut records = Vec::new();
        let mut error_count = 0u64;
        let mut errors_per_core = vec![0u64; cores.len()];
        let mut temp_sum = 0.0;
        let mut temp_chunks = 0u64;
        let mut max_temp = f64::NEG_INFINITY;

        let chunk = self.cfg.chunk;
        let chunk_secs = chunk.as_secs_f64();
        let full_chunks = (duration.as_micros() / chunk.as_micros()) as usize;
        let partial = Duration::from_micros(duration.as_micros() % chunk.as_micros());
        let any_chunk = full_chunks > 0 || partial > Duration::ZERO;

        // Rates, means and exp(-mean) memoized at a temperature fixed
        // point. Pairs whose rate is zero *at these temperatures* (e.g.
        // below the trigger's t_min floor) are dropped drawlessly, the
        // same way the reference loop `continue`s on them every chunk.
        let make_steady = |temps: &[f64]| -> SteadyState {
            let hottest = cores
                .iter()
                .map(|&c| temps[c as usize])
                .fold(f64::NEG_INFINITY, f64::max);
            let mut pairs = Vec::new();
            for (active_i, pair) in active.iter().enumerate() {
                let temp = temps[pair.pcore as usize];
                let rate = pair.defect.rate(pair.pcore, temp);
                if rate <= 0.0 {
                    continue;
                }
                let lambda = pair.events.base_per_sec() * rate * chunk_secs;
                if lambda <= 0.0 {
                    continue;
                }
                let exp_neg_lambda = if lambda <= 64.0 { (-lambda).exp() } else { 0.0 };
                pairs.push(SteadyPair {
                    active_i,
                    temp,
                    lambda,
                    exp_neg_lambda,
                });
            }
            SteadyState { hottest, pairs }
        };

        let hold = self.cfg.hold_temp_c;
        let alpha = self.thermal.step_alpha(chunk);
        let mut targets: Vec<f64> = Vec::new();
        let mut traj: Option<Arc<Trajectory>> = None;
        let mut steady: Option<SteadyState> = None;
        let mut temps: Vec<f64>;
        if let Some(h) = hold {
            // Held temperatures are constant from the first chunk on:
            // the run is steady-state throughout.
            if any_chunk {
                self.thermal.preheat(h);
            }
            temps = self.thermal.temps().to_vec();
            if any_chunk {
                let st = make_steady(&temps);
                max_temp = max_temp.max(st.hottest);
                steady = Some(st);
            }
        } else {
            // Targets are fixed while powers are fixed; hoist the
            // O(cores²) target computation out of the chunk loop.
            targets = (0..phys).map(|c| self.thermal.target_temp(c)).collect();
            temps = self.thermal.temps().to_vec();
            if full_chunks > 0 {
                let key = TrajKey::of(alpha, &temps, &targets);
                traj = Some(match self.trajectories.get_mut(&key) {
                    Some(entry) => {
                        extend_trajectory(
                            Arc::make_mut(entry),
                            &temps,
                            &targets,
                            alpha,
                            full_chunks,
                        );
                        Arc::clone(entry)
                    }
                    None => {
                        let mut fresh = Trajectory::default();
                        extend_trajectory(&mut fresh, &temps, &targets, alpha, full_chunks);
                        let fresh = Arc::new(fresh);
                        if self.trajectories.len() < MAX_TRAJ_ENTRIES {
                            self.trajectories.insert(key, Arc::clone(&fresh));
                        }
                        fresh
                    }
                });
            }
        }

        for chunk_i in 0..full_chunks {
            if steady.is_none() {
                let traj = traj.as_ref().expect("dynamic full chunks have a trajectory");
                let mut now_steady = false;
                if chunk_i < traj.steps.len() {
                    temps.copy_from_slice(&traj.steps[chunk_i]);
                } else if traj.converged {
                    now_steady = true;
                } else {
                    // Past the trajectory storage cap: integrate live
                    // (same arithmetic) and watch for the fixed point.
                    now_steady = step_temps(&mut temps, &targets, alpha);
                }
                if now_steady {
                    let st = make_steady(&temps);
                    max_temp = max_temp.max(st.hottest);
                    steady = Some(st);
                }
            }
            if let Some(st) = &steady {
                temp_sum += st.hottest;
                temp_chunks += 1;
                for sp in &st.pairs {
                    let k = rng.poisson_with_exp(sp.lambda, sp.exp_neg_lambda);
                    if k > 0 {
                        error_count += k;
                        let pair = &active[sp.active_i];
                        errors_per_core[pair.idx] += k;
                        match &pair.events {
                            PairEvents::Comp(sites) => materialize_computation(
                                sites,
                                pair.defect,
                                sampler_samples,
                                SettingId {
                                    cpu: processor.id,
                                    core: CoreId(pair.pcore),
                                    testcase: tc.id,
                                },
                                sp.temp,
                                start + elapsed,
                                k,
                                self.cfg.max_records,
                                &mut records,
                                rng,
                            ),
                            PairEvents::Coherence(_) | PairEvents::Tx(_) => {
                                self.push_consistency(
                                    &mut records,
                                    k,
                                    pair.pcore,
                                    tc,
                                    sp.temp,
                                    start + elapsed,
                                );
                            }
                        }
                    }
                }
            } else {
                // Transient chunk: the seed loop's per-chunk arithmetic
                // on the locally integrated temperatures.
                let hottest = cores
                    .iter()
                    .map(|&c| temps[c as usize])
                    .fold(f64::NEG_INFINITY, f64::max);
                temp_sum += hottest;
                temp_chunks += 1;
                max_temp = max_temp.max(hottest);
                for pair in &active {
                    let temp = temps[pair.pcore as usize];
                    let rate = pair.defect.rate(pair.pcore, temp);
                    if rate <= 0.0 {
                        continue;
                    }
                    let lambda = pair.events.base_per_sec() * rate * chunk_secs;
                    let k = rng.poisson(lambda);
                    error_count += k;
                    errors_per_core[pair.idx] += k;
                    if k > 0 {
                        match &pair.events {
                            PairEvents::Comp(sites) => materialize_computation(
                                sites,
                                pair.defect,
                                sampler_samples,
                                SettingId {
                                    cpu: processor.id,
                                    core: CoreId(pair.pcore),
                                    testcase: tc.id,
                                },
                                temp,
                                start + elapsed,
                                k,
                                self.cfg.max_records,
                                &mut records,
                                rng,
                            ),
                            PairEvents::Coherence(_) | PairEvents::Tx(_) => {
                                self.push_consistency(
                                    &mut records,
                                    k,
                                    pair.pcore,
                                    tc,
                                    temp,
                                    start + elapsed,
                                );
                            }
                        }
                    }
                }
            }
            elapsed += chunk;
        }

        // Final partial chunk (if the duration is not a whole number of
        // chunks): a different dt means a different alpha and Poisson
        // mean, so it is stepped and drawn exactly like the reference.
        if partial > Duration::ZERO {
            let dt_secs = partial.as_secs_f64();
            if hold.is_none() {
                step_temps(&mut temps, &targets, self.thermal.step_alpha(partial));
            }
            let hottest = cores
                .iter()
                .map(|&c| temps[c as usize])
                .fold(f64::NEG_INFINITY, f64::max);
            temp_sum += hottest;
            temp_chunks += 1;
            max_temp = max_temp.max(hottest);
            for pair in &active {
                let temp = temps[pair.pcore as usize];
                let rate = pair.defect.rate(pair.pcore, temp);
                if rate <= 0.0 {
                    continue;
                }
                let lambda = pair.events.base_per_sec() * rate * dt_secs;
                let k = rng.poisson(lambda);
                error_count += k;
                errors_per_core[pair.idx] += k;
                if k > 0 {
                    match &pair.events {
                        PairEvents::Comp(sites) => materialize_computation(
                            sites,
                            pair.defect,
                            sampler_samples,
                            SettingId {
                                cpu: processor.id,
                                core: CoreId(pair.pcore),
                                testcase: tc.id,
                            },
                            temp,
                            start + elapsed,
                            k,
                            self.cfg.max_records,
                            &mut records,
                            rng,
                        ),
                        PairEvents::Coherence(_) | PairEvents::Tx(_) => {
                            self.push_consistency(
                                &mut records,
                                k,
                                pair.pcore,
                                tc,
                                temp,
                                start + elapsed,
                            );
                        }
                    }
                }
            }
            elapsed += partial;
        }
        debug_assert_eq!(elapsed, duration);

        // Write the integrated temperatures back so remaining heat
        // persists across runs exactly as the reference leaves it.
        if any_chunk && hold.is_none() {
            self.thermal.set_temps(&temps);
        }
        // Workload ends: power returns to idle, remaining heat persists.
        for (pc, slot) in core_index.iter().enumerate() {
            if slot.is_some() || self.cfg.stress_idle_cores {
                self.thermal.set_power(pc, 0.0);
            }
        }
        self.clock.advance(duration);
        Ok(TestcaseRun {
            testcase: tc.id,
            cores: cores.to_vec(),
            duration,
            records,
            error_count,
            errors_per_core,
            mean_temp_c: if temp_chunks > 0 {
                temp_sum / temp_chunks as f64
            } else {
                0.0
            },
            max_temp_c: if max_temp.is_finite() { max_temp } else { 0.0 },
        })
    }

    /// The seed chunk loop, kept verbatim for differential testing: the
    /// oracle `tests/executor_equivalence.rs` (and the campaign bench
    /// baseline via [`ExecConfig::reference_executor`]) compare
    /// [`Executor::try_run`] against this path bit for bit.
    pub fn try_run_reference(
        &mut self,
        tc: &Testcase,
        cores: &[u16],
        duration: Duration,
        rng: &mut DetRng,
    ) -> Result<TestcaseRun, ExecError> {
        self.check_cores(tc, cores)?;
        let unit = self.try_profile_unit(tc, cores)?;
        let profiles = &unit.profiles;
        let sampler_samples = &unit.profiler;

        if let Some(t) = self.cfg.preheat_c {
            self.thermal.preheat(t);
        }
        // Set package power: tested cores burn the workload's power, the
        // rest idle or run stress load.
        let tested: std::collections::HashSet<u16> = cores.iter().copied().collect();
        for pc in 0..self.processor.physical_cores {
            let power = if let Some(idx) = cores.iter().position(|&c| c == pc) {
                profiles[idx].power
            } else if self.cfg.stress_idle_cores {
                1.2
            } else {
                0.0
            };
            self.thermal.set_power(pc as usize, power);
        }

        // The defect loop below runs every chunk of a possibly weeks-long
        // virtual duration; everything temperature-independent — which
        // defects apply, and which sites each can corrupt on each tested
        // core — is hoisted out of it.
        let applicable: Vec<(&Defect, Option<Vec<CompSites>>)> = self
            .processor
            .defects
            .iter()
            .filter(|d| d.applies_to(tc.id))
            .map(|defect| {
                let sites = match &defect.kind {
                    DefectKind::Computation { .. } => Some(
                        (0..cores.len())
                            .map(|idx| {
                                let matching: Vec<((InstClass, DataType), f64)> = profiles[idx]
                                    .site_rates
                                    .iter()
                                    .filter(|((class, dt_), _)| defect.matches(*class, *dt_))
                                    .copied()
                                    .collect();
                                CompSites {
                                    keys: matching.iter().map(|&(k, _)| k).collect(),
                                    weights: matching.iter().map(|&(_, v)| v).collect(),
                                    total_rate: matching.iter().map(|&(_, v)| v).sum(),
                                }
                            })
                            .collect(),
                    ),
                    _ => None,
                };
                (defect, sites)
            })
            .collect();

        let start = self.clock.now();
        let mut elapsed = Duration::ZERO;
        let mut records = Vec::new();
        let mut error_count = 0u64;
        let mut errors_per_core = vec![0u64; cores.len()];
        let mut temp_sum = 0.0;
        let mut temp_chunks = 0u64;
        let mut max_temp = f64::NEG_INFINITY;

        while elapsed < duration {
            let dt = std::cmp::min(self.cfg.chunk, duration - elapsed);
            if let Some(hold) = self.cfg.hold_temp_c {
                self.thermal.preheat(hold);
            } else {
                self.thermal.advance(dt);
            }
            let dt_secs = dt.as_secs_f64();
            let hottest_tested = cores
                .iter()
                .map(|&c| self.thermal.temp(c as usize))
                .fold(f64::NEG_INFINITY, f64::max);
            temp_sum += hottest_tested;
            temp_chunks += 1;
            max_temp = max_temp.max(hottest_tested);

            for &(defect, ref comp_sites) in &applicable {
                for (idx, &pcore) in cores.iter().enumerate() {
                    let temp = self.thermal.temp(pcore as usize);
                    let rate = defect.rate(pcore, temp);
                    if rate <= 0.0 {
                        continue;
                    }
                    match &defect.kind {
                        DefectKind::Computation { .. } => {
                            let sites =
                                &comp_sites.as_ref().expect("computation defect has sites")[idx];
                            if sites.total_rate <= 0.0 {
                                continue;
                            }
                            let lambda = sites.total_rate * rate * dt_secs;
                            let k = rng.poisson(lambda);
                            error_count += k;
                            errors_per_core[idx] += k;
                            let materialize = (k as usize)
                                .min(self.cfg.max_records.saturating_sub(records.len()));
                            for _ in 0..materialize {
                                let (class, dt_) = sites.keys[rng.weighted(&sites.weights)];
                                let samples = sampler_samples.samples(class, dt_);
                                let expected = if samples.is_empty() {
                                    0
                                } else {
                                    samples[rng.below(samples.len() as u64) as usize]
                                };
                                let mask = defect.choose_mask(dt_, rng);
                                records.push(SdcRecord {
                                    setting: SettingId {
                                        cpu: self.processor.id,
                                        core: CoreId(pcore),
                                        testcase: tc.id,
                                    },
                                    kind: SdcType::Computation,
                                    datatype: dt_,
                                    expected,
                                    actual: expected ^ mask,
                                    temp_c: temp,
                                    at: start + elapsed,
                                });
                            }
                        }
                        DefectKind::CoherenceDrop => {
                            let lambda = profiles[idx].invalidations_per_sec * rate * dt_secs;
                            let k = rng.poisson(lambda);
                            error_count += k;
                            errors_per_core[idx] += k;
                            self.push_consistency(
                                &mut records,
                                k,
                                pcore,
                                tc,
                                temp,
                                start + elapsed,
                            );
                        }
                        DefectKind::TxIsolation => {
                            let lambda = profiles[idx].tx_conflicts_per_sec * rate * dt_secs;
                            let k = rng.poisson(lambda);
                            error_count += k;
                            errors_per_core[idx] += k;
                            self.push_consistency(
                                &mut records,
                                k,
                                pcore,
                                tc,
                                temp,
                                start + elapsed,
                            );
                        }
                    }
                }
            }
            elapsed += dt;
        }
        // Workload ends: power returns to idle, remaining heat persists.
        for pc in 0..self.processor.physical_cores {
            if tested.contains(&pc) || self.cfg.stress_idle_cores {
                self.thermal.set_power(pc as usize, 0.0);
            }
        }
        self.clock.advance(duration);
        Ok(TestcaseRun {
            testcase: tc.id,
            cores: cores.to_vec(),
            duration,
            records,
            error_count,
            errors_per_core,
            mean_temp_c: if temp_chunks > 0 {
                temp_sum / temp_chunks as f64
            } else {
                0.0
            },
            max_temp_c: if max_temp.is_finite() { max_temp } else { 0.0 },
        })
    }

    fn push_consistency(
        &self,
        records: &mut Vec<SdcRecord>,
        k: u64,
        pcore: u16,
        tc: &Testcase,
        temp: f64,
        at: Duration,
    ) {
        let materialize = (k as usize).min(self.cfg.max_records.saturating_sub(records.len()));
        for _ in 0..materialize {
            records.push(SdcRecord {
                setting: SettingId {
                    cpu: self.processor.id,
                    core: CoreId(pcore),
                    testcase: tc.id,
                },
                kind: SdcType::Consistency,
                datatype: DataType::Bin64,
                expected: 0,
                actual: 0,
                temp_c: temp,
                at,
            });
        }
    }

    /// Full-VM validation run: executes `iters` iterations on both a
    /// golden and a fault-injected machine and derives SDC records from
    /// output mismatches (computation testcases) or invariant violations
    /// (consistency testcases). Temperatures are taken from the current
    /// thermal state and held for the (short) run.
    ///
    /// # Panics
    ///
    /// Panics where [`Executor::try_run_vm`] would return an error.
    pub fn run_vm(
        &mut self,
        tc: &Testcase,
        cores: &[u16],
        iters: u32,
        rng: &mut DetRng,
    ) -> TestcaseRun {
        self.try_run_vm(tc, cores, iters, rng)
            .unwrap_or_else(|e| panic!("invariant violated: VM run of {}: {e}", tc.name))
    }

    /// Fallible full-VM validation run: a spin-heavy interleaving that
    /// exceeds the step budget surfaces as [`ExecError::StepBudget`]
    /// instead of a panic, so supervised suites can retry or skip it.
    pub fn try_run_vm(
        &mut self,
        tc: &Testcase,
        cores: &[u16],
        iters: u32,
        rng: &mut DetRng,
    ) -> Result<TestcaseRun, ExecError> {
        self.check_cores(tc, cores)?;
        let seed = rng.next_u64();
        let built = builders::build(tc, cores.len(), iters, seed);

        // Only the defects whose trigger paths this testcase reaches
        // participate (§4.1's selectivity). Cloned once per testcase, not
        // once per machine run.
        let mut gated = self.processor.clone();
        gated.defects.retain(|d| d.applies_to(tc.id));

        // One machine serves both runs: programs are loaded (and
        // predecoded) once, and `restart` rewinds architectural state
        // between the golden and faulty executions.
        let mut machine = Machine::new(cores.len(), built.mem_bytes);
        for (c, p) in built.programs.iter().enumerate() {
            if let Some(p) = p {
                machine.load(c, p.clone());
            }
        }
        let budget_exceeded = |out: &softcore::RunOutcome| {
            if out.completed {
                Ok(())
            } else {
                Err(ExecError::StepBudget {
                    testcase: tc.id,
                    budget: self.cfg.max_unit_steps,
                })
            }
        };

        // Golden run.
        let golden_rng = rng.fork(1);
        for &(addr, val) in &built.mem_init {
            machine.mem.raw_write_u64(addr, val);
        }
        let mut interleave = golden_rng.fork(0x5150);
        let out = machine.run(&mut NoFaults, &mut interleave, self.cfg.max_unit_steps);
        budget_exceeded(&out)?;
        // Capture everything the comparison needs from the golden machine
        // before it is restarted for the faulty run.
        let golden_cycles = machine.cycles.iter().copied().max().unwrap_or(0);
        let golden_elems: Vec<Vec<u128>> = match &built.check {
            CheckKind::GoldenCompare => built
                .outputs
                .iter()
                .map(|region| {
                    (0..region.count)
                        .map(|i| read_element(&machine, region, i))
                        .collect()
                })
                .collect(),
            CheckKind::Invariants(_) => Vec::new(),
        };

        // Faulty run on the same (restarted) machine.
        machine.restart();
        let faulty_rng = rng.fork(2);
        for &(addr, val) in &built.mem_init {
            machine.mem.raw_write_u64(addr, val);
        }
        let mut interleave = faulty_rng.fork(0x5150);
        let temps: Vec<f64> = cores
            .iter()
            .map(|&c| self.thermal.temp(c as usize))
            .collect();
        let mut injector = Injector::new(&gated, cores.to_vec(), 45.0, faulty_rng.fork(0x1f));
        injector.set_temps(&temps);
        let out = machine.run(&mut injector, &mut interleave, self.cfg.max_unit_steps);
        budget_exceeded(&out)?;
        let faulty = machine;

        let mut records = Vec::new();
        let temp = self.thermal.max_temp();
        match &built.check {
            CheckKind::GoldenCompare => {
                for (ri, region) in built.outputs.iter().enumerate() {
                    // Attribute the region to the machine core that owns
                    // it (regions were appended per instance in order).
                    let per_instance = built.outputs.len() / cores.len().max(1);
                    let instance = ri.checked_div(per_instance).unwrap_or(0);
                    let pcore = cores[instance.min(cores.len() - 1)];
                    for i in 0..region.count {
                        let e = golden_elems[ri][i as usize];
                        let a = read_element(&faulty, region, i);
                        if e != a {
                            records.push(SdcRecord {
                                setting: SettingId {
                                    cpu: self.processor.id,
                                    core: CoreId(pcore),
                                    testcase: tc.id,
                                },
                                kind: SdcType::Computation,
                                datatype: region.dt,
                                expected: e,
                                actual: a,
                                temp_c: temp,
                                at: self.clock.now(),
                            });
                        }
                    }
                }
            }
            CheckKind::Invariants(invs) => {
                let violations = count_violations(&faulty, invs);
                for _ in 0..violations {
                    records.push(SdcRecord {
                        setting: SettingId {
                            cpu: self.processor.id,
                            core: CoreId(cores[0]),
                            testcase: tc.id,
                        },
                        kind: SdcType::Consistency,
                        datatype: DataType::Bin64,
                        expected: 0,
                        actual: 0,
                        temp_c: temp,
                        at: self.clock.now(),
                    });
                }
            }
        }
        let error_count = records.len() as u64;
        let mut errors_per_core = vec![0u64; cores.len()];
        for r in &records {
            if let Some(idx) = cores.iter().position(|&c| c == r.setting.core.0) {
                errors_per_core[idx] += 1;
            }
        }
        let duration = Duration::from_secs_f64(golden_cycles as f64 / self.cfg.clock_hz);
        self.clock.advance(duration);
        Ok(TestcaseRun {
            testcase: tc.id,
            cores: cores.to_vec(),
            duration,
            records,
            error_count,
            errors_per_core,
            mean_temp_c: temp,
            max_temp_c: temp,
        })
    }
}

/// Runs one unit of `tc` in the VM under a profiler and condenses the
/// result into a [`CachedUnitProfile`]. All randomness comes from
/// [`ProfileKey::stream`], making the result a pure function of
/// `(tc, key, cfg)`.
fn compute_unit_profile(tc: &Testcase, key: ProfileKey, cfg: &ExecConfig) -> CachedUnitProfile {
    let mut rng = key.stream();
    let built = builders::build(tc, key.cores, cfg.unit_iters, rng.next_u64());
    let mut machine = Machine::new(key.cores, built.mem_bytes);
    for &(addr, val) in &built.mem_init {
        machine.mem.raw_write_u64(addr, val);
    }
    let mut loaded = 0usize;
    for (c, p) in built.programs.iter().enumerate() {
        if let Some(p) = p {
            machine.load(c, p.clone());
            loaded += 1;
        }
    }
    let mut profiler = Profiler::new(rng.fork(0x9821));
    let mut interleave = rng.fork(0x77aa);
    let out = machine.run(&mut profiler, &mut interleave, cfg.max_unit_steps);
    assert!(
        out.completed,
        "unit run of {} exceeded the step budget",
        tc.name
    );
    let unit_secs = (out.cycles.max(1)) as f64 / cfg.clock_hz;
    let mut profiles = vec![CoreProfile::default(); key.cores];
    for ((core, class, dt), count) in profiler.counts() {
        profiles[core]
            .site_rates
            .push(((class, dt), count as f64 / unit_secs));
    }
    for (c, profile) in profiles.iter_mut().enumerate() {
        profile.site_rates.sort_by_key(|a| a.0);
        profile.power = match machine.cycles[c] {
            0 => 0.0,
            cycles => machine.energy[c] / cycles as f64,
        };
        let (commits, aborts) = machine.core(c).tx_stats();
        // Conflicted-commit opportunities: observed aborts, floored at
        // a small share of commits (conflicts the golden interleaving
        // happened to miss).
        let conflicts = (aborts as f64).max(commits as f64 * 0.05);
        profile.tx_conflicts_per_sec = conflicts / unit_secs;
        profile.invalidations_per_sec = if loaded > 0 {
            machine.mem.stats.invalidations as f64 / loaded as f64 / unit_secs
        } else {
            0.0
        };
    }
    CachedUnitProfile {
        profiles,
        unit_secs,
        profiler,
    }
}

/// Reads one element of an output region from flushed machine memory.
fn read_element(machine: &Machine, region: &OutputRegion, i: u64) -> u128 {
    let addr = region.addr + i * region.stride;
    match (region.dt.bits(), region.stride) {
        (80, _) => machine.mem.raw_read_u128(addr) & region.dt.mask(),
        (32, 4) => {
            // Packed 32-bit lanes inside 64-bit words.
            let word = machine.mem.raw_read_u64(addr & !7);
            let shift = (addr & 7) * 8;
            ((word >> shift) & 0xffff_ffff) as u128
        }
        (32, _) if region.dt == DataType::F32 => {
            // Scalar f32 results are stored widened to f64.
            let word = machine.mem.raw_read_u64(addr);
            (f64::from_bits(word) as f32).to_bits() as u128
        }
        _ => machine.mem.raw_read_u64(addr) as u128 & region.dt.mask(),
    }
}

/// Counts invariant violations on a halted machine.
fn count_violations(machine: &Machine, invs: &[Invariant]) -> u64 {
    let mut violations = 0;
    for inv in invs {
        match inv {
            Invariant::Equals { addr, value } => {
                let got = machine.mem.raw_read_u64(*addr);
                if got != *value {
                    violations += got.abs_diff(*value).min(16);
                }
            }
            Invariant::Zero { addr } => {
                violations += machine.mem.raw_read_u64(*addr).min(16);
            }
            Invariant::CounterMatchesSuccesses {
                counter,
                success_addrs,
            } => {
                let total: u64 = success_addrs
                    .iter()
                    .map(|a| machine.mem.raw_read_u64(*a))
                    .sum();
                let got = machine.mem.raw_read_u64(*counter);
                if got != total {
                    violations += got.abs_diff(total).min(16);
                }
            }
        }
    }
    violations
}
